"""Explore the Cache Automaton design space (Tables 2-4, Figure 10).

Derives every pipeline/frequency/area number from the circuit constants
and slice geometry, then sweeps custom design points to show the
reachability-vs-frequency trade-off beyond the paper's two corners.

Run:  python examples/design_space.py
"""

from dataclasses import replace

from repro.baselines.ap import ApModel
from repro.core.design import CA_64, CA_P, CA_S
from repro.eval.experiments import table2, table3, table4, fig10
from repro.eval.tables import format_table

print("== Table 2: switch parameters ==")
print(format_table(table2()))

print("\n== Table 3: pipeline stage delays ==")
print(format_table(table3()))

print("\n== Table 4: optimisation ablations ==")
print(format_table(table4()))

print("\n== Figure 10: the published design points ==")
print(format_table(fig10()))

# A finer sweep: vary the G1 wire budget of the CA_P topology and watch
# reachability, frequency, and area move.
print("\n== custom sweep: G1 wires per partition (CA_P topology) ==")
rows = [("G1 wires", "Reach", "Max freq (GHz)", "Area@32K (mm2)")]
for wires in (0, 4, 8, 16, 32, 64):
    point = replace(
        CA_P,
        name=f"CA_P/g1={wires}",
        g1_wires_per_partition=wires,
        operating_frequency_ghz=1000.0,  # report the derived maximum
    )
    rows.append((
        wires,
        point.reachability,
        point.max_frequency_ghz,
        point.area_overhead_mm2(32 * 1024),
    ))
print(format_table(rows))

ap = ApModel()
print(f"\nreference: Micron AP reaches {ap.reachability} states at "
      f"{ap.frequency_ghz*1000:.0f} MHz with {ap.area_mm2():.0f} mm^2 of "
      "routing matrix per 32K states")
print(f"CA_64/CA_P/CA_S span {CA_64.reachability:.0f}-{CA_S.reachability:.0f} "
      f"states of reach at {CA_S.frequency_ghz}-{CA_64.frequency_ghz:.0f} GHz")
