"""AP-compatibility circuit elements: counters and boolean gates.

Micron's ANML has more than STEs; this example builds a rate-limiting
detector — "report when the pattern 'err' occurs 3 times without an 'ok'
in between" — using a counter, simulates it with the circuit simulator,
and then shows the honest architecture boundary: counters do not lower
onto Cache Automaton STE arrays, while OR-gate circuits do (and then run
through the full compile/simulate pipeline).

Run:  python examples/ap_counters.py
"""

from repro.automata.anml import StartKind
from repro.automata.circuit_anml import circuit_to_anml
from repro.automata.elements import (
    CircuitAutomaton,
    CounterMode,
    GateKind,
    lower_circuit,
)
from repro.automata.symbols import SymbolSet
from repro.compiler import compile_automaton
from repro.core.design import CA_P
from repro.errors import CompileError
from repro.sim.circuit import simulate_circuit
from repro.sim.functional import simulate_mapping

# -- 1. A counter circuit: three 'err' events with no intervening 'ok'. ----
circuit = CircuitAutomaton("rate-limit")

# 'err' recogniser (chain), firing on its last symbol.
previous = None
for index, character in enumerate("err"):
    ste_id = f"e{index}"
    circuit.add_ste(
        ste_id, SymbolSet.single(character),
        start=StartKind.ALL_INPUT if index == 0 else StartKind.NONE,
    )
    if previous:
        circuit.connect(previous, ste_id)
    previous = ste_id

# 'ok' recogniser resets the counter.
circuit.add_ste("o0", SymbolSet.single("o"), start=StartKind.ALL_INPUT)
circuit.add_ste("k0", SymbolSet.single("k"))
circuit.connect("o0", "k0")

circuit.add_counter(
    "three_errors", 3, mode=CounterMode.PULSE, reporting=True,
    report_code="ERROR-BURST",
)
circuit.connect("e2", "three_errors", port="count")
circuit.connect("k0", "three_errors", port="reset")

log = b"err err ok err err err ... err"
result = simulate_circuit(circuit, log)
print(f"log: {log.decode()}")
for report in result.reports:
    print(f"  offset {report.offset}: {report.report_code}")
print(f"final counter value: {result.counter_values['three_errors']}")

print("\nANML (with counter):")
print("\n".join(circuit_to_anml(circuit).splitlines()[:6]) + "\n  ...")

# -- 2. Counters do not map onto Cache Automaton. ---------------------------
try:
    lower_circuit(circuit)
except CompileError as error:
    print(f"\nlowering correctly refused: {error}")

# -- 3. OR-gate circuits DO lower — and then compile and run. ---------------
or_circuit = CircuitAutomaton("either")
for word, prefix in (("warn", "w"), ("fail", "f")):
    previous = None
    for index, character in enumerate(word):
        ste_id = f"{prefix}{index}"
        or_circuit.add_ste(
            ste_id, SymbolSet.single(character),
            start=StartKind.ALL_INPUT if index == 0 else StartKind.NONE,
        )
        if previous:
            or_circuit.connect(previous, ste_id)
        previous = ste_id
or_circuit.add_gate("bad", GateKind.OR, reporting=True, report_code="BAD")
or_circuit.connect("w3", "bad")
or_circuit.connect("f3", "bad")

lowered = lower_circuit(or_circuit)
mapping = compile_automaton(lowered, CA_P)
text = b"a warn then a fail"
mapped = simulate_mapping(mapping, text)
print(f"\nOR circuit lowered to {len(lowered)} STEs, compiled to "
      f"{mapping.partition_count} partition(s)")
for report in mapped.reports:
    print(f"  offset {report.offset}: {report.report_code}")

circuit_reports = [
    (r.offset, r.report_code) for r in simulate_circuit(or_circuit, text).reports
]
assert circuit_reports == [(r.offset, r.report_code) for r in mapped.reports]
print("circuit simulation and cache-mapped simulation agree")
