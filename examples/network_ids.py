"""Network intrusion detection: scan traffic against a Snort-style rule
set at cache line rate — the paper's flagship use case.

Builds a 150-rule synthetic IDS rule set (literal payloads, character
classes, bounded repeats, ``.*`` gaps), compiles it for both design
points, scans 64 KB of synthetic traffic with planted attacks, and
compares against the table-driven CPU DFA engine.

Run:  python examples/network_ids.py
"""

import time

from repro import CA_P, CA_S, ApModel, CpuReferenceModel, EnergyModel
from repro.baselines.cpu import try_build_engine
from repro.compiler import compile_automaton, compile_space_optimized
from repro.regex.compile import compile_patterns
from repro.sim.functional import simulate_mapping
from repro.workloads.inputs import random_over_alphabet, with_planted_matches
from repro.workloads.synth import ids_rules

TRAFFIC_BYTES = 64 * 1024

rules = ids_rules(150, seed=99, shared_prefixes=10, dotstar_probability=0.1)
print(f"rule set: {len(rules)} rules, e.g. {rules[0]!r}")

machine = compile_patterns(rules, automaton_id="ids")
print(f"compiled NFA: {machine}")

# Traffic: background noise plus planted rule-prefix fragments.
attacks = [rule.encode()[:10] for rule in rules[:20] if rule[:10].isalnum()]
traffic = with_planted_matches(
    random_over_alphabet(TRAFFIC_BYTES, b"abcdefghij0123456789 /.", seed=7),
    attacks or [rules[0][:6].encode()],
    occurrences=40,
    seed=8,
)

for label, mapping in (
    ("CA_P (performance)", compile_automaton(machine, CA_P)),
    ("CA_S (space)", compile_space_optimized(machine, CA_S)),
):
    started = time.perf_counter()
    result = simulate_mapping(mapping, traffic)
    elapsed = time.perf_counter() - started
    design = mapping.design
    energy = EnergyModel(design)
    line_time_ms = TRAFFIC_BYTES / (design.frequency_ghz * 1e9) * 1e3
    print(f"\n{label}")
    print(f"  states mapped:     {len(mapping.automaton)}")
    print(f"  partitions/ways:   {mapping.partition_count}/{mapping.ways_used}")
    print(f"  cache utilisation: {mapping.cache_megabytes()*1024:.0f} KB")
    print(f"  matches found:     {len(result.reports)}")
    print(f"  modelled scan:     {line_time_ms:.4f} ms at "
          f"{design.throughput_gbps:.1f} Gb/s")
    print(f"  energy:            "
          f"{energy.energy_per_symbol_nj(result.profile):.3f} nJ/symbol, "
          f"{energy.average_power_watts(result.profile):.2f} W")
    print(f"  (simulated in {elapsed:.2f} s)")

# CPU baseline: determinisation may blow up — that is the point.
engine = try_build_engine(machine, max_states=100_000)
ap = ApModel()
cpu = CpuReferenceModel()
print("\nbaselines")
print(f"  Micron AP:  {ap.throughput_gbps:.2f} Gb/s "
      f"(CA_P is {ap.speedup_of(CA_P):.0f}x)")
print(f"  x86 CPU:    {cpu.throughput_gbps*1000:.1f} Mb/s "
      f"(CA_P is {cpu.speedup_of(CA_P):.0f}x)")
if engine is None:
    print("  table-driven DFA: determinisation exceeded 100K states "
          "(the compute-centric bottleneck)")
else:
    cpu_matches = engine.match_offsets(traffic)
    print(f"  table-driven DFA: {engine.dfa_state_count} states "
          f"({engine.table_bytes()//1024} KB table), "
          f"{len(cpu_matches)} matches (agrees with CA)")
