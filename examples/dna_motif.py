"""Approximate DNA motif search with Hamming-distance automata — the
bioinformatics workload family (paper's Hamming benchmark; cf. Weeder's
oligo_scan, which the paper cites as spending 30-62% of its runtime in
exactly this kind of automaton).

Builds distance-2 automata for a panel of 20-mer motifs, scans a genome
fragment with planted mutated occurrences, and verifies the hits against
a brute-force scan.

Run:  python examples/dna_motif.py
"""

import random

from repro import CA_P
from repro.automata.anml import merge
from repro.compiler import compile_automaton
from repro.sim.functional import simulate_mapping
from repro.workloads.distance import hamming_automaton
from repro.workloads.inputs import dna_stream, with_planted_matches

GENOME_LENGTH = 40_000
MOTIF_COUNT = 12
MOTIF_LENGTH = 20
MAX_MISMATCHES = 2

rng = random.Random(2024)
motifs = [
    bytes(rng.choice(b"ACGT") for _ in range(MOTIF_LENGTH))
    for _ in range(MOTIF_COUNT)
]

# One automaton per motif; each reports under the motif's sequence.
panel = merge(
    [
        hamming_automaton(motif, MAX_MISMATCHES, report_code=motif.decode())
        for motif in motifs
    ],
    automaton_id="motif-panel",
)
print(f"motif panel: {MOTIF_COUNT} x {MOTIF_LENGTH}-mers at distance "
      f"{MAX_MISMATCHES} -> {len(panel)} states")

# Genome: random background with planted mutated motif copies.
def mutate(motif: bytes) -> bytes:
    copy = bytearray(motif)
    for _ in range(rng.randint(0, MAX_MISMATCHES)):
        copy[rng.randrange(len(copy))] = rng.choice(b"ACGT")
    return bytes(copy)

genome = with_planted_matches(
    dna_stream(GENOME_LENGTH, seed=5),
    [mutate(motif) for motif in motifs for _ in range(3)],
    occurrences=60,
    seed=6,
)

mapping = compile_automaton(panel, CA_P)
print(f"mapping: {mapping}")

result = simulate_mapping(mapping, genome)
hits = {}
for report in result.reports:
    hits.setdefault(report.report_code, []).append(report.offset)
print(f"\n{len(result.reports)} hits across {len(hits)} motifs")
for motif, offsets in sorted(hits.items())[:5]:
    print(f"  {motif}: {len(offsets)} sites, first at {offsets[0]}")

# Brute-force verification.
def hamming(a: bytes, b: bytes) -> int:
    return sum(x != y for x, y in zip(a, b))

expected = set()
for end in range(MOTIF_LENGTH - 1, len(genome)):
    window = genome[end - MOTIF_LENGTH + 1 : end + 1]
    if any(hamming(window, motif) <= MAX_MISMATCHES for motif in motifs):
        expected.add(end)
found = {report.offset for report in result.reports}
assert found == expected, "Cache Automaton disagrees with brute force!"
print(f"\nverified against brute force: {len(expected)} match sites agree")

scan_ms = GENOME_LENGTH / (CA_P.frequency_ghz * 1e9) * 1e3
print(f"modelled scan time at {CA_P.frequency_ghz:.0f} GHz: {scan_ms:.4f} ms "
      f"(vs {GENOME_LENGTH/0.133e9*1e3:.3f} ms on Micron's AP)")
