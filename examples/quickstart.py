"""Quickstart: compile a small rule set, map it onto the performance-
optimised Cache Automaton, scan an input stream, and read the results.

Run:  python examples/quickstart.py
"""

from repro import (
    CA_P,
    ApModel,
    EnergyModel,
    compile_automaton,
    compile_patterns,
    simulate_mapping,
)

# 1. Compile regexes into one multi-pattern homogeneous automaton.  Each
#    rule reports with its own code so matches are attributable.
RULES = ["bat", "bar[t]?", "c[ao]t", "ar.?t", "dog{1,2}"]
machine = compile_patterns(RULES, report_codes=RULES)
print(f"automaton: {machine}")

# 2. Map it onto the CA_P design (2 GHz, one LLC way group).  The
#    compiler packs connected components into 256-STE partitions and
#    validates the interconnect wire budget.
mapping = compile_automaton(machine, CA_P)
print(f"mapping:   {mapping}")

# 3. Scan a stream.  The functional simulator reproduces the hardware's
#    semantics exactly (one symbol per cycle, match -> transition).
text = b"the cart hit a bat; the dog barked at the cat"
result = simulate_mapping(mapping, text)

print(f"\ninput: {text.decode()}")
for report in result.reports:
    print(f"  offset {report.offset:3d}: rule {report.report_code!r}")

# 4. Performance and energy come from the analytic models driven by the
#    simulated activity profile.
energy = EnergyModel(CA_P)
ap = ApModel()
print(f"\nthroughput: {CA_P.throughput_gbps:.1f} Gb/s "
      f"({ap.speedup_of(CA_P):.0f}x Micron's AP)")
print(f"energy:     {energy.energy_per_symbol_nj(result.profile):.3f} nJ/symbol")
print(f"cache used: {mapping.cache_megabytes() * 1024:.0f} KB")
