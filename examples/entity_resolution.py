"""Section 3.3's case study: compiling EntityResolution onto cache arrays.

Reproduces the paper's walkthrough on the scaled benchmark: shows the
connected components of the space-optimised automaton, how the compiler
packs small CCs together and splits the big ones with graph partitioning,
and the resulting wire usage against the G-switch budget.

Run:  python examples/entity_resolution.py
"""

from repro import CA_P, CA_S
from repro.automata.components import connected_components
from repro.compiler import analyse, compile_automaton, compile_space_optimized
from repro.eval.tables import format_table
from repro.sim.functional import simulate_mapping
from repro.workloads.suite import get_benchmark

benchmark = get_benchmark("EntityResolution")
baseline = benchmark.build()
print(f"baseline automaton: {baseline}")
print(f"  (one Hamming matcher per record-pair context: heavy redundancy)")

perf_mapping = compile_automaton(baseline, CA_P)
space_mapping = compile_space_optimized(baseline, CA_S)
optimised = space_mapping.automaton

components = connected_components(optimised)
print(f"\nafter redundancy merging: {optimised}")
print(f"connected components ({len(components)}, paper finds 5):")
for index, members in enumerate(components):
    print(f"  CC{index}: {len(members)} states")

print("\nmapping (space-optimised, CA_S):")
rows = [("Partition", "Way", "STEs", "Fill %")]
for partition in space_mapping.partitions:
    rows.append((
        partition.index,
        partition.way,
        partition.occupancy,
        100.0 * partition.occupancy / CA_S.partition_size,
    ))
print(format_table(rows))

report = analyse(space_mapping)
print("\ninterconnect wire usage (budget: "
      f"{CA_S.g1_wires_per_partition} G1 + {CA_S.g4_wires_per_partition} G4):")
print(f"  max outgoing within-way signals: {report.max_out_g1}")
print(f"  max incoming within-way signals: {report.max_in_g1}")
print(f"  max outgoing cross-way signals:  {report.max_out_g4}")
print(f"  max incoming cross-way signals:  {report.max_in_g4}")

print("\nspace saving (Figure 8's biggest saver):")
print(f"  CA_P: {perf_mapping.cache_bytes()/1024:.0f} KB "
      f"({perf_mapping.partition_count} partitions)")
print(f"  CA_S: {space_mapping.cache_bytes()/1024:.0f} KB "
      f"({space_mapping.partition_count} partitions)")

# Activity profiling: which arrays burn the power?
from repro.eval.profiling import (
    energy_breakdown,
    hottest_partitions,
    partition_activity,
    profile_mapping,
)

profiled = profile_mapping(space_mapping, benchmark.input_stream(5_000, seed=9))
activities = partition_activity(space_mapping, profiled)
print("\nhottest partitions (duty cycle = fraction of cycles accessed):")
for activity in hottest_partitions(activities, 3):
    print(f"  partition {activity.index} (way {activity.way}): "
          f"{activity.duty_cycle:.0%} duty, {activity.fill_fraction:.0%} full")
print("\nenergy attribution:")
print(format_table(energy_breakdown(space_mapping, profiled.profile).rows()))

# Both mappings must agree on the matches.
data = benchmark.input_stream(10_000, seed=42)
perf_offsets = sorted({r.offset for r in simulate_mapping(perf_mapping, data).reports})
space_offsets = sorted(
    {r.offset for r in simulate_mapping(space_mapping, data).reports}
)
assert perf_offsets == space_offsets
print(f"\nboth designs report the same {len(perf_offsets)} match sites on a "
      f"{len(data)}-byte stream")
