"""Multi-stream scaling (Section 5.2): in the same silicon budget, CA_S
fits more NFA replicas and converts its space savings into aggregate
bandwidth — the paper's "space savings can be directly translated to
speedup" claim, made quantitative."""

from conftest import show
from repro.eval.experiments import multistream


def test_multistream(suite_evaluations, benchmark):
    rows = benchmark(multistream, suite_evaluations)
    show("Multi-stream scaling: 8 NFA ways, independent input streams", rows)

    by_name = {row[0]: row for row in rows[1:]}
    # In equal silicon, CA_S fits >= as many replicas (2x partitions/way).
    for name, row in by_name.items():
        ca_p_streams, ca_s_streams = row[1], row[3]
        assert ca_s_streams >= ca_p_streams, name

    # Aggregate bandwidth: CA_S wins overall, spectacularly where merging
    # shrinks the machine (EntityResolution, the Fig. 8 headline saver).
    ratios = [row[5] for row in rows[1:]]
    assert sum(ratios) / len(ratios) > 1.0
    assert by_name["EntityResolution"][5] > 3.0

    # Merge-resistant automata bound the downside: the 2x-denser packing
    # keeps CA_S at least at ~parity even when merging does nothing.
    assert min(ratios) >= 1.0
