"""Design-space sweeps beyond Figure 10's three points: G1/G4 wire
budgets, partition size, and NFA way allocation."""

from conftest import show
from repro.eval.sweeps import (
    sweep_g1_wires,
    sweep_g4_wires,
    sweep_partition_size,
    sweep_ways,
)


def test_g1_wire_sweep(benchmark):
    rows = benchmark(sweep_g1_wires)
    show("Sweep: within-way (G1) wires per partition", rows)
    reaches = [row[1] for row in rows[1:]]
    areas = [row[4] for row in rows[1:]]
    assert reaches == sorted(reaches)
    assert areas == sorted(areas)


def test_g4_wire_sweep(benchmark):
    rows = benchmark(sweep_g4_wires)
    show("Sweep: cross-way (G4) wires per partition", rows)
    frequencies = [row[2] for row in rows[1:]]
    # Bigger G4 switches slow the pipeline's second stage.
    assert frequencies == sorted(frequencies, reverse=True)


def test_partition_size_sweep(benchmark):
    rows = benchmark(sweep_partition_size)
    show("Sweep: partition (L-switch) size", rows)
    # The frequency/reach trade-off spans the Figure 10 corners.
    by_size = {row[0]: row for row in rows[1:]}
    assert by_size["CA_P/p=64"][2] > 3.0
    assert by_size["CA_P/p=256"][1] > by_size["CA_P/p=64"][1]


def test_ways_sweep(benchmark):
    rows = benchmark(sweep_ways)
    show("Sweep: NFA ways per slice (capacity vs cache left)", rows)
    capacities = [row[2] for row in rows[1:]]
    assert capacities == sorted(capacities)
