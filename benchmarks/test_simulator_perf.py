"""Performance benches for the simulators themselves: symbols/second of
the golden interpreter, the mapped functional simulator, and the DFA CPU
engine on the same workload."""

from conftest import INPUT_LENGTH
from repro.baselines.cpu import DfaCpuEngine
from repro.compiler import compile_automaton
from repro.core.design import CA_P
from repro.sim.functional import MappedSimulator
from repro.sim.golden import GoldenSimulator
from repro.workloads.suite import get_benchmark


def _workload():
    benchmark_spec = get_benchmark("PowerEN")
    automaton = benchmark_spec.build()
    data = benchmark_spec.input_stream(INPUT_LENGTH, seed=5)
    return automaton, data


def test_golden_simulator_throughput(benchmark):
    automaton, data = _workload()
    simulator = GoldenSimulator(automaton)
    result = benchmark(simulator.run, data, collect_reports=False)
    assert result.stats.symbols_processed == len(data)


def test_mapped_simulator_throughput(benchmark):
    automaton, data = _workload()
    simulator = MappedSimulator(compile_automaton(automaton, CA_P))
    result = benchmark(simulator.run, data, collect_reports=False)
    assert result.profile.symbols == len(data)


def test_mapped_simulator_multi_stream_throughput(benchmark):
    """Batched ``run_many``: four independent streams through one kernel
    pass, sharing the match-matrix gather and the propagation cache."""
    automaton, data = _workload()
    simulator = MappedSimulator(compile_automaton(automaton, CA_P))
    quarter = len(data) // 4
    streams = [data[i * quarter : (i + 1) * quarter] for i in range(4)]
    results = benchmark(simulator.run_many, streams, collect_reports=False)
    assert sum(result.profile.symbols for result in results) == quarter * 4


def test_dfa_cpu_engine_throughput(benchmark):
    # Determinising PowerEN blows up (the compute-centric problem the
    # paper motivates with!); ExactMatch is the DFA-friendly workload.
    benchmark_spec = get_benchmark("ExactMatch")
    automaton = benchmark_spec.build()
    data = benchmark_spec.input_stream(INPUT_LENGTH, seed=5)
    engine = DfaCpuEngine(automaton)
    offsets = benchmark(engine.match_offsets, data)
    assert isinstance(offsets, list)


def test_poweren_determinization_blows_up(benchmark):
    """The compute-centric motivation: class/repeat-heavy rule sets do
    not determinise within practical state budgets (Section 6)."""
    from repro.baselines.cpu import try_build_engine

    automaton = get_benchmark("PowerEN").build()
    engine = benchmark.pedantic(
        try_build_engine, args=(automaton,), kwargs={"max_states": 2000},
        rounds=1, iterations=1,
    )
    assert engine is None


def test_high_activity_simulation(benchmark):
    """SPM's huge active set is the simulator's worst case."""
    benchmark_spec = get_benchmark("SPM")
    automaton = benchmark_spec.build()
    data = benchmark_spec.input_stream(min(INPUT_LENGTH, 4000), seed=6)
    simulator = GoldenSimulator(automaton)
    result = benchmark(simulator.run, data, collect_reports=False)
    assert result.stats.average_active_states > 100
