"""Table 1 — benchmark characteristics (states, CCs, largest CC, average
active states) for the performance- and space-optimised automata."""

import pytest

from conftest import show
from repro.automata.components import component_stats
from repro.automata.optimize import space_optimize
from repro.eval.experiments import table1
from repro.workloads.suite import get_benchmark


def test_table1(suite_evaluations, benchmark):
    rows = table1(suite_evaluations)
    show("Table 1: benchmark characteristics", rows)

    # Kernel timed: characterising one representative automaton.
    snort = get_benchmark("Snort").build()

    def characterise():
        return component_stats(space_optimize(snort))

    stats = benchmark(characterise)
    assert stats.state_count > 0

    by_name = {row[0]: row for row in rows[1:]}
    assert len(by_name) == 20
    for name, row in by_name.items():
        p_states, p_ccs, p_largest = row[1], row[2], row[3]
        s_states, s_ccs, s_largest = row[5], row[6], row[7]
        # The Table 1 trend: merging never adds states, reduces CC count,
        # and grows (or keeps) the largest CC.
        assert s_states <= p_states, name
        assert s_ccs <= p_ccs, name
        assert s_largest >= p_largest or s_states == p_states, name

    # Family-specific signatures from the paper.
    assert by_name["EntityResolution"][6] <= 8  # 1000 CCs -> 5
    assert by_name["SPM"][4] > 100  # enormous active set
    assert by_name["Fermi"][4] > 50
    assert by_name["RandomForest"][1] == pytest.approx(
        by_name["RandomForest"][5], rel=0.1
    )  # merging barely helps
