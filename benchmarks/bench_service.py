#!/usr/bin/env python
"""Record scan-service resilience metrics into ``BENCH_service.json``.

Drives the multi-tenant :class:`~repro.service.service.ScanService`
through the open-loop load generator (``repro.eval.loadgen``) in two
scenarios and appends one labelled entry — a *run table* with one flat
row per scenario — to the repo-root ``BENCH_service.json``:

* ``baseline`` — two healthy tenants, no faults: the throughput and
  latency floor (p50/p95/p99 from open-loop arrival to completion);
* ``fault-injected`` — the resilience gauntlet: a worker is killed
  mid-run, one tenant is artificially slowed until its requests burn
  their deadlines, oversized streams are submitted periodically, and
  primary-backend faults are injected so the circuit breaker trips
  open (golden-fallback tier serves) and then recovers;
* three ``serve-*`` rows — identical open-loop load over the three
  execution planes (``serve-inproc-w0`` scans in the event loop,
  ``serve-inproc-w2`` dispatches chunks to two scan worker processes,
  ``serve-tcp-w2`` adds the length-prefixed TCP frame protocol in
  front), so the process-pool dispatch and wire-protocol overheads are
  measured side by side against the in-loop floor.

Each row records throughput_rps, avg/p50/p95/p99 latency,
failure/shed/timeout/retry/oversized counts, failure_rate, breaker
trips and recoveries, worker restarts, pool respawns, fallback scans,
degrade events, the execution-plane parameters (``scan_workers``,
``transport``), and the run's host-resource footprint (``cpu_time_s``
— user+system CPU seconds consumed by the run, from
``resource.getrusage`` deltas over SELF *and* CHILDREN so scan worker
processes are charged to their row — and ``max_rss_mb``, the process
max resident set after the run; max RSS is a process-lifetime
high-water mark, so later rows can only grow).  ``unhandled_exceptions`` must be 0 in every row — the whole
point of the serving layer is that faults become *typed* outcomes — and
the fault-injected row must show the breaker both tripping and
recovering; either violation fails the run (exit 1), so the CI smoke
job is a real resilience gate, not just a grep.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py --label my-change
    PYTHONPATH=src python benchmarks/bench_service.py --smoke --dry-run

``--smoke`` shortens both runs for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
from datetime import datetime, timezone

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.eval.loadgen import (  # noqa: E402
    RUN_SCHEMA_VERSION,
    baseline_config,
    faulted_config,
    run_loadgen,
    serving_config,
)

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_service.json",
)

#: Run-table columns, in print order.  ``ms`` columns may be None when a
#: scenario completed no requests (printed as ``-``).
_COLUMNS = (
    "scenario",
    "scan_workers",
    "transport",
    "requests_sent",
    "completed",
    "failed",
    "shed",
    "timeouts",
    "oversized",
    "retried",
    "unhandled_exceptions",
    "throughput_rps",
    "latency_avg_ms",
    "latency_p50_ms",
    "latency_p95_ms",
    "latency_p99_ms",
    "failure_rate",
    "breaker_trips",
    "breaker_recoveries",
    "worker_restarts",
    "pool_respawns",
    "fallback_scans",
    "cpu_time_s",
    "max_rss_mb",
)


def _max_rss_mb() -> float:
    """Max-RSS high-water mark in MiB across this process and its reaped
    children (``ru_maxrss`` is KiB on Linux, bytes on macOS) — scan
    worker processes count toward the footprint."""
    peak = max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return round(peak / 1024.0, 1)


def run_measured(config):
    """One load-generator run with its host-resource footprint attached.

    Returns ``(record, row)``: the loadgen :class:`RunRecord` (for the
    invariant checks) and its dict row extended with the resource
    columns (for the run table and the trajectory entry).  CPU time
    sums SELF and CHILDREN rusage deltas so scan worker processes —
    spawned and reaped within the run — are charged to their row.
    """
    before_self = resource.getrusage(resource.RUSAGE_SELF)
    before_kids = resource.getrusage(resource.RUSAGE_CHILDREN)
    record = run_loadgen(config)
    after_self = resource.getrusage(resource.RUSAGE_SELF)
    after_kids = resource.getrusage(resource.RUSAGE_CHILDREN)
    row = record.as_dict()
    row["cpu_time_s"] = round(
        (after_self.ru_utime - before_self.ru_utime)
        + (after_self.ru_stime - before_self.ru_stime)
        + (after_kids.ru_utime - before_kids.ru_utime)
        + (after_kids.ru_stime - before_kids.ru_stime),
        3,
    )
    row["max_rss_mb"] = _max_rss_mb()
    return record, row


def _cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def print_run_table(run_rows) -> None:
    rows = [
        {column: _cell(run_row.get(column)) for column in _COLUMNS}
        for run_row in run_rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rows))
        for column in _COLUMNS
    }
    header = "  ".join(column.ljust(widths[column]) for column in _COLUMNS)
    print(header)
    print("  ".join("-" * widths[column] for column in _COLUMNS))
    for row in rows:
        print("  ".join(row[column].ljust(widths[column]) for column in _COLUMNS))


def check_invariants(records) -> list:
    """The resilience assertions this benchmark *gates* on."""
    problems = []
    for record in records:
        if record.unhandled_exceptions:
            problems.append(
                f"{record.scenario}: {record.unhandled_exceptions} unhandled "
                "exception(s) escaped the typed-error surface"
            )
    faulted = [r for r in records if r.scenario == "fault-injected"]
    for record in faulted:
        if not record.breaker_trips:
            problems.append("fault-injected: circuit breaker never tripped")
        if not record.breaker_recoveries or not record.breaker_recovered:
            problems.append("fault-injected: circuit breaker never recovered")
        if not (record.shed or record.retried):
            problems.append(
                "fault-injected: no load shedding and no retries observed"
            )
        if not record.worker_restarts:
            problems.append("fault-injected: killed worker was not restarted")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=3.0,
                        help="seconds of open-loop load per scenario "
                             "(default 3.0)")
    parser.add_argument("--seed", type=int, default=7,
                        help="RNG seed for streams and jitter (default 7)")
    parser.add_argument("--smoke", action="store_true",
                        help="short CI runs (~1.5 s per scenario)")
    parser.add_argument("--label", default="local",
                        help="entry label, e.g. a PR or commit name")
    parser.add_argument("--note", default="",
                        help="free-form note stored with the entry")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="trajectory file (default repo-root "
                             "BENCH_service.json)")
    parser.add_argument("--dry-run", action="store_true",
                        help="measure and print, but do not write the file")
    args = parser.parse_args()
    if args.duration <= 0:
        parser.error("--duration must be positive")
    duration = 1.5 if args.smoke else args.duration

    configs = [
        baseline_config(
            duration_s=duration, seed=args.seed, label=args.label
        ),
        faulted_config(
            duration_s=duration, seed=args.seed, label=args.label
        ),
        # Serving-plane comparison: identical load over the in-loop,
        # process-pool, and networked execution planes.
        serving_config(
            scan_workers=0, transport="inproc",
            duration_s=duration, seed=args.seed, label=args.label,
        ),
        serving_config(
            scan_workers=2, transport="inproc",
            duration_s=duration, seed=args.seed, label=args.label,
        ),
        serving_config(
            scan_workers=2, transport="tcp",
            duration_s=duration, seed=args.seed, label=args.label,
        ),
    ]
    measured = [run_measured(config) for config in configs]
    records = [record for record, _row in measured]
    run_rows = [row for _record, row in measured]

    print_run_table(run_rows)
    problems = check_invariants(records)
    for problem in problems:
        print(f"INVARIANT VIOLATED: {problem}", file=sys.stderr)

    entry = {
        "label": args.label,
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%d"),
        "duration_s": duration,
        "seed": args.seed,
        "schema_version": RUN_SCHEMA_VERSION,
        "runs": run_rows,
    }
    if args.note:
        entry["note"] = args.note

    if not args.dry_run:
        history = []
        if os.path.exists(args.output):
            with open(args.output, "r", encoding="utf-8") as handle:
                history = json.load(handle)
        history.append(entry)
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(history, handle, indent=2)
            handle.write("\n")
        print(f"appended to {args.output} ({len(history)} entries)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
