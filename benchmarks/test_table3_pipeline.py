"""Table 3 — pipeline stage delays and operating frequencies, derived from
the circuit constants and slice geometry."""

import pytest

from conftest import show
from repro.core.design import CA_P, CA_S
from repro.eval.experiments import table3


def test_table3(benchmark):
    rows = benchmark(table3)
    show("Table 3: pipeline stage delays and operating frequency", rows)

    by_name = {row[0]: row for row in rows[1:]}
    # Paper: CA_P 438/227/263 ps, 2.3 GHz max, operated at 2 GHz.
    assert by_name["CA_P"][1] == pytest.approx(438, abs=2)
    assert by_name["CA_P"][2] == pytest.approx(227, abs=2)
    assert by_name["CA_P"][3] == pytest.approx(263, abs=2)
    assert by_name["CA_P"][4] == pytest.approx(2.3, abs=0.05)
    assert by_name["CA_P"][5] == 2.0
    # Paper: CA_S 687/468/304 ps, 1.4 GHz max, operated at 1.2 GHz.
    assert by_name["CA_S"][1] == pytest.approx(687, abs=2)
    assert by_name["CA_S"][2] == pytest.approx(468, abs=2)
    assert by_name["CA_S"][3] == pytest.approx(304, abs=2)
    assert by_name["CA_S"][4] == pytest.approx(1.4, abs=0.06)
    assert by_name["CA_S"][5] == 1.2

    # The bottleneck stage is state-match for both designs.
    assert CA_P.timing.bottleneck == "state-match"
    assert CA_S.timing.bottleneck == "state-match"
