"""Table 2 — switch parameters (size, count, delay, energy, area) for both
designs, plus the functional crossbar's evaluation throughput."""

import numpy as np
import pytest

from conftest import show
from repro.core.switches import CrossbarSwitch, SwitchSpec
from repro.eval.experiments import table2


def test_table2(benchmark):
    rows = table2()
    show("Table 2: switch parameters", rows)

    by_key = {(row[0], row[1]): row for row in rows[1:]}
    # Published anchor values must appear verbatim.
    assert by_key[("CA_S", "L")][4] == pytest.approx(163.5, abs=0.5)
    assert by_key[("CA_S", "L")][6] == pytest.approx(0.033, abs=0.001)
    assert by_key[("CA_P", "G1")][4] == pytest.approx(128.0, abs=0.5)
    assert by_key[("CA_S", "G4")][4] == pytest.approx(327.0, abs=0.5)
    assert by_key[("CA_S", "G4")][6] == pytest.approx(0.1293, abs=0.002)

    # Kernel timed: one L-switch crossbar evaluation (the pipeline's
    # third stage, executed every symbol cycle).
    switch = CrossbarSwitch(SwitchSpec(280, 256))
    rng = np.random.default_rng(0)
    for _ in range(400):
        switch.connect(int(rng.integers(280)), int(rng.integers(256)))
    active = rng.random(280) < 0.05

    outputs = benchmark(switch.evaluate, active)
    assert outputs.shape == (256,)
