"""Table 5 — comparison with HARE and UAP on Dotstar0.9 (Section 5.6)."""

import pytest

from conftest import show
from repro.baselines.asic import HARE, UAP, ca_operating_point, table5_rows
from repro.core.design import CA_P, CA_S


@pytest.fixture(scope="module")
def dotstar09(suite_evaluations):
    return next(
        evaluation
        for evaluation in suite_evaluations
        if evaluation.benchmark.name == "Dotstar09"
    )


def test_table5(dotstar09, benchmark):
    def build_rows():
        points = [
            ca_operating_point(CA_P, dotstar09.perf_profile),
            ca_operating_point(CA_S, dotstar09.space_profile),
        ]
        return table5_rows(points)

    rows = benchmark(build_rows)
    show("Table 5: comparison with related ASIC designs (Dotstar0.9)", rows)

    header, throughput, runtime, power, energy, area = rows
    columns = {name: index for index, name in enumerate(header)}
    ca_p, ca_s = columns["CA_P"], columns["CA_S"]
    hare, uap = columns["HARE (W=32)"], columns["UAP"]

    # Paper: CA_P is 3.9x faster than HARE and 3x faster than UAP;
    # CA_S is 2.34x and 1.8x.
    assert throughput[ca_p] / throughput[hare] == pytest.approx(4.1, rel=0.1)
    assert throughput[ca_p] / throughput[uap] == pytest.approx(3.0, rel=0.1)
    assert throughput[ca_s] / throughput[hare] == pytest.approx(2.5, rel=0.1)
    assert runtime[ca_p] < runtime[uap] < runtime[hare]
    # HARE's energy/area dwarf everything; CA area stays below UAP+HARE.
    assert energy[ca_p] < energy[hare] / 10
    assert area[ca_p] < HARE.area_mm2
    assert area[ca_p] == pytest.approx(4.3, abs=0.2)
    assert area[ca_s] == pytest.approx(4.6, abs=0.2)
    # UAP stays the energy-efficiency leader over CA_P (the paper concedes
    # this); CA_S closes most of the gap.
    assert energy[uap] < energy[ca_p]
    assert power[ca_p] < HARE.power_watts
    assert power[ca_p] > UAP.power_watts  # UAP stays the low-power point
