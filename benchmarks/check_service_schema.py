#!/usr/bin/env python
"""Validate the schema of every run row in ``BENCH_service.json``.

The trajectory file is append-only across PRs, so older entries were
written by older recorders.  This checker enforces two tiers:

* **core keys** every run row must carry, regardless of age — the
  counters, latency percentiles, and resilience columns the report
  generator and the CI grep depend on;
* **schema-version-2 keys** required only on entries stamped
  ``schema_version >= 2`` (the multi-process / networked serving
  recorder): the execution-plane parameters (``scan_workers``,
  ``transport``), ``pool_respawns``, the host-resource footprint
  (``cpu_time_s``, ``max_rss_mb``), and per-tenant latency
  percentiles inside every ``per_tenant`` row.

Exit 0 when every entry validates, 1 with one diagnostic line per
violation otherwise.  CI runs this after the service smoke benchmark
so a recorder regression (dropped column, renamed key) fails the build
instead of silently producing unreadable history.

Usage::

    python benchmarks/check_service_schema.py [PATH]
"""

from __future__ import annotations

import json
import os
import sys

DEFAULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_service.json",
)

#: Required in every run row, whatever the entry's schema version.
CORE_RUN_KEYS = (
    "scenario",
    "requests_sent",
    "completed",
    "failed",
    "shed",
    "timeouts",
    "oversized",
    "retried",
    "unhandled_exceptions",
    "throughput_rps",
    "latency_p50_ms",
    "latency_p95_ms",
    "latency_p99_ms",
    "failure_rate",
    "breaker_trips",
    "breaker_recoveries",
    "worker_restarts",
    "fallback_scans",
    "per_tenant",
)

#: Additionally required when the entry says ``schema_version >= 2``.
V2_RUN_KEYS = (
    "scan_workers",
    "transport",
    "pool_respawns",
    "cpu_time_s",
    "max_rss_mb",
)

#: Required in every per-tenant row of a v2+ entry.
V2_TENANT_KEYS = (
    "submitted",
    "completed",
    "failed",
    "latency_p50_ms",
    "latency_p95_ms",
    "latency_p99_ms",
)


def check_entry(index: int, entry) -> list:
    problems = []
    where = f"entry[{index}] ({entry.get('label', '?')!r})"
    runs = entry.get("runs")
    if not isinstance(runs, list) or not runs:
        return [f"{where}: no 'runs' list"]
    version = entry.get("schema_version", 1)
    for run_index, run in enumerate(runs):
        run_where = f"{where}.runs[{run_index}]"
        if not isinstance(run, dict):
            problems.append(f"{run_where}: not an object")
            continue
        scenario = run.get("scenario", "?")
        for key in CORE_RUN_KEYS:
            if key not in run:
                problems.append(
                    f"{run_where} ({scenario}): missing core key {key!r}"
                )
        if version < 2:
            continue
        for key in V2_RUN_KEYS:
            if key not in run:
                problems.append(
                    f"{run_where} ({scenario}): missing schema-v2 key "
                    f"{key!r}"
                )
        per_tenant = run.get("per_tenant")
        if not isinstance(per_tenant, dict):
            problems.append(
                f"{run_where} ({scenario}): per_tenant is not an object"
            )
            continue
        for tenant, stats in per_tenant.items():
            for key in V2_TENANT_KEYS:
                if key not in stats:
                    problems.append(
                        f"{run_where} ({scenario}).per_tenant[{tenant!r}]: "
                        f"missing key {key!r}"
                    )
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    path = argv[0] if argv else DEFAULT_PATH
    if not os.path.exists(path):
        print(f"error: {path} does not exist", file=sys.stderr)
        return 1
    with open(path, "r", encoding="utf-8") as handle:
        history = json.load(handle)
    if not isinstance(history, list):
        print(f"error: {path} is not a JSON list of entries", file=sys.stderr)
        return 1
    problems = []
    for index, entry in enumerate(history):
        problems.extend(check_entry(index, entry))
    for problem in problems:
        print(f"SCHEMA VIOLATION: {problem}", file=sys.stderr)
    if not problems:
        versions = sorted({e.get("schema_version", 1) for e in history})
        print(
            f"{path}: {len(history)} entr{'y' if len(history) == 1 else 'ies'} "
            f"valid (schema version(s): {', '.join(map(str, versions))})"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
