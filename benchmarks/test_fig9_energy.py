"""Figure 9 — (a) energy per input symbol for CA_P / CA_S / Ideal AP with
the same mappings; (b) average power of both designs."""

import pytest

from conftest import show
from repro.core.design import CA_P, CA_S
from repro.core.energy import EnergyModel
from repro.core.params import XEON_TDP_WATTS
from repro.eval.experiments import fig9a, fig9b


def test_fig9a(suite_evaluations, benchmark):
    rows = benchmark(fig9a, suite_evaluations)
    show("Figure 9a: energy per input symbol (nJ)", rows)

    by_name = {row[0]: row for row in rows[1:-1]}
    average = rows[-1]

    for name, row in by_name.items():
        _, ca_p, ca_s, ideal_ap_p, ideal_ap_s = row
        # CA always beats the Ideal AP running the same mapping.
        assert ca_p < ideal_ap_p, name
        assert ca_s < ideal_ap_s, name

    # Section 5.3: on average CA consumes ~3x less than Ideal AP.
    assert average[3] / average[1] == pytest.approx(3.6, rel=0.15)
    # CA_S (with its merged mappings) is the lowest-energy configuration.
    assert average[2] <= average[1]

    # High-activity benchmarks consume the most energy (paper's Fig. 9).
    assert by_name["SPM"][1] > by_name["Bro217"][1]
    assert by_name["Fermi"][1] > by_name["Bro217"][1]


def test_fig9b(suite_evaluations, benchmark):
    rows = benchmark(fig9b, suite_evaluations)
    show("Figure 9b: average power (W)", rows)

    for row in rows[1:]:
        name, ca_p_power, ca_s_power = row
        # Far below the Xeon's 160 W TDP (Section 5.3).
        assert ca_p_power < XEON_TDP_WATTS / 2, name
        assert ca_s_power < ca_p_power + 1e-9, name


def test_peak_power_prototype(benchmark):
    """The 128K-STE prototype's worst case: ~71-75 W (Section 5.3)."""
    peak_p = benchmark(EnergyModel(CA_P).peak_power_watts, 128 * 1024)
    assert 65 < peak_p < 80
    assert peak_p < XEON_TDP_WATTS
    # CA_S at the same state count runs cooler per state (lower clock).
    peak_s = EnergyModel(CA_S).peak_power_watts(128 * 1024)
    assert peak_s < peak_p
