"""Shared fixtures for the benchmark harness.

Each ``benchmarks/test_*`` module regenerates one of the paper's tables
or figures (printed to stdout — run with ``-s`` to see them) while also
timing the underlying kernel with pytest-benchmark.

The 20-benchmark suite evaluation is computed once per session; set
``REPRO_BENCH_INPUT`` to change the per-benchmark input-stream length
(default 8000 symbols; the paper uses 10 MB traces — trends are stable
far earlier).  Setting ``REPRO_BENCH_SMOKE=1`` shrinks the default to
2000 symbols so ``pytest benchmarks -q --benchmark-disable`` doubles as
a fast CI smoke target; ``scripts`` usage lives in
``benchmarks/bench_simulator.py``, which records simulator symbols/sec
trajectories into ``BENCH_simulator.json``.
"""

from __future__ import annotations

import os
from typing import List

import pytest

from repro.eval.experiments import BenchmarkEvaluation, evaluate_suite
from repro.eval.tables import format_table

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
_DEFAULT_INPUT = "2000" if _SMOKE else "8000"
INPUT_LENGTH = int(os.environ.get("REPRO_BENCH_INPUT", _DEFAULT_INPUT))


@pytest.fixture(scope="session")
def suite_evaluations() -> List[BenchmarkEvaluation]:
    return evaluate_suite(input_length=INPUT_LENGTH, seed=1)


def show(title: str, rows) -> None:
    print(f"\n== {title} ==")
    print(format_table(rows))
