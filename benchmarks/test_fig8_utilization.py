"""Figure 8 — cache utilisation (MB) of CA_P vs CA_S per benchmark, plus
the compile time of the mapping pipeline."""

from conftest import show
from repro.compiler import Compiler
from repro.core.design import CA_P
from repro.eval.experiments import fig8
from repro.workloads.suite import get_benchmark


def test_fig8(suite_evaluations, benchmark):
    rows = fig8(suite_evaluations)
    show("Figure 8: cache utilisation (MB)", rows)

    by_name = {row[0]: row for row in rows[1:-1]}
    average = rows[-1]
    # Shape: CA_S never exceeds CA_P, and overall it saves space.
    for name, row in by_name.items():
        assert row[2] <= row[1] + 1e-9, name
    assert average[2] < average[1]

    # The paper's biggest savers must actually save here too.
    for name in ("EntityResolution", "Brill", "SPM"):
        assert by_name[name][3] > 0, name
    # ...and the merge-resistant benchmarks save ~nothing.
    for name in ("Hamming", "RandomForest", "Fermi"):
        assert by_name[name][3] <= by_name["EntityResolution"][3], name

    # EntityResolution shows the largest absolute saving (as in Fig. 8).
    biggest_saver = max(by_name, key=lambda name: by_name[name][3])
    assert biggest_saver == "EntityResolution"

    # Kernel timed: compiling a multi-thousand-state automaton.
    snort = get_benchmark("Snort").build()
    compiler = Compiler(CA_P)

    mapping = benchmark(compiler.compile, snort)
    assert mapping.partition_count >= 1
