#!/usr/bin/env python
"""Record simulator throughput into the ``BENCH_simulator.json`` trajectory.

Measures symbols/second of the golden interpreter, the mapped functional
simulator, and the batched multi-stream path (``run_many`` over four
streams, aggregate rate) on the PowerEN workload — the same configuration
as ``benchmarks/test_simulator_perf.py`` — and appends one labelled entry
to the repo-root ``BENCH_simulator.json`` so successive PRs accumulate a
before/after performance history.

Four lazy-DFA measurements ride along: warm single-stream throughput of
the ``lazy-dfa`` backend (transition cache populated by one untimed
pass), the same measurement at ``--stride`` (k-stride execution over
the compressed class alphabet), and the process-sharded ``scan_many``
aggregate over four longer streams (``--shard-symbols`` total,
``--shard-jobs`` workers) both unstrided and strided, so the
shared-memory fan-out path and its composition with striding are
tracked in the same history.  Each entry also records the kernel and
lazy-DFA cache counters
(:meth:`~repro.sim.kernel.BitsetKernel.cache_info`-style hit/miss/flush
totals) observed during the run, including the strided DFA's effective
stride and class-table width.

A ``split_scan`` fragment records intra-stream parallelism: ONE long
PowerEN stream (``--split-symbols`` bytes) scanned at ``split_jobs``
1, 2, and ``--split-jobs``, with the non-leader workers computing SFA
entry-state→exit-state mappings over shared memory.  The warm passes
double as a correctness probe (``bit_identical`` must be true), and
``cache_counters.split_workers`` carries the worker-process DFA/SFA
cache aggregate.  On a single-CPU host the speedup is bounded by the
core count — record the honest number; see RESULTS.md.

Every ``*_symbols_per_sec`` figure is **input bytes per second**: each
rate divides the input length in bytes by wall-clock time, so a k=2
strided run (which takes k bytes per DFA step) is never double-counted
— one input byte is one symbol, at every stride.

Each entry also carries a ``backends`` table: single-stream throughput of
every backend registered with :mod:`repro.backends` over a (shorter)
``--matrix-length`` prefix of the same input, so per-backend rates track
the same history.  Backends that cannot build for the workload (e.g. the
DFA baseline when subset construction explodes) are recorded as skipped
with the reason instead of aborting the run.

A ``hybrid`` fragment records the pattern-structure-aware partitioned
execution on a *mixed* ruleset — forty friendly literal components plus
one DFA-hostile bounded-gap component (``x.{14}y``) over an x-heavy
input that keeps the hostile component's subset closure churning.  It
measures hybrid whole-ruleset throughput against each single backend
run on the same whole ruleset, records the per-group placement table,
the speedup over the best single backend, and ``bit_identical`` (the
hybrid merge is verified against the golden interpreter before
anything is timed — a benchmark that drifted from correctness would be
recording fiction).

Usage::

    PYTHONPATH=src python benchmarks/bench_simulator.py --label my-change
    PYTHONPATH=src python benchmarks/bench_simulator.py --dry-run

Each timing is the median of ``--rounds`` runs (default 5).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import statistics
import sys
import time
from datetime import datetime, timezone

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.backends import backend_names, create_backend  # noqa: E402
from repro.backends.artifact import CompiledArtifact  # noqa: E402
from repro.compiler import compile_automaton  # noqa: E402
from repro.core.design import CA_P  # noqa: E402
from repro.errors import ReproError  # noqa: E402
from repro.regex.compile import compile_patterns  # noqa: E402
from repro.sim.functional import MappedSimulator  # noqa: E402
from repro.sim.golden import GoldenSimulator  # noqa: E402
from repro.workloads.suite import get_benchmark  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_simulator.json",
)


def median_rate(func, symbols: int, rounds: int) -> float:
    """Median input bytes/second of ``func`` over ``rounds`` timed calls.

    ``symbols`` must be the *input length in bytes* (never a DFA step
    count) so strided and unstrided runs normalise identically.
    """
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    return symbols / statistics.median(times)


#: Per-backend construction options for the throughput matrix.  The
#: eager DFA baseline gets a deliberately low state cap (no
#: minimisation) so a workload whose subset construction explodes fails
#: in seconds and is recorded as skipped rather than stalling the
#: benchmark.
_MATRIX_OPTIONS = {
    "eager-dfa": {"minimize": False, "max_states": 4000},
}


def backend_matrix(artifact, data: bytes, rounds: int) -> dict:
    """Symbols/second of every registered backend on ``data``."""
    matrix = {}
    for name in backend_names():
        try:
            backend = create_backend(
                name, artifact, **_MATRIX_OPTIONS.get(name, {})
            )
            rate = median_rate(
                lambda: backend.scan(data, collect_reports=False),
                len(data),
                rounds,
            )
        except ReproError as error:
            matrix[name] = {"skipped": str(error)}
            continue
        matrix[name] = {"symbols_per_sec": round(rate)}
    return matrix


def measure_split(artifact, spec, split_symbols: int, split_jobs: int,
                  rounds: int) -> tuple:
    """Split-stream scanning over ONE long PowerEN stream.

    Measures input bytes/second of the same single-stream scan at
    jobs=1 (plain serial, the baseline), jobs=2, and ``--split-jobs``,
    with the SFA mapping cache warmed by one untimed pass per
    configuration.  The warm passes also collect reports and verify the
    split results are bit-identical to serial — a benchmark that drifted
    from correctness would be recording fiction.  Returns the entry
    fragment and the last backend's worker cache aggregate.
    """
    split_data = spec.input_stream(split_symbols, seed=7)
    rates = {}
    baseline = None
    identical = True
    worker_counters = {"workers": 0}
    for jobs in sorted({1, 2, split_jobs}):
        backend = create_backend("lazy-dfa", artifact, split_jobs=jobs)
        result = backend.scan(split_data)  # warm + correctness probe
        reports = [(r.offset, r.ste_id, r.report_code) for r in result.reports]
        if baseline is None:
            baseline = reports
        elif reports != baseline:
            identical = False
        rates[str(jobs)] = round(median_rate(
            lambda: backend.scan(split_data, collect_reports=False),
            len(split_data),
            rounds,
        ))
        if jobs > 1:
            worker_counters = backend.worker_cache_info()
    serial = rates[str(min(int(k) for k in rates))]
    top = str(max(int(k) for k in rates))
    fragment = {
        "split_symbols": split_symbols,
        "split_jobs": split_jobs,
        "symbols_per_sec_by_jobs": rates,
        "speedup_at_max_jobs": round(rates[top] / serial, 3),
        "bit_identical": identical,
    }
    return fragment, worker_counters


def measure_hybrid(hybrid_symbols: int, rounds: int) -> dict:
    """Hybrid vs whole-ruleset single backends on a mixed ruleset.

    The ruleset is forty deterministic lowercase literals (DFA-friendly,
    a few states each) plus one bounded-gap pattern whose subset closure
    explodes; the input is drawn over an x-heavy alphabet so the hostile
    component keeps the whole-ruleset lazy DFA hash-consing new
    activation rows for the entire run while the friendly components
    stay trivially warm.
    """
    rng = random.Random(11)
    friendly = sorted({
        "".join(
            rng.choice("abcdefghijklmnopqrstuv")
            for _ in range(rng.randint(4, 7))
        )
        for _ in range(40)
    })
    patterns = friendly + ["x.{14}y"]
    machine = compile_patterns(patterns, report_codes=patterns)
    artifact = CompiledArtifact.from_mapping(compile_automaton(machine, CA_P))
    alphabet = b"abcdefghijklmnopqrstuvxy" + b"x" * 8 + b"y" * 4
    data = bytes(rng.choice(alphabet) for _ in range(hybrid_symbols))

    golden = create_backend("golden-interpreter", artifact)
    expected = sorted(
        (r.offset, r.ste_id, r.report_code)
        for r in golden.scan(data).reports
    )
    hybrid = create_backend("hybrid", artifact)
    observed = sorted(
        (r.offset, r.ste_id, r.report_code)
        for r in hybrid.scan(data).reports
    )
    identical = observed == expected

    hybrid_rate = median_rate(
        lambda: hybrid.scan(data, collect_reports=False), len(data), rounds
    )
    single_rates = {}
    for name in ("lazy-dfa", "packed-kernel"):
        backend = create_backend(name, artifact)
        backend.scan(data, collect_reports=False)  # warm any caches
        single_rates[name] = round(median_rate(
            lambda: backend.scan(data, collect_reports=False),
            len(data),
            rounds,
        ))
    best_single = max(single_rates, key=single_rates.get)
    return {
        "workload": f"{len(friendly)} literals + x.{{14}}y",
        "input_symbols": len(data),
        "states": len(artifact.automaton),
        "symbols_per_sec": round(hybrid_rate),
        "single_backend_symbols_per_sec": single_rates,
        "best_single_backend": best_single,
        "best_single_symbols_per_sec": single_rates[best_single],
        "speedup_vs_best_single": round(
            hybrid_rate / single_rates[best_single], 3
        ),
        "bit_identical": identical,
        "placement": hybrid.placement(),
    }


def measure(
    length: int,
    rounds: int,
    matrix_length: int,
    shard_symbols: int,
    shard_jobs: int,
    stride: int,
    split_symbols: int,
    split_jobs: int,
    hybrid_symbols: int,
) -> dict:
    spec = get_benchmark("PowerEN")
    automaton = spec.build()
    data = spec.input_stream(length, seed=5)
    golden = GoldenSimulator(automaton)
    artifact = CompiledArtifact.from_mapping(compile_automaton(automaton, CA_P))
    mapped = MappedSimulator(artifact.mapping)
    quarter = len(data) // 4
    streams = [data[i * quarter : (i + 1) * quarter] for i in range(4)]

    golden_rate = median_rate(
        lambda: golden.run(data, collect_reports=False), len(data), rounds
    )
    mapped_rate = median_rate(
        lambda: mapped.run(data, collect_reports=False), len(data), rounds
    )
    many_rate = median_rate(
        lambda: mapped.run_many(streams, collect_reports=False),
        quarter * 4,
        rounds,
    )

    # Lazy-DFA single-stream throughput with a warm transition cache
    # (one untimed pass populates it), plus the process-sharded
    # scan_many aggregate over longer streams — long enough that worker
    # scanning amortises the pool startup.
    lazy = create_backend("lazy-dfa", artifact)
    lazy.scan(data, collect_reports=False)
    lazy_rate = median_rate(
        lambda: lazy.scan(data, collect_reports=False), len(data), rounds
    )
    shard_data = spec.input_stream(shard_symbols, seed=6)
    shard_quarter = len(shard_data) // 4
    shard_streams = [
        shard_data[i * shard_quarter : (i + 1) * shard_quarter]
        for i in range(4)
    ]
    # Warm on the actual shard streams: workers seed from the parent's
    # exported tables, and at stride > 1 a stream's k-byte windows are
    # phase-aligned to its own start — warming the concatenated data
    # would leave every worker re-missing the quarter-phase transitions.
    for stream in shard_streams:
        lazy.scan(stream, collect_reports=False)
    sharded_rate = median_rate(
        lambda: lazy.scan_many(
            shard_streams, collect_reports=False, jobs=shard_jobs
        ),
        shard_quarter * 4,
        rounds,
    )

    # The same two measurements at --stride: k input bytes per cached
    # DFA transition over the compressed class alphabet.  Rates stay in
    # input bytes/sec (len(data), not the k-fold smaller step count).
    lazy_strided = create_backend("lazy-dfa", artifact, stride=stride)
    lazy_strided.scan(data, collect_reports=False)
    strided_rate = median_rate(
        lambda: lazy_strided.scan(data, collect_reports=False),
        len(data),
        rounds,
    )
    for stream in shard_streams:
        lazy_strided.scan(stream, collect_reports=False)
    sharded_strided_rate = median_rate(
        lambda: lazy_strided.scan_many(
            shard_streams, collect_reports=False, jobs=shard_jobs
        ),
        shard_quarter * 4,
        rounds,
    )

    split_entry, split_workers = measure_split(
        artifact, spec, split_symbols, split_jobs, rounds
    )

    return {
        "workload": "PowerEN",
        "input_symbols": length,
        "rounds": rounds,
        "golden_symbols_per_sec": round(golden_rate),
        "mapped_symbols_per_sec": round(mapped_rate),
        "run_many_aggregate_symbols_per_sec": round(many_rate),
        "lazy_dfa_warm_symbols_per_sec": round(lazy_rate),
        "lazy_dfa_strided_warm_symbols_per_sec": round(strided_rate),
        "sharded_scan_many_symbols_per_sec": round(sharded_rate),
        "sharded_strided_scan_many_symbols_per_sec": round(
            sharded_strided_rate
        ),
        "shard_symbols": shard_symbols,
        "shard_jobs": shard_jobs,
        "stride": stride,
        "stride_effective": lazy_strided.cache_info()["stride"],
        "split_scan": split_entry,
        "cache_counters": {
            "kernel": mapped.cache_info(),
            "lazy_dfa": lazy.cache_info(),
            "lazy_dfa_strided": lazy_strided.cache_info(),
            "split_workers": split_workers,
        },
        "backend_matrix_symbols": matrix_length,
        "backends": backend_matrix(artifact, data[:matrix_length], rounds),
        "hybrid": measure_hybrid(hybrid_symbols, rounds),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=8000,
                        help="input-stream symbols (default 8000)")
    parser.add_argument("--rounds", type=int, default=5,
                        help="timed rounds per engine; median wins (default 5)")
    parser.add_argument("--matrix-length", type=int, default=2000,
                        help="input prefix for the per-backend throughput "
                             "matrix (default 2000)")
    parser.add_argument("--shard-symbols", type=int, default=800_000,
                        help="total symbols for the process-sharded "
                             "scan_many measurement (default 800000; "
                             "large so workers amortise pool startup)")
    parser.add_argument("--shard-jobs", type=int, default=2,
                        help="worker processes for the sharded "
                             "measurement (default 2)")
    parser.add_argument("--stride", type=int, default=2,
                        choices=(2, 4),
                        help="k-stride for the strided lazy-DFA "
                             "measurements (default 2)")
    parser.add_argument("--split-symbols", type=int, default=800_000,
                        help="stream length for the split-scan "
                             "measurement (default 800000; one long "
                             "stream split across the worker pool)")
    parser.add_argument("--split-jobs", type=int, default=4,
                        help="max worker count for the split-scan "
                             "measurement; jobs=1/2/this are recorded "
                             "(default 4)")
    parser.add_argument("--hybrid-symbols", type=int, default=20_000,
                        help="input length for the mixed-ruleset hybrid "
                             "measurement (default 20000)")
    parser.add_argument("--label", default="local",
                        help="entry label, e.g. a PR or commit name")
    parser.add_argument("--note", default="",
                        help="free-form note stored with the entry")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="trajectory file (default repo-root BENCH_simulator.json)")
    parser.add_argument("--dry-run", action="store_true",
                        help="measure and print, but do not write the file")
    args = parser.parse_args()
    if args.rounds < 1:
        parser.error("--rounds must be at least 1")
    if args.length < 8:
        parser.error("--length must be at least 8 symbols")
    if not 8 <= args.matrix_length <= args.length:
        parser.error("--matrix-length must be in [8, --length]")
    if args.shard_symbols < 8:
        parser.error("--shard-symbols must be at least 8 symbols")
    if args.shard_jobs < 1:
        parser.error("--shard-jobs must be at least 1")
    if args.split_symbols < 8:
        parser.error("--split-symbols must be at least 8 symbols")
    if args.split_jobs < 1:
        parser.error("--split-jobs must be at least 1")
    if args.hybrid_symbols < 8:
        parser.error("--hybrid-symbols must be at least 8 symbols")

    entry = measure(
        args.length, args.rounds, args.matrix_length,
        args.shard_symbols, args.shard_jobs, args.stride,
        args.split_symbols, args.split_jobs, args.hybrid_symbols,
    )
    entry["label"] = args.label
    entry["date"] = datetime.now(timezone.utc).strftime("%Y-%m-%d")
    if args.note:
        entry["note"] = args.note

    print(json.dumps(entry, indent=2))
    if args.dry_run:
        return 0

    history = []
    if os.path.exists(args.output):
        with open(args.output, "r", encoding="utf-8") as handle:
            history = json.load(handle)
    history.append(entry)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")
    print(f"appended to {args.output} ({len(history)} entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
