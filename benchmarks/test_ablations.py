"""Ablation benches for the compiler's design choices (DESIGN.md):

* greedy whole-CC packing (the paper's algorithm) vs naive one-CC-per-
  partition placement;
* multilevel k-way partitioning (the METIS substitute) vs random
  assignment, on a real benchmark's largest component;
* prefix merging on/off — the CA_P vs CA_S state-count gap itself.
"""

import random

from conftest import show
from repro.automata.components import connected_components
from repro.automata.optimize import space_optimize
from repro.compiler import Compiler, compile_automaton
from repro.core.design import CA_P
from repro.partitioning import PartitionGraph, cut_weight, partition_into_capacity
from repro.workloads.suite import get_benchmark


def test_greedy_packing_vs_naive(benchmark):
    """Packing whole CCs tightly (Section 3.3) vs one CC per partition."""
    automaton = get_benchmark("Dotstar").build()
    components = connected_components(automaton)

    mapping = benchmark(Compiler(CA_P).compile, automaton)
    naive_partitions = len(components)  # one partition per CC

    show(
        "Ablation: CC packing",
        [
            ("Policy", "Partitions", "Cache (KB)"),
            ("greedy whole-CC packing", mapping.partition_count,
             mapping.cache_bytes() // 1024),
            ("one CC per partition", naive_partitions, naive_partitions * 8),
        ],
    )
    # Greedy packing must be dramatically denser.
    assert mapping.partition_count < naive_partitions / 5


def test_multilevel_vs_random_partitioning(benchmark):
    """Cut quality on the largest real component (justifies METIS)."""
    automaton = get_benchmark("TCP").build()
    largest = max(connected_components(automaton), key=len)
    index = {ste_id: i for i, ste_id in enumerate(largest)}
    graph = PartitionGraph([1] * len(largest))
    for ste_id in largest:
        for target in automaton.successors(ste_id):
            if target in index and target != ste_id:
                graph.add_edge(index[ste_id], index[target])

    assignment = benchmark(partition_into_capacity, graph, 256)
    parts = max(assignment) + 1
    good_cut = cut_weight(graph, assignment)

    rng = random.Random(0)
    random_cut = cut_weight(
        graph, [rng.randrange(parts) for _ in range(graph.node_count)]
    )
    show(
        "Ablation: partitioner cut quality (TCP largest CC)",
        [
            ("Policy", "Parts", "Edge cut"),
            ("multilevel k-way", parts, good_cut),
            ("random", parts, random_cut),
        ],
    )
    assert good_cut < random_cut / 3


def test_prefix_merging_state_reduction(benchmark):
    """The CA_S transform itself: states removed by redundancy merging."""
    automaton = get_benchmark("EntityResolution").build()

    optimised = benchmark(space_optimize, automaton)
    show(
        "Ablation: redundancy merging (EntityResolution)",
        [
            ("Variant", "States", "Partitions"),
            ("baseline (CA_P input)", len(automaton),
             compile_automaton(automaton, CA_P).partition_count),
            ("space-optimised (CA_S input)", len(optimised), "-"),
        ],
    )
    assert len(optimised) < len(automaton) / 2
