"""Table 4 — frequency impact of sense-amplifier cycling and of reusing
the slice's H-Bus wires instead of global metal (Section 5.5)."""

import pytest

from conftest import show
from repro.core.design import CA_P, CA_S
from repro.eval.experiments import table4


def test_table4(benchmark):
    rows = benchmark(table4)
    show("Table 4: impact of optimisations and parameters", rows)

    by_name = {row[0]: row for row in rows[1:]}
    # Paper: CA_P 2 GHz -> 1 GHz without SA cycling -> 1.5 GHz with H-Bus.
    assert by_name["CA_P"][1] == 2.0
    assert by_name["CA_P"][2] == pytest.approx(1.0, abs=0.05)
    assert by_name["CA_P"][3] == pytest.approx(1.5, abs=0.15)
    # Paper: CA_S 1.2 GHz -> 500 MHz -> 1 GHz.
    assert by_name["CA_S"][1] == 1.2
    assert by_name["CA_S"][2] == pytest.approx(0.5, abs=0.03)
    assert by_name["CA_S"][3] == pytest.approx(1.0, abs=0.05)


def test_sa_cycling_speedup_bound(benchmark):
    """Section 2.6: the optimised read is ~2x faster at 4-way muxing and
    better at 8-way."""
    from repro.core.timing import state_match_delay_ps

    baseline_4way = benchmark(state_match_delay_ps, 4, sense_amp_cycling=False)
    ratio_4way = baseline_4way / state_match_delay_ps(4)
    ratio_8way = state_match_delay_ps(8, sense_amp_cycling=False) / (
        state_match_delay_ps(8)
    )
    assert 2.0 <= ratio_4way <= 3.0
    assert ratio_8way > ratio_4way


def test_h_bus_still_beats_ap(benchmark):
    """Section 5.5: even on H-Bus wires, CA is 7.5-11x faster than AP."""
    from repro.baselines.ap import ApModel

    ap = ApModel()
    speedup = benchmark(lambda: ap.speedup_of(CA_P.with_h_bus()))
    assert speedup > 7.5
    assert ap.speedup_of(CA_S.with_h_bus()) > 7.0
