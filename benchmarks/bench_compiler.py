#!/usr/bin/env python
"""Record compile-time trajectories into ``BENCH_compiler.json``.

For every suite workload this measures, at a fixed suite scale:

* ``cold_compile_ms`` — best-of-``--rounds`` wall time of a plain
  ``compile_automaton`` call (no cache, no simulator build); the
  methodology used for the pre-optimisation seed entry, so successive
  PRs compare like against like.
* ``cold_engine_ms`` — one :class:`~repro.engine.CacheAutomatonEngine`
  construction against an empty artifact cache: compile, build the
  packed simulator, persist the artifact.
* ``warm_engine_ms`` — best-of-``--rounds`` engine construction once
  the artifact exists: a pure cache hit (mapping + packed kernel tables
  restored, nothing recompiled).

One labelled entry per invocation is appended to the repo-root
``BENCH_compiler.json`` so the compile-time history accumulates across
PRs next to the simulator-throughput history in
``BENCH_simulator.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_compiler.py --label my-change
    PYTHONPATH=src python benchmarks/bench_compiler.py --dry-run
    REPRO_BENCH_SMOKE=1 PYTHONPATH=src python benchmarks/bench_compiler.py --dry-run

``REPRO_BENCH_SMOKE=1`` shrinks the run to a three-workload subset at
scale 1 with a single round — a CI smoke target, not a measurement.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from datetime import datetime, timezone

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.compiler import CompileCache, compile_automaton  # noqa: E402
from repro.core.design import CA_P  # noqa: E402
from repro.engine import CacheAutomatonEngine  # noqa: E402
from repro.workloads.suite import build_suite  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_compiler.json",
)

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SMOKE_WORKLOADS = ("Bro217", "TCP", "Fermi")


def best_of(func, rounds: int) -> float:
    """Best wall time of ``rounds`` calls, in milliseconds."""
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    return min(times) * 1e3


def measure(scale: float, rounds: int, workloads=None) -> dict:
    suite = build_suite(scale)
    if workloads:
        suite = [spec for spec in suite if spec.name in set(workloads)]
    results = {}
    for spec in sorted(suite, key=lambda s: s.name):
        automaton = spec.build()
        cold_compile = best_of(
            lambda: compile_automaton(automaton, CA_P), rounds
        )
        cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
        try:
            cache = CompileCache(cache_dir)
            start = time.perf_counter()
            CacheAutomatonEngine(automaton, cache=cache)
            cold_engine = (time.perf_counter() - start) * 1e3
            warm_engine = best_of(
                lambda: CacheAutomatonEngine(automaton, cache=cache), rounds
            )
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
        results[spec.name] = {
            "states": len(automaton),
            "cold_compile_ms": round(cold_compile, 2),
            "cold_engine_ms": round(cold_engine, 2),
            "warm_engine_ms": round(warm_engine, 2),
            "warm_speedup": round(cold_engine / warm_engine, 1)
            if warm_engine
            else None,
        }
        print(
            f"{spec.name:>16}: {len(automaton):>6} states  "
            f"cold compile {cold_compile:8.2f} ms  "
            f"cold engine {cold_engine:8.2f} ms  "
            f"warm engine {warm_engine:6.2f} ms",
            file=sys.stderr,
        )
    return results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="unlabelled")
    parser.add_argument("--rounds", type=int, default=1 if _SMOKE else 3)
    parser.add_argument("--scale", type=float, default=1.0 if _SMOKE else 6.0)
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--workloads", nargs="*", default=SMOKE_WORKLOADS if _SMOKE else None
    )
    parser.add_argument(
        "--dry-run", action="store_true", help="print but do not append"
    )
    arguments = parser.parse_args()

    entry = {
        "label": arguments.label,
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%d"),
        "scale": arguments.scale,
        "rounds": arguments.rounds,
        "workloads": measure(
            arguments.scale, arguments.rounds, arguments.workloads
        ),
    }
    print(json.dumps(entry, indent=1))
    if arguments.dry_run:
        return 0
    history = []
    if os.path.exists(arguments.output):
        with open(arguments.output, "r", encoding="utf-8") as handle:
            history = json.load(handle)
    history.append(entry)
    with open(arguments.output, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=1)
        handle.write("\n")
    print(f"appended to {arguments.output} ({len(history)} entries)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
