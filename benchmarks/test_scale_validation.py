"""Scale validation: the Table 1 / Figure 8 trends must persist when the
synthetic suite is grown toward the paper's automaton sizes.

Runs three representative benchmarks at ``REPRO_BENCH_SCALE`` (default
2x) and checks the same structural signatures the default-size harness
asserts — evidence that the scaled-down evaluation is not an artefact of
its size."""

import os

from conftest import show
from repro.automata.components import component_stats
from repro.compiler import compile_automaton, compile_space_optimized
from repro.core.design import CA_P, CA_S
from repro.workloads.suite import build_suite

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "2"))
NAMES = ["ExactMatch", "EntityResolution", "SPM"]


def test_trends_persist_at_scale(benchmark):
    def evaluate():
        suite = {b.name: b for b in build_suite(SCALE)}
        rows = [(
            "Benchmark", "P.States", "P.CCs", "S.States", "S.CCs",
            "P (KB)", "S (KB)",
        )]
        for name in NAMES:
            automaton = suite[name].build()
            perf_mapping = compile_automaton(automaton, CA_P)
            space_mapping = compile_space_optimized(automaton, CA_S)
            perf_stats = component_stats(automaton)
            space_stats = component_stats(space_mapping.automaton)
            rows.append((
                name,
                perf_stats.state_count, perf_stats.component_count,
                space_stats.state_count, space_stats.component_count,
                perf_mapping.cache_bytes() // 1024,
                space_mapping.cache_bytes() // 1024,
            ))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    show(f"Scale validation at {SCALE}x", rows)

    by_name = {row[0]: row for row in rows[1:]}
    for name in NAMES:
        _, p_states, p_ccs, s_states, s_ccs, p_kb, s_kb = by_name[name]
        assert s_states <= p_states, name
        assert s_ccs < p_ccs, name
        assert s_kb <= p_kb, name
    # The headline saver still saves big at scale.
    er = by_name["EntityResolution"]
    assert er[6] < er[5] / 2
