"""Figure 10 — the design space: reachability vs symbol-processing
frequency and area overhead, with the AP as the reference point."""

import pytest

from conftest import show
from repro.baselines.ap import ApModel
from repro.core.design import CA_64, CA_P, CA_S
from repro.eval.experiments import fig10


def test_fig10(benchmark):
    rows = benchmark(fig10)
    show("Figure 10: reachability vs frequency and area", rows)

    by_name = {row[0]: row for row in rows[1:]}

    # Frequency falls as reachability rises across the CA design space.
    ca_rows = [by_name["CA_64"], by_name["CA_P"], by_name["CA_S"]]
    reaches = [row[1] for row in ca_rows]
    frequencies = [row[2] for row in ca_rows]
    assert reaches == sorted(reaches)
    assert frequencies == sorted(frequencies, reverse=True)

    # Paper's published corner points.
    assert by_name["CA_64"][1] == 64
    assert by_name["CA_64"][2] == pytest.approx(4.0, abs=0.05)
    assert by_name["CA_P"][1] == pytest.approx(361, rel=0.05)
    assert by_name["CA_S"][1] == pytest.approx(936, rel=0.08)
    assert by_name["AP"][1] == 230.5

    # CA_P strictly dominates the AP: more reach, 15x the frequency,
    # <1/8 the area overhead.
    ap = by_name["AP"]
    ca_p = by_name["CA_P"]
    assert ca_p[1] > ap[1]
    assert ca_p[2] / ap[2] == pytest.approx(15.0, rel=0.01)
    assert ca_p[3] < ap[3] / 8

    # Fan-in: 256 vs the AP's 16 (Section 5.4).
    assert by_name["CA_P"][4] == 256
    assert by_name["AP"][4] == 16


def test_area_under_2_percent_of_die(benchmark):
    """Section 5.4: < 2% of the 354 mm^2 Xeon E5 die."""
    from repro.core.params import XEON_DIE_AREA_MM2

    area = benchmark(CA_P.area_overhead_mm2, 32 * 1024)
    assert area < 0.02 * XEON_DIE_AREA_MM2
    assert CA_S.area_overhead_mm2(32 * 1024) < 0.02 * XEON_DIE_AREA_MM2


def test_reachability_frequency_product(benchmark):
    """Both CA points beat the AP on the reach x frequency product — the
    scalability argument of Section 5.4."""
    ap = ApModel()
    ap_product = benchmark(lambda: ap.reachability * ap.frequency_ghz)
    for design in (CA_64, CA_P, CA_S):
        assert design.reachability * design.frequency_ghz > ap_product
