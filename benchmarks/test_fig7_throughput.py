"""Figure 7 — throughput in Gb/s vs Micron's AP across all 20 benchmarks,
plus the simulated symbols/second of the functional simulator itself."""

import pytest

from conftest import INPUT_LENGTH, show
from repro.baselines.ap import ApModel, CpuReferenceModel
from repro.compiler import compile_automaton
from repro.core.design import CA_P
from repro.eval.experiments import fig7
from repro.sim.functional import MappedSimulator
from repro.workloads.suite import get_benchmark


def test_fig7(suite_evaluations, benchmark):
    rows = fig7(suite_evaluations)
    show("Figure 7: throughput vs Micron's AP (Gb/s)", rows)

    ap = ApModel()
    cpu = CpuReferenceModel()
    for row in rows[1:]:
        name, ap_gbps, ca_s_gbps, ca_p_gbps = row[0], row[1], row[2], row[3]
        # Deterministic line rate: identical for every benchmark.
        assert ca_p_gbps == 16.0
        assert ca_s_gbps == pytest.approx(9.6)
        assert ap_gbps == pytest.approx(1.064)
    assert ap.speedup_of(CA_P) == pytest.approx(15.0, rel=0.01)
    assert cpu.speedup_of(CA_P) == pytest.approx(3840, rel=0.01)

    # Kernel timed: the mapped functional simulator's symbol rate on a
    # mid-sized benchmark (what bounds how long the evaluation takes).
    bro = get_benchmark("Bro217")
    simulator = MappedSimulator(compile_automaton(bro.build(), CA_P))
    data = bro.input_stream(INPUT_LENGTH, seed=2)

    result = benchmark(simulator.run, data, collect_reports=False)
    assert result.profile.symbols == INPUT_LENGTH
