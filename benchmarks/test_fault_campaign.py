"""Fault-campaign throughput and outcome invariants.

Times a seeded single-fault campaign over a suite workload and asserts
the outcome structure the fault model guarantees: every trial lands in
exactly one of masked/detected/SDC, match-array flips are fully covered
by the per-column parity check, and the same seed reproduces the same
table bit-for-bit (the property CI leans on).
"""

from conftest import show
from repro.eval.faults import run_campaign
from repro.workloads.inputs import LOWERCASE, random_over_alphabet
from repro.workloads.suite import build_suite


def _workload():
    suite = {b.name: b for b in build_suite(0.05)}
    return suite["Ranges05"].build()


def test_fault_campaign(benchmark):
    automaton = _workload()
    data = random_over_alphabet(2048, LOWERCASE, seed=7)
    result = benchmark.pedantic(
        run_campaign,
        args=(automaton, data),
        kwargs={"trials": 24, "seed": 7},
        rounds=1,
        iterations=1,
    )
    show(
        "Fault campaign: Ranges05 (scale 0.05), 24 trials, seed 7",
        result.table_rows(),
    )

    totals = result.totals()
    assert sum(totals.values()) == 24
    match_row = next(row for row in result.rows if row.site == "match")
    assert match_row.detected == match_row.trials
    rerun = run_campaign(automaton, data, trials=24, seed=7)
    assert rerun == result
