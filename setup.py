"""Setup shim for environments whose pip/setuptools lack PEP 660 editable
wheel support (offline boxes without the `wheel` package); configuration
lives in pyproject.toml."""
from setuptools import setup

setup()
