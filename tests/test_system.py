"""Tests for the system-integration models (Sections 2.8-2.10, 2.9)."""

import pytest

from repro.compiler import compile_automaton, generate
from repro.core.design import CA_P, CA_S
from repro.core.system import (
    CACHE_BLOCK_BYTES,
    ConfigurationModel,
    InputFifoModel,
    ScanDescriptor,
    WayAllocation,
    end_to_end_ms,
    scan_time_ms,
)
from repro.errors import HardwareModelError, SimulationError
from repro.regex.compile import compile_patterns
from tests.conftest import chain_automaton


@pytest.fixture(scope="module")
def small_bitstream():
    machine = compile_patterns(["abc", "defg", "hij"])
    return generate(compile_automaton(machine, CA_P))


@pytest.fixture(scope="module")
def large_bitstream():
    automaton = chain_automaton(900, extra_edges=100, seed=30)
    return generate(compile_automaton(automaton, CA_P))


class TestInputFifo:
    def test_refill_count(self):
        fifo = InputFifoModel()
        assert fifo.refills_for(0) == 0
        assert fifo.refills_for(1) == 1
        assert fifo.refills_for(CACHE_BLOCK_BYTES) == 1
        assert fifo.refills_for(CACHE_BLOCK_BYTES + 1) == 2
        assert fifo.refills_for(10 * 1024 * 1024) == 10 * 1024 * 1024 // 64

    def test_no_underruns(self):
        assert InputFifoModel().underruns(1_000_000) == 0

    def test_block_must_fit(self):
        with pytest.raises(HardwareModelError):
            InputFifoModel(entries=32, block_bytes=64)

    def test_negative_input(self):
        with pytest.raises(SimulationError):
            InputFifoModel().refills_for(-1)


class TestScanDescriptor:
    def test_fields(self):
        descriptor = ScanDescriptor(0x1000, 640, 0x8000)
        assert descriptor.input_cache_blocks() == 10

    def test_validation(self):
        with pytest.raises(HardwareModelError):
            ScanDescriptor(0x1000, 0, 0x8000)
        with pytest.raises(HardwareModelError):
            ScanDescriptor(-1, 10, 0)


class TestConfiguration:
    def test_size_matches_bitstream(self, small_bitstream):
        model = ConfigurationModel()
        assert model.configuration_bytes(small_bitstream) == (
            small_bitstream.configuration_bits() + 7
        ) // 8

    def test_latency_scale(self, large_bitstream):
        """A few-partition NFA configures in well under a millisecond;
        the paper's largest benchmark took ~0.2 ms."""
        latency = ConfigurationModel().configuration_ms(large_bitstream)
        assert 0 < latency < 1.0

    def test_faster_than_ap(self, large_bitstream):
        from repro.core.params import AP

        assert ConfigurationModel().configuration_ms(large_bitstream) < (
            AP.configuration_ms / 10
        )

    def test_overlapped_configuration(self, small_bitstream):
        model = ConfigurationModel()
        serial = 4 * model.configuration_ms(small_bitstream)
        overlapped = model.overlapped_configuration_ms(
            [small_bitstream] * 4, slices=4
        )
        assert overlapped == pytest.approx(serial / 4)
        assert model.overlapped_configuration_ms([], slices=4) == 0.0
        with pytest.raises(HardwareModelError):
            model.overlapped_configuration_ms([small_bitstream], slices=0)


class TestWayAllocation:
    def test_data_capacity_ca_p(self):
        """CA_P leaves Array_H of NFA ways for data: 8 NFA ways of 20
        still leave 60% + 20% = 80% of the slice for caching."""
        allocation = WayAllocation(CA_P, 8)
        assert allocation.data_ways == 12
        assert allocation.data_capacity_fraction == pytest.approx(0.8)

    def test_data_capacity_ca_s(self):
        allocation = WayAllocation(CA_S, 8)
        assert allocation.data_capacity_fraction == pytest.approx(0.6)

    def test_state_capacity(self):
        assert WayAllocation(CA_P, 8).nfa_state_capacity() == 16 * 1024
        assert WayAllocation(CA_S, 8).nfa_state_capacity(slices=8) == 256 * 1024

    def test_bounds(self):
        with pytest.raises(HardwareModelError):
            WayAllocation(CA_P, 0)
        with pytest.raises(HardwareModelError):
            WayAllocation(CA_P, 21)

    def test_peak_power_hint(self):
        machine = compile_patterns(["abc"])
        mapping = compile_automaton(machine, CA_P)
        hint = WayAllocation(CA_P, 8).peak_power_hint_watts(mapping)
        assert 0 < hint < 1  # one partition: well under a watt


class TestLatency:
    def test_scan_time(self):
        # 2e9 symbols at 2 GHz = 1 s = 1000 ms.
        assert scan_time_ms(CA_P, 2_000_000_000) == pytest.approx(1000.0)
        with pytest.raises(SimulationError):
            scan_time_ms(CA_P, -5)

    def test_end_to_end_dominated_by_streaming(self, small_bitstream):
        """For GB-scale streams, configuration is noise (Section 2.10)."""
        total = end_to_end_ms(CA_P, small_bitstream, 1_000_000_000)
        streaming = scan_time_ms(CA_P, 1_000_000_000)
        assert total / streaming < 1.001
