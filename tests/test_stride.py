"""k-stride alphabet derivation: classes, folds, degrade, agreement.

The backend-level differential coverage lives in
``tests/test_backends.py::TestStride``; this module unit-tests the
:mod:`repro.automata.stride` transform itself — canonical class
numbering, the base-C fold and its inverse, the class-budget degrade
policy, and the kernel/automaton partition agreement that lets the
engine derive the alphabet before compiling.
"""

import numpy as np
import pytest

from repro.automata.anml import HomogeneousAutomaton, StartKind
from repro.automata.charclass import parse_symbol_set
from repro.automata.stride import (
    STRIDE_CLASS_LIMIT,
    StrideAlphabet,
)
from repro.automata.symbols import (
    equivalence_classes,
    partition_byte_columns,
)
from repro.backends.artifact import CompiledArtifact
from repro.compiler import compile_automaton
from repro.core.design import CA_P
from repro.errors import StrideError
from repro.regex.compile import compile_patterns
from repro.sim.functional import MappedSimulator

PATTERNS = ["bat", "c[ao]t", "dog+", "bar[t]?"]


@pytest.fixture(scope="module")
def automaton():
    return compile_patterns(PATTERNS, report_codes=PATTERNS)


class TestEquivalenceClasses:
    def test_canonical_numbering_is_first_occurrence(self):
        # 'a' and 'b' are interchangeable (same membership in every
        # set); 'c' is distinct; everything else forms the complement
        # class.  Numbering follows smallest member: class of 'a'/'b'
        # gets the id of whichever byte appears first in 0..255.
        sets = [parse_symbol_set("[ab]"), parse_symbol_set("[abc]")]
        class_of, representatives = equivalence_classes(sets)
        assert class_of[ord("a")] == class_of[ord("b")]
        assert class_of[ord("a")] != class_of[ord("c")]
        assert class_of[0] == 0  # byte 0 seen first -> class 0
        assert representatives[class_of[ord("a")]] == ord("a")
        assert representatives[class_of[ord("c")]] == ord("c")
        assert representatives.size == 3
        # Representatives are the smallest member of each class, listed
        # in class order — i.e. strictly increasing.
        assert list(representatives) == sorted(representatives)

    def test_kernel_and_automaton_partitions_agree(self, automaton):
        artifact = CompiledArtifact.from_mapping(
            compile_automaton(automaton, CA_P)
        )
        kernel = MappedSimulator(artifact.mapping).kernel
        from_kernel = partition_byte_columns(
            np.asarray(kernel.match_matrix)
        )
        from_sets = equivalence_classes(
            ste.symbols for ste in automaton.stes()
        )
        assert np.array_equal(from_kernel[0], from_sets[0])
        assert np.array_equal(from_kernel[1], from_sets[1])


class TestStrideAlphabet:
    def test_fold_and_representatives_round_trip(self, automaton):
        alphabet = StrideAlphabet.from_automaton(automaton, 2)
        window = np.frombuffer(b"ba", dtype=np.uint8)
        (sclass,) = alphabet.stride_classes(window)
        rep = alphabet.representative_bytes(int(sclass))
        assert len(rep) == 2
        # The representative window folds back to the same class.
        assert alphabet.stride_classes(
            np.frombuffer(rep, dtype=np.uint8)
        )[0] == sclass

    def test_every_window_in_a_class_shares_the_representative(
        self, automaton
    ):
        alphabet = StrideAlphabet.from_automaton(automaton, 2)
        data = np.frombuffer(b"batcatdogt", dtype=np.uint8)
        for sclass in alphabet.stride_classes(data):
            rep = np.frombuffer(
                alphabet.representative_bytes(int(sclass)), dtype=np.uint8
            )
            assert np.array_equal(
                alphabet.byte_class[rep],
                [
                    int(sclass) // alphabet.n_byte_classes,
                    int(sclass) % alphabet.n_byte_classes,
                ],
            )

    def test_rejects_non_multiple_length(self, automaton):
        alphabet = StrideAlphabet.from_automaton(automaton, 2)
        with pytest.raises(StrideError, match="multiple of stride"):
            alphabet.stride_classes(np.zeros(5, dtype=np.uint8))

    def test_rejects_out_of_range_class(self, automaton):
        alphabet = StrideAlphabet.from_automaton(automaton, 2)
        with pytest.raises(StrideError, match="out of range"):
            alphabet.representative_bytes(alphabet.n_stride_classes)

    def test_degrades_when_class_budget_exceeded(self, automaton):
        # With a limit below C**2 the transform falls back to k=1
        # instead of materialising the table.
        full = StrideAlphabet.from_automaton(automaton, 2)
        limit = full.n_byte_classes**2 - 1
        degraded = StrideAlphabet.from_automaton(automaton, 2, limit=limit)
        assert degraded.stride == 1
        # k=4 with a budget that only fits C**2 degrades to k=2.
        partial = StrideAlphabet.from_automaton(
            automaton, 4, limit=full.n_byte_classes**2
        )
        assert partial.stride == 2

    def test_default_budget_fits_small_rulesets(self, automaton):
        alphabet = StrideAlphabet.from_automaton(automaton, 2)
        assert alphabet.stride == 2
        assert alphabet.n_stride_classes <= STRIDE_CLASS_LIMIT

    def test_tables_round_trip(self, automaton):
        alphabet = StrideAlphabet.from_automaton(automaton, 2)
        rebuilt = StrideAlphabet.from_tables(alphabet.tables())
        assert rebuilt.stride == alphabet.stride
        assert np.array_equal(rebuilt.byte_class, alphabet.byte_class)
        assert np.array_equal(
            rebuilt.representatives, alphabet.representatives
        )

    def test_single_class_automaton(self):
        # A dot-star style STE whose symbol set covers every byte
        # collapses the alphabet to one class — C**k == 1.
        machine = HomogeneousAutomaton()
        machine.add_ste(
            "q0",
            parse_symbol_set("*"),
            start=StartKind.ALL_INPUT,
            reporting=True,
        )
        alphabet = StrideAlphabet.from_automaton(machine, 2)
        assert alphabet.n_byte_classes == 1
        assert alphabet.n_stride_classes == 1
        assert alphabet.representative_bytes(0) == b"\x00\x00"
