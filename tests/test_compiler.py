"""Tests for the Cache Automaton compiler: packing, splitting, placement,
constraints, and capacity errors."""

from dataclasses import replace

import pytest

from repro.compiler import (
    Compiler,
    analyse,
    check,
    compile_automaton,
    compile_space_optimized,
)
from repro.core.design import CA_P, CA_S
from repro.core.geometry import SliceGeometry
from repro.errors import CapacityError, ConnectivityError
from repro.regex.compile import compile_patterns
from tests.conftest import chain_automaton

#: Small geometry: 4 partitions/way (full) or 2 (half) — forces multi-way
#: placement at test-friendly sizes.
TINY = SliceGeometry(slice_kb=640, ways=20, subarrays_per_way=2)
TINY_CA_P = replace(CA_P, geometry=TINY, name="CA_P_tiny")
TINY_CA_S = replace(CA_S, geometry=TINY, name="CA_S_tiny")


class TestGreedyPacking:
    def test_small_ccs_share_partitions(self, figure1_automaton):
        mapping = compile_automaton(figure1_automaton, CA_P)
        # 27 states across 9 CCs fit in one 256-STE partition.
        assert mapping.partition_count == 1
        assert mapping.classify_edges() == {
            "local": figure1_automaton.edge_count(), "g1": 0, "g4": 0
        }

    def test_packing_fills_partitions(self):
        machine = compile_patterns(
            [f"pattern{i:03d}x" for i in range(60)]
        )  # 60 CCs x 11 states = 660 states -> 3 partitions
        mapping = compile_automaton(machine, CA_P)
        assert mapping.partition_count == 3
        assert mapping.occupancy_fraction() > 0.8

    def test_no_cc_is_split_when_it_fits(self):
        machine = compile_patterns(["abcdef", "ghijkl"])
        mapping = compile_automaton(machine, CA_P)
        partitions_of = {
            mapping.partition_of(ste.ste_id) for ste in machine.stes()
        }
        assert len(partitions_of) == 1

    def test_location_consistency(self, figure1_automaton):
        mapping = compile_automaton(figure1_automaton, CA_P)
        for partition in mapping.partitions:
            for slot, ste_id in enumerate(partition.ste_ids):
                assert mapping.location[ste_id] == (partition.index, slot)
                assert partition.slot_of(ste_id) == slot


class TestSplitting:
    def test_oversized_cc_split_within_way(self):
        automaton = chain_automaton(600, extra_edges=400, seed=1)
        mapping = compile_automaton(automaton, CA_P)
        assert mapping.partition_count >= 3
        ways = {partition.way for partition in mapping.partitions}
        assert len(ways) == 1  # CA_P: split CCs stay within a way
        report = analyse(mapping)
        assert report.max_out_g1 <= 16
        assert report.max_in_g1 <= 16
        assert report.max_out_g4 == 0

    def test_balanced_split(self):
        automaton = chain_automaton(700, seed=2)
        mapping = compile_automaton(automaton, CA_P)
        occupancies = [p.occupancy for p in mapping.partitions]
        assert max(occupancies) <= 256
        assert min(occupancies) >= 256 * 0.5

    def test_cross_way_split_uses_g4(self):
        automaton = chain_automaton(1500, extra_edges=300, seed=3)
        mapping = compile_automaton(automaton, TINY_CA_S)
        ways = {partition.way for partition in mapping.partitions}
        assert len(ways) > 1
        kinds = mapping.classify_edges()
        assert kinds["g4"] > 0

    def test_ca_p_rejects_multi_way_cc(self):
        """A CC too big for one way cannot map on CA_P (no cross-way wires)."""
        automaton = chain_automaton(600, seed=4)
        with pytest.raises(CapacityError):
            compile_automaton(automaton, TINY_CA_P)  # 2 partitions/way only

    def test_domain_capacity_enforced(self):
        automaton = chain_automaton(5000, seed=5)
        # TINY CA_S: 4 partitions/way, domain = 16 partitions = 4096 states.
        with pytest.raises(CapacityError):
            compile_automaton(automaton, TINY_CA_S)

    def test_total_capacity_enforced(self):
        automaton = chain_automaton(300, seed=6)
        with pytest.raises(CapacityError):
            Compiler(TINY_CA_P, max_slices=0).compile(automaton)


class TestPlacement:
    def test_split_group_starts_at_way_boundary(self):
        small = compile_patterns(["abc", "def"])
        big = chain_automaton(1200, extra_edges=100, seed=7, automaton_id="big")
        from repro.automata.anml import merge

        combined = merge([big, small])
        mapping = compile_automaton(combined, TINY_CA_S)
        # The big CC's partitions occupy consecutive slots in one or two
        # adjacent ways inside one G4 domain.
        big_partitions = sorted(
            {mapping.partition_of(f"m0_{i}") for i in range(1200)}
        )
        ways = sorted({mapping.partitions[p].way for p in big_partitions})
        assert ways == list(range(ways[0], ways[-1] + 1))
        assert ways[-1] // 4 == ways[0] // 4  # single G4 domain

    def test_ways_non_decreasing(self):
        automaton = chain_automaton(900, extra_edges=100, seed=8)
        mapping = compile_automaton(automaton, TINY_CA_S)
        ways = [partition.way for partition in mapping.partitions]
        assert ways == sorted(ways)


class TestMappingMetrics:
    def test_cache_bytes(self, figure1_automaton):
        mapping = compile_automaton(figure1_automaton, CA_P)
        assert mapping.cache_bytes() == 8192  # one partition = 8 KB
        assert mapping.cache_megabytes() == pytest.approx(8192 / 2**20)

    def test_repr(self, figure1_automaton):
        mapping = compile_automaton(figure1_automaton, CA_P)
        assert "CA_P" in repr(mapping)

    def test_edge_kind(self, figure1_automaton):
        mapping = compile_automaton(figure1_automaton, CA_P)
        source, target = next(iter(figure1_automaton.edges()))
        assert mapping.edge_kind(source, target) == "local"


class TestConstraints:
    def test_clean_mapping_passes(self, figure1_automaton):
        report = check(compile_automaton(figure1_automaton, CA_P))
        assert report.satisfied
        assert report.violations() == []

    def test_violation_detected(self):
        """A globally random dense CC has no 16-wire cut: must be rejected."""
        automaton = chain_automaton(
            600, extra_edges=900, locality=600, seed=10, automaton_id="dense"
        )
        with pytest.raises(ConnectivityError):
            compile_automaton(automaton, CA_P)

    def test_analyse_counts_distinct_sources(self):
        """One source with many cross-partition targets uses ONE wire."""
        automaton = chain_automaton(300, seed=9, automaton_id="fanout")
        # Give one state many extra out-edges to the far end.
        for offset in range(10):
            automaton.add_edge("s0", f"s{280 + offset}")
        mapping = compile_automaton(automaton, CA_P)
        report = analyse(mapping)
        # s0's signal crosses once no matter how many targets.
        usage = report.usage[mapping.partition_of("s0")]
        if mapping.partition_of("s0") != mapping.partition_of("s285"):
            assert "s0" in usage.out_g1
            assert len([s for s in usage.out_g1 if s == "s0"]) == 1


class TestSpaceOptimizedFallback:
    def test_routable_automaton_gets_fully_merged(self):
        machine = compile_patterns(["prefix_aaa", "prefix_bbb", "prefix_ccc"])
        mapping = compile_space_optimized(machine, CA_S)
        assert len(mapping.automaton) < len(machine)

    def test_merge_hostile_automaton_falls_back(self):
        """The merged Levenshtein lattice is unroutable; the fallback must
        still produce a valid mapping (paper: no CA_S benefit for it)."""
        from repro.workloads.suite import get_benchmark

        automaton = get_benchmark("Levenshtein").build()
        mapping = compile_space_optimized(automaton, CA_S)
        check(mapping)
