"""Tests for the exact report-equivalence checker."""

import pytest

from repro.automata.equivalence import distinguishing_input, report_equivalent
from repro.automata.optimize import space_optimize
from repro.regex.compile import compile_pattern, compile_patterns
from repro.sim.golden import match_offsets


class TestEquivalent:
    def test_identical_machines(self):
        a = compile_patterns(["abc", "xyz"])
        b = compile_patterns(["abc", "xyz"])
        assert report_equivalent(a, b)

    def test_syntactic_variants(self):
        assert report_equivalent(
            compile_pattern("a(b|c)d"), compile_pattern("abd|acd")
        )
        assert report_equivalent(
            compile_pattern("aa*"), compile_pattern("a+")
        )
        assert report_equivalent(
            compile_pattern("x{2,3}"), compile_pattern("xx|xxx")
        )

    def test_space_optimize_certified(self):
        machine = compile_patterns(["art", "artisan", "artefact"])
        assert report_equivalent(machine, space_optimize(machine))

    def test_different_languages(self):
        assert not report_equivalent(
            compile_pattern("abc"), compile_pattern("abd")
        )

    def test_anchoring_matters(self):
        assert not report_equivalent(
            compile_pattern("^ab"), compile_pattern("ab")
        )


class TestWitness:
    def test_none_for_equivalent(self):
        assert distinguishing_input(
            compile_pattern("ab"), compile_pattern("ab")
        ) is None

    def test_witness_actually_distinguishes(self):
        a = compile_pattern("ab")
        b = compile_pattern("a[bc]")
        witness = distinguishing_input(a, b)
        assert witness is not None
        assert match_offsets(a, witness) != match_offsets(b, witness)

    def test_witness_is_shortest(self):
        a = compile_pattern("aaab")
        b = compile_pattern("aaac")
        witness = distinguishing_input(a, b)
        assert len(witness) == 4

    def test_prefix_difference(self):
        a = compile_pattern("x")
        b = compile_pattern("y")
        witness = distinguishing_input(a, b)
        assert len(witness) == 1
        assert witness in (b"x", b"y")


class TestBenchmarksCertified:
    @pytest.mark.parametrize("name", ["Bro217", "ExactMatch"])
    def test_space_variant_equivalent(self, name):
        """The exact checker certifies the CA_S transform on suite
        benchmarks small enough to determinise."""
        from repro.workloads.suite import get_benchmark

        automaton = get_benchmark(name).build()
        optimised = space_optimize(automaton)
        assert report_equivalent(automaton, optimised, max_states=150_000)
