"""Tests for suspend/resume (Section 2.9): splitting a stream at any point
and resuming from the checkpoint must reproduce one long run exactly."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import create_backend
from repro.backends.artifact import CompiledArtifact
from repro.compiler import compile_automaton
from repro.core.design import CA_P
from repro.regex.compile import compile_patterns
from repro.sim.functional import MappedSimulator
from repro.sim.golden import Checkpoint, GoldenSimulator


def reports_of(result):
    return [(r.offset, r.ste_id) for r in result.reports]


@pytest.fixture(scope="module")
def machine():
    return compile_patterns(["needle", "na[gn]a+", "^anchor", "spl", "it"])


@pytest.fixture(scope="module")
def stream():
    rng = random.Random(77)
    background = bytearray(
        rng.choice(b"abceghilnoprst ") for _ in range(3000)
    )
    background[100:106] = b"needle"
    background[1500:1506] = b"needle"
    background[0:6] = b"anchor"
    background[2000:2005] = b"split"
    return bytes(background)


class TestGoldenResume:
    @pytest.mark.parametrize("split", [0, 1, 5, 99, 103, 1502, 2999, 3000])
    def test_split_equals_full_run(self, machine, stream, split):
        simulator = GoldenSimulator(machine)
        full = simulator.run(stream)
        first = simulator.run(stream[:split])
        second = simulator.run(stream[split:], resume=first.checkpoint)
        assert reports_of(first) + reports_of(second) == reports_of(full)

    def test_checkpoint_fields(self, machine, stream):
        simulator = GoldenSimulator(machine)
        result = simulator.run(stream[:10])
        assert result.checkpoint.symbols_processed == 10
        assert not result.checkpoint.start_of_data_pending

    def test_sod_pending_before_first_symbol(self, machine):
        simulator = GoldenSimulator(machine)
        result = simulator.run(b"")
        assert result.checkpoint.start_of_data_pending
        resumed = simulator.run(b"anchor", resume=result.checkpoint)
        assert any(r.offset == 5 for r in resumed.reports)

    def test_sod_not_rearmed_after_resume(self, machine):
        """'^anchor' must not fire when the stream resumes mid-way."""
        simulator = GoldenSimulator(machine)
        first = simulator.run(b"xy")
        resumed = simulator.run(b"anchor", resume=first.checkpoint)
        assert not any(r.ste_id.startswith("m2_") for r in resumed.reports)

    def test_many_random_splits(self, machine, stream):
        simulator = GoldenSimulator(machine)
        full = reports_of(simulator.run(stream))
        rng = random.Random(3)
        for _ in range(10):
            a, b = sorted(rng.sample(range(len(stream)), 2))
            r1 = simulator.run(stream[:a])
            r2 = simulator.run(stream[a:b], resume=r1.checkpoint)
            r3 = simulator.run(stream[b:], resume=r2.checkpoint)
            assert reports_of(r1) + reports_of(r2) + reports_of(r3) == full


class TestMappedResume:
    def test_split_equals_full_run(self, machine, stream):
        simulator = MappedSimulator(compile_automaton(machine, CA_P))
        full = simulator.run(stream)
        for split in (0, 101, 1503, len(stream)):
            first = simulator.run(stream[:split])
            second = simulator.run(stream[split:], resume=first.checkpoint)
            assert reports_of(first) + reports_of(second) == reports_of(full)

    def test_mapped_checkpoint_matches_golden_semantics(self, machine, stream):
        golden = GoldenSimulator(machine)
        mapped = MappedSimulator(compile_automaton(machine, CA_P))
        golden_split = golden.run(stream[:500])
        mapped_split = mapped.run(stream[:500])
        golden_rest = golden.run(stream[500:], resume=golden_split.checkpoint)
        mapped_rest = mapped.run(stream[500:], resume=mapped_split.checkpoint)
        assert sorted(reports_of(golden_rest)) == sorted(reports_of(mapped_rest))

    def test_activity_profile_split_merges(self, machine, stream):
        """Profiles of split runs merge to the full run's profile."""
        simulator = MappedSimulator(compile_automaton(machine, CA_P))
        full = simulator.run(stream, collect_reports=False)
        first = simulator.run(stream[:1000], collect_reports=False)
        second = simulator.run(
            stream[1000:], collect_reports=False, resume=first.checkpoint
        )
        merged = first.profile.merged_with(second.profile)
        assert merged.symbols == full.profile.symbols
        assert merged.partition_activations == full.profile.partition_activations
        assert merged.g1_crossings == full.profile.g1_crossings


class TestSplitScanResume:
    """Checkpoints and split-stream scanning compose both ways: a split
    scan yields the same checkpoint as serial, and resuming a serial
    checkpoint with a split backend (or vice versa) reproduces the one
    long run — even when the suspension point falls exactly on what
    would have been a chunk boundary."""

    @pytest.fixture(scope="class")
    def artifact(self, machine):
        return CompiledArtifact.from_mapping(compile_automaton(machine, CA_P))

    def _split_backend(self, artifact, jobs=3):
        return create_backend(
            "lazy-dfa", artifact, split_jobs=jobs, split_min_chunk=8
        )

    def test_split_checkpoint_equals_serial(self, artifact, stream):
        serial = create_backend("lazy-dfa", artifact).scan(stream)
        split = self._split_backend(artifact).scan(stream)
        assert split.checkpoint == serial.checkpoint
        assert reports_of(split) == reports_of(serial)

    @pytest.mark.parametrize("cut", [0, 1, 5, 1000, 1500, 2999, 3000])
    def test_resume_across_backends(self, artifact, stream, cut):
        serial = create_backend("lazy-dfa", artifact)
        full = reports_of(serial.scan(stream))
        # Split head, serial tail.
        head = self._split_backend(artifact).scan(stream[:cut])
        tail = serial.scan(stream[cut:], resume=head.checkpoint)
        assert reports_of(head) + reports_of(tail) == full
        # Serial head, split tail.
        head = serial.scan(stream[:cut])
        tail = self._split_backend(artifact).scan(
            stream[cut:], resume=head.checkpoint
        )
        assert reports_of(head) + reports_of(tail) == full

    def test_suspend_on_chunk_boundary(self, artifact, stream):
        """Cut the stream exactly where a 3-way split of the full run
        placed its internal chunk boundaries (len/3, 2*len/3)."""
        serial = create_backend("lazy-dfa", artifact)
        full = reports_of(serial.scan(stream))
        for cut in (len(stream) // 3, 2 * len(stream) // 3):
            head = self._split_backend(artifact).scan(stream[:cut])
            tail = self._split_backend(artifact).scan(
                stream[cut:], resume=head.checkpoint
            )
            assert reports_of(head) + reports_of(tail) == full

    def test_sod_not_rearmed_through_split_resume(self, artifact):
        """'^anchor' must not fire after a split-scan suspension."""
        backend = self._split_backend(artifact)
        first = backend.scan(b"xy" * 16)
        resumed = backend.scan(b"anchor" * 8, resume=first.checkpoint)
        assert not any(r.ste_id.startswith("m2_") for r in resumed.reports)


class TestCheckpointProperties:
    @given(
        st.text(alphabet="ans", max_size=40),
        st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_any_split_any_input(self, text, split):
        machine = compile_patterns(["na", "ans", "s"])
        simulator = GoldenSimulator(machine)
        data = text.encode()
        split = min(split, len(data))
        full = reports_of(simulator.run(data))
        first = simulator.run(data[:split])
        second = simulator.run(data[split:], resume=first.checkpoint)
        assert reports_of(first) + reports_of(second) == full

    def test_checkpoint_is_frozen(self):
        checkpoint = Checkpoint(0, 0, True)
        with pytest.raises(AttributeError):
            checkpoint.symbols_processed = 5
