"""Direct tests for the regex AST helpers."""

import pytest

from repro.automata.symbols import SymbolSet
from repro.errors import RegexSyntaxError
from repro.regex.ast import (
    MAX_REPEAT_EXPANSION,
    Alternation,
    Concat,
    Empty,
    Literal,
    Pattern,
    Star,
    alternate_all,
    concat_all,
    count_positions,
    desugar_repeat,
    nullable,
)


def lit(character: str) -> Literal:
    return Literal(SymbolSet.single(character))


class TestCombinators:
    def test_concat_all_empty_list(self):
        assert isinstance(concat_all([]), Empty)

    def test_concat_all_skips_empties(self):
        node = concat_all([Empty(), lit("a"), Empty(), lit("b")])
        assert count_positions(node) == 2
        assert not nullable(node)

    def test_concat_all_single(self):
        assert concat_all([lit("a")]) == lit("a")

    def test_alternate_all_empty(self):
        assert isinstance(alternate_all([]), Empty)

    def test_alternate_all_single(self):
        assert alternate_all([lit("x")]) == lit("x")

    def test_alternate_all_many(self):
        node = alternate_all([lit("a"), lit("b"), lit("c")])
        assert count_positions(node) == 3
        assert isinstance(node, Alternation)


class TestNullable:
    def test_base_cases(self):
        assert nullable(Empty())
        assert not nullable(lit("a"))
        assert nullable(Star(lit("a")))

    def test_concat(self):
        assert nullable(Concat(Star(lit("a")), Star(lit("b"))))
        assert not nullable(Concat(lit("a"), Star(lit("b"))))

    def test_alternation(self):
        assert nullable(Alternation(lit("a"), Empty()))
        assert not nullable(Alternation(lit("a"), lit("b")))

    def test_unknown_node_rejected(self):
        class Bogus:
            pass

        with pytest.raises(TypeError):
            nullable(Bogus())


class TestCountPositions:
    def test_nested(self):
        node = Concat(
            Alternation(lit("a"), Concat(lit("b"), lit("c"))), Star(lit("d"))
        )
        assert count_positions(node) == 4

    def test_empty(self):
        assert count_positions(Empty()) == 0


class TestDesugarRepeat:
    def test_star_equivalent(self):
        assert isinstance(desugar_repeat(lit("a"), 0, None), Star)

    def test_plus_shape(self):
        node = desugar_repeat(lit("a"), 1, None)
        assert isinstance(node, Concat)
        assert isinstance(node.right, Star)

    def test_positions_equal_maximum(self):
        for minimum, maximum in [(0, 3), (2, 2), (1, 5)]:
            node = desugar_repeat(lit("x"), minimum, maximum)
            assert count_positions(node) == maximum

    def test_nullable_iff_min_zero(self):
        assert nullable(desugar_repeat(lit("x"), 0, 4))
        assert not nullable(desugar_repeat(lit("x"), 1, 4))

    def test_expansion_cap(self):
        with pytest.raises(RegexSyntaxError):
            desugar_repeat(lit("x"), 0, MAX_REPEAT_EXPANSION + 1)
        with pytest.raises(RegexSyntaxError):
            desugar_repeat(lit("x"), MAX_REPEAT_EXPANSION + 1, None)

    def test_bad_bounds(self):
        with pytest.raises(RegexSyntaxError):
            desugar_repeat(lit("x"), 3, 2)
        with pytest.raises(RegexSyntaxError):
            desugar_repeat(lit("x"), -1, None)

    def test_zero_zero_is_empty(self):
        assert nullable(desugar_repeat(lit("x"), 0, 0))
        assert count_positions(desugar_repeat(lit("x"), 0, 0)) == 0


class TestPattern:
    def test_fields(self):
        pattern = Pattern(lit("a"), anchored_start=True, source="^a")
        assert pattern.anchored_start
        assert not pattern.anchored_end
        assert pattern.position_count() == 1

    def test_str_rendering(self):
        node = Concat(lit("a"), Star(lit("b")))
        assert "a" in str(node) and "*" in str(node)
