"""Stability/convergence checks for the measured quantities.

The paper evaluates on 10 MB traces; we use much shorter streams, so
these tests provide the evidence that the quantities we report (average
active set, active partitions, energy/symbol) have stabilised well below
our default input lengths — i.e. that scaling the traces down does not
change the conclusions.
"""

import pytest

from repro.compiler import compile_automaton
from repro.core.design import CA_P
from repro.core.energy import EnergyModel
from repro.sim.functional import MappedSimulator
from repro.workloads.suite import get_benchmark


@pytest.mark.parametrize("name", ["Snort", "SPM", "Hamming"])
def test_activity_metrics_converge(name):
    """Average active partitions at 8K vs 16K symbols agree within 20%."""
    benchmark = get_benchmark(name)
    simulator = MappedSimulator(compile_automaton(benchmark.build(), CA_P))
    short = simulator.run(
        benchmark.input_stream(8_000, seed=5), collect_reports=False
    ).profile
    long = simulator.run(
        benchmark.input_stream(16_000, seed=5), collect_reports=False
    ).profile
    assert short.average_active_partitions == pytest.approx(
        long.average_active_partitions, rel=0.2
    )


def test_energy_per_symbol_converges():
    benchmark = get_benchmark("Dotstar09")
    simulator = MappedSimulator(compile_automaton(benchmark.build(), CA_P))
    model = EnergyModel(CA_P)
    energies = []
    for length in (4_000, 8_000, 16_000):
        profile = simulator.run(
            benchmark.input_stream(length, seed=6), collect_reports=False
        ).profile
        energies.append(model.energy_per_symbol_nj(profile))
    assert max(energies) / min(energies) < 1.3


def test_seed_sensitivity_is_modest():
    """Different input seeds move energy by far less than the CA_P/CA_S
    or CA/AP gaps the conclusions rest on."""
    benchmark = get_benchmark("Ranges1")
    simulator = MappedSimulator(compile_automaton(benchmark.build(), CA_P))
    model = EnergyModel(CA_P)
    energies = [
        model.energy_per_symbol_nj(
            simulator.run(
                benchmark.input_stream(8_000, seed=seed), collect_reports=False
            ).profile
        )
        for seed in (1, 2, 3)
    ]
    assert max(energies) / min(energies) < 1.5
