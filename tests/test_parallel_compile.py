"""Parallel compilation must be indistinguishable from serial.

The compiler fans oversized-CC splitting out to worker processes; the
per-component seeds are derived from the component's member ids (mixed
with the compiler RNG's base draw), so the resulting mapping must be
bit-for-bit identical whatever the worker count, worker scheduling, or
whether the pool was used at all.
"""

from __future__ import annotations

import pytest

from repro.automata.anml import merge
from repro.compiler import Compiler, compile_automaton
from repro.compiler import mapping as mapping_module
from repro.compiler.cache import automaton_fingerprint, design_fingerprint
from repro.compiler.mapping import resolve_compile_jobs
from repro.core.design import CA_64, CA_P
from repro.workloads.suite import build_suite
from tests.conftest import chain_automaton


def _mapping_signature(mapping):
    """Everything placement-visible: locations, partition membership,
    ways, footprint, and edge classification."""
    return (
        dict(mapping.location),
        [tuple(partition.ste_ids) for partition in mapping.partitions],
        [partition.way for partition in mapping.partitions],
        mapping.cache_bytes(),
        mapping.classify_edges(),
    )


def _multi_cc_oversized():
    """Four independent CCs, each larger than a CA_P partition."""
    chains = [
        chain_automaton(
            400, seed=17 + index, automaton_id=f"cc{index}"
        )
        for index in range(4)
    ]
    return merge(chains, automaton_id="parallel-test")


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(mapping_module.COMPILE_JOBS_ENV, "7")
        assert resolve_compile_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(mapping_module.COMPILE_JOBS_ENV, "5")
        assert resolve_compile_jobs(None) == 5

    def test_auto_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv(mapping_module.COMPILE_JOBS_ENV, raising=False)
        assert resolve_compile_jobs("auto") >= 1

    def test_floor_of_one(self, monkeypatch):
        monkeypatch.delenv(mapping_module.COMPILE_JOBS_ENV, raising=False)
        assert resolve_compile_jobs(0) == 1
        assert resolve_compile_jobs(-4) == 1


class TestParallelEquivalence:
    def test_pool_split_matches_serial(self, monkeypatch):
        """Force the pool on (threshold 0) with several oversized CCs."""
        automaton = _multi_cc_oversized()
        serial = Compiler(CA_P, jobs=1).compile(automaton)
        monkeypatch.setattr(
            mapping_module, "PARALLEL_SPLIT_MIN_STATES", 0
        )
        for jobs in (2, 4):
            parallel = Compiler(CA_P, jobs=jobs).compile(automaton)
            assert _mapping_signature(parallel) == _mapping_signature(serial)

    def test_repeated_compiles_are_deterministic(self):
        automaton = _multi_cc_oversized()
        first = Compiler(CA_P, jobs=1).compile(automaton)
        second = Compiler(CA_P, jobs=1).compile(automaton)
        assert _mapping_signature(first) == _mapping_signature(second)

    @pytest.mark.parametrize(
        "name", ["TCP", "PowerEN", "Levenshtein", "Bro217", "Fermi"]
    )
    def test_suite_workloads_identical_across_job_counts(
        self, name, monkeypatch
    ):
        monkeypatch.setattr(
            mapping_module, "PARALLEL_SPLIT_MIN_STATES", 0
        )
        suite = {spec.name: spec for spec in build_suite(2)}
        automaton = suite[name].build()
        serial = compile_automaton(automaton, CA_P, jobs=1)
        parallel = compile_automaton(automaton, CA_P, jobs=2)
        assert _mapping_signature(parallel) == _mapping_signature(serial)

    def test_fingerprints_agree_across_job_counts(self, monkeypatch):
        """Cache keys of parallel and serial artifacts must collide."""
        monkeypatch.setattr(
            mapping_module, "PARALLEL_SPLIT_MIN_STATES", 0
        )
        automaton = _multi_cc_oversized()
        serial = Compiler(CA_P, jobs=1).compile(automaton)
        parallel = Compiler(CA_P, jobs=2).compile(automaton)
        assert automaton_fingerprint(
            serial.automaton
        ) == automaton_fingerprint(parallel.automaton)
        assert design_fingerprint(serial.design) == design_fingerprint(
            parallel.design
        )

    def test_design_changes_mapping(self):
        """Sanity: the signature is sensitive to what we compile onto."""
        automaton = _multi_cc_oversized()
        p_mapping = Compiler(CA_P, jobs=1).compile(automaton)
        wide = Compiler(CA_64, jobs=1).compile(automaton)
        assert _mapping_signature(p_mapping) != _mapping_signature(wide)


class TestPhaseTimings:
    def test_compile_records_phases(self):
        compiler = Compiler(CA_P, jobs=1)
        compiler.compile(_multi_cc_oversized())
        timings = compiler.last_phase_timings
        assert set(timings) == {
            "validate", "components", "pack", "split", "place"
        }
        assert all(duration >= 0.0 for duration in timings.values())
        # Oversized CCs force real splitting work.
        assert timings["split"] > 0.0
