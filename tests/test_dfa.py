"""Tests for subset construction and DFA minimisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.dfa import DEAD, Dfa, determinize
from repro.automata.nfa import Nfa, union
from repro.automata.symbols import SymbolSet
from repro.errors import AutomatonError


def literal_nfa(text: str) -> Nfa:
    nfa = Nfa()
    nfa.add_state("q0", start=True)
    previous = "q0"
    for index, character in enumerate(text):
        state = f"q{index + 1}"
        nfa.add_transition(previous, SymbolSet.single(character), state)
        previous = state
    nfa.set_accept(previous)
    return nfa


class TestDeterminize:
    def test_literal_acceptance(self):
        dfa = determinize(literal_nfa("cat"))
        assert dfa.accepts(b"cat")
        assert not dfa.accepts(b"cab")
        assert not dfa.accepts(b"catx")
        assert not dfa.accepts(b"")

    def test_state_zero_is_dead(self):
        dfa = determinize(literal_nfa("a"))
        assert not dfa.accepting[DEAD]
        assert (dfa.table[DEAD] == DEAD).all()

    def test_union_language(self):
        dfa = determinize(union([literal_nfa("ab"), literal_nfa("ac")]))
        assert dfa.accepts(b"ab") and dfa.accepts(b"ac")
        assert not dfa.accepts(b"ad")

    def test_epsilon_handled(self):
        nfa = Nfa()
        nfa.add_state("s", start=True)
        nfa.add_epsilon("s", "m")
        nfa.add_transition("m", SymbolSet.single("x"), "e")
        nfa.set_accept("e")
        assert determinize(nfa).accepts(b"x")

    def test_scanning_reinjects_start(self):
        dfa = determinize(literal_nfa("ab"), scanning=True)
        # 1-based end offsets.
        assert dfa.find_matches(b"abzab") == [2, 5]
        # Overlapping occurrences are all found.
        dfa2 = determinize(literal_nfa("aa"), scanning=True)
        assert dfa2.find_matches(b"aaaa") == [2, 3, 4]

    def test_max_states_guard(self):
        # Union of many distinct literals is fine; the guard triggers on a
        # tiny limit.
        nfa = union([literal_nfa("abc"), literal_nfa("xyz")])
        with pytest.raises(AutomatonError):
            determinize(nfa, max_states=2)

    def test_class_labels_grouped(self):
        nfa = Nfa()
        nfa.add_state("s", start=True)
        nfa.add_transition("s", SymbolSet.from_range(0, 127), "low")
        nfa.add_transition("s", SymbolSet.from_range(64, 255), "high")
        nfa.set_accept("low")
        for symbol in (0, 63, 64, 127, 128, 255):
            assert nfa.accepts(bytes([symbol])) == determinize(nfa).accepts(
                bytes([symbol])
            )


class TestMinimize:
    def test_merges_equivalent_states(self):
        # (ab|ac) has two equivalent mid states after the first symbol? No:
        # b-successor vs c-successor differ; but the two accept states merge.
        dfa = determinize(union([literal_nfa("ab"), literal_nfa("cb")]))
        minimal = dfa.minimize()
        assert minimal.state_count < dfa.state_count
        assert minimal.is_equivalent(dfa)

    def test_idempotent(self):
        dfa = determinize(union([literal_nfa("ab"), literal_nfa("cb")])).minimize()
        assert dfa.minimize().state_count == dfa.state_count

    def test_language_preserved(self):
        dfa = determinize(literal_nfa("hello"), scanning=True)
        minimal = dfa.minimize()
        text = b"say hello hellohello"
        assert dfa.find_matches(text) == minimal.find_matches(text)

    def test_equivalence_detects_difference(self):
        a = determinize(literal_nfa("ab"))
        b = determinize(literal_nfa("ac"))
        assert not a.is_equivalent(b)
        assert a.is_equivalent(determinize(literal_nfa("ab")))


class TestValidation:
    def test_bad_table_shape(self):
        with pytest.raises(AutomatonError):
            Dfa(np.zeros((2, 100), dtype=np.int64), np.zeros(2, dtype=bool), 0)

    def test_accepting_dead_state_rejected(self):
        table = np.zeros((2, 256), dtype=np.int64)
        accepting = np.array([True, False])
        with pytest.raises(AutomatonError):
            Dfa(table, accepting, 1)

    def test_start_out_of_range(self):
        table = np.zeros((2, 256), dtype=np.int64)
        with pytest.raises(AutomatonError):
            Dfa(table, np.zeros(2, dtype=bool), 5)


@st.composite
def random_literals(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    return [
        draw(st.text(alphabet="abc", min_size=1, max_size=5)) for _ in range(count)
    ]


class TestProperties:
    @given(random_literals(), st.text(alphabet="abc", max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_determinize_matches_nfa_language(self, literals, text):
        nfa = union([literal_nfa(w) for w in literals])
        dfa = determinize(nfa)
        data = text.encode()
        assert dfa.accepts(data) == nfa.accepts(data)

    @given(random_literals(), st.text(alphabet="abc", max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_minimize_preserves_language(self, literals, text):
        dfa = determinize(union([literal_nfa(w) for w in literals]))
        assert dfa.accepts(text.encode()) == dfa.minimize().accepts(text.encode())
