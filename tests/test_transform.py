"""Tests for epsilon removal and classical->homogeneous conversion."""

import random

import pytest

from repro.automata.anml import StartKind
from repro.automata.epsilon import remove_epsilon
from repro.automata.nfa import Nfa, union
from repro.automata.symbols import SymbolSet
from repro.automata.transform import (
    active_projection,
    homogeneous_to_nfa,
    to_homogeneous,
)
from repro.errors import AutomatonError
from repro.sim.golden import match_offsets, simulate


def literal_nfa(text: str) -> Nfa:
    nfa = Nfa()
    nfa.add_state("q0", start=True)
    previous = "q0"
    for index, character in enumerate(text):
        state = f"q{index + 1}"
        nfa.add_transition(previous, SymbolSet.single(character), state)
        previous = state
    nfa.set_accept(previous)
    return nfa


class TestRemoveEpsilon:
    def test_result_has_no_epsilon(self):
        nfa = Nfa()
        nfa.add_state("s", start=True)
        nfa.add_epsilon("s", "m")
        nfa.add_transition("m", SymbolSet.single("x"), "e")
        nfa.set_accept("e")
        cleaned = remove_epsilon(nfa)
        assert not cleaned.has_epsilon()
        assert cleaned.accepts(b"x")

    def test_acceptance_through_closure(self):
        nfa = Nfa()
        nfa.add_state("s", start=True)
        nfa.add_transition("s", SymbolSet.single("a"), "m")
        nfa.add_epsilon("m", "accepting")
        nfa.set_accept("accepting")
        cleaned = remove_epsilon(nfa)
        assert cleaned.accepts(b"a")
        assert not cleaned.accepts(b"")

    def test_epsilon_cycle(self):
        nfa = Nfa()
        nfa.add_state("s", start=True)
        nfa.add_epsilon("s", "a")
        nfa.add_epsilon("a", "s")
        nfa.add_transition("a", SymbolSet.single("x"), "end")
        nfa.set_accept("end")
        assert remove_epsilon(nfa).accepts(b"x")

    def test_random_equivalence(self):
        rng = random.Random(5)
        for trial in range(10):
            nfa = Nfa()
            states = [f"n{i}" for i in range(8)]
            nfa.add_state(states[0], start=True)
            nfa.set_accept(states[-1])
            for _ in range(10):
                u, v = rng.sample(states, 2)
                if rng.random() < 0.3:
                    nfa.add_epsilon(u, v)
                else:
                    symbol = rng.choice("abc")
                    nfa.add_transition(u, SymbolSet.single(symbol), v)
            cleaned = remove_epsilon(nfa)
            for _ in range(25):
                text = "".join(
                    rng.choice("abc") for _ in range(rng.randint(0, 6))
                ).encode()
                assert nfa.accepts(text) == cleaned.accepts(text), (trial, text)


class TestToHomogeneous:
    def test_figure1_shape(self):
        """The paper's Figure 1: state S1 splits per incoming label."""
        nfa = union([literal_nfa(w) for w in ("bat", "bar", "car", "cat")])
        homogeneous = to_homogeneous(nfa, start=StartKind.ALL_INPUT)
        # Every STE has a single-symbol label here.
        assert all(ste.symbols.cardinality() == 1 for ste in homogeneous.stes())
        homogeneous.validate()

    def test_scanning_equivalence_with_classical(self):
        nfa = union([literal_nfa(w) for w in ("ab", "bc", "abc")])
        homogeneous = to_homogeneous(nfa, start=StartKind.ALL_INPUT)
        text = b"zababcz"
        classical_ends = [offset - 1 for offset in nfa.find_matches(text) if offset]
        assert match_offsets(homogeneous, text) == sorted(set(classical_ends))

    def test_anchored_equivalence(self):
        nfa = literal_nfa("abc")
        homogeneous = to_homogeneous(nfa, start=StartKind.START_OF_DATA)
        assert match_offsets(homogeneous, b"abcabc") == [2]
        assert match_offsets(homogeneous, b"xabc") == []

    def test_empty_string_acceptor_rejected(self):
        nfa = Nfa()
        nfa.add_state("s", start=True, accept=True)
        nfa.add_transition("s", SymbolSet.single("a"), "s")
        with pytest.raises(AutomatonError):
            to_homogeneous(nfa)

    def test_start_without_transitions_rejected(self):
        nfa = Nfa()
        nfa.add_state("s", start=True)
        nfa.add_state("other", accept=True)
        with pytest.raises(AutomatonError):
            to_homogeneous(nfa)

    def test_epsilon_input_handled(self):
        nfa = Nfa()
        nfa.add_state("s", start=True)
        nfa.add_epsilon("s", "m")
        nfa.add_transition("m", SymbolSet.single("x"), "e")
        nfa.set_accept("e")
        homogeneous = to_homogeneous(nfa, start=StartKind.ALL_INPUT)
        assert match_offsets(homogeneous, b"zx") == [1]

    def test_class_labels_split_separately(self):
        nfa = Nfa()
        nfa.add_state("s", start=True)
        target = "t"
        nfa.add_transition("s", SymbolSet.from_range("a", "c"), target)
        nfa.add_transition("s", SymbolSet.from_range("x", "z"), target)
        nfa.set_accept(target)
        homogeneous = to_homogeneous(nfa, start=StartKind.ALL_INPUT)
        # Two incoming label groups -> two split states.
        assert len(homogeneous) == 2
        assert match_offsets(homogeneous, b"by") == [0, 1]

    def test_active_projection(self):
        assert active_projection({"q1#0", "q1#3", "q2#1"}) == {"q1", "q2"}


class TestRoundTrip:
    def test_homogeneous_to_nfa_inverse(self):
        nfa = union([literal_nfa(w) for w in ("cat", "cart")])
        homogeneous = to_homogeneous(nfa, start=StartKind.ALL_INPUT)
        back = homogeneous_to_nfa(homogeneous)
        for text in (b"cat", b"cart", b"ca", b"scatter cart"):
            golden = simulate(homogeneous, text)
            ends = [offset - 1 for offset in back.find_matches(text) if offset]
            assert sorted({r.offset for r in golden.reports}) == sorted(set(ends))
