"""Tests for the mapped functional simulator: golden equivalence, activity
profiling, and the output-buffer model."""

import random
from dataclasses import replace

import pytest

from repro.compiler import compile_automaton
from repro.core.design import CA_P, CA_S
from repro.core.geometry import SliceGeometry
from repro.errors import SimulationError
from repro.regex.compile import compile_patterns
from repro.sim.functional import (
    OUTPUT_BUFFER_ENTRIES,
    MappedSimulator,
    OutputBufferModel,
    simulate_mapping,
)
from repro.sim.golden import simulate
from tests.conftest import chain_automaton

TINY = SliceGeometry(slice_kb=640, ways=20, subarrays_per_way=2)


def report_set(reports):
    return sorted((r.offset, r.ste_id) for r in reports)


class TestGoldenEquivalence:
    def test_single_partition(self, figure1_automaton, figure1_text):
        mapping = compile_automaton(figure1_automaton, CA_P)
        mapped = simulate_mapping(mapping, figure1_text)
        golden = simulate(figure1_automaton, figure1_text)
        assert report_set(mapped.reports) == report_set(golden.reports)
        assert (
            mapped.stats.total_matched_states == golden.stats.total_matched_states
        )

    def test_split_cc_g1(self):
        automaton = chain_automaton(700, extra_edges=500, seed=11)
        mapping = compile_automaton(automaton, CA_P)
        data = bytes(random.Random(1).randrange(256) for _ in range(4000))
        mapped = simulate_mapping(mapping, data)
        golden = simulate(automaton, data)
        assert report_set(mapped.reports) == report_set(golden.reports)

    def test_cross_way_g4(self):
        design = replace(CA_S, geometry=TINY, name="tiny")
        automaton = chain_automaton(1400, extra_edges=200, seed=12, label_width=40)
        mapping = compile_automaton(automaton, design)
        assert len({p.way for p in mapping.partitions}) > 1
        data = bytes(random.Random(2).randrange(256) for _ in range(3000))
        mapped = simulate_mapping(mapping, data)
        golden = simulate(automaton, data)
        assert report_set(mapped.reports) == report_set(golden.reports)

    def test_random_rulesets(self):
        rng = random.Random(13)
        from repro.workloads.synth import ids_rules

        for trial in range(3):
            machine = compile_patterns(ids_rules(25, seed=trial))
            mapping = compile_automaton(machine, CA_P)
            text = bytes(rng.choice(b"abcdefgh123 ") for _ in range(2500))
            mapped = simulate_mapping(mapping, text)
            golden = simulate(machine, text)
            assert report_set(mapped.reports) == report_set(golden.reports)


class TestActivityProfile:
    def test_partition_activation_counts_enabled(self):
        """A partition is accessed when its active-state vector is
        non-empty — even if nothing matches (Section 5.3)."""
        machine = compile_patterns(["zz"])
        mapping = compile_automaton(machine, CA_P)
        result = simulate_mapping(mapping, b"aaaa")
        # The all-input start state keeps its partition enabled each cycle.
        assert result.profile.partition_activations == 4

    def test_g1_crossings_on_real_propagation(self):
        from repro.regex.compile import literal_pattern

        needle = "x" * 600  # 3 partitions
        machine = literal_pattern(needle)
        mapping = compile_automaton(machine, CA_P)
        result = simulate_mapping(mapping, needle.encode())
        assert result.profile.g1_crossings >= 2  # two boundary crossings
        assert result.profile.g1_switch_activations >= 2

    def test_profile_symbols(self):
        machine = compile_patterns(["ab"])
        mapping = compile_automaton(machine, CA_P)
        result = simulate_mapping(mapping, b"abcabc")
        assert result.profile.symbols == 6
        assert result.profile.reports == 2

    def test_average_active_partitions(self):
        machine = compile_patterns(["ab"])
        mapping = compile_automaton(machine, CA_P)
        result = simulate_mapping(mapping, b"abab")
        assert result.profile.average_active_partitions == pytest.approx(1.0)


class TestOutputBuffer:
    def test_interrupt_on_full(self):
        buffer_model = OutputBufferModel()
        buffer_model.record(OUTPUT_BUFFER_ENTRIES - 1)
        assert buffer_model.interrupts == 0
        buffer_model.record(1)
        assert buffer_model.interrupts == 1
        assert buffer_model.events == 0

    def test_multiple_interrupts_in_one_burst(self):
        buffer_model = OutputBufferModel()
        buffer_model.record(OUTPUT_BUFFER_ENTRIES * 3 + 5)
        assert buffer_model.interrupts == 3
        assert buffer_model.events == 5

    def test_simulation_counts_interrupts(self):
        machine = compile_patterns(["a"])
        mapping = compile_automaton(machine, CA_P)
        result = simulate_mapping(mapping, b"a" * 130)
        assert result.profile.reports == 130
        assert result.output_buffer.interrupts == 130 // OUTPUT_BUFFER_ENTRIES


class TestRobustness:
    def test_bad_input_type(self):
        machine = compile_patterns(["a"])
        mapping = compile_automaton(machine, CA_P)
        with pytest.raises(SimulationError):
            MappedSimulator(mapping).run("text")

    def test_collect_reports_off_keeps_profile(self):
        machine = compile_patterns(["ab"])
        mapping = compile_automaton(machine, CA_P)
        result = simulate_mapping(mapping, b"abab", collect_reports=False)
        assert result.reports == []
        assert result.profile.reports == 2

    def test_simulator_reusable(self):
        machine = compile_patterns(["ab"])
        simulator = MappedSimulator(compile_automaton(machine, CA_P))
        assert report_set(simulator.run(b"ab").reports) == report_set(
            simulator.run(b"ab").reports
        )

    def test_large_burst_is_constant_time(self):
        # The divmod implementation must absorb astronomically large
        # bursts instantly (the loop version would never return).
        buffer_model = OutputBufferModel()
        buffer_model.record(OUTPUT_BUFFER_ENTRIES * 10**15 + 7)
        assert buffer_model.interrupts == 10**15
        assert buffer_model.events == 7


class TestCycleStats:
    def test_matched_per_cycle_opt_in(self):
        machine = compile_patterns(["ab", "b"])
        simulator = MappedSimulator(compile_automaton(machine, CA_P))
        off = simulator.run(b"abab")
        assert off.stats.matched_per_cycle == []
        on = simulator.run(b"abab", collect_cycle_stats=True)
        assert len(on.stats.matched_per_cycle) == 4
        assert sum(on.stats.matched_per_cycle) == on.stats.total_matched_states

    def test_matches_golden_cycle_stats(self):
        machine = compile_patterns(["ab", "b+c"])
        data = b"abbbcbab" * 3
        golden = simulate(machine, data, collect_cycle_stats=True)
        mapped = MappedSimulator(compile_automaton(machine, CA_P)).run(
            data, collect_cycle_stats=True
        )
        assert mapped.stats.matched_per_cycle == golden.stats.matched_per_cycle

    def test_resume_keeps_collecting(self):
        machine = compile_patterns(["ab"])
        simulator = MappedSimulator(compile_automaton(machine, CA_P))
        first = simulator.run(b"ab", collect_cycle_stats=True)
        second = simulator.run(
            b"ab", resume=first.checkpoint, collect_cycle_stats=True
        )
        full = simulator.run(b"abab", collect_cycle_stats=True)
        assert (
            first.stats.matched_per_cycle + second.stats.matched_per_cycle
            == full.stats.matched_per_cycle
        )
