"""Edge-path coverage across modules: cross-way DOT colouring, multi-
partition output records, wire-assignment sharing, sweep customisation,
and small formatting corners."""

from dataclasses import replace

import pytest

from repro.automata.dot import mapping_to_dot
from repro.compiler import compile_automaton, generate
from repro.core.design import CA_64, CA_P, CA_S
from repro.core.geometry import SliceGeometry
from repro.engine import CacheAutomatonEngine
from repro.eval.tables import format_cell
from repro.regex.compile import literal_pattern
from repro.sim.functional import simulate_mapping
from tests.conftest import chain_automaton

TINY = SliceGeometry(slice_kb=640, ways=20, subarrays_per_way=2)


class TestCrossWayDot:
    def test_g4_edges_red(self):
        design = replace(CA_S, geometry=TINY, name="tiny")
        automaton = chain_automaton(1300, extra_edges=150, seed=55)
        mapping = compile_automaton(automaton, design)
        assert mapping.classify_edges()["g4"] > 0
        dot = mapping_to_dot(mapping, max_states=None)
        assert "color=red" in dot
        assert "color=blue" in dot or mapping.classify_edges()["g1"] == 0


class TestOutputRecordsMultiPartition:
    def test_records_carry_partition_ids(self):
        from dataclasses import replace as dc_replace

        machine = literal_pattern("k" * 600)  # 3 partitions
        # Make every 100th state a reporter so several partitions report.
        for index in range(0, 600, 100):
            ste = machine.ste(f"lit{index}")
            machine.replace_ste(
                dc_replace(ste, reporting=True, report_code=f"r{index}")
            )
        mapping = compile_automaton(machine, CA_P)
        result = simulate_mapping(mapping, b"k" * 600, collect_records=True)
        partitions_seen = {record.partition for record in result.output_records}
        expected = {
            mapping.partition_of(f"lit{index}") for index in range(0, 600, 100)
        }
        assert partitions_seen == expected
        assert len(partitions_seen) >= 2


class TestWireSharing:
    def test_one_source_many_destinations_one_out_wire(self):
        """A source STE fanning out to several partitions costs ONE
        outgoing wire (the G-switch fans out internally)."""
        design = replace(CA_S, geometry=TINY, name="tiny")
        automaton = chain_automaton(900, seed=56)
        # s0 fans out to states in several partitions.
        for target in (300, 500, 700, 850):
            automaton.add_edge("s0", f"s{target}")
        mapping = compile_automaton(automaton, design)
        bitstream = generate(mapping)
        source_partition = mapping.partition_of("s0")
        wires = bitstream.wires[source_partition]
        assert list(wires.out_g1.keys()).count("s0") <= 1
        assert list(wires.out_g4.keys()).count("s0") <= 1
        total_out = len(wires.out_g1) + len(wires.out_g4)
        assert total_out >= 1


class TestEngineOnOtherDesigns:
    def test_ca_64_single_partition(self):
        engine = CacheAutomatonEngine.from_patterns(["tiny"], design=CA_64)
        assert engine.mapping.partition_count == 1
        assert [m.end for m in engine.scan(b"a tiny thing")] == [5]
        assert engine.throughput_gbps > 30  # ~4 GHz x 8 bits

    def test_ca_s_without_optimize(self):
        engine = CacheAutomatonEngine.from_patterns(["abc"], design=CA_S)
        assert engine.design.name == "CA_S"
        assert [m.end for m in engine.scan(b"xabc")] == [3]


class TestSweepCustomisation:
    def test_custom_base_design(self):
        from repro.eval.sweeps import sweep_g1_wires

        rows = sweep_g1_wires(base=CA_S, wire_counts=(8, 16))
        assert all(row[0].startswith("CA_S/") for row in rows[1:])

    def test_multistream_budget(self):
        from repro.eval.experiments import evaluate_suite, multistream

        evaluations = evaluate_suite(input_length=800, names=["Bro217"])
        narrow = multistream(evaluations, budget_ways=2)
        wide = multistream(evaluations, budget_ways=8)
        assert wide[1][1] >= narrow[1][1]  # more silicon, more streams


class TestFormatting:
    def test_negative_numbers(self):
        assert format_cell(-3.14159) == "-3.142"
        assert format_cell(-31415.9) == "-31,416"

    def test_bool_passthrough(self):
        assert format_cell(True) == "True"


class TestGoldenResumeWithCycleStats:
    def test_cycle_stats_on_resumed_run(self):
        from repro.regex.compile import compile_patterns
        from repro.sim.golden import GoldenSimulator

        machine = compile_patterns(["ab"])
        simulator = GoldenSimulator(machine)
        first = simulator.run(b"ab", collect_cycle_stats=True)
        second = simulator.run(
            b"ab", collect_cycle_stats=True, resume=first.checkpoint
        )
        assert first.stats.matched_per_cycle == [1, 1]
        assert second.stats.matched_per_cycle == [1, 1]


class TestCircuitSimRobustness:
    def test_bad_input_type(self):
        from repro.automata.anml import StartKind
        from repro.automata.elements import CircuitAutomaton
        from repro.automata.symbols import SymbolSet
        from repro.errors import SimulationError
        from repro.sim.circuit import CircuitSimulator

        circuit = CircuitAutomaton()
        circuit.add_ste("s", SymbolSet.single("s"), start=StartKind.ALL_INPUT)
        with pytest.raises(SimulationError):
            CircuitSimulator(circuit).run("not bytes")
