"""Tests for the bitstream generator and bit-level crossbar simulator.

These prove the *configuration itself* — one-hot column images, L/G
switch enable bits, wire assignments — encodes the automaton: the
crossbar-level run must agree with the golden interpreter exactly.
"""

import random
from dataclasses import replace

import numpy as np
import pytest

from repro.compiler import compile_automaton, generate
from repro.core.design import CA_P, CA_S
from repro.core.geometry import SliceGeometry
from repro.regex.compile import compile_patterns, literal_pattern
from repro.sim.crossbar import CrossbarLevelSimulator
from repro.sim.golden import simulate
from tests.conftest import chain_automaton

TINY = SliceGeometry(slice_kb=640, ways=20, subarrays_per_way=2)


def report_set(reports):
    return sorted((r.offset, r.ste_id) for r in reports)


class TestBitstreamStructure:
    def test_column_images_are_onehot_labels(self, figure1_automaton):
        mapping = compile_automaton(figure1_automaton, CA_P)
        bitstream = generate(mapping)
        for partition in mapping.partitions:
            for slot, ste_id in enumerate(partition.ste_ids):
                ste = figure1_automaton.ste(ste_id)
                column = bitstream.ste_columns[partition.index, :, slot]
                assert (column == ste.symbols.to_onehot()).all()

    def test_unused_slots_match_nothing(self, figure1_automaton):
        mapping = compile_automaton(figure1_automaton, CA_P)
        bitstream = generate(mapping)
        used = len(mapping.partitions[0].ste_ids)
        assert bitstream.ste_columns[0, :, used:].sum() == 0

    def test_local_edges_in_l_switch(self, figure1_automaton):
        mapping = compile_automaton(figure1_automaton, CA_P)
        bitstream = generate(mapping)
        enabled = int(bitstream.l_switch_enable.sum())
        assert enabled == figure1_automaton.edge_count()

    def test_wire_assignment_within_budget(self):
        automaton = chain_automaton(700, extra_edges=400, seed=21)
        mapping = compile_automaton(automaton, CA_P)
        bitstream = generate(mapping)
        for assignment in bitstream.wires:
            assert len(assignment.out_g1) <= CA_P.g1_wires_per_partition
            assert len(assignment.in_g1) <= CA_P.g1_wires_per_partition

    def test_serialisation_roundtrip_size(self, figure1_automaton):
        mapping = compile_automaton(figure1_automaton, CA_P)
        bitstream = generate(mapping)
        blob = bitstream.to_bytes()
        assert len(blob) == (bitstream.configuration_bits() + 7) // 8 or len(
            blob
        ) >= bitstream.configuration_bits() // 8

    def test_g1_matrix_present_iff_crossings(self):
        single = compile_automaton(compile_patterns(["ab"]), CA_P)
        assert generate(single).g1_enable == {}
        split = compile_automaton(chain_automaton(400, seed=22), CA_P)
        assert generate(split).g1_enable != {}


class TestCrossbarEquivalence:
    def test_single_partition(self, figure1_automaton, figure1_text):
        mapping = compile_automaton(figure1_automaton, CA_P)
        reports = CrossbarLevelSimulator(generate(mapping)).run(figure1_text)
        golden = simulate(figure1_automaton, figure1_text)
        assert report_set(reports) == report_set(golden.reports)

    def test_g1_propagation(self):
        machine = literal_pattern("y" * 500)  # spans 2 partitions
        mapping = compile_automaton(machine, CA_P)
        data = b"x" * 10 + b"y" * 500
        reports = CrossbarLevelSimulator(generate(mapping)).run(data)
        golden = simulate(machine, data)
        assert report_set(reports) == report_set(golden.reports)
        assert reports  # the match actually happened

    def test_g4_propagation(self):
        design = replace(CA_S, geometry=TINY, name="tiny")
        rng = random.Random(23)
        needle = bytes(rng.randrange(97, 123) for _ in range(1200))
        machine = literal_pattern(needle.decode("latin-1"))
        mapping = compile_automaton(machine, design)
        assert len({p.way for p in mapping.partitions}) > 1
        data = needle + b"zz" + needle
        reports = CrossbarLevelSimulator(generate(mapping)).run(data)
        golden = simulate(machine, data)
        assert report_set(reports) == report_set(golden.reports)
        assert len(reports) == 2

    def test_random_small_automata(self):
        for seed in range(3):
            automaton = chain_automaton(
                350, extra_edges=150, seed=seed, label_width=30, starts=3
            )
            mapping = compile_automaton(automaton, CA_P)
            data = bytes(random.Random(seed).randrange(256) for _ in range(600))
            reports = CrossbarLevelSimulator(generate(mapping)).run(data)
            golden = simulate(automaton, data)
            assert report_set(reports) == report_set(golden.reports), seed

    def test_start_of_data_semantics(self):
        machine = compile_patterns(["^abc"])
        mapping = compile_automaton(machine, CA_P)
        simulator = CrossbarLevelSimulator(generate(mapping))
        assert len(simulator.run(b"abcabc")) == 1
        assert len(simulator.run(b"xabc")) == 0

    def test_bad_input_type(self):
        from repro.errors import SimulationError

        mapping = compile_automaton(compile_patterns(["a"]), CA_P)
        with pytest.raises(SimulationError):
            CrossbarLevelSimulator(generate(mapping)).run("nope")


class TestCrossPointMath:
    def test_l_enable_dimensions(self, figure1_automaton):
        mapping = compile_automaton(figure1_automaton, CA_P)
        bitstream = generate(mapping)
        expected_inputs = (
            CA_P.partition_size
            + CA_P.g1_wires_per_partition
            + CA_P.g4_wires_per_partition
        )
        assert bitstream.l_switch_enable.shape == (
            mapping.partition_count, expected_inputs, CA_P.partition_size,
        )

    def test_ste_columns_dimensions(self, figure1_automaton):
        mapping = compile_automaton(figure1_automaton, CA_P)
        bitstream = generate(mapping)
        assert bitstream.ste_columns.shape == (
            mapping.partition_count, 256, CA_P.partition_size,
        )
        assert bitstream.ste_columns.dtype == np.uint8
