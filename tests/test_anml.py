"""Tests for the homogeneous automaton model and ANML XML round-tripping."""

import pytest

from repro.automata.anml import (
    HomogeneousAutomaton,
    StartKind,
    from_anml,
    merge,
    to_anml,
    with_report_codes,
)
from repro.automata.symbols import SymbolSet
from repro.errors import AnmlError, AutomatonError
from repro.sim.golden import match_offsets


def small_machine() -> HomogeneousAutomaton:
    automaton = HomogeneousAutomaton("small")
    automaton.add_ste("a", SymbolSet.single("a"), start=StartKind.ALL_INPUT)
    automaton.add_ste("b", SymbolSet.single("b"), reporting=True, report_code="ab")
    automaton.add_edge("a", "b")
    return automaton


class TestModel:
    def test_duplicate_id_rejected(self):
        automaton = small_machine()
        with pytest.raises(AutomatonError):
            automaton.add_ste("a", SymbolSet.single("x"))

    def test_empty_label_rejected(self):
        automaton = HomogeneousAutomaton()
        with pytest.raises(AutomatonError):
            automaton.add_ste("x", SymbolSet.none())

    def test_edge_to_unknown_state(self):
        automaton = small_machine()
        with pytest.raises(AutomatonError):
            automaton.add_edge("a", "ghost")
        with pytest.raises(AutomatonError):
            automaton.add_edge("ghost", "a")

    def test_successor_predecessor_symmetry(self):
        automaton = small_machine()
        assert automaton.successors("a") == {"b"}
        assert automaton.predecessors("b") == {"a"}
        assert automaton.in_degree("b") == 1
        assert automaton.out_degree("a") == 1

    def test_remove_ste_cleans_edges(self):
        automaton = small_machine()
        automaton.remove_ste("b")
        assert automaton.successors("a") == set()
        assert "b" not in automaton

    def test_replace_ste_keeps_edges(self):
        from dataclasses import replace

        automaton = small_machine()
        ste = automaton.ste("b")
        automaton.replace_ste(replace(ste, report_code="changed"))
        assert automaton.ste("b").report_code == "changed"
        assert automaton.predecessors("b") == {"a"}

    def test_validate_requires_start(self):
        automaton = HomogeneousAutomaton()
        automaton.add_ste("x", SymbolSet.single("x"))
        with pytest.raises(AutomatonError):
            automaton.validate()

    def test_validate_empty(self):
        with pytest.raises(AutomatonError):
            HomogeneousAutomaton().validate()

    def test_copy_is_independent(self):
        automaton = small_machine()
        duplicate = automaton.copy()
        duplicate.remove_ste("b")
        assert "b" in automaton

    def test_relabel_preserves_language(self):
        automaton = small_machine()
        renamed = automaton.relabelled("x")
        assert match_offsets(renamed, b"zabz") == match_offsets(automaton, b"zabz")

    def test_merge_disjoint(self):
        left = small_machine()
        right = small_machine()
        combined = merge([left, right])
        assert len(combined) == 4
        # Reports double up but offsets are identical.
        assert match_offsets(combined, b"ab") == [1]

    def test_average_fan_out(self):
        assert small_machine().average_fan_out() == pytest.approx(0.5)
        assert HomogeneousAutomaton().average_fan_out() == 0.0

    def test_unknown_ste_lookup(self):
        with pytest.raises(AutomatonError):
            small_machine().ste("nope")

    def test_with_report_codes(self):
        automaton = HomogeneousAutomaton()
        automaton.add_ste(
            "r", SymbolSet.single("r"), start=StartKind.ALL_INPUT, reporting=True
        )
        coded = with_report_codes(automaton, "CODE")
        assert coded.ste("r").report_code == "CODE"


class TestAnmlXml:
    def test_roundtrip_structure(self, figure1_automaton):
        document = to_anml(figure1_automaton)
        parsed = from_anml(document)
        assert len(parsed) == len(figure1_automaton)
        assert parsed.edge_count() == figure1_automaton.edge_count()
        for ste in figure1_automaton.stes():
            other = parsed.ste(ste.ste_id)
            assert other.symbols == ste.symbols
            assert other.start == ste.start
            assert other.reporting == ste.reporting

    def test_roundtrip_language(self, figure1_automaton, figure1_text):
        parsed = from_anml(to_anml(figure1_automaton))
        assert match_offsets(parsed, figure1_text) == match_offsets(
            figure1_automaton, figure1_text
        )

    def test_start_of_data_roundtrip(self):
        automaton = HomogeneousAutomaton()
        automaton.add_ste(
            "s", SymbolSet.single("s"), start=StartKind.START_OF_DATA, reporting=True
        )
        parsed = from_anml(to_anml(automaton))
        assert parsed.ste("s").start is StartKind.START_OF_DATA

    def test_wildcard_symbol_set(self):
        automaton = HomogeneousAutomaton()
        automaton.add_ste("w", SymbolSet.any(), start=StartKind.ALL_INPUT)
        parsed = from_anml(to_anml(automaton))
        assert parsed.ste("w").symbols.is_full()

    def test_report_code_preserved(self):
        parsed = from_anml(to_anml(small_machine()))
        assert parsed.ste("b").report_code == "ab"

    def test_anml_wrapper_element(self):
        inner = to_anml(small_machine())
        document = f"<anml>{inner}</anml>"
        assert len(from_anml(document)) == 2

    def test_malformed_xml(self):
        with pytest.raises(AnmlError):
            from_anml("<anml-network><unclosed></anml-network")

    def test_unknown_root(self):
        with pytest.raises(AnmlError):
            from_anml("<something-else/>")

    def test_missing_symbol_set(self):
        with pytest.raises(AnmlError):
            from_anml(
                '<anml-network id="x">'
                '<state-transition-element id="a"/></anml-network>'
            )

    def test_missing_id(self):
        with pytest.raises(AnmlError):
            from_anml(
                '<anml-network id="x">'
                '<state-transition-element symbol-set="a"/></anml-network>'
            )

    def test_unknown_start_kind(self):
        with pytest.raises(AnmlError):
            from_anml(
                '<anml-network id="x"><state-transition-element id="a" '
                'symbol-set="a" start="sometimes"/></anml-network>'
            )

    def test_unknown_child_element(self):
        with pytest.raises(AnmlError):
            from_anml(
                '<anml-network id="x"><state-transition-element id="a" '
                'symbol-set="a"><frobnicate/></state-transition-element>'
                "</anml-network>"
            )

    def test_forward_edge_reference(self):
        """activate-on-match may reference an STE defined later."""
        document = (
            '<anml-network id="x">'
            '<state-transition-element id="a" symbol-set="a" start="all-input">'
            '<activate-on-match element="b"/></state-transition-element>'
            '<state-transition-element id="b" symbol-set="b">'
            "<report-on-match/></state-transition-element>"
            "</anml-network>"
        )
        parsed = from_anml(document)
        assert match_offsets(parsed, b"ab") == [1]
