"""Tests for the character-class expression parser."""

import pytest

from repro.automata.charclass import parse_class_body, parse_escape, parse_symbol_set
from repro.automata.symbols import SymbolSet
from repro.errors import SymbolSetError


class TestParseSymbolSet:
    def test_wildcards(self):
        assert parse_symbol_set("*").is_full()
        assert parse_symbol_set(".").is_full()  # ANML convention

    def test_single_character(self):
        assert parse_symbol_set("a") == SymbolSet.single("a")

    def test_bracket_class(self):
        assert parse_symbol_set("[abc]") == SymbolSet.from_string("abc")

    def test_range(self):
        assert parse_symbol_set("[a-e]") == SymbolSet.from_range("a", "e")

    def test_mixed_members_and_ranges(self):
        expected = SymbolSet.from_range("0", "9") | SymbolSet.from_string("xy")
        assert parse_symbol_set("[0-9xy]") == expected

    def test_negation(self):
        assert parse_symbol_set("[^a]") == SymbolSet.single("a").complement()

    def test_literal_dash_at_end(self):
        assert parse_symbol_set("[a-]") == SymbolSet.from_string("a-")

    def test_hex_escape(self):
        assert parse_symbol_set(r"\x41") == SymbolSet.single("A")
        assert parse_symbol_set(r"[\x00-\x1f]") == SymbolSet.from_range(0, 0x1F)

    def test_shorthand_classes(self):
        assert parse_symbol_set(r"\d") == SymbolSet.from_range("0", "9")
        assert parse_symbol_set(r"\D") == SymbolSet.from_range("0", "9").complement()
        assert "_" in parse_symbol_set(r"\w")
        assert " " in parse_symbol_set(r"\s")

    def test_control_escapes(self):
        assert parse_symbol_set(r"\n") == SymbolSet.single("\n")
        assert parse_symbol_set(r"\t") == SymbolSet.single("\t")
        assert parse_symbol_set(r"\0") == SymbolSet.single(0)

    def test_escaped_metacharacter(self):
        assert parse_symbol_set(r"\[") == SymbolSet.single("[")
        assert parse_symbol_set(r"\\") == SymbolSet.single("\\")

    def test_empty_expression_rejected(self):
        with pytest.raises(SymbolSetError):
            parse_symbol_set("")

    def test_unterminated_class(self):
        with pytest.raises(SymbolSetError):
            parse_symbol_set("[abc")

    def test_trailing_junk(self):
        with pytest.raises(SymbolSetError):
            parse_symbol_set("[ab]x")

    def test_reversed_range(self):
        with pytest.raises(SymbolSetError):
            parse_symbol_set("[z-a]")

    def test_truncated_hex(self):
        with pytest.raises(SymbolSetError):
            parse_symbol_set(r"\x4")

    def test_bad_hex(self):
        with pytest.raises(SymbolSetError):
            parse_symbol_set(r"\xgg")

    def test_dangling_backslash(self):
        with pytest.raises(SymbolSetError):
            parse_symbol_set("\\")

    def test_multichar_nonclass_rejected(self):
        with pytest.raises(SymbolSetError):
            parse_symbol_set("ab")


class TestClassBody:
    def test_returns_end_position(self):
        symbols, end = parse_class_body("[abc]xyz", 1)
        assert symbols == SymbolSet.from_string("abc")
        assert end == 5

    def test_shorthand_inside_class(self):
        symbols, _ = parse_class_body(r"[\dx]", 1)
        assert symbols == SymbolSet.from_range("0", "9") | SymbolSet.single("x")

    def test_range_endpoint_cannot_be_class(self):
        with pytest.raises(SymbolSetError):
            parse_class_body(r"[a-\d]", 1)

    def test_negated_range(self):
        symbols, _ = parse_class_body("[^a-z]", 1)
        assert symbols == SymbolSet.from_range("a", "z").complement()


class TestEscape:
    def test_returns_position_after(self):
        symbols, end = parse_escape(r"\x41B", 0)
        assert symbols == SymbolSet.single("A")
        assert end == 4

    def test_not_an_escape(self):
        with pytest.raises(SymbolSetError):
            parse_escape("abc", 0)
