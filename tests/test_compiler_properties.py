"""Property-based tests: compiler invariants over random automata.

Hypothesis generates structurally diverse homogeneous automata (chains
with local extra edges, random small CC collections); for every routable
one the compiled mapping must satisfy the structural invariants the
simulators and bitstream generator rely on.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.anml import HomogeneousAutomaton, StartKind, merge
from repro.automata.symbols import SymbolSet
from repro.compiler import Compiler, analyse, check
from repro.core.design import CA_P, CA_S
from repro.errors import CompileError
from repro.sim.functional import simulate_mapping
from repro.sim.golden import simulate
from tests.conftest import chain_automaton


@st.composite
def small_cc_collection(draw):
    """A union of several small literal-chain components."""
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    cc_count = draw(st.integers(min_value=1, max_value=12))
    parts = []
    for index in range(cc_count):
        length = rng.randint(1, 30)
        automaton = HomogeneousAutomaton(f"cc{index}")
        previous = None
        for position in range(length):
            low = rng.randrange(0, 250)
            automaton.add_ste(
                f"s{position}",
                SymbolSet.from_range(low, low + rng.randint(0, 5)),
                start=StartKind.ALL_INPUT if position == 0 else StartKind.NONE,
                reporting=position == length - 1,
            )
            if previous:
                automaton.add_edge(previous, f"s{position}")
            previous = f"s{position}"
        # a few extra local edges
        names = automaton.ste_ids()
        for _ in range(rng.randint(0, length // 3)):
            u, v = rng.choice(names), rng.choice(names)
            if u != v:
                automaton.add_edge(u, v)
        parts.append(automaton)
    return merge(parts)


class TestMappingInvariants:
    @given(small_cc_collection())
    @settings(max_examples=40, deadline=None)
    def test_every_ste_mapped_exactly_once(self, automaton):
        mapping = Compiler(CA_P).compile(automaton)
        seen = set()
        for partition in mapping.partitions:
            for ste_id in partition.ste_ids:
                assert ste_id not in seen
                seen.add(ste_id)
        assert seen == set(automaton.ste_ids())

    @given(small_cc_collection())
    @settings(max_examples=40, deadline=None)
    def test_location_index_consistent(self, automaton):
        mapping = Compiler(CA_P).compile(automaton)
        for ste_id, (partition_index, slot) in mapping.location.items():
            partition = mapping.partitions[partition_index]
            assert partition.index == partition_index
            assert partition.ste_ids[slot] == ste_id

    @given(small_cc_collection())
    @settings(max_examples=40, deadline=None)
    def test_partition_capacity_respected(self, automaton):
        mapping = Compiler(CA_P).compile(automaton)
        for partition in mapping.partitions:
            assert 0 < partition.occupancy <= CA_P.partition_size

    @given(small_cc_collection())
    @settings(max_examples=30, deadline=None)
    def test_small_ccs_never_cross_partitions(self, automaton):
        """CCs that fit in one partition are atomic mapping units."""
        from repro.automata.components import connected_components

        mapping = Compiler(CA_P).compile(automaton)
        for members in connected_components(automaton):
            if len(members) <= CA_P.partition_size:
                partitions = {mapping.partition_of(m) for m in members}
                assert len(partitions) == 1

    @given(small_cc_collection())
    @settings(max_examples=25, deadline=None)
    def test_constraints_hold_and_simulation_agrees(self, automaton):
        mapping = Compiler(CA_P).compile(automaton)
        check(mapping)
        rng = random.Random(1)
        data = bytes(rng.randrange(256) for _ in range(300))
        golden = simulate(automaton, data)
        mapped = simulate_mapping(mapping, data)
        assert sorted((r.offset, r.ste_id) for r in mapped.reports) == sorted(
            (r.offset, r.ste_id) for r in golden.reports
        )


class TestSplitMappingInvariants:
    @pytest.mark.parametrize("seed", range(4))
    def test_split_cc_wire_budget(self, seed):
        automaton = chain_automaton(
            500 + seed * 137, extra_edges=200, seed=seed, automaton_id=f"r{seed}"
        )
        mapping = Compiler(CA_P).compile(automaton)
        report = analyse(mapping)
        # Either it satisfies the budget, or check() must reject it —
        # never a silently-invalid mapping.
        if report.satisfied:
            check(mapping)
        else:
            with pytest.raises(CompileError):
                check(mapping)

    @pytest.mark.parametrize("design", [CA_P, CA_S], ids=lambda d: d.name)
    def test_determinism(self, design):
        automaton = chain_automaton(700, extra_edges=300, seed=9)
        first = Compiler(design).compile(automaton)
        second = Compiler(design).compile(automaton)
        assert [p.ste_ids for p in first.partitions] == [
            p.ste_ids for p in second.partitions
        ]


class TestSuiteScaling:
    def test_scale_grows_automata(self):
        from repro.workloads.suite import build_suite

        small = build_suite(0.5)[0].build()
        large = build_suite(1.5)[0].build()
        assert len(large) > len(small) * 2

    def test_invalid_scale(self):
        from repro.errors import ReproError
        from repro.workloads.suite import build_suite

        with pytest.raises(ReproError):
            build_suite(0)

    def test_scaled_suite_still_compiles(self):
        from repro.compiler import compile_automaton
        from repro.workloads.suite import build_suite

        benchmark = build_suite(2.0)[6]  # Bro217 at 2x
        mapping = compile_automaton(benchmark.build(), CA_P)
        assert mapping.partition_count >= 1
