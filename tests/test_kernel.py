"""Tests for the packed-bitset simulation kernel (`repro.sim.kernel`).

Three layers of evidence:

* unit tests of the packed-word primitives (pack/unpack, match matrix,
  dense and CSR successor propagation, the idle fast path);
* the chunk-boundary contract: splitting any input at *every* offset and
  resuming from the checkpoint must reproduce a single-shot run exactly —
  reports, activity profiles, and per-partition counts — for workloads
  drawn from the evaluation suite;
* multi-stream batching (`MappedSimulator.run_many`) must be bit-for-bit
  identical to running each stream alone.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_automaton
from repro.core.design import CA_P
from repro.errors import SimulationError
from repro.regex.compile import compile_patterns
from repro.sim import kernel as kernel_module
from repro.sim.functional import MappedSimulator
from repro.sim.golden import GoldenSimulator
from repro.sim.kernel import BitsetKernel, as_symbols, popcount_rows
from repro.workloads.suite import build_suite

N_BITS = 100


def random_tables(seed: int, n_bits: int = N_BITS):
    rng = random.Random(seed)
    successors = [
        rng.getrandbits(n_bits) if rng.random() < 0.4 else 0
        for _ in range(n_bits)
    ]
    match_table = [rng.getrandbits(n_bits) for _ in range(256)]
    start_all = rng.getrandbits(n_bits)
    return successors, match_table, start_all


def make_kernel(seed: int = 1, **kwargs) -> BitsetKernel:
    successors, match_table, start_all = random_tables(seed)
    return BitsetKernel(
        N_BITS, successors, match_table, start_all, 0, 0, **kwargs
    )


class TestPacking:
    @given(st.integers(min_value=0, max_value=(1 << N_BITS) - 1))
    @settings(max_examples=50, deadline=None)
    def test_pack_unpack_roundtrip(self, value):
        kernel = BitsetKernel(N_BITS, [0] * N_BITS, [0] * 256, 0, 0, 0)
        assert kernel.unpack(kernel.pack(value)) == value

    def test_pack_rejects_oversized_vector(self):
        kernel = BitsetKernel(8, [0] * 8, [0] * 256, 0, 0, 0)
        with pytest.raises(SimulationError):
            kernel.pack(1 << 200)

    def test_bit_indices(self):
        kernel = BitsetKernel(N_BITS, [0] * N_BITS, [0] * 256, 0, 0, 0)
        value = (1 << 0) | (1 << 63) | (1 << 64) | (1 << 99)
        assert kernel.bit_indices(kernel.pack(value)).tolist() == [0, 63, 64, 99]

    def test_match_matrix_rows(self):
        kernel = make_kernel(seed=3)
        _, match_table, _ = random_tables(3)
        for symbol in (0, 17, 255):
            assert kernel.unpack(kernel.match_matrix[symbol]) == match_table[symbol]

    def test_popcount_rows(self):
        kernel = make_kernel(seed=4)
        rows = np.stack([kernel.pack(0b1011), kernel.pack((1 << 99) | 1)])
        assert popcount_rows(rows).tolist() == [3, 2]


class TestPopcountFallback:
    """Satellite: installs without ``np.bitwise_count`` (numpy < 2.0)
    take the ``unpackbits`` path — it must agree bit-for-bit."""

    def test_unpackbits_matches_reference(self):
        rng = np.random.default_rng(21)
        rows = rng.integers(0, 1 << 63, size=(9, 4), dtype=np.uint64)
        expected = [
            sum(int(word).bit_count() for word in row) for row in rows
        ]
        assert (
            kernel_module._popcount_rows_unpackbits(rows).tolist()
            == expected
        )
        if hasattr(np, "bitwise_count"):
            assert (
                kernel_module._popcount_rows_native(rows).tolist()
                == expected
            )

    def test_unpackbits_handles_noncontiguous_rows(self):
        rng = np.random.default_rng(3)
        wide = rng.integers(0, 1 << 63, size=(5, 8), dtype=np.uint64)
        view = wide[:, ::2]
        expected = [
            sum(int(word).bit_count() for word in row) for row in view
        ]
        assert (
            kernel_module._popcount_rows_unpackbits(view).tolist()
            == expected
        )

    def test_dispatch_runs_on_fallback(self, monkeypatch):
        monkeypatch.setattr(
            kernel_module,
            "_popcount_rows_impl",
            kernel_module._popcount_rows_unpackbits,
        )
        kernel = make_kernel(seed=4)
        rows = np.stack([kernel.pack(0b1011), kernel.pack((1 << 99) | 1)])
        assert popcount_rows(rows).tolist() == [3, 2]
        assert kernel_module.popcount_row(kernel.pack(0b10110)) == 3


class TestStepCache:
    """The full-cycle step cache behind ``run_chunk``: counters move
    with use, and an overflow flush never changes what a run returns."""

    PATTERNS = ["ab+c", "cat", "d[aeiou]g"]

    def _mapping(self):
        return compile_automaton(compile_patterns(self.PATTERNS), CA_P)

    def test_counters_track_hits_and_misses(self):
        simulator = MappedSimulator(self._mapping())
        data = b"abbc cat dig abc dog cat " * 40
        simulator.run(data)
        info = simulator.cache_info()
        assert info["step"]["misses"] > 0
        assert info["step"]["hits"] > 0
        assert info["step"]["flushes"] == 0
        assert info["step"]["size"] == info["step"]["misses"]
        warm_hits = info["step"]["hits"]
        simulator.run(data)
        again = simulator.cache_info()
        assert again["step"]["hits"] > warm_hits
        assert again["step"]["misses"] == info["step"]["misses"]
        assert again["propagate"]["misses"] >= 1

    def test_overflow_flush_preserves_results(self):
        mapping = self._mapping()
        data = b"abbc cat dig abc dog cat " * 40
        expected = reports_of(MappedSimulator(mapping).run(data))
        tiny = MappedSimulator(mapping)
        tiny.kernel._step_limit = 2
        result = tiny.run(data)
        assert reports_of(result) == expected
        info = tiny.cache_info()
        assert info["step"]["flushes"] > 0
        assert info["step"]["size"] <= 2


class TestPropagation:
    def brute_force(self, successors, pattern):
        combined = 0
        for bit in range(N_BITS):
            if (pattern >> bit) & 1:
                combined |= successors[bit]
        return combined

    @given(st.integers(min_value=0, max_value=(1 << N_BITS) - 1))
    @settings(max_examples=40, deadline=None)
    def test_dense_matches_brute_force(self, pattern):
        successors, _, _ = random_tables(7)
        kernel = make_kernel(seed=7)
        row, nonzero = kernel.propagate(kernel.pack(pattern))
        expected = self.brute_force(successors, pattern)
        assert kernel.unpack(row) == expected
        assert nonzero == (expected != 0)

    @given(st.integers(min_value=0, max_value=(1 << N_BITS) - 1))
    @settings(max_examples=40, deadline=None)
    def test_csr_matches_dense(self, pattern):
        dense = make_kernel(seed=9)
        sparse = make_kernel(seed=9, dense_limit=0)
        assert sparse._dense is None
        packed = dense.pack(pattern)
        assert dense.unpack(dense.propagate(packed)[0]) == sparse.unpack(
            sparse.propagate(packed)[0]
        )

    def test_propagate_result_is_cached_and_readonly(self):
        kernel = make_kernel(seed=11)
        packed = kernel.pack(0b101)
        row_a, _ = kernel.propagate(packed)
        row_b, _ = kernel.propagate(kernel.pack(0b101))
        assert row_a is row_b
        with pytest.raises(ValueError):
            row_a[0] = 1

    def test_propagate_matrix_matches_rowwise(self):
        kernel = make_kernel(seed=13)
        rows = np.stack([kernel.pack(1 << i) for i in range(0, N_BITS, 7)])
        out = np.zeros_like(rows)
        kernel.propagate_matrix(rows, out)
        for row, result in zip(rows, out):
            assert kernel.unpack(kernel.propagate(row)[0]) == kernel.unpack(result)


class TestIdleFastPath:
    def test_idle_skip_equals_stepped_run(self):
        """A mostly-idle stream must produce the same matched history as
        symbol-at-a-time stepping (no-skip reference: sod forces the slow
        path, so a resumed run from an active vector exercises both)."""
        machine = compile_patterns(["needle"])
        simulator = GoldenSimulator(machine)
        data = b"x" * 3000 + b"needle" + b"y" * 3000 + b"needle"
        result = simulator.run(data, collect_cycle_stats=True)
        assert result.report_offsets() == [3005, 6011]
        # Idle background cycles still matched the all-input start state
        # whenever the symbol hit its label; cross-check the per-cycle
        # counts against a brute-force count of label hits.
        assert len(result.stats.matched_per_cycle) == len(data)
        assert (
            sum(result.stats.matched_per_cycle)
            == result.stats.total_matched_states
        )

    def test_all_sod_machine_goes_fully_idle(self):
        machine = compile_patterns(["^abc"])
        simulator = GoldenSimulator(machine)
        result = simulator.run(b"abc" + b"z" * 5000 + b"abc")
        assert result.report_offsets() == [2]

    def test_escape_rearms_after_active_burst(self):
        machine = compile_patterns(["ab"])
        simulator = GoldenSimulator(machine)
        data = (b"a" + b"z" * 997) * 4 + b"ab"
        result = simulator.run(data)
        assert result.report_offsets() == [len(data) - 1]


WORKLOAD_NAMES = ["Bro217", "ExactMatch", "PowerEN", "Levenshtein"]


@pytest.fixture(scope="module")
def workloads():
    """Scaled-down suite entries: (automaton, mapping, input stream)."""
    by_name = {
        benchmark.name: benchmark for benchmark in build_suite(scale=0.25)
    }
    cases = []
    for name in WORKLOAD_NAMES:
        benchmark = by_name[name]
        automaton = benchmark.build()
        mapping = compile_automaton(automaton, CA_P)
        data = benchmark.input_stream(240, seed=3)
        cases.append((name, automaton, mapping, data))
    return cases


def profile_tuple(profile):
    return (
        profile.symbols,
        profile.partition_activations,
        profile.g1_crossings,
        profile.g4_crossings,
        profile.g1_switch_activations,
        profile.g4_switch_activations,
        profile.reports,
    )


def reports_of(result):
    return [(r.offset, r.ste_id, r.report_code) for r in result.reports]


class TestChunkBoundaryContract:
    """Satellite: resuming at every split offset == one single-shot run."""

    def test_golden_every_offset(self, workloads):
        for name, automaton, _, data in workloads:
            simulator = GoldenSimulator(automaton)
            full = simulator.run(data, collect_cycle_stats=True)
            for split in range(len(data) + 1):
                first = simulator.run(data[:split], collect_cycle_stats=True)
                second = simulator.run(
                    data[split:], collect_cycle_stats=True,
                    resume=first.checkpoint,
                )
                assert reports_of(first) + reports_of(second) == reports_of(
                    full
                ), (name, split)
                assert (
                    first.stats.matched_per_cycle
                    + second.stats.matched_per_cycle
                    == full.stats.matched_per_cycle
                ), (name, split)
                assert second.checkpoint == full.checkpoint, (name, split)

    def test_mapped_every_offset(self, workloads):
        for name, _, mapping, data in workloads:
            simulator = MappedSimulator(mapping)
            full = simulator.run(data, collect_partition_stats=True)
            for split in range(len(data) + 1):
                first = simulator.run(
                    data[:split], collect_partition_stats=True
                )
                second = simulator.run(
                    data[split:], collect_partition_stats=True,
                    resume=first.checkpoint,
                )
                assert reports_of(first) + reports_of(second) == reports_of(
                    full
                ), (name, split)
                merged = first.profile.merged_with(second.profile)
                assert profile_tuple(merged) == profile_tuple(full.profile), (
                    name, split,
                )
                assert (
                    first.partition_activation_counts
                    + second.partition_activation_counts
                    == full.partition_activation_counts
                ).all(), (name, split)
                assert second.checkpoint == full.checkpoint, (name, split)

    def test_split_across_kernel_chunks(self):
        """Splits near the kernel's internal chunk boundary are exact."""
        from repro.sim.kernel import CHUNK_SYMBOLS

        machine = compile_patterns(["abab", "ba+b"])
        simulator = GoldenSimulator(machine)
        rng = random.Random(5)
        data = bytes(rng.choice(b"ab") for _ in range(CHUNK_SYMBOLS + 64))
        full = simulator.run(data)
        for split in (CHUNK_SYMBOLS - 1, CHUNK_SYMBOLS, CHUNK_SYMBOLS + 1):
            first = simulator.run(data[:split])
            second = simulator.run(data[split:], resume=first.checkpoint)
            assert reports_of(first) + reports_of(second) == reports_of(full)

    @given(st.binary(max_size=80), st.integers(min_value=0, max_value=80))
    @settings(max_examples=60, deadline=None)
    def test_property_any_split(self, data, split):
        machine = compile_patterns(["ab", "b+c", "^x"])
        simulator = GoldenSimulator(machine)
        split = min(split, len(data))
        full = simulator.run(data)
        first = simulator.run(data[:split])
        second = simulator.run(data[split:], resume=first.checkpoint)
        assert reports_of(first) + reports_of(second) == reports_of(full)


class TestMultiStream:
    def test_run_many_equals_individual_runs(self, workloads):
        for name, _, mapping, _ in workloads:
            simulator = MappedSimulator(mapping)
            by_name = {
                benchmark.name: benchmark
                for benchmark in build_suite(scale=0.25)
            }
            streams = [
                by_name[name].input_stream(300, seed=seed)
                for seed in range(4)
            ] + [b""]
            batched = simulator.run_many(
                streams, collect_partition_stats=True, collect_records=True,
                collect_cycle_stats=True,
            )
            for stream, result in zip(streams, batched):
                solo = simulator.run(
                    stream, collect_partition_stats=True,
                    collect_records=True, collect_cycle_stats=True,
                )
                assert reports_of(result) == reports_of(solo), name
                assert result.stats == solo.stats, name
                assert profile_tuple(result.profile) == profile_tuple(
                    solo.profile
                ), name
                assert (
                    result.partition_activation_counts
                    == solo.partition_activation_counts
                ).all(), name
                assert result.output_records == solo.output_records, name
                assert result.checkpoint == solo.checkpoint, name
                assert result.output_buffer == solo.output_buffer, name

    def test_run_many_resumed_chunks_equal_single_shot(self, workloads):
        name, _, mapping, data = workloads[2]  # PowerEN
        simulator = MappedSimulator(mapping)
        full = simulator.run(data)
        # Feed three streams in unequal chunks through resumed batches.
        streams = [data, data[:150], data[50:]]
        cursors = [0] * len(streams)
        checkpoints = [None] * len(streams)
        collected = [[] for _ in streams]
        rng = random.Random(9)
        while any(cursor < len(s) for cursor, s in zip(cursors, streams)):
            chunks = []
            for index, stream in enumerate(streams):
                step = rng.choice([0, 7, 33, 80])
                chunks.append(stream[cursors[index] : cursors[index] + step])
                cursors[index] = min(cursors[index] + step, len(stream))
            results = simulator.run_many(chunks, resumes=checkpoints)
            checkpoints = [result.checkpoint for result in results]
            for index, result in enumerate(results):
                collected[index].extend(reports_of(result))
        assert collected[0] == reports_of(full)
        solo_b = simulator.run(streams[1])
        assert collected[1] == reports_of(solo_b)

    def test_run_many_checkpoint_mismatch(self):
        machine = compile_patterns(["a"])
        simulator = MappedSimulator(compile_automaton(machine, CA_P))
        with pytest.raises(SimulationError):
            simulator.run_many([b"a", b"b"], resumes=[None])

    def test_run_many_empty(self):
        machine = compile_patterns(["a"])
        simulator = MappedSimulator(compile_automaton(machine, CA_P))
        assert simulator.run_many([]) == []


class TestInputValidation:
    """Satellite: both simulators reject bad input identically."""

    @pytest.mark.parametrize("bad", ["text", 17, None, [1, 2]])
    def test_identical_errors(self, bad):
        machine = compile_patterns(["a"])
        golden = GoldenSimulator(machine)
        mapped = MappedSimulator(compile_automaton(machine, CA_P))
        with pytest.raises(SimulationError) as golden_error:
            golden.run(bad)
        with pytest.raises(SimulationError) as mapped_error:
            mapped.run(bad)
        assert str(golden_error.value) == str(mapped_error.value)
        assert "bytes-like" in str(golden_error.value)

    def test_run_many_validates_every_stream(self):
        machine = compile_patterns(["a"])
        simulator = MappedSimulator(compile_automaton(machine, CA_P))
        with pytest.raises(SimulationError):
            simulator.run_many([b"ok", "bad"])

    def test_bytearray_and_memoryview_accepted(self):
        machine = compile_patterns(["ab"])
        golden = GoldenSimulator(machine)
        assert golden.run(bytearray(b"ab")).report_offsets() == [1]
        assert golden.run(memoryview(b"ab")).report_offsets() == [1]
        assert as_symbols(b"ab").tolist() == [97, 98]
