"""Property-based regex differential testing.

Hypothesis generates random pattern syntax trees, renders them to pattern
strings, and checks our whole stack — parser, Glushkov construction,
golden simulator — against Python's ``re`` on random inputs, using the
substring-membership oracle.  Nullable patterns (which spatial automata
reject by design) are filtered out.
"""

import re

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import RegexError
from repro.regex.compile import compile_pattern
from repro.sim.golden import match_offsets

ALPHABET = "abcd"


@st.composite
def pattern_strings(draw, depth=3):
    """Render a random regex over a tiny alphabet."""

    def atom():
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            return draw(st.sampled_from(ALPHABET))
        if kind == 1:
            members = draw(
                st.lists(st.sampled_from(ALPHABET), min_size=1, max_size=3)
            )
            return "[" + "".join(sorted(set(members))) + "]"
        if kind == 2:
            return "."
        return draw(st.sampled_from(ALPHABET))

    def node(level):
        if level <= 0:
            return atom()
        kind = draw(st.integers(min_value=0, max_value=4))
        if kind == 0:
            return node(level - 1) + node(level - 1)
        if kind == 1:
            return f"(?:{node(level - 1)}|{node(level - 1)})"
        if kind == 2:
            return f"(?:{node(level - 1)})*"
        if kind == 3:
            low = draw(st.integers(min_value=1, max_value=2))
            high = low + draw(st.integers(min_value=0, max_value=2))
            return f"(?:{node(level - 1)}){{{low},{high}}}"
        return atom()

    return node(depth)


def oracle_ends(pattern: str, text: str) -> list:
    compiled = re.compile(pattern, re.DOTALL)
    return [
        j
        for j in range(len(text))
        if any(compiled.fullmatch(text, i, j + 1) for i in range(j + 1))
    ]


class TestDifferential:
    @given(pattern_strings(), st.text(alphabet=ALPHABET + "x", max_size=25))
    @settings(max_examples=150, deadline=None)
    def test_matches_python_re(self, pattern, text):
        try:
            machine = compile_pattern(pattern)
        except RegexError:
            assume(False)  # nullable pattern: rejected by design
            return
        assert match_offsets(machine, text.encode()) == oracle_ends(
            pattern, text
        ), pattern

    @given(pattern_strings())
    @settings(max_examples=60, deadline=None)
    def test_glushkov_state_count_is_position_count(self, pattern):
        """Glushkov machines have exactly one state per literal position."""
        from repro.regex.parser import parse

        try:
            machine = compile_pattern(pattern)
        except RegexError:
            assume(False)
            return
        assert len(machine) == parse(pattern).position_count()

    @given(pattern_strings(), st.text(alphabet=ALPHABET, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_space_optimize_preserves_language(self, pattern, text):
        from repro.automata.optimize import space_optimize

        try:
            machine = compile_pattern(pattern)
        except RegexError:
            assume(False)
            return
        optimised = space_optimize(machine)
        data = text.encode()
        assert match_offsets(optimised, data) == match_offsets(machine, data)

    @given(pattern_strings(), st.text(alphabet=ALPHABET, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_compiled_mapping_matches(self, pattern, text):
        """End to end: random regex -> compile to cache -> scan."""
        from repro.compiler import compile_automaton
        from repro.core.design import CA_P
        from repro.sim.functional import simulate_mapping

        try:
            machine = compile_pattern(pattern)
        except RegexError:
            assume(False)
            return
        mapping = compile_automaton(machine, CA_P)
        result = simulate_mapping(mapping, text.encode())
        assert result.report_offsets() == oracle_ends(pattern, text)


class TestThompsonDifferential:
    @given(pattern_strings(), st.text(alphabet=ALPHABET, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_thompson_path_matches_re(self, pattern, text):
        """Independent construction path: Thompson -> epsilon removal ->
        homogenisation must also agree with Python re."""
        from repro.automata.anml import StartKind
        from repro.automata.epsilon import remove_epsilon
        from repro.automata.transform import to_homogeneous
        from repro.errors import ReproError
        from repro.regex.parser import parse
        from repro.regex.thompson import build_thompson

        try:
            parsed = parse(pattern)
            nfa = remove_epsilon(build_thompson(parsed))
            machine = to_homogeneous(nfa, start=StartKind.ALL_INPUT)
        except ReproError:
            assume(False)  # nullable patterns cannot be homogenised
            return
        assert match_offsets(machine, text.encode()) == oracle_ends(
            pattern, text
        ), pattern

    @given(pattern_strings())
    @settings(max_examples=40, deadline=None)
    def test_exact_equivalence_of_constructions(self, pattern):
        """Glushkov and Thompson paths are *formally* equivalent (checked
        with the product-DFA equivalence oracle, not sampling)."""
        from repro.automata.anml import StartKind
        from repro.automata.epsilon import remove_epsilon
        from repro.automata.equivalence import report_equivalent
        from repro.automata.transform import to_homogeneous
        from repro.errors import ReproError
        from repro.regex.parser import parse
        from repro.regex.thompson import build_thompson

        try:
            machine = compile_pattern(pattern)
            thompson = to_homogeneous(
                remove_epsilon(build_thompson(parse(pattern))),
                start=StartKind.ALL_INPUT,
            )
        except ReproError:
            assume(False)
            return
        assert report_equivalent(machine, thompson, max_states=20_000), pattern
