"""Tests for the regex parser and AST."""

import pytest

from repro.automata.symbols import SymbolSet
from repro.errors import RegexSyntaxError
from repro.regex.ast import (
    Alternation,
    Concat,
    Empty,
    Literal,
    Star,
    count_positions,
    desugar_repeat,
    nullable,
)
from repro.regex.parser import DOT, parse, parse_many


class TestAtoms:
    def test_literal_sequence(self):
        pattern = parse("abc")
        assert pattern.position_count() == 3
        assert not pattern.anchored_start
        assert not pattern.anchored_end

    def test_dot_excludes_newline(self):
        pattern = parse("a.b")
        assert "\n" not in DOT
        assert DOT.cardinality() == 255

    def test_class(self):
        pattern = parse("[a-c]x")
        assert isinstance(pattern.root, Concat)
        assert pattern.root.left.symbols == SymbolSet.from_range("a", "c")

    def test_escape(self):
        pattern = parse(r"\d\.")
        assert pattern.position_count() == 2

    def test_group(self):
        assert parse("(ab)c").position_count() == 3
        assert parse("(?:ab)c").position_count() == 3

    def test_unsupported_group_kind(self):
        with pytest.raises(RegexSyntaxError):
            parse("(?=ab)")


class TestQuantifiers:
    def test_star_plus_question(self):
        assert nullable(parse("a*").root)
        assert not nullable(parse("a+").root)
        assert nullable(parse("a?").root)

    def test_plus_positions(self):
        # a+ == a a*: one consumed position plus the star's.
        assert parse("a+").position_count() == 2

    def test_counted_exact(self):
        assert parse("a{3}").position_count() == 3

    def test_counted_range(self):
        assert parse("a{2,4}").position_count() == 4

    def test_counted_open(self):
        assert parse("a{2,}").position_count() == 3  # a a a*

    def test_lazy_modifier_accepted(self):
        assert parse("a+?b").position_count() == 3
        assert parse("a*?b").position_count() == 2

    def test_quantifier_without_atom(self):
        for bad in ("*a", "+a", "?a", "{2}a"):
            with pytest.raises(RegexSyntaxError):
                parse(bad)

    def test_reversed_bounds(self):
        with pytest.raises(RegexSyntaxError):
            parse("a{4,2}")

    def test_unclosed_brace(self):
        with pytest.raises(RegexSyntaxError):
            parse("a{2")

    def test_brace_without_digits(self):
        with pytest.raises(RegexSyntaxError):
            parse("a{x}")

    def test_huge_expansion_capped(self):
        with pytest.raises(RegexSyntaxError):
            parse("a{1,100000}")


class TestAlternationAnchors:
    def test_alternation(self):
        pattern = parse("ab|cd|ef")
        assert pattern.position_count() == 6

    def test_empty_branch_makes_nullable(self):
        assert nullable(parse("a|").root)

    def test_start_anchor(self):
        assert parse("^abc").anchored_start
        assert not parse("abc").anchored_start

    def test_end_anchor(self):
        assert parse("abc$").anchored_end

    def test_interior_anchor_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("a^b")

    def test_unbalanced_parens(self):
        with pytest.raises(RegexSyntaxError):
            parse("(ab")
        with pytest.raises(RegexSyntaxError):
            parse("ab)")

    def test_empty_pattern(self):
        with pytest.raises(RegexSyntaxError):
            parse("")

    def test_error_carries_offset(self):
        try:
            parse("abc[")
        except RegexSyntaxError as error:
            assert error.position >= 3
            assert "abc[" in str(error)
        else:
            pytest.fail("expected RegexSyntaxError")


class TestParseMany:
    def test_annotates_rule_index(self):
        with pytest.raises(RegexSyntaxError, match="rule 1"):
            parse_many(["good", "bad["])

    def test_all_good(self):
        assert len(parse_many(["a", "b", "c"])) == 3


class TestDesugarRepeat:
    def test_zero_to_none_is_star(self):
        node = desugar_repeat(Literal(SymbolSet.single("a")), 0, None)
        assert isinstance(node, Star)

    def test_exact_three(self):
        node = desugar_repeat(Literal(SymbolSet.single("a")), 3, 3)
        assert count_positions(node) == 3
        assert not nullable(node)

    def test_zero_to_two_nullable(self):
        node = desugar_repeat(Literal(SymbolSet.single("a")), 0, 2)
        assert count_positions(node) == 2
        assert nullable(node)

    def test_bad_bounds(self):
        with pytest.raises(RegexSyntaxError):
            desugar_repeat(Empty(), -1, None)

    def test_nested_optional_structure(self):
        # x{1,3} = x (x (x)?)? -- alternations with Empty on the right.
        node = desugar_repeat(Literal(SymbolSet.single("x")), 1, 3)
        assert isinstance(node, Concat)
        assert isinstance(node.right, Alternation)
