"""Tests for DOT export, slice accounting, and CBOX output records."""

import pytest

from repro.automata.dot import automaton_to_dot, mapping_to_dot
from repro.compiler import compile_automaton
from repro.core.design import CA_P
from repro.regex.compile import compile_patterns, literal_pattern
from repro.sim.functional import simulate_mapping
from tests.conftest import chain_automaton


class TestAutomatonDot:
    def test_basic_structure(self, figure1_automaton):
        dot = automaton_to_dot(figure1_automaton)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        # Every state and edge appears.
        for ste_id in figure1_automaton.ste_ids():
            assert f'"{ste_id}"' in dot
        assert dot.count(" -> ") >= figure1_automaton.edge_count()

    def test_start_and_report_markup(self, figure1_automaton):
        dot = automaton_to_dot(figure1_automaton)
        assert "doublecircle" in dot  # start states
        assert "lightgoldenrod" in dot  # reporting states

    def test_quoting(self):
        machine = compile_patterns(['a"b'])
        dot = automaton_to_dot(machine)
        assert '\\"' in dot

    def test_size_guard(self):
        big = chain_automaton(600, seed=1)
        with pytest.raises(ValueError):
            automaton_to_dot(big)
        assert automaton_to_dot(big, max_states=None)


class TestMappingDot:
    def test_clusters_and_colours(self):
        machine = literal_pattern("z" * 500)  # 2 partitions, G1 edges
        mapping = compile_automaton(machine, CA_P)
        dot = mapping_to_dot(mapping)
        assert dot.count("subgraph cluster_p") == mapping.partition_count
        assert "color=blue" in dot  # within-way crossing

    def test_local_edges_uncoloured(self, figure1_automaton):
        mapping = compile_automaton(figure1_automaton, CA_P)
        dot = mapping_to_dot(mapping)
        assert "color=blue" not in dot
        assert "color=red" not in dot


class TestSliceAccounting:
    def test_single_slice(self, figure1_automaton):
        mapping = compile_automaton(figure1_automaton, CA_P)
        assert mapping.slices_used == 1
        partition = mapping.partitions[0]
        assert partition.slice_index(CA_P.ways_used) == 0
        assert partition.way_in_slice(CA_P.ways_used) == partition.way

    def test_way_in_slice_wraps(self):
        from repro.compiler.mapping import MappedPartition

        partition = MappedPartition(index=0, way=11)
        assert partition.slice_index(8) == 1
        assert partition.way_in_slice(8) == 3


class TestOutputRecords:
    def test_records_match_reports(self):
        machine = compile_patterns(["ab", "cd"])
        mapping = compile_automaton(machine, CA_P)
        result = simulate_mapping(mapping, b"abxcd", collect_records=True)
        assert len(result.output_records) == 2
        by_counter = {record.symbol_counter: record for record in result.output_records}
        assert set(by_counter) == {1, 4}
        assert by_counter[1].symbol == ord("b")
        assert by_counter[4].symbol == ord("d")
        for record in result.output_records:
            assert record.active_state_mask != 0
            assert record.partition == 0

    def test_mask_identifies_slots(self):
        machine = compile_patterns(["ab"])
        mapping = compile_automaton(machine, CA_P)
        result = simulate_mapping(mapping, b"ab", collect_records=True)
        record = result.output_records[0]
        slot = mapping.location[
            next(s.ste_id for s in machine.stes() if s.reporting)
        ][1]
        assert record.active_state_mask >> slot & 1

    def test_disabled_by_default(self):
        machine = compile_patterns(["ab"])
        mapping = compile_automaton(machine, CA_P)
        result = simulate_mapping(mapping, b"ab")
        assert result.output_records == []
