"""Tests for mapping utilisation / activity profiling."""

import pytest

from repro.compiler import compile_automaton
from repro.core.design import CA_P
from repro.core.energy import EnergyModel
from repro.errors import SimulationError
from repro.eval.profiling import (
    energy_breakdown,
    hottest_partitions,
    partition_activity,
    profile_mapping,
    utilisation_report,
    way_load,
)
from repro.regex.compile import literal_pattern
from repro.sim.functional import simulate_mapping
from repro.workloads.suite import get_benchmark


@pytest.fixture(scope="module")
def profiled():
    benchmark = get_benchmark("Snort")
    mapping = compile_automaton(benchmark.build(), CA_P)
    data = benchmark.input_stream(3000, seed=21)
    return mapping, profile_mapping(mapping, data)


class TestPartitionActivity:
    def test_counts_align_with_profile(self, profiled):
        mapping, result = profiled
        activities = partition_activity(mapping, result)
        assert len(activities) == mapping.partition_count
        assert (
            sum(a.activation_cycles for a in activities)
            == result.profile.partition_activations
        )

    def test_duty_cycle_bounds(self, profiled):
        mapping, result = profiled
        for activity in partition_activity(mapping, result):
            assert 0.0 <= activity.duty_cycle <= 1.0
            assert 0.0 < activity.fill_fraction <= 1.0

    def test_unprofiled_run_rejected(self, profiled):
        mapping, _ = profiled
        plain = simulate_mapping(mapping, b"abc")
        with pytest.raises(SimulationError):
            partition_activity(mapping, plain)

    def test_start_partition_is_hottest(self):
        """For a literal chain, the partition with the all-input start
        state is active every cycle; downstream partitions almost never."""
        machine = literal_pattern("q" * 600)
        mapping = compile_automaton(machine, CA_P)
        result = profile_mapping(mapping, b"x" * 500)
        activities = partition_activity(mapping, result)
        start_partition = mapping.partition_of("lit0")
        hottest = hottest_partitions(activities, 1)[0]
        assert hottest.index == start_partition
        assert hottest.duty_cycle == 1.0


class TestWayLoad:
    def test_rows_cover_all_ways(self, profiled):
        mapping, result = profiled
        rows = way_load(partition_activity(mapping, result))
        assert len(rows) - 1 == mapping.ways_used


class TestEnergyBreakdown:
    def test_components_sum_to_model_total(self, profiled):
        mapping, result = profiled
        breakdown = energy_breakdown(mapping, result.profile)
        model_total = EnergyModel(CA_P).energy_per_symbol_nj(result.profile)
        assert breakdown.total_pj / 1000 == pytest.approx(model_total, rel=1e-9)

    def test_l_switch_dominates_array(self, profiled):
        """0.191 pJ/bit x 256 outputs > the 22 pJ array read."""
        mapping, result = profiled
        breakdown = energy_breakdown(mapping, result.profile)
        assert breakdown.l_switch_pj > breakdown.array_pj

    def test_rows_structure(self, profiled):
        mapping, result = profiled
        rows = energy_breakdown(mapping, result.profile).rows()
        assert rows[0][0] == "Component"
        assert len(rows) == 5

    def test_empty_profile_rejected(self, profiled):
        from repro.core.energy import ActivityProfile

        mapping, _ = profiled
        with pytest.raises(SimulationError):
            energy_breakdown(mapping, ActivityProfile())


class TestReport:
    def test_utilisation_report(self, profiled):
        mapping, result = profiled
        rows = utilisation_report(mapping, result)
        assert len(rows) - 1 == mapping.partition_count
        assert rows[1][3].endswith("%")


class TestCompileProfile:
    def test_phase_breakdown(self):
        from repro.eval.profiling import profile_compile
        from tests.conftest import chain_automaton

        profile, mapping = profile_compile(
            chain_automaton(500, seed=2), CA_P
        )
        assert mapping.partition_count >= 1
        assert profile.states == 500
        for phase in ("validate", "components", "pack", "split", "place",
                      "check", "bitstream"):
            assert phase in profile.phases
        # Sub-phases decompose the split phase, never exceed it wildly
        # (timer nesting means tiny skews are possible, not factors).
        assert profile.total_ms > 0.0
        rows = profile.rows()
        assert rows[0] == ("Phase", "ms", "Share")
        assert rows[-1][0] == "total"

    def test_no_bitstream_flag(self):
        from repro.eval.profiling import profile_compile
        from tests.conftest import chain_automaton

        profile, _ = profile_compile(
            chain_automaton(300, seed=4), CA_P, include_bitstream=False
        )
        assert "bitstream" not in profile.phases
