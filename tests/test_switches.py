"""Tests for the 8T crossbar switch models (Table 2)."""

import numpy as np
import pytest

from repro.core.switches import (
    TABLE2_ANCHORS,
    CrossbarSwitch,
    SwitchInventory,
    SwitchSpec,
)
from repro.errors import HardwareModelError


class TestSwitchSpecAnchors:
    """The model must reproduce every published Table 2 value exactly."""

    @pytest.mark.parametrize("dims,expected", sorted(TABLE2_ANCHORS.items()))
    def test_published_delay(self, dims, expected):
        assert SwitchSpec(*dims).delay_ps == pytest.approx(expected[0], rel=1e-6)

    @pytest.mark.parametrize("dims,expected", sorted(TABLE2_ANCHORS.items()))
    def test_published_energy(self, dims, expected):
        assert SwitchSpec(*dims).energy_pj_per_bit == pytest.approx(
            expected[1], rel=1e-6
        )

    @pytest.mark.parametrize("dims,expected", sorted(TABLE2_ANCHORS.items()))
    def test_published_area(self, dims, expected):
        assert SwitchSpec(*dims).area_mm2 == pytest.approx(expected[2], rel=1e-6)


class TestSwitchSpecScaling:
    def test_delay_monotone_in_inputs(self):
        sizes = [64, 128, 200, 256, 400, 512, 1024]
        delays = [SwitchSpec(n, n).delay_ps for n in sizes]
        assert delays == sorted(delays)

    def test_area_monotone_in_crosspoints(self):
        sizes = [64, 128, 256, 512, 1024]
        areas = [SwitchSpec(n, n).area_mm2 for n in sizes]
        assert areas == sorted(areas)

    def test_access_energy_scales_with_outputs(self):
        small = SwitchSpec(256, 128)
        large = SwitchSpec(256, 256)
        assert large.access_energy_pj == pytest.approx(2 * small.access_energy_pj)

    def test_nonpositive_ports_rejected(self):
        with pytest.raises(HardwareModelError):
            SwitchSpec(0, 10)
        with pytest.raises(HardwareModelError):
            SwitchSpec(10, -1)

    def test_str(self):
        assert str(SwitchSpec(280, 256)) == "280x256"


class TestCrossbarFunctional:
    def test_wired_or_semantics(self):
        """An output is the OR of all enabled active inputs (Section 2.7)."""
        switch = CrossbarSwitch(SwitchSpec(4, 3))
        switch.connect(0, 1)
        switch.connect(2, 1)
        switch.connect(3, 0)
        active = np.array([True, False, True, False])
        outputs = switch.evaluate(active)
        assert outputs.tolist() == [False, True, False]

    def test_multi_fan_in(self):
        """Multiple inputs to one output — the feature conventional
        crossbars lack (Section 2.2)."""
        switch = CrossbarSwitch(SwitchSpec(8, 2))
        for source in range(8):
            switch.connect(source, 0)
        assert switch.fan_in(0) == 8
        outputs = switch.evaluate(np.array([False] * 7 + [True]))
        assert outputs[0]

    def test_disconnect(self):
        switch = CrossbarSwitch(SwitchSpec(2, 2))
        switch.connect(0, 0)
        switch.disconnect(0, 0)
        assert not switch.evaluate(np.array([True, True])).any()

    def test_write_mode_row(self):
        """Write mode programs a whole word-line per cycle (Section 2.7)."""
        switch = CrossbarSwitch(SwitchSpec(2, 4))
        switch.write_row(1, np.array([1, 0, 1, 0], dtype=np.uint8))
        outputs = switch.evaluate(np.array([False, True]))
        assert outputs.tolist() == [True, False, True, False]

    def test_write_row_shape_checked(self):
        switch = CrossbarSwitch(SwitchSpec(2, 4))
        with pytest.raises(HardwareModelError):
            switch.write_row(0, np.zeros(3, dtype=np.uint8))

    def test_port_bounds(self):
        switch = CrossbarSwitch(SwitchSpec(2, 2))
        with pytest.raises(HardwareModelError):
            switch.connect(2, 0)
        with pytest.raises(HardwareModelError):
            switch.connect(0, 2)

    def test_evaluate_shape_checked(self):
        switch = CrossbarSwitch(SwitchSpec(4, 4))
        with pytest.raises(HardwareModelError):
            switch.evaluate(np.zeros(3, dtype=bool))

    def test_used_cross_points(self):
        switch = CrossbarSwitch(SwitchSpec(3, 3))
        switch.connect(0, 0)
        switch.connect(1, 2)
        assert switch.used_cross_points() == 2

    def test_no_arbitration_state(self):
        """Evaluation is pure: same inputs, same outputs, no history."""
        switch = CrossbarSwitch(SwitchSpec(3, 3))
        switch.connect(0, 1)
        active = np.array([True, False, False])
        first = switch.evaluate(active)
        second = switch.evaluate(active)
        assert (first == second).all()


class TestInventory:
    def test_total_area_sums_components(self):
        inventory = SwitchInventory(
            local=SwitchSpec(280, 256), local_count=128,
            global_way=SwitchSpec(256, 256), global_way_count=8,
            global_ways4=SwitchSpec(512, 512), global_ways4_count=1,
            supported_states=32 * 1024,
        )
        expected = 128 * 0.033 + 8 * 0.032 + 1 * 0.1293
        assert inventory.total_area_mm2() == pytest.approx(expected, rel=0.01)

    def test_area_scaling(self):
        inventory = SwitchInventory(
            local=SwitchSpec(280, 256), local_count=64,
            global_way=None, global_way_count=0,
            global_ways4=None, global_ways4_count=0,
            supported_states=16 * 1024,
        )
        assert inventory.area_mm2_for_states(32 * 1024) == pytest.approx(
            2 * inventory.total_area_mm2()
        )

    def test_rows_structure(self):
        inventory = SwitchInventory(
            local=SwitchSpec(280, 256), local_count=2,
            global_way=SwitchSpec(128, 128), global_way_count=1,
            global_ways4=None, global_ways4_count=0,
            supported_states=512,
        )
        rows = inventory.rows()
        assert [row[0] for row in rows] == ["L", "G1"]
        assert rows[0][1] == "280x256"
