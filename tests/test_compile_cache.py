"""Content-addressed artifact cache: round trips, keys, invalidation.

The cache key is ``(format version, mapping format, design fingerprint,
automaton fingerprint)``; a hit must reproduce the cold artifacts
bit-for-bit, and any change to the automaton or the design parameters
must miss.
"""

from __future__ import annotations

import random
import threading
from dataclasses import replace

import pytest

from repro.compiler import compile_automaton
from repro.compiler.bitstream import generate
from repro.compiler.cache import (
    CompileCache,
    automaton_fingerprint,
    bitstream_bytes,
    cache_key,
    design_fingerprint,
)
from repro.core.design import CA_64, CA_P
from repro.engine import CacheAutomatonEngine
from repro.sim.functional import MappedSimulator
from tests.conftest import chain_automaton


@pytest.fixture()
def cache(tmp_path):
    return CompileCache(tmp_path / "artifacts")


@pytest.fixture()
def automaton():
    return chain_automaton(600, seed=3, automaton_id="cache-test")


class TestFingerprints:
    def test_stable_across_calls(self, automaton):
        assert automaton_fingerprint(automaton) == automaton_fingerprint(
            automaton
        )

    def test_identical_content_same_fingerprint(self):
        first = chain_automaton(200, seed=9, automaton_id="twin")
        second = chain_automaton(200, seed=9, automaton_id="twin")
        assert automaton_fingerprint(first) == automaton_fingerprint(second)

    def test_mutation_changes_fingerprint(self, automaton):
        from repro.automata.symbols import SymbolSet

        before = automaton_fingerprint(automaton)
        automaton.add_ste("extra", SymbolSet.from_range("x", "x"))
        assert automaton_fingerprint(automaton) != before

    def test_design_params_change_key(self, automaton):
        assert cache_key(automaton, CA_P) != cache_key(automaton, CA_64)
        tweaked = replace(CA_P, name="CA_P_tweaked")
        assert design_fingerprint(tweaked) != design_fingerprint(CA_P)
        assert cache_key(automaton, tweaked) != cache_key(automaton, CA_P)


class TestMappingRoundTrip:
    def test_miss_then_hit(self, cache, automaton):
        assert cache.load_mapping(automaton, CA_P) is None
        assert cache.stats.misses == 1
        mapping = compile_automaton(automaton, CA_P)
        assert cache.store_mapping(mapping) is not None
        loaded, tables = cache.load_mapping(automaton, CA_P)
        assert cache.stats.hits == 1
        assert dict(loaded.location) == dict(mapping.location)
        assert [p.ste_ids for p in loaded.partitions] == [
            p.ste_ids for p in mapping.partitions
        ]
        assert [p.way for p in loaded.partitions] == [
            p.way for p in mapping.partitions
        ]
        assert loaded.cache_bytes() == mapping.cache_bytes()
        assert loaded.classify_edges() == mapping.classify_edges()

    def test_lazy_structures_equal_eager(self, cache, automaton):
        mapping = compile_automaton(automaton, CA_P)
        simulator = MappedSimulator(mapping)
        cache.store_mapping(mapping, simulator.packed_tables())
        loaded, tables = cache.load_mapping(automaton, CA_P)
        # Location behaves as a plain dict before materialisation…
        some_id = next(iter(mapping.location))
        assert loaded.location[some_id] == mapping.location[some_id]
        assert some_id in loaded.location
        assert len(loaded.location) == len(mapping.location)
        # …and the restored kernel tables rebuild an equivalent simulator.
        assert tables
        warm = MappedSimulator.from_cached(loaded, tables)
        data = bytes(range(256)) * 40
        cold_result = simulator.run(data)
        warm_result = warm.run(data)
        assert [
            (r.offset, r.ste_id, r.report_code) for r in cold_result.reports
        ] == [
            (r.offset, r.ste_id, r.report_code) for r in warm_result.reports
        ]

    def test_different_design_misses(self, cache, automaton):
        mapping = compile_automaton(automaton, CA_P)
        cache.store_mapping(mapping)
        assert cache.load_mapping(automaton, CA_64) is None

    def test_mutated_automaton_misses(self, cache, automaton):
        from repro.automata.symbols import SymbolSet

        mapping = compile_automaton(automaton, CA_P)
        cache.store_mapping(mapping)
        automaton.add_ste("tail", SymbolSet.from_range("q", "q"))
        assert cache.load_mapping(automaton, CA_P) is None

    def test_corrupt_artifact_is_a_miss(self, cache, automaton):
        mapping = compile_automaton(automaton, CA_P)
        path = cache.store_mapping(mapping)
        path.write_bytes(b"not an npz archive")
        assert cache.load_mapping(automaton, CA_P) is None


class TestBitstreamRoundTrip:
    def test_hit_returns_bit_identical_payload(self, cache, automaton):
        mapping = compile_automaton(automaton, CA_P)
        cold = bitstream_bytes(mapping, cache)
        assert cold == generate(mapping).to_bytes()
        warm = bitstream_bytes(mapping, cache)
        assert warm == cold
        assert cache.stats.hits >= 1

    def test_params_change_busts_key(self, cache, automaton):
        mapping = compile_automaton(automaton, CA_P)
        bitstream_bytes(mapping, cache)
        assert cache.load_bitstream(automaton, CA_64) is None


class TestEngineCachePath:
    def test_warm_engine_matches_cold(self, cache, automaton):
        data = bytes(range(256)) * 40
        cold = CacheAutomatonEngine(automaton, cache=cache)
        assert cold.cache_info()["misses"] == 1
        assert cold.cache_info()["stores"] == 1
        warm = CacheAutomatonEngine(automaton, cache=cache)
        assert warm.cache_info()["hits"] == 1
        assert [
            (m.end, m.state, m.rule) for m in warm.scan(data)
        ] == [(m.end, m.state, m.rule) for m in cold.scan(data)]
        assert warm.cache_bytes == cold.cache_bytes
        assert warm.mapping.partition_count == cold.mapping.partition_count

    def test_disabled_cache_reports_zeroes(self, automaton):
        engine = CacheAutomatonEngine(automaton, cache=None)
        assert engine.cache_info() == {
            "hits": 0, "misses": 0, "bypasses": 0, "stores": 0,
            "quarantines": 0, "retries": 0,
        }

    def test_optimize_bypasses_cache(self, cache, automaton):
        engine = CacheAutomatonEngine(automaton, cache=cache, optimize=True)
        assert engine.cache_info()["bypasses"] == 1
        assert engine.cache_info()["hits"] == 0

    def test_disabled_directory_behaves_uncached(self, automaton, tmp_path):
        cache = CompileCache(tmp_path / "off", enabled=False)
        first = CacheAutomatonEngine(automaton, cache=cache)
        second = CacheAutomatonEngine(automaton, cache=cache)
        assert second.cache_info()["hits"] == 0


class TestRetryJitter:
    """Transient-I/O retries back off with *jittered* exponential
    delays: half deterministic, half uniform-random, so concurrent
    engine constructors hammering one cache directory decorrelate."""

    def test_sleeps_counted_and_jittered(self, tmp_path, monkeypatch):
        sleeps = []
        monkeypatch.setattr(
            "repro.compiler.cache.time.sleep", sleeps.append
        )
        cache = CompileCache(
            tmp_path / "flaky",
            retry_attempts=4,
            retry_backoff=0.1,
            retry_rng=random.Random(0),
        )
        failures = iter([OSError("transient"), OSError("transient")])

        def flaky_operation():
            try:
                raise next(failures)
            except StopIteration:
                return "ok"

        assert cache._with_retries(flaky_operation) == "ok"
        # Two transient failures -> exactly two counted backoff sleeps,
        # each equal-jittered within (ceiling/2, ceiling] of the
        # exponential ceiling for its attempt.
        assert len(sleeps) == 2
        assert cache.stats.retries == 2
        for attempt, delay in enumerate(sleeps, start=1):
            ceiling = 0.1 * (2 ** (attempt - 1))
            assert ceiling * 0.5 <= delay <= ceiling

    def test_jitter_is_seeded(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.compiler.cache.time.sleep", lambda _: None)

        def delays(seed):
            cache = CompileCache(
                tmp_path / f"seeded-{seed}",
                retry_rng=random.Random(seed),
            )
            return [cache._retry_delay(attempt) for attempt in (1, 2, 3)]

        assert delays(1) == delays(1)
        assert delays(1) != delays(2)

    def test_exhaustion_reraises(self, tmp_path, monkeypatch):
        sleeps = []
        monkeypatch.setattr(
            "repro.compiler.cache.time.sleep", sleeps.append
        )
        cache = CompileCache(
            tmp_path / "dead",
            retry_attempts=3,
            retry_backoff=0.05,
            retry_rng=random.Random(7),
        )

        def always_failing():
            raise OSError("persistent")

        with pytest.raises(OSError):
            cache._with_retries(always_failing)
        assert len(sleeps) == 2  # attempts 1..2 back off; 3rd raises


class TestConcurrentTierChain:
    def test_quarantine_race_lands_both_healthy(self, tmp_path, automaton):
        """Two engines, one cache directory, a corrupt artifact on disk:
        both constructors race through the warm-cache -> quarantine ->
        recompile chain, and whatever interleaving the threads take,
        both must land on a healthy (non-golden) tier with identical
        scan results."""
        directory = tmp_path / "shared"
        seeder = CompileCache(directory)
        seeder.store_mapping(compile_automaton(automaton, CA_P))
        artifact_path = next(directory.rglob("*.npz"))
        artifact_path.write_bytes(b"garbage, not an npz archive")

        barrier = threading.Barrier(2)
        results = {}
        data = bytes(range(256)) * 20

        def build(slot):
            cache = CompileCache(directory)
            barrier.wait()
            engine = CacheAutomatonEngine(automaton, cache=cache)
            results[slot] = (
                engine.health(),
                [(m.end, m.state, m.rule) for m in engine.scan(data)],
            )

        threads = [
            threading.Thread(target=build, args=(slot,)) for slot in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert set(results) == {0, 1}
        healths = [results[slot][0] for slot in (0, 1)]
        for health in healths:
            assert health.tier != "golden-fallback"
            assert health.backend != "golden-interpreter"
        assert results[0][1] == results[1][1]
        # A later constructor gets a clean warm start from whichever
        # thread re-stored the artifact.
        relieved = CacheAutomatonEngine(
            automaton, cache=CompileCache(directory)
        )
        assert relieved.cache_info()["hits"] == 1
        assert relieved.health().tier == "warm-cache"
