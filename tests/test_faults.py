"""Fault injection, detection, and the engine's graceful-degradation chain.

Covers the three layers of the resilience story: the seeded fault
models (deterministic plans, kernel perturbation semantics, parity
detection, outcome classification), the AVF campaign runner, and the
engine/compiler fallbacks (quarantine + recompile on corrupt artifacts,
golden-interpreter fallback on kernel construction failure, serial
fallback only on pool-level failures).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import Compiler, compile_automaton
from repro.compiler import mapping as mapping_module
from repro.compiler.bitstream import generate
from repro.compiler.cache import CompileCache
from repro.core.design import CA_P
from repro.core.switches import CrossbarSwitch, SwitchSpec
from repro.engine import CacheAutomatonEngine
from repro.errors import (
    DegradedModeWarning,
    FaultError,
    HardwareModelError,
    SimulationError,
)
from repro.eval.faults import run_campaign
from repro.faults import (
    ALL_SITES,
    DETECTED,
    MASKED,
    SDC,
    FaultConfig,
    FaultEvent,
    FaultInjector,
    FaultSite,
    FaultySimulator,
    classify,
    draw_event,
)
from repro.regex.compile import compile_patterns
from repro.sim.crossbar import CrossbarLevelSimulator
from repro.sim.functional import MappedSimulator
from repro.sim.golden import match_offsets
from repro.workloads.inputs import LOWERCASE, random_over_alphabet
from tests.conftest import chain_automaton


@pytest.fixture(scope="module")
def automaton():
    return compile_patterns(
        ["bat", "c[ao]t", "dog+"],
        report_codes=["bat", "cat", "dog"],
        automaton_id="faults-test",
    )


@pytest.fixture(scope="module")
def faulty(automaton):
    mapping = compile_automaton(automaton, CA_P)
    return FaultySimulator(MappedSimulator(mapping))


DATA = b"the cat sat on the bat with a dogg and a cot"


class TestFaultModels:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(FaultError, match="match_flip_rate"):
            FaultConfig(match_flip_rate=1.5).validate()
        with pytest.raises(FaultError, match="crossbar_stuck1_rate"):
            FaultConfig(crossbar_stuck1_rate=-0.1).validate()

    def test_enabled_sites(self):
        assert FaultConfig().enabled_sites() == ()
        assert FaultConfig(match_flip_rate=0.1).enabled_sites() == (
            FaultSite.MATCH,
        )
        assert set(ALL_SITES.enabled_sites()) == set(FaultSite)

    def test_event_kind_must_match_site(self):
        with pytest.raises(FaultError, match="match faults"):
            FaultEvent(FaultSite.MATCH, "stuck0", 0, 1).validate()
        with pytest.raises(FaultError, match="target bit"):
            FaultEvent(FaultSite.CROSSBAR, "stuck0", -1, 1).validate()

    def test_persistence_matches_kind(self):
        with pytest.raises(FaultError, match="persistent"):
            FaultEvent(FaultSite.CROSSBAR, "stuck1", 3, 1).validate()
        with pytest.raises(FaultError, match="transient"):
            FaultEvent(FaultSite.MATCH, "flip", -1, 1).validate()


class TestKernelFaults:
    def test_clean_run_matches_golden(self, automaton, faulty):
        reference = faulty.run(DATA)
        assert reference.report_offsets() == match_offsets(automaton, DATA)
        assert reference.detected == ()

    def test_dropped_edge_loses_matches(self, faulty):
        reference = faulty.run(DATA)
        outcomes = set()
        for source, target in faulty.edge_bits:
            event = FaultEvent(FaultSite.CROSSBAR, "stuck0", -1, source, target)
            outcomes.add(classify(faulty.run(DATA, [event]), reference))
        # Dead cross-points can only mask or silently lose matches —
        # parity covers the match array, not the switches.
        assert outcomes <= {MASKED, SDC}
        assert SDC in outcomes

    def test_stuck_high_wire_adds_matches(self, faulty):
        reference = faulty.run(DATA)
        signatures = set()
        for bit in faulty.state_bits.tolist():
            event = FaultEvent(FaultSite.CROSSBAR, "stuck1", -1, bit)
            report = faulty.run(DATA, [event])
            assert report.detected == ()
            signatures.add(report.signature)
        # At least one enable wire held high must corrupt the reports.
        assert any(s != reference.signature for s in signatures)

    def test_match_flip_always_detected(self, faulty):
        reference = faulty.run(DATA)
        for cycle in (0, 7, len(DATA) - 1):
            for bit in faulty.state_bits[:4].tolist():
                event = FaultEvent(FaultSite.MATCH, "flip", cycle, bit)
                report = faulty.run(DATA, [event])
                assert cycle in report.detected
                assert classify(report, reference) == DETECTED

    def test_state_ghost_can_corrupt_silently(self, faulty):
        reference = faulty.run(DATA)
        outcomes = {
            classify(
                faulty.run(
                    DATA, [FaultEvent(FaultSite.STATE, "ghost", cycle, bit)]
                ),
                reference,
            )
            for cycle in range(0, len(DATA), 5)
            for bit in faulty.state_bits.tolist()
        }
        assert outcomes <= {MASKED, SDC}
        assert SDC in outcomes

    def test_with_faults_rejects_csr_edge_drop(self):
        from repro.sim.kernel import BitsetKernel

        kernel = BitsetKernel(
            128, [1 << (i + 1) & ((1 << 128) - 1) for i in range(128)],
            [1] * 256, 1, 0, 1 << 127, dense_limit=0,
        )
        assert "succ_dense" not in kernel.packed_tables()
        with pytest.raises(FaultError, match="dense"):
            kernel.with_faults(drop_edges=((0, 1),))
        # Stuck-high injection works regardless of representation.
        assert kernel.with_faults(stuck_high_bits=(5,)) is not kernel


class TestInjector:
    def test_plan_is_deterministic(self, faulty):
        config = FaultConfig(
            seed=3,
            match_flip_rate=0.01,
            state_drop_rate=0.01,
            state_ghost_rate=0.01,
            crossbar_stuck0_rate=0.05,
            crossbar_stuck1_rate=0.05,
        )
        injector = FaultInjector(config)
        first = injector.plan(512, faulty.state_bits, faulty.edge_bits)
        second = injector.plan(512, faulty.state_bits, faulty.edge_bits)
        assert first == second

    def test_seed_changes_plan(self, faulty):
        plans = {
            FaultInjector(
                FaultConfig(seed=seed, match_flip_rate=0.05)
            ).plan(512, faulty.state_bits, faulty.edge_bits)
            for seed in range(4)
        }
        assert len(plans) > 1

    def test_zero_rates_plan_nothing(self, faulty):
        injector = FaultInjector(FaultConfig())
        assert injector.plan(512, faulty.state_bits, faulty.edge_bits) == ()

    def test_draw_event_targets_enabled_kinds(self, faulty):
        config = FaultConfig(crossbar_stuck1_rate=0.1)
        rng = np.random.default_rng(0)
        for _ in range(8):
            event = draw_event(
                rng, FaultSite.CROSSBAR, config, len(DATA),
                faulty.state_bits, faulty.edge_bits,
            )
            assert event.kind == "stuck1"

    def test_draw_event_needs_states(self, faulty):
        with pytest.raises(FaultError, match="no states"):
            draw_event(
                np.random.default_rng(0), FaultSite.MATCH, ALL_SITES,
                8, np.array([], dtype=np.int64), [],
            )


class TestCrossbarStuckWires:
    def test_switch_stuck_input(self):
        switch = CrossbarSwitch(SwitchSpec(4, 4))
        switch.connect(0, 1)
        switch.connect(2, 3)
        idle = np.zeros(4, dtype=bool)
        assert not switch.evaluate(idle).any()
        switch.set_stuck_input(0, 1)
        assert switch.evaluate(idle).tolist() == [False, True, False, False]
        switch.set_stuck_input(2, 0)
        driven = np.ones(4, dtype=bool)
        assert switch.evaluate(driven).tolist() == [False, True, False, False]
        switch.clear_stuck_faults()
        assert not switch.has_stuck_faults()
        assert switch.evaluate(driven).tolist() == [False, True, False, True]

    def test_switch_stuck_output(self):
        switch = CrossbarSwitch(SwitchSpec(4, 4))
        switch.connect(1, 2)
        switch.set_stuck_output(0, 1)
        switch.set_stuck_output(2, 0)
        active = np.array([False, True, False, False])
        assert switch.evaluate(active).tolist() == [True, False, False, False]

    def test_stuck_value_validated(self):
        switch = CrossbarSwitch(SwitchSpec(4, 4))
        with pytest.raises(HardwareModelError, match="0 or 1"):
            switch.set_stuck_input(0, 2)
        with pytest.raises(HardwareModelError, match="out of range"):
            switch.set_stuck_output(9, 1)

    def test_bitstream_stuck1_equals_kernel_fault(self, automaton, faulty):
        """The structural (bitstream) and kernel fault models agree."""
        mapping = compile_automaton(automaton, CA_P)
        bitstream = generate(mapping)
        size = mapping.design.partition_size
        for bit in faulty.state_bits[:4].tolist():
            crossbar = CrossbarLevelSimulator(
                bitstream, stuck_wires=[(bit // size, bit % size, 1)]
            )
            structural = sorted({r.offset for r in crossbar.run(DATA)})
            kernel_report = faulty.run(
                DATA, [FaultEvent(FaultSite.CROSSBAR, "stuck1", -1, bit)]
            )
            assert structural == kernel_report.report_offsets()

    def test_stuck_wire_coordinates_validated(self, automaton):
        bitstream = generate(compile_automaton(automaton, CA_P))
        with pytest.raises(SimulationError, match="partition"):
            CrossbarLevelSimulator(bitstream, stuck_wires=[(99, 0, 1)])
        with pytest.raises(SimulationError, match="value"):
            CrossbarLevelSimulator(bitstream, stuck_wires=[(0, 0, 7)])


class TestCampaign:
    def test_same_seed_same_result(self, automaton):
        data = random_over_alphabet(1024, LOWERCASE, seed=11)
        first = run_campaign(automaton, data, trials=24, seed=7)
        second = run_campaign(automaton, data, trials=24, seed=7)
        assert first == second

    def test_outcomes_partition_trials(self, automaton):
        data = random_over_alphabet(1024, LOWERCASE, seed=11)
        result = run_campaign(automaton, data, trials=24, seed=7)
        assert sum(result.totals().values()) == 24
        assert sum(row.trials for row in result.rows) == 24
        for row in result.rows:
            assert row.masked + row.detected + row.sdc == row.trials

    def test_match_site_fully_covered(self, automaton):
        data = random_over_alphabet(1024, LOWERCASE, seed=11)
        result = run_campaign(automaton, data, trials=24, seed=7)
        match_row = next(r for r in result.rows if r.site == "match")
        assert match_row.detected == match_row.trials
        assert match_row.coverage == 1.0

    def test_rejects_degenerate_inputs(self, automaton):
        with pytest.raises(FaultError, match="non-empty"):
            run_campaign(automaton, b"", trials=4)
        with pytest.raises(FaultError, match="positive"):
            run_campaign(automaton, b"abc", trials=0)
        with pytest.raises(FaultError, match="no fault sites"):
            run_campaign(automaton, b"abc", trials=4, config=FaultConfig())


class TestEngineDegradation:
    def test_corrupt_artifact_quarantined_and_recompiled(
        self, automaton, tmp_path
    ):
        cache = CompileCache(tmp_path / "artifacts")
        cold = CacheAutomatonEngine(automaton, cache=cache)
        assert cold.health().tier == "cold-compile"
        assert not cold.health().degraded
        [artifact] = list((tmp_path / "artifacts").rglob("*.npz"))
        artifact.write_bytes(b"garbage, not an archive")
        with pytest.warns(DegradedModeWarning, match="quarantine"):
            recovered = CacheAutomatonEngine(automaton, cache=cache)
        health = recovered.health()
        assert health.tier == "recompiled"
        assert health.degraded
        assert health.cache["quarantines"] == 1
        assert any("quarantined" in event for event in health.events)
        assert [m.end for m in recovered.scan(DATA)] == [
            m.end for m in cold.scan(DATA)
        ]
        # The recompile re-stored a good artifact: next engine is warm.
        warm = CacheAutomatonEngine(automaton, cache=cache)
        assert warm.health().tier == "warm-cache"

    def test_rejected_cached_tables_quarantined(
        self, automaton, tmp_path, monkeypatch
    ):
        cache = CompileCache(tmp_path / "artifacts")
        CacheAutomatonEngine(automaton, cache=cache)

        def explode(*_args, **_kwargs):
            raise SimulationError("corrupt kernel tables: synthetic")

        monkeypatch.setattr(MappedSimulator, "from_cached", explode)
        with pytest.warns(DegradedModeWarning, match="rejected"):
            engine = CacheAutomatonEngine(automaton, cache=cache)
        assert engine.health().tier == "recompiled"
        assert engine.health().cache["quarantines"] == 1
        assert [m.rule for m in engine.scan(b"a bat")] == ["bat"]

    def test_golden_fallback_when_kernel_unbuildable(
        self, automaton, monkeypatch
    ):
        class BrokenSimulator:
            def __init__(self, *_args, **_kwargs):
                raise MemoryError("synthetic: cannot pack kernel tables")

        monkeypatch.setattr(
            "repro.engine.MappedSimulator", BrokenSimulator
        )
        with pytest.warns(DegradedModeWarning, match="golden"):
            engine = CacheAutomatonEngine(automaton, cache=None)
        health = engine.health()
        assert health.tier == "golden-fallback"
        assert health.backend == "golden-interpreter"
        assert health.degraded
        # The golden interpreter must serve identical matches...
        assert [m.end for m in engine.scan(DATA)] == match_offsets(
            automaton, DATA
        )
        assert engine.count(DATA) == len(engine.scan(DATA))
        # ...including across checkpointed stream chunks and batches.
        scanner = engine.stream()
        chunked = [m.end for c in (DATA[:10], DATA[10:]) for m in scanner.scan(c)]
        assert chunked == match_offsets(automaton, DATA)
        many = engine.scan_many([DATA, b"a bat"])
        assert [m.end for m in many[0]] == match_offsets(automaton, DATA)

    def test_tampered_kernel_tables_rejected(self, automaton):
        simulator = MappedSimulator(compile_automaton(automaton, CA_P))
        tables = simulator.packed_tables()
        tables["match_matrix"] = tables["match_matrix"][:7]
        with pytest.raises(SimulationError, match="corrupt kernel tables"):
            MappedSimulator.from_cached(simulator.mapping, tables)


class _FakePoolBase:
    """Stand-in for ProcessPoolExecutor (real workers are pickled by
    name, so monkeypatched failures never reach a genuine pool)."""

    def __init__(self, max_workers=None):
        self.max_workers = max_workers

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class TestPoolFallback:
    @pytest.fixture()
    def parallel_setup(self, monkeypatch):
        monkeypatch.setattr(mapping_module, "PARALLEL_SPLIT_MIN_STATES", 0)
        from repro.automata.anml import merge

        chains = [
            chain_automaton(300, seed=23 + i, automaton_id=f"cc{i}")
            for i in range(2)
        ]
        return merge(chains, automaton_id="pool-fallback")

    def test_worker_exception_propagates(self, parallel_setup, monkeypatch):
        class WorkerFails(_FakePoolBase):
            def map(self, _function, _payloads):
                raise ValueError("infeasible split: synthetic worker bug")

        monkeypatch.setattr(
            mapping_module, "ProcessPoolExecutor", WorkerFails
        )
        with pytest.raises(ValueError, match="infeasible split"):
            Compiler(CA_P, jobs=2).compile(parallel_setup)

    def test_broken_pool_degrades_to_serial(self, parallel_setup, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        class PoolBreaks(_FakePoolBase):
            def map(self, _function, _payloads):
                raise BrokenProcessPool("workers died: synthetic")

        monkeypatch.setattr(
            mapping_module, "ProcessPoolExecutor", PoolBreaks
        )
        serial = Compiler(CA_P, jobs=1).compile(parallel_setup)
        with pytest.warns(DegradedModeWarning, match="serial"):
            degraded = Compiler(CA_P, jobs=2).compile(parallel_setup)
        assert dict(degraded.location) == dict(serial.location)

    def test_pool_creation_failure_degrades(self, parallel_setup, monkeypatch):
        class NoFork(_FakePoolBase):
            def __init__(self, max_workers=None):
                raise OSError("fork unavailable: synthetic")

        monkeypatch.setattr(mapping_module, "ProcessPoolExecutor", NoFork)
        with pytest.warns(DegradedModeWarning, match="serial"):
            degraded = Compiler(CA_P, jobs=2).compile(parallel_setup)
        serial = Compiler(CA_P, jobs=1).compile(parallel_setup)
        assert dict(degraded.location) == dict(serial.location)
