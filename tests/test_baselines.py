"""Tests for the AP, CPU, and ASIC baseline models."""

import pytest

from repro.baselines.ap import ApModel, CpuReferenceModel
from repro.baselines.asic import (
    HARE,
    TABLE5_INPUT_BYTES,
    UAP,
    ca_operating_point,
    table5_rows,
)
from repro.baselines.cpu import DfaCpuEngine, try_build_engine
from repro.core.design import CA_P, CA_S
from repro.core.energy import ActivityProfile
from repro.regex.compile import compile_patterns
from repro.sim.golden import match_offsets


class TestApModel:
    def test_throughput_is_line_rate(self):
        ap = ApModel()
        assert ap.throughput_gbps == pytest.approx(0.133 * 8)

    def test_headline_speedups(self):
        """Section 5.1: CA_P is 15x, CA_S 9x over AP; 3840x over CPU."""
        ap = ApModel()
        cpu = CpuReferenceModel()
        assert ap.speedup_of(CA_P) == pytest.approx(15.0, rel=0.01)
        assert ap.speedup_of(CA_S) == pytest.approx(9.0, rel=0.01)
        assert cpu.speedup_of(CA_P) == pytest.approx(3840, rel=0.01)

    def test_runtime(self):
        ap = ApModel()
        assert ap.runtime_ms(133_000_000) == pytest.approx(1000.0)
        with_config = ap.runtime_ms(133_000_000, include_configuration=True)
        assert with_config > 1000.0

    def test_ideal_energy_model(self):
        """1 pJ/bit x 256-bit rows x active partitions (Section 5.3)."""
        ap = ApModel()
        profile = ActivityProfile(symbols=100, partition_activations=100)
        assert ap.ideal_energy_per_symbol_nj(profile) == pytest.approx(0.256)

    def test_area_scaling(self):
        ap = ApModel()
        assert ap.area_mm2(32 * 1024) == 38.0
        assert ap.area_mm2(64 * 1024) == 76.0

    def test_cpu_throughput(self):
        cpu = CpuReferenceModel()
        assert cpu.throughput_gbps == pytest.approx(ApModel().throughput_gbps / 256)


class TestDfaCpuEngine:
    def test_matches_golden(self, figure1_automaton, figure1_text):
        engine = DfaCpuEngine(figure1_automaton)
        assert engine.match_offsets(figure1_text) == match_offsets(
            figure1_automaton, figure1_text
        )

    def test_anchored_patterns_stay_anchored(self):
        """Regression: the scanning embedding must not re-arm
        start-of-data states at every position."""
        machine = compile_patterns(["^head", "tail"])
        engine = DfaCpuEngine(machine)
        text = b"head then head again, tail"
        assert engine.match_offsets(text) == match_offsets(machine, text)
        # Only the position-0 'head' fires.
        assert 3 in engine.match_offsets(text)
        assert 13 not in engine.match_offsets(text)

    def test_regex_rules_match_golden(self):
        machine = compile_patterns(["a[bc]+d", "xy.z", "k{2,3}m"])
        engine = DfaCpuEngine(machine)
        text = b"zabcd xy9z kkkm abbbcd"
        assert engine.match_offsets(text) == match_offsets(machine, text)

    def test_blowup_factor(self, figure1_automaton):
        engine = DfaCpuEngine(figure1_automaton)
        assert engine.blowup_factor > 0
        assert engine.nfa_state_count == len(figure1_automaton)

    def test_table_bytes(self, figure1_automaton):
        engine = DfaCpuEngine(figure1_automaton)
        assert engine.table_bytes() == engine.dfa_state_count * 256 * 8

    def test_minimize_reduces_or_keeps(self, figure1_automaton):
        minimised = DfaCpuEngine(figure1_automaton, minimize=True)
        raw = DfaCpuEngine(figure1_automaton, minimize=False)
        assert minimised.dfa_state_count <= raw.dfa_state_count

    def test_try_build_engine_blowup_guard(self):
        # Dotstar-heavy rules blow up; a tiny cap forces the None path.
        machine = compile_patterns([f"a.*{c}x.*y" for c in "bcdefgh"])
        assert try_build_engine(machine, max_states=10) is None

    def test_try_build_engine_success(self, figure1_automaton):
        assert try_build_engine(figure1_automaton) is not None


class TestAsicTable5:
    def test_reference_points(self):
        assert HARE.power_watts == 125.0
        assert UAP.area_mm2 == 5.67
        # Runtime at published throughput over 10 MB.
        assert HARE.runtime_ms() == pytest.approx(
            TABLE5_INPUT_BYTES * 8 / 3.9e9 * 1e3, rel=0.01
        )

    def test_ca_rows_shape(self):
        """CA must beat both ASICs on throughput; CA_S must be close to
        UAP's energy; CA area stays below UAP+HARE."""
        profile = ActivityProfile(
            symbols=1000, partition_activations=4000,
            g1_crossings=100, g1_switch_activations=100,
        )
        ca_p = ca_operating_point(CA_P, profile)
        profile_s = ActivityProfile(symbols=1000, partition_activations=3000)
        ca_s = ca_operating_point(CA_S, profile_s)
        assert ca_p.throughput_gbps > UAP.throughput_gbps > HARE.throughput_gbps
        assert ca_s.throughput_gbps > UAP.throughput_gbps
        assert ca_p.runtime_ms < UAP.runtime_ms() < HARE.runtime_ms()
        assert ca_p.area_mm2 < HARE.area_mm2
        assert ca_p.energy_nj_per_byte < HARE.energy_nj_per_byte

    def test_runtime_includes_configuration(self):
        profile = ActivityProfile(symbols=10, partition_activations=10)
        point = ca_operating_point(CA_P, profile)
        pure_stream = TABLE5_INPUT_BYTES / 2e9 * 1e3
        assert point.runtime_ms == pytest.approx(pure_stream + 0.2, rel=0.01)

    def test_table5_grid(self):
        profile = ActivityProfile(symbols=10, partition_activations=10)
        rows = table5_rows([ca_operating_point(CA_P, profile)])
        assert rows[0][:3] == ("Metric", "HARE (W=32)", "UAP")
        assert len(rows) == 6
        assert all(len(row) == len(rows[0]) for row in rows)
