"""Tests for the classical NFA model."""

import pytest

from repro.automata.nfa import Nfa, union
from repro.automata.symbols import SymbolSet
from repro.errors import AutomatonError


def literal_nfa(text: str) -> Nfa:
    nfa = Nfa()
    nfa.add_state("q0", start=True)
    previous = "q0"
    for index, character in enumerate(text):
        state = f"q{index + 1}"
        nfa.add_transition(previous, SymbolSet.single(character), state)
        previous = state
    nfa.set_accept(previous)
    return nfa


class TestConstruction:
    def test_add_transition_auto_adds_states(self):
        nfa = Nfa()
        nfa.add_transition("a", SymbolSet.single("x"), "b")
        assert nfa.states == {"a", "b"}

    def test_empty_label_rejected(self):
        nfa = Nfa()
        with pytest.raises(AutomatonError):
            nfa.add_transition("a", SymbolSet.none(), "b")

    def test_validate_requires_start(self):
        nfa = Nfa()
        nfa.add_state("a")
        with pytest.raises(AutomatonError):
            nfa.validate()

    def test_transition_count(self):
        nfa = literal_nfa("abc")
        assert nfa.transition_count() == 3
        assert len(nfa) == 4


class TestSemantics:
    def test_accepts_literal(self):
        nfa = literal_nfa("cat")
        assert nfa.accepts(b"cat")
        assert not nfa.accepts(b"car")
        assert not nfa.accepts(b"cats")
        assert not nfa.accepts(b"ca")
        assert not nfa.accepts(b"")

    def test_nondeterminism(self):
        # Two branches from the start on the same symbol.
        nfa = Nfa()
        nfa.add_state("s", start=True)
        nfa.add_transition("s", SymbolSet.single("a"), "left")
        nfa.add_transition("s", SymbolSet.single("a"), "right")
        nfa.add_transition("left", SymbolSet.single("b"), "lend")
        nfa.add_transition("right", SymbolSet.single("c"), "rend")
        nfa.set_accept("lend")
        nfa.set_accept("rend")
        assert nfa.accepts(b"ab")
        assert nfa.accepts(b"ac")
        assert not nfa.accepts(b"ad")

    def test_epsilon_closure(self):
        nfa = Nfa()
        nfa.add_epsilon("a", "b")
        nfa.add_epsilon("b", "c")
        nfa.add_epsilon("c", "a")  # cycle
        assert nfa.epsilon_closure({"a"}) == {"a", "b", "c"}

    def test_accepts_through_epsilon(self):
        nfa = Nfa()
        nfa.add_state("s", start=True)
        nfa.add_epsilon("s", "mid")
        nfa.add_transition("mid", SymbolSet.single("x"), "end")
        nfa.set_accept("end")
        assert nfa.accepts(b"x")

    def test_find_matches_unanchored(self):
        # find_matches reports 1-based end offsets (symbols consumed).
        nfa = literal_nfa("ab")
        assert nfa.find_matches(b"zabzzab") == [3, 7]

    def test_find_matches_empty_acceptance_at_zero(self):
        nfa = Nfa()
        nfa.add_state("s", start=True, accept=True)
        assert nfa.find_matches(b"xy")[0] == 0

    def test_step_dead_end(self):
        nfa = literal_nfa("a")
        assert nfa.step({"q0"}, ord("z")) == set()


class TestTransformations:
    def test_trim_removes_unreachable(self):
        nfa = literal_nfa("ab")
        nfa.add_transition("island1", SymbolSet.single("z"), "island2")
        trimmed = nfa.trim()
        assert "island1" not in trimmed.states
        assert trimmed.accepts(b"ab")

    def test_relabelled_preserves_language(self):
        nfa = literal_nfa("hey")
        renamed = nfa.relabelled("n")
        assert renamed.accepts(b"hey")
        assert not renamed.accepts(b"hay")
        assert all(str(state).startswith("n") for state in renamed.states)

    def test_relabelled_preserves_epsilon(self):
        nfa = Nfa()
        nfa.add_state("s", start=True)
        nfa.add_epsilon("s", "m")
        nfa.add_transition("m", SymbolSet.single("x"), "e")
        nfa.set_accept("e")
        assert nfa.relabelled("r").accepts(b"x")

    def test_union_multi_pattern(self):
        combined = union([literal_nfa("cat"), literal_nfa("dog")])
        assert combined.accepts(b"cat")
        assert combined.accepts(b"dog")
        assert not combined.accepts(b"cog")

    def test_union_keeps_state_spaces_disjoint(self):
        combined = union([literal_nfa("aa"), literal_nfa("aa")])
        assert len(combined) == 6

    def test_repr(self):
        assert "states=4" in repr(literal_nfa("abc"))
