"""Tests for ANML circuit elements (gates, counters) and OR-gate lowering."""

import pytest

from repro.automata.anml import StartKind
from repro.automata.elements import (
    CircuitAutomaton,
    CounterMode,
    GateKind,
    lower_circuit,
)
from repro.automata.symbols import SymbolSet
from repro.errors import AutomatonError, CompileError
from repro.sim.circuit import simulate_circuit
from repro.sim.golden import simulate


def ste_chain(circuit: CircuitAutomaton, text: str, prefix: str) -> str:
    """Add a literal STE chain, return the last STE's id."""
    previous = None
    for index, character in enumerate(text):
        ste_id = f"{prefix}{index}"
        circuit.add_ste(
            ste_id,
            SymbolSet.single(character),
            start=StartKind.ALL_INPUT if index == 0 else StartKind.NONE,
        )
        if previous:
            circuit.connect(previous, ste_id)
        previous = ste_id
    return previous


class TestConstruction:
    def test_duplicate_ids_rejected(self):
        circuit = CircuitAutomaton()
        circuit.add_ste("x", SymbolSet.single("x"), start=StartKind.ALL_INPUT)
        with pytest.raises(AutomatonError):
            circuit.add_gate("x", GateKind.OR)
        with pytest.raises(AutomatonError):
            circuit.add_counter("x", 3)

    def test_counter_target_validated(self):
        with pytest.raises(AutomatonError):
            CircuitAutomaton().add_counter("c", 0)

    def test_port_rules(self):
        circuit = CircuitAutomaton()
        circuit.add_ste("s", SymbolSet.single("s"), start=StartKind.ALL_INPUT)
        circuit.add_counter("c", 2)
        circuit.connect("s", "c", port="count")
        circuit.connect("s", "c", port="reset")
        with pytest.raises(AutomatonError):
            circuit.connect("s", "c", port="activate")
        circuit.add_ste("t", SymbolSet.single("t"))
        with pytest.raises(AutomatonError):
            circuit.connect("s", "t", port="count")

    def test_unknown_endpoints(self):
        circuit = CircuitAutomaton()
        circuit.add_ste("s", SymbolSet.single("s"), start=StartKind.ALL_INPUT)
        with pytest.raises(AutomatonError):
            circuit.connect("s", "ghost")
        with pytest.raises(AutomatonError):
            circuit.connect("ghost", "s")

    def test_validation_requires_start_and_gate_inputs(self):
        circuit = CircuitAutomaton()
        with pytest.raises(AutomatonError):
            circuit.validate()  # no STEs
        circuit.add_ste("s", SymbolSet.single("s"))
        with pytest.raises(AutomatonError):
            circuit.validate()  # no starts
        circuit2 = CircuitAutomaton()
        circuit2.add_ste("s", SymbolSet.single("s"), start=StartKind.ALL_INPUT)
        circuit2.add_gate("g", GateKind.AND)
        with pytest.raises(AutomatonError):
            circuit2.validate()  # gate without inputs

    def test_inverter_needs_one_input(self):
        circuit = CircuitAutomaton()
        circuit.add_ste("a", SymbolSet.single("a"), start=StartKind.ALL_INPUT)
        circuit.add_ste("b", SymbolSet.single("b"), start=StartKind.ALL_INPUT)
        circuit.add_gate("n", GateKind.NOT)
        circuit.connect("a", "n")
        circuit.connect("b", "n")
        with pytest.raises(AutomatonError):
            circuit.validate()

    def test_combinational_cycle_rejected(self):
        circuit = CircuitAutomaton()
        circuit.add_ste("s", SymbolSet.single("s"), start=StartKind.ALL_INPUT)
        circuit.add_gate("g1", GateKind.OR, reporting=True)
        circuit.add_gate("g2", GateKind.OR)
        circuit.connect("s", "g1")
        circuit.connect("g1", "g2")
        circuit.connect("g2", "g1")
        with pytest.raises(AutomatonError):
            circuit.validate()


class TestGateSemantics:
    def test_and_gate_coincidence_detection(self):
        """AND fires only when both patterns complete on the same symbol."""
        circuit = CircuitAutomaton()
        end_a = ste_chain(circuit, "xa", "a")
        end_b = ste_chain(circuit, "ya", "b")
        circuit.add_gate("both", GateKind.AND, reporting=True, report_code="AND")
        circuit.connect(end_a, "both")
        circuit.connect(end_b, "both")
        # 'xa' completes at 1; 'ya' never starts -> no report.
        assert simulate_circuit(circuit, b"xa").reports == []
        # Interleave so both complete together: x,y then a matches both.
        result = simulate_circuit(circuit, b"xya")
        assert [r.offset for r in result.reports] == []
        # 'x' and 'y' must be adjacent to the shared 'a': impossible to
        # overlap exactly unless both pre-states are active the cycle
        # before 'a' -- craft that: "x" at t0 and "y" at t1? chains are
        # xa / ya, so feed "xya": a-chain enabled after x (t0), but by t2
        # the enable expired (t1 was 'y'); feed "yxa" the same.  The
        # coincidence needs single-symbol prefixes:
        circuit2 = CircuitAutomaton()
        circuit2.add_ste("p", SymbolSet.single("a"), start=StartKind.ALL_INPUT)
        circuit2.add_ste("q", SymbolSet.from_range("a", "z"),
                         start=StartKind.ALL_INPUT)
        circuit2.add_gate("both", GateKind.AND, reporting=True)
        circuit2.connect("p", "both")
        circuit2.connect("q", "both")
        result2 = simulate_circuit(circuit2, b"ab")
        assert [r.offset for r in result2.reports] == [0]  # only 'a' matches both

    def test_or_gate(self):
        circuit = CircuitAutomaton()
        circuit.add_ste("a", SymbolSet.single("a"), start=StartKind.ALL_INPUT)
        circuit.add_ste("b", SymbolSet.single("b"), start=StartKind.ALL_INPUT)
        circuit.add_gate("any", GateKind.OR, reporting=True, report_code="or")
        circuit.connect("a", "any")
        circuit.connect("b", "any")
        result = simulate_circuit(circuit, b"axb")
        assert [r.offset for r in result.reports] == [0, 2]

    def test_not_gate(self):
        """Inverter reports on every cycle its input is inactive."""
        circuit = CircuitAutomaton()
        circuit.add_ste("a", SymbolSet.single("a"), start=StartKind.ALL_INPUT)
        circuit.add_gate("no_a", GateKind.NOT, reporting=True)
        circuit.connect("a", "no_a")
        result = simulate_circuit(circuit, b"axa")
        assert [r.offset for r in result.reports] == [1]

    def test_gate_chains(self):
        circuit = CircuitAutomaton()
        circuit.add_ste("a", SymbolSet.single("a"), start=StartKind.ALL_INPUT)
        circuit.add_gate("inner", GateKind.OR)
        circuit.add_gate("outer", GateKind.OR, reporting=True)
        circuit.connect("a", "inner")
        circuit.connect("inner", "outer")
        assert simulate_circuit(circuit, b"a").report_offsets() == [0]

    def test_gate_drives_ste_enable(self):
        """A gate output enables a downstream STE for the next symbol."""
        circuit = CircuitAutomaton()
        circuit.add_ste("a", SymbolSet.single("a"), start=StartKind.ALL_INPUT)
        circuit.add_gate("g", GateKind.OR)
        circuit.add_ste("b", SymbolSet.single("b"), reporting=True)
        circuit.connect("a", "g")
        circuit.connect("g", "b")
        assert simulate_circuit(circuit, b"ab").report_offsets() == [1]
        assert simulate_circuit(circuit, b"xb").report_offsets() == []


class TestCounterSemantics:
    def _counting_circuit(self, mode, target=3):
        circuit = CircuitAutomaton()
        circuit.add_ste("tick", SymbolSet.single("t"), start=StartKind.ALL_INPUT)
        circuit.add_ste("clear", SymbolSet.single("r"), start=StartKind.ALL_INPUT)
        circuit.add_counter("c", target, mode=mode, reporting=True,
                            report_code="C")
        circuit.connect("tick", "c", port="count")
        circuit.connect("clear", "c", port="reset")
        return circuit

    def test_latch_holds_until_reset(self):
        circuit = self._counting_circuit(CounterMode.LATCH)
        result = simulate_circuit(circuit, b"tttttrtt")
        # Fires at the 3rd tick (offset 2), stays high through offsets 3-4,
        # drops at the reset (5); the two trailing ticks only reach 2.
        assert result.report_offsets() == [2, 3, 4]

    def test_pulse_fires_once(self):
        circuit = self._counting_circuit(CounterMode.PULSE)
        result = simulate_circuit(circuit, b"ttttt")
        assert result.report_offsets() == [2]

    def test_pulse_rearms_after_reset(self):
        circuit = self._counting_circuit(CounterMode.PULSE)
        result = simulate_circuit(circuit, b"tttrttt")
        assert result.report_offsets() == [2, 6]

    def test_rollover_fires_periodically(self):
        circuit = self._counting_circuit(CounterMode.ROLLOVER)
        result = simulate_circuit(circuit, b"t" * 9)
        assert result.report_offsets() == [2, 5, 8]

    def test_reset_wins_over_count(self):
        circuit = CircuitAutomaton()
        circuit.add_ste("both", SymbolSet.single("x"), start=StartKind.ALL_INPUT)
        circuit.add_counter("c", 1, mode=CounterMode.PULSE, reporting=True)
        circuit.connect("both", "c", port="count")
        circuit.connect("both", "c", port="reset")
        assert simulate_circuit(circuit, b"xxx").reports == []

    def test_final_counter_values(self):
        circuit = self._counting_circuit(CounterMode.LATCH, target=10)
        result = simulate_circuit(circuit, b"ttttt")
        assert result.counter_values["c"] == 5

    def test_counter_without_count_input_rejected(self):
        circuit = CircuitAutomaton()
        circuit.add_ste("s", SymbolSet.single("s"), start=StartKind.ALL_INPUT)
        circuit.add_counter("c", 2)
        with pytest.raises(AutomatonError):
            circuit.validate()


class TestLowering:
    def test_or_only_circuit_lowers_and_agrees(self):
        circuit = CircuitAutomaton("orlower")
        end_a = ste_chain(circuit, "cat", "a")
        end_b = ste_chain(circuit, "dog", "b")
        circuit.add_gate("either", GateKind.OR, reporting=True,
                         report_code="pet")
        circuit.connect(end_a, "either")
        circuit.connect(end_b, "either")
        # The OR also re-arms a continuation STE.
        circuit.add_ste("bang", SymbolSet.single("!"), reporting=True,
                        report_code="excited")
        circuit.connect("either", "bang")

        lowered = lower_circuit(circuit)
        data = b"a cat! and a dog!"
        circuit_reports = sorted(
            (r.offset, r.report_code) for r in simulate_circuit(circuit, data).reports
        )
        lowered_reports = sorted(
            (r.offset, r.report_code) for r in simulate(lowered, data).reports
        )
        assert circuit_reports == lowered_reports

    def test_counter_rejected(self):
        circuit = CircuitAutomaton()
        circuit.add_ste("s", SymbolSet.single("s"), start=StartKind.ALL_INPUT)
        circuit.add_counter("c", 2, reporting=True)
        circuit.connect("s", "c", port="count")
        with pytest.raises(CompileError):
            lower_circuit(circuit)

    def test_and_rejected(self):
        circuit = CircuitAutomaton()
        circuit.add_ste("s", SymbolSet.single("s"), start=StartKind.ALL_INPUT)
        circuit.add_gate("g", GateKind.AND, reporting=True)
        circuit.connect("s", "g")
        with pytest.raises(CompileError):
            lower_circuit(circuit)

    def test_lowered_circuit_compiles_to_cache(self):
        from repro.compiler import compile_automaton
        from repro.core.design import CA_P
        from repro.sim.functional import simulate_mapping

        circuit = CircuitAutomaton()
        end = ste_chain(circuit, "hit", "h")
        circuit.add_gate("report", GateKind.OR, reporting=True, report_code="R")
        circuit.connect(end, "report")
        lowered = lower_circuit(circuit)
        mapping = compile_automaton(lowered, CA_P)
        result = simulate_mapping(mapping, b"a hit!")
        assert [r.offset for r in result.reports] == [4]
