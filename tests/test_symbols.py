"""Unit and property tests for SymbolSet (the STE label domain)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.automata.symbols import ALPHABET_SIZE, ANY, NONE, SymbolSet
from repro.errors import SymbolSetError

symbol_sets = st.builds(
    SymbolSet, st.lists(st.integers(min_value=0, max_value=255), max_size=40)
)


class TestConstruction:
    def test_empty(self):
        assert SymbolSet().is_empty()
        assert len(SymbolSet()) == 0
        assert not SymbolSet()

    def test_single_from_int_str_bytes(self):
        assert SymbolSet.single(97) == SymbolSet.single("a") == SymbolSet.single(b"a")

    def test_from_range(self):
        digits = SymbolSet.from_range("0", "9")
        assert len(digits) == 10
        assert "5" in digits
        assert "a" not in digits

    def test_from_range_single_point(self):
        assert SymbolSet.from_range(7, 7) == SymbolSet.single(7)

    def test_reversed_range_rejected(self):
        with pytest.raises(SymbolSetError):
            SymbolSet.from_range("z", "a")

    def test_from_string(self):
        assert sorted(SymbolSet.from_string("aba")) == [ord("a"), ord("b")]

    def test_from_string_bytes(self):
        assert sorted(SymbolSet.from_string(b"\x00\xff")) == [0, 255]

    def test_any_and_none(self):
        assert ANY.is_full()
        assert len(ANY) == ALPHABET_SIZE
        assert NONE.is_empty()

    def test_out_of_range_symbol(self):
        with pytest.raises(SymbolSetError):
            SymbolSet.single(256)
        with pytest.raises(SymbolSetError):
            SymbolSet.single(-1)

    def test_multichar_string_rejected(self):
        with pytest.raises(SymbolSetError):
            SymbolSet.single("ab")

    def test_bool_rejected(self):
        with pytest.raises(SymbolSetError):
            SymbolSet.single(True)

    def test_bad_mask(self):
        with pytest.raises(SymbolSetError):
            SymbolSet.from_mask(-1)
        with pytest.raises(SymbolSetError):
            SymbolSet.from_mask(1 << 256)


class TestAlgebra:
    def test_union_intersection_difference(self):
        a = SymbolSet.from_range("a", "m")
        b = SymbolSet.from_range("g", "z")
        assert len(a | b) == 26
        assert (a & b) == SymbolSet.from_range("g", "m")
        assert (a - b) == SymbolSet.from_range("a", "f")

    def test_complement_involution(self):
        digits = SymbolSet.from_range("0", "9")
        assert ~~digits == digits
        assert (digits | ~digits).is_full()
        assert (digits & ~digits).is_empty()

    def test_subset_disjoint(self):
        small = SymbolSet.from_string("abc")
        big = SymbolSet.from_range("a", "f")
        assert small.issubset(big)
        assert not big.issubset(small)
        assert small.isdisjoint(SymbolSet.from_string("xyz"))

    def test_hash_and_eq(self):
        assert hash(SymbolSet.from_string("ab")) == hash(SymbolSet.from_string("ba"))
        assert SymbolSet.from_string("ab") != SymbolSet.from_string("ac")
        assert SymbolSet.single(0) != 1  # not equal to non-SymbolSet


class TestRangesIteration:
    def test_symbols_sorted(self):
        s = SymbolSet.from_string("zax")
        assert list(s) == sorted([ord("z"), ord("a"), ord("x")])

    def test_ranges_maximal(self):
        s = SymbolSet.from_string("abcxy") | SymbolSet.single(0)
        assert list(s.ranges()) == [(0, 0), (97, 99), (120, 121)]

    def test_ranges_empty(self):
        assert list(NONE.ranges()) == []

    def test_ranges_full(self):
        assert list(ANY.ranges()) == [(0, 255)]


class TestOnehot:
    def test_shape_and_dtype(self):
        column = SymbolSet.from_string("a").to_onehot()
        assert column.shape == (256,)
        assert column.dtype == np.uint8
        assert column.sum() == 1
        assert column[ord("a")] == 1

    def test_roundtrip(self):
        s = SymbolSet.from_range(10, 20) | SymbolSet.single(255)
        assert SymbolSet.from_onehot(s.to_onehot()) == s

    def test_bad_shape(self):
        with pytest.raises(SymbolSetError):
            SymbolSet.from_onehot(np.zeros(255, dtype=np.uint8))


class TestPresentation:
    def test_wildcard(self):
        assert ANY.canonical_expression() == "*"

    def test_empty(self):
        assert NONE.canonical_expression() == "[]"

    def test_range_rendering(self):
        assert SymbolSet.from_range("a", "c").canonical_expression() == "[a-c]"

    def test_unprintable_rendering(self):
        assert SymbolSet.single(0).canonical_expression() == "[\\x00]"

    def test_repr_contains_expression(self):
        assert "[a-c]" in repr(SymbolSet.from_range("a", "c"))


class TestProperties:
    @given(symbol_sets, symbol_sets)
    def test_union_cardinality(self, a, b):
        assert len(a | b) == len(a) + len(b) - len(a & b)

    @given(symbol_sets, symbol_sets)
    def test_de_morgan(self, a, b):
        assert ~(a | b) == (~a & ~b)
        assert ~(a & b) == (~a | ~b)

    @given(symbol_sets)
    def test_onehot_roundtrip(self, s):
        assert SymbolSet.from_onehot(s.to_onehot()) == s

    @given(symbol_sets)
    def test_ranges_cover_exactly(self, s):
        covered = SymbolSet(
            value for low, high in s.ranges() for value in range(low, high + 1)
        )
        assert covered == s

    @given(symbol_sets, st.integers(min_value=0, max_value=255))
    def test_matches_agrees_with_iteration(self, s, symbol):
        assert s.matches(symbol) == (symbol in set(s))
