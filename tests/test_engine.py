"""Tests for the high-level scanning engine façade."""

import pytest

from repro.core.design import CA_S
from repro.engine import CacheAutomatonEngine, Match
from repro.errors import ReproError, SimulationError
from repro.sim.golden import match_offsets


@pytest.fixture(scope="module")
def engine():
    return CacheAutomatonEngine.from_patterns(
        ["bat", "c[ao]t", "dog+"], rule_ids=["BAT", "CAT", "DOG"]
    )


class TestScan:
    def test_basic_matches(self, engine):
        matches = engine.scan(b"the cat sat on the bat")
        assert [(m.end, m.rule) for m in matches] == [(6, "CAT"), (21, "BAT")]

    def test_matches_are_value_objects(self, engine):
        match = engine.scan(b"a bat")[0]
        assert match == Match(4, "BAT", match.state)

    def test_count(self, engine):
        # cat, cot, bat, and dog+ firing at each of the three trailing g's.
        assert engine.count(b"cat cot bat doggg") == 6

    def test_agrees_with_golden(self, engine):
        data = b"doggo cats bats in a cot"
        expected = match_offsets(engine.automaton, data)
        assert [m.end for m in engine.scan(data)] == expected

    def test_docstring_example(self):
        engine = CacheAutomatonEngine.from_patterns(["bat", "c[ao]t"])
        ends = [match.end for match in engine.scan(b"the cat sat on the bat")]
        assert ends == [6, 21]


class TestStream:
    def test_chunked_equals_whole(self, engine):
        data = b"the cat sat on the bat; dogs in cots"
        whole = [(m.end, m.rule) for m in engine.scan(data)]
        scanner = engine.stream()
        chunked = []
        for start in range(0, len(data), 7):
            chunked.extend(
                (m.end, m.rule) for m in scanner.scan(data[start : start + 7])
            )
        assert chunked == whole
        assert scanner.position == len(data)

    def test_match_spanning_chunk_boundary(self, engine):
        scanner = engine.stream()
        first = scanner.scan(b"xxca")
        second = scanner.scan(b"txx")
        assert first == []
        assert [(m.end, m.rule) for m in second] == [(4, "CAT")]

    def test_independent_streams(self, engine):
        scanner_a = engine.stream()
        scanner_b = engine.stream()
        scanner_a.scan(b"ca")
        # scanner_b has no 'ca' prefix: 't' alone must not fire.
        assert scanner_b.scan(b"t") == []
        assert [(m.end, m.rule) for m in scanner_a.scan(b"t")] == [(2, "CAT")]


class TestConstructors:
    def test_from_anml(self, engine):
        from repro.automata.anml import to_anml

        clone = CacheAutomatonEngine.from_anml(to_anml(engine.automaton))
        data = b"bat cot"
        assert [m.end for m in clone.scan(data)] == [
            m.end for m in engine.scan(data)
        ]

    def test_from_anml_file(self, engine, tmp_path):
        from repro.automata.anml import to_anml

        path = tmp_path / "machine.anml"
        path.write_text(to_anml(engine.automaton), encoding="utf-8")
        clone = CacheAutomatonEngine.from_anml_file(str(path))
        assert clone.state_count == engine.state_count

    def test_optimize_with_ca_s(self):
        engine = CacheAutomatonEngine.from_patterns(
            ["prefix_one", "prefix_two"], design=CA_S, optimize=True
        )
        assert engine.state_count < 20  # shared 'prefix_' merged
        assert [m.end for m in engine.scan(b"a prefix_two!")] == [11]

    def test_default_rule_ids_are_patterns(self):
        engine = CacheAutomatonEngine.from_patterns(["ab+"])
        assert engine.scan(b"abb")[0].rule == "ab+"


class TestIntrospection:
    def test_static_properties(self, engine):
        assert engine.throughput_gbps == 16.0
        assert engine.cache_bytes == 8192
        assert engine.state_count == len(engine.automaton)

    def test_scan_time(self, engine):
        assert engine.scan_time_ms(2_000_000) == pytest.approx(1.0)
        with pytest.raises(ReproError):
            engine.scan_time_ms(-1)

    def test_summary_before_traffic(self):
        engine = CacheAutomatonEngine.from_patterns(["x"])
        summary = engine.performance_summary()
        assert summary.energy_nj_per_symbol is None
        assert summary.speedup_vs_ap == pytest.approx(15.0, rel=0.01)

    def test_summary_accumulates_traffic(self, engine):
        engine.scan(b"some traffic with a bat")
        summary = engine.performance_summary()
        assert summary.energy_nj_per_symbol > 0
        assert summary.average_power_watts > 0
        assert summary.design == "CA_P"
        assert summary.partitions == 1


class TestMultiStream:
    def test_scan_many_equals_scan(self, engine):
        streams = [b"the cat sat", b"a bat!", b"", b"doggg"]
        batched = engine.scan_many(streams)
        for stream, matches in zip(streams, batched):
            assert matches == engine.scan(stream)

    def test_stream_many_chunked_equals_whole(self, engine):
        streams = [b"the cat sat on the bat", b"dogs sleep in cots", b"cat"]
        whole = [[(m.end, m.rule) for m in engine.scan(s)] for s in streams]
        scanner = engine.stream_many(len(streams))
        collected = [[] for _ in streams]
        for start in range(0, max(len(s) for s in streams), 5):
            chunks = [s[start : start + 5] for s in streams]
            for index, matches in enumerate(scanner.scan(chunks)):
                collected[index].extend((m.end, m.rule) for m in matches)
        assert collected == whole
        assert scanner.positions == [len(s) for s in streams]

    def test_stream_many_boundary_match(self, engine):
        scanner = engine.stream_many(2)
        first = scanner.scan([b"xxca", b"ba"])
        assert first == [[], []]
        second = scanner.scan([b"txx", b"t"])
        assert [(m.end, m.rule) for m in second[0]] == [(4, "CAT")]
        assert [(m.end, m.rule) for m in second[1]] == [(2, "BAT")]
        assert scanner.stream_count == 2

    def test_stream_many_validates(self, engine):
        with pytest.raises(ReproError):
            engine.stream_many(0)
        scanner = engine.stream_many(2)
        with pytest.raises(ReproError):
            scanner.scan([b"only one"])

    def test_scan_many_accumulates_profile(self):
        engine = CacheAutomatonEngine.from_patterns(["bat"])
        engine.scan_many([b"a bat", b"bat bat"])
        summary = engine.performance_summary()
        assert summary.energy_nj_per_symbol > 0


class TestInputValidation:
    def test_scan_rejects_non_bytes(self, engine):
        with pytest.raises(SimulationError, match="bytes-like.*str"):
            engine.scan("not bytes")
        with pytest.raises(SimulationError, match="bytes-like.*int"):
            engine.scan(42)

    def test_count_rejects_non_bytes(self, engine):
        with pytest.raises(SimulationError, match="bytes-like"):
            engine.count(None)

    def test_scan_accepts_bytes_like(self, engine):
        assert engine.scan(bytearray(b"a bat")) == engine.scan(b"a bat")
        assert engine.scan(memoryview(b"a bat")) == engine.scan(b"a bat")

    def test_scan_many_rejects_single_byte_string(self, engine):
        with pytest.raises(SimulationError, match="sequence of byte streams"):
            engine.scan_many(b"one stream")
        with pytest.raises(SimulationError, match="sequence of byte streams"):
            engine.scan_many("text")

    def test_scan_many_names_offending_stream(self, engine):
        with pytest.raises(SimulationError, match="stream 1"):
            engine.scan_many([b"fine", "broken"])

    def test_stream_chunk_rejects_non_bytes(self, engine):
        scanner = engine.stream()
        with pytest.raises(SimulationError, match="stream chunk"):
            scanner.scan("oops")

    def test_stream_many_rejects_bad_chunks(self, engine):
        scanner = engine.stream_many(2)
        with pytest.raises(SimulationError, match="sequence of per-stream"):
            scanner.scan(b"both")
        with pytest.raises(SimulationError, match="chunk for stream 0"):
            scanner.scan([None, b"ok"])
        # A failed scan must not corrupt the scanner's checkpoints.
        assert scanner.scan([b"bat", b""])[0]

    def test_empty_inputs_are_fine(self, engine):
        assert engine.scan(b"") == []
        assert engine.scan_many([]) == []
        assert engine.scan_many([b"", b""]) == [[], []]
        assert engine.count(b"") == 0
