"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.automata.anml import HomogeneousAutomaton, StartKind
from repro.automata.symbols import SymbolSet
from repro.regex.compile import compile_patterns

#: The paper's running example (Figure 1): patterns over {bat, bar, ...}.
FIGURE1_PATTERNS = [
    "bat", "bar", "bart", "ar", "at", "art", "car", "cat", "cart",
]


@pytest.fixture
def figure1_automaton() -> HomogeneousAutomaton:
    return compile_patterns(FIGURE1_PATTERNS, automaton_id="figure1")


@pytest.fixture
def figure1_text() -> bytes:
    return b"a cart of bats; the bartender art cat car ride"


def brute_force_ends(patterns, data: bytes) -> list[int]:
    """Offsets (0-based, inclusive) where any literal pattern ends."""
    ends = set()
    for pattern in patterns:
        needle = pattern.encode() if isinstance(pattern, str) else pattern
        start = 0
        while True:
            index = data.find(needle, start)
            if index < 0:
                break
            ends.add(index + len(needle) - 1)
            start = index + 1
    return sorted(ends)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def chain_automaton(
    length: int,
    *,
    label_width: int = 4,
    seed: int = 0,
    starts: int = 1,
    extra_edges: int = 0,
    locality: int = 20,
    automaton_id: str = "chain",
) -> HomogeneousAutomaton:
    """A single-CC automaton: a chain plus locally clustered extra edges.

    The workhorse for compiler/simulator tests: realistic local structure
    (so the partitioner can satisfy wire budgets) at any size.
    """
    generator = random.Random(seed)
    automaton = HomogeneousAutomaton(automaton_id)
    for index in range(length):
        low = generator.randrange(0, 257 - label_width)
        automaton.add_ste(
            f"s{index}",
            SymbolSet.from_range(low, low + label_width - 1),
            start=StartKind.ALL_INPUT if index < starts else StartKind.NONE,
            reporting=index == length - 1 or index % 101 == 100,
        )
    for index in range(length - 1):
        automaton.add_edge(f"s{index}", f"s{index + 1}")
    for _ in range(extra_edges):
        u = generator.randrange(length)
        v = min(length - 1, max(0, u + generator.randrange(-locality, locality + 1)))
        if u != v:
            automaton.add_edge(f"s{u}", f"s{v}")
    return automaton
