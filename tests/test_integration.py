"""End-to-end integration tests: the full pipeline from rules/ANML text to
reports, across all three simulators and both design points.

The load-bearing property throughout: **golden == mapped == crossbar** —
the abstract semantics, the compiled placement, and the bit-level
configuration all describe the same machine.
"""

import pytest

from repro.automata.anml import from_anml, to_anml
from repro.baselines.cpu import DfaCpuEngine
from repro.compiler import compile_automaton, compile_space_optimized, generate
from repro.core.design import CA_P, CA_S
from repro.core.energy import EnergyModel
from repro.sim.crossbar import CrossbarLevelSimulator
from repro.sim.functional import simulate_mapping
from repro.sim.golden import simulate
from repro.workloads.suite import get_benchmark


def report_offsets(reports):
    return sorted({r.offset for r in reports})


#: Benchmarks chosen to cover every automaton family shape: tiny CCs,
#: split CCs, distance lattices, dot-star mining, wide labels.
SPOT_CHECK = ["Bro217", "TCP", "Levenshtein", "SPM", "Fermi"]


class TestFullPipeline:
    @pytest.mark.parametrize("name", SPOT_CHECK)
    def test_golden_equals_mapped_both_designs(self, name):
        benchmark = get_benchmark(name)
        automaton = benchmark.build()
        data = benchmark.input_stream(3000, seed=7)
        golden = simulate(automaton, data)
        for design, compile_fn in (
            (CA_P, compile_automaton),
            (CA_S, compile_space_optimized),
        ):
            mapping = compile_fn(automaton, design)
            mapped = simulate_mapping(mapping, data)
            assert report_offsets(mapped.reports) == report_offsets(
                golden.reports
            ), (name, design.name)

    def test_crossbar_level_spot_check(self):
        """Bit-level agreement on a benchmark with split CCs (TCP)."""
        benchmark = get_benchmark("TCP")
        automaton = benchmark.build()
        mapping = compile_automaton(automaton, CA_P)
        bitstream = generate(mapping)
        data = benchmark.input_stream(700, seed=8)
        crossbar_reports = CrossbarLevelSimulator(bitstream).run(data)
        golden = simulate(automaton, data)
        assert report_offsets(crossbar_reports) == report_offsets(golden.reports)

    def test_cpu_engine_agrees_on_benchmark(self):
        benchmark = get_benchmark("Bro217")
        automaton = benchmark.build()
        engine = DfaCpuEngine(automaton)
        data = benchmark.input_stream(2500, seed=9)
        golden = simulate(automaton, data)
        assert engine.match_offsets(data) == report_offsets(golden.reports)

    def test_anml_roundtrip_through_compiler(self):
        """Serialise to ANML XML, re-parse, compile, simulate: same reports."""
        benchmark = get_benchmark("ExactMatch")
        original = benchmark.build()
        reparsed = from_anml(to_anml(original))
        data = benchmark.input_stream(2000, seed=10)
        original_reports = report_offsets(simulate(original, data).reports)
        mapping = compile_automaton(reparsed, CA_P)
        mapped = simulate_mapping(mapping, data)
        assert report_offsets(mapped.reports) == original_reports

    def test_energy_pipeline(self):
        """Profile -> energy -> power, with the Ideal-AP 3x sanity check."""
        benchmark = get_benchmark("Snort")
        automaton = benchmark.build()
        mapping = compile_automaton(automaton, CA_P)
        result = simulate_mapping(mapping, benchmark.input_stream(3000, seed=11))
        model = EnergyModel(CA_P)
        energy = model.energy_per_symbol_nj(result.profile)
        ideal_ap = model.ideal_ap_energy_per_symbol_nj(result.profile)
        assert 0 < energy < ideal_ap
        assert ideal_ap / energy > 2
        power = model.average_power_watts(result.profile)
        assert 0 < power < 160

    def test_deterministic_end_to_end(self):
        benchmark = get_benchmark("Ranges05")
        data = benchmark.input_stream(1500, seed=12)
        runs = []
        for _ in range(2):
            mapping = compile_automaton(benchmark.build(), CA_P)
            runs.append(report_offsets(simulate_mapping(mapping, data).reports))
        assert runs[0] == runs[1]

    def test_incremental_streaming_equivalence(self):
        """Feeding a stream in chunks through fresh simulators must equal
        one pass when state is carried — here we verify the contrapositive:
        one long run equals the concatenation semantics of the golden
        model (reports are offset-consistent)."""
        benchmark = get_benchmark("ExactMatch")
        automaton = benchmark.build()
        data = benchmark.input_stream(2000, seed=13)
        full = report_offsets(simulate(automaton, data).reports)
        # Any report in the first 1000 symbols also appears when only that
        # prefix is processed.
        prefix = report_offsets(simulate(automaton, data[:1000]).reports)
        assert prefix == [offset for offset in full if offset < 1000]


class TestCaseStudyEntityResolution:
    """Section 3.3's case study, on the scaled benchmark."""

    def test_space_optimised_mapping_shape(self):
        from repro.automata.components import component_stats

        automaton = get_benchmark("EntityResolution").build()
        mapping = compile_space_optimized(automaton, CA_S)
        stats = component_stats(mapping.automaton)
        # Names were skewed onto 5 first letters: ~5 tries remain.
        assert stats.component_count <= 8
        # Dense packing is achieved.
        assert mapping.occupancy_fraction() > 0.5

    def test_equivalence_after_collapse(self):
        benchmark = get_benchmark("EntityResolution")
        automaton = benchmark.build()
        data = benchmark.input_stream(2000, seed=14)
        golden = report_offsets(simulate(automaton, data).reports)
        mapping = compile_space_optimized(automaton, CA_S)
        mapped = report_offsets(simulate_mapping(mapping, data).reports)
        assert mapped == golden

    def test_big_space_saving(self):
        automaton = get_benchmark("EntityResolution").build()
        perf = compile_automaton(automaton, CA_P)
        space = compile_space_optimized(automaton, CA_S)
        assert space.cache_bytes() < perf.cache_bytes() / 2
