"""Differential tests: our regex engine vs Python's ``re`` module.

The oracle: an end offset *j* is reported iff some substring ending at
*j* is in the pattern's language — checked with ``re.fullmatch`` over all
substrings.  This pins the Glushkov construction, the golden simulator,
and (via separate tests) the Thompson+DFA path against an independent
implementation.
"""

import random
import re

import pytest

from repro.automata.dfa import determinize
from repro.automata.epsilon import remove_epsilon
from repro.automata.transform import to_homogeneous
from repro.errors import RegexError
from repro.regex.compile import compile_pattern, compile_patterns, literal_pattern
from repro.regex.glushkov import build_glushkov
from repro.regex.parser import parse
from repro.regex.thompson import build_thompson
from repro.sim.golden import match_offsets

#: Patterns spanning every supported construct.
PATTERNS = [
    "abc",
    "a|b",
    "ab|cd|ef",
    "a*bc",
    "a+b",
    "ab?c",
    "a{3}",
    "a{2,4}b",
    "(ab)+",
    "(?:ab|cd)*ef",
    "[abc]x[^abc]",
    "[a-f]{2}",
    "a.c",
    ".*abc",
    "a.*b",
    "x(y|z)w",
    "(a|ab)(c|bc)",
    "a(b|c)*d",
    "[ab][ab][ab]",
    "z{1,2}[xy]+",
    "(abc|a)bc",
    "a[b-d]?e",
]

ALPHABET = "abcdefxyzw"


def oracle_ends(pattern: str, text: str) -> list[int]:
    compiled = re.compile(pattern, re.DOTALL)
    ends = []
    for j in range(len(text)):
        if any(
            compiled.fullmatch(text, i, j + 1) for i in range(j + 1)
        ):
            ends.append(j)
    return ends


def random_text(seed: int, length: int = 60) -> str:
    rng = random.Random(seed)
    return "".join(rng.choice(ALPHABET) for _ in range(length))


class TestGlushkovVsRe:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_scanning_offsets_match_re(self, pattern):
        machine = compile_pattern(pattern)
        for seed in range(4):
            text = random_text(seed)
            expected = oracle_ends(pattern, text)
            assert match_offsets(machine, text.encode()) == expected, (
                pattern, text
            )

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_glushkov_equals_thompson_path(self, pattern):
        """Two independent constructions must produce the same language."""
        parsed = parse(pattern)
        glushkov = build_glushkov(parsed)
        thompson = to_homogeneous(
            remove_epsilon(build_thompson(parsed)),
            start=list(glushkov.start_states())[0].start,
        )
        for seed in range(3):
            text = random_text(seed, 50).encode()
            assert match_offsets(glushkov, text) == match_offsets(thompson, text), (
                pattern
            )

    def test_planted_matches_found(self):
        machine = compile_pattern("needle")
        text = b"hay needle hayneedlehay"
        assert match_offsets(machine, text) == [9, 19]


class TestAnchors:
    def test_start_anchor(self):
        machine = compile_pattern("^ab")
        assert match_offsets(machine, b"abab") == [1]

    def test_end_anchor_requires_sentinel(self):
        with pytest.raises(RegexError):
            compile_pattern("ab$")

    def test_end_anchor_with_sentinel(self):
        machine = compile_pattern("ab$", eod_sentinel=0)
        assert match_offsets(machine, b"abxab\x00") == [5]
        assert match_offsets(machine, b"abxab") == []


class TestEmptyLanguageEdges:
    def test_nullable_pattern_rejected(self):
        with pytest.raises(RegexError):
            compile_pattern("a*")

    def test_nullable_alternation_rejected(self):
        with pytest.raises(RegexError):
            compile_pattern("a|")


class TestMultiPattern:
    def test_report_codes_identify_rules(self):
        machine = compile_patterns(["cat", "dog"], report_codes=["feline", "canine"])
        from repro.sim.golden import simulate

        reports = simulate(machine, b"a cat and a dog").reports
        codes = {report.report_code for report in reports}
        assert codes == {"feline", "canine"}

    def test_default_codes_are_indices(self):
        machine = compile_patterns(["aa", "bb"])
        from repro.sim.golden import simulate

        reports = simulate(machine, b"aabb").reports
        assert {report.report_code for report in reports} == {"0", "1"}

    def test_code_count_mismatch(self):
        with pytest.raises(RegexError):
            compile_patterns(["a", "b"], report_codes=["only-one"])

    def test_empty_rule_set(self):
        with pytest.raises(RegexError):
            compile_patterns([])


class TestLiteralPattern:
    def test_chain_matches(self):
        machine = literal_pattern("exact")
        assert match_offsets(machine, b"an exact match, exactly") == [7, 20]

    def test_anchored_literal(self):
        machine = literal_pattern("ab", anchored=True)
        assert match_offsets(machine, b"abab") == [1]

    def test_single_character(self):
        machine = literal_pattern("x")
        assert match_offsets(machine, b"axbx") == [1, 3]
        assert len(machine) == 1

    def test_empty_rejected(self):
        with pytest.raises(RegexError):
            literal_pattern("")


class TestDfaCrossCheck:
    @pytest.mark.parametrize("pattern", PATTERNS[:12])
    def test_golden_equals_scanning_dfa(self, pattern):
        from repro.automata.transform import homogeneous_to_nfa

        machine = compile_pattern(pattern)
        dfa = determinize(homogeneous_to_nfa(machine))
        for seed in range(3):
            text = random_text(seed, 70).encode()
            dfa_ends = [offset - 1 for offset in dfa.find_matches(text) if offset > 0]
            assert match_offsets(machine, text) == dfa_ends, pattern
