"""Tests for the golden reference interpreter."""

import pytest

from repro.automata.anml import HomogeneousAutomaton, StartKind
from repro.automata.symbols import SymbolSet
from repro.errors import SimulationError
from repro.sim.golden import (
    GoldenSimulator,
    average_active_states,
    match_offsets,
    simulate,
)


def two_step() -> HomogeneousAutomaton:
    automaton = HomogeneousAutomaton()
    automaton.add_ste("a", SymbolSet.single("a"), start=StartKind.ALL_INPUT)
    automaton.add_ste("b", SymbolSet.single("b"), reporting=True, report_code="AB")
    automaton.add_edge("a", "b")
    return automaton


class TestSemantics:
    def test_basic_sequence(self):
        result = simulate(two_step(), b"xabxaby")
        assert [r.offset for r in result.reports] == [2, 5]
        assert all(r.report_code == "AB" for r in result.reports)

    def test_all_input_rearms_every_cycle(self):
        assert match_offsets(two_step(), b"ababab") == [1, 3, 5]

    def test_start_of_data_fires_once(self):
        automaton = HomogeneousAutomaton()
        automaton.add_ste(
            "a", SymbolSet.single("a"), start=StartKind.START_OF_DATA, reporting=True
        )
        assert match_offsets(automaton, b"aa") == [0]
        assert match_offsets(automaton, b"xa") == []

    def test_self_loop_stays_active(self):
        automaton = HomogeneousAutomaton()
        automaton.add_ste("t", SymbolSet.single("t"), start=StartKind.ALL_INPUT)
        automaton.add_ste("loop", SymbolSet.any(), reporting=True)
        automaton.add_edge("t", "loop")
        automaton.add_edge("loop", "loop")
        assert match_offsets(automaton, b"xtxxx") == [2, 3, 4]

    def test_no_match_after_break(self):
        assert match_offsets(two_step(), b"a b") == []

    def test_empty_input(self):
        result = simulate(two_step(), b"")
        assert result.reports == []
        assert result.stats.symbols_processed == 0
        assert result.stats.average_active_states == 0.0

    def test_multiple_reporters_same_cycle(self):
        automaton = HomogeneousAutomaton()
        automaton.add_ste(
            "x", SymbolSet.single("x"), start=StartKind.ALL_INPUT,
            reporting=True, report_code="one",
        )
        automaton.add_ste(
            "y", SymbolSet.single("x"), start=StartKind.ALL_INPUT,
            reporting=True, report_code="two",
        )
        reports = simulate(automaton, b"x").reports
        assert {r.report_code for r in reports} == {"one", "two"}
        assert {r.offset for r in reports} == {0}

    def test_wide_label_class(self):
        automaton = HomogeneousAutomaton()
        automaton.add_ste(
            "d", SymbolSet.from_range("0", "9"),
            start=StartKind.ALL_INPUT, reporting=True,
        )
        assert match_offsets(automaton, b"a1b23") == [1, 3, 4]


class TestStats:
    def test_average_active_states(self):
        # 'a' matches at offsets 1,3,5 and 'b' at 2,4: 5 matched states
        # over 6 symbols.
        value = average_active_states(two_step(), b"ababab")
        assert value == pytest.approx((3 + 2 + 1) / 6)

    def test_per_cycle_stats(self):
        result = simulate(two_step(), b"abb", collect_cycle_stats=True)
        assert result.stats.matched_per_cycle == [1, 1, 0]

    def test_collect_reports_off(self):
        result = simulate(two_step(), b"ab", collect_reports=False)
        assert result.reports == []
        assert result.stats.total_matched_states == 2

    def test_report_offsets_deduplicated(self):
        automaton = HomogeneousAutomaton()
        for name in ("p", "q"):
            automaton.add_ste(
                name, SymbolSet.single("z"), start=StartKind.ALL_INPUT,
                reporting=True,
            )
        result = simulate(automaton, b"z")
        assert len(result.reports) == 2
        assert result.report_offsets() == [0]


class TestRobustness:
    def test_non_bytes_input_rejected(self):
        with pytest.raises(SimulationError):
            simulate(two_step(), "string not bytes")

    def test_bytearray_accepted(self):
        assert match_offsets(two_step(), bytearray(b"ab")) == [1]

    def test_simulator_reusable_across_runs(self):
        simulator = GoldenSimulator(two_step())
        first = simulator.run(b"ab")
        second = simulator.run(b"xxab")
        assert [r.offset for r in first.reports] == [1]
        assert [r.offset for r in second.reports] == [3]

    def test_validation_runs_on_construction(self):
        from repro.errors import AutomatonError

        bad = HomogeneousAutomaton()
        bad.add_ste("no-start", SymbolSet.single("a"))
        with pytest.raises(AutomatonError):
            GoldenSimulator(bad)

    def test_large_automaton_block_cache(self):
        """Exercise the 16-bit block memoisation across block boundaries."""
        from tests.conftest import chain_automaton

        automaton = chain_automaton(100, label_width=256, starts=1, seed=0)
        # label_width=256 means every state matches everything: the chain
        # lights up progressively, crossing many 16-bit blocks.
        result = simulate(automaton, bytes(range(60)))
        assert result.stats.total_matched_states == sum(range(1, 61))
