"""Split-stream scanning (SFA mappings, :mod:`repro.sim.split`).

The contract under test: splitting ONE stream across N workers is
bit-identical to the serial scan — report offsets, STE identity, report
codes, totals, and the resume cursor — for every worker count, stride,
and chunk geometry; degradations (frontier explosion, pool death) stay
correct and are surfaced, never silent; and the shared-memory
publication never leaks, whatever kills the pool.
"""

import random
import warnings

import numpy as np
import pytest

from repro.backends import create_backend
from repro.backends.artifact import CompiledArtifact
from repro.compiler import compile_automaton
from repro.core.design import CA_P
from repro.engine import CacheAutomatonEngine
from repro.errors import DegradedModeWarning
from repro.regex.compile import compile_patterns
from repro.sim import shard as shard_module
from repro.sim import split as split_module
from repro.sim.golden import match_offsets
from repro.sim.lazydfa import merge_cache_infos
from repro.sim.shard import SharedTables, scan_streams_sharded
from repro.sim.split import (
    SPLIT_JOBS_ENV,
    SfaKernel,
    effective_split_jobs,
    resolve_split_jobs,
)
from repro.workloads.suite import build_suite

#: Patterns chosen to keep entry-state influence alive across chunk
#: boundaries: a plus-loop, an overlap pair ("spl"/"it" spans "split"),
#: and a counter-ish repetition.
PATTERNS = ["needle", "na[gn]a+", "spl", "it", "c[ao]t+", "dog+"]

#: Suite benchmarks for the workload sweep (small at scale 0.05).
SUITE_NAMES = ("Bro217", "ExactMatch", "Ranges05", "PowerEN")


def _make_stream(length: int, seed: int = 77) -> bytes:
    rng = random.Random(seed)
    background = bytearray(
        rng.choice(b"abcdeghilnoprst ") for _ in range(length)
    )
    for position in range(50, length - 8, 211):
        background[position : position + 6] = b"needle"
    for position in range(120, length - 8, 397):
        background[position : position + 5] = b"split"
    for position in range(80, length - 8, 331):
        background[position : position + 4] = b"catt"
    return bytes(background)


def _full(result):
    return [(r.offset, r.ste_id, r.report_code) for r in result.reports]


@pytest.fixture(scope="module")
def artifact():
    machine = compile_patterns(PATTERNS, report_codes=PATTERNS)
    return CompiledArtifact.from_mapping(compile_automaton(machine, CA_P))


@pytest.fixture(scope="module")
def stream():
    return _make_stream(4003)


@pytest.fixture(scope="module")
def serial_result(artifact, stream):
    return create_backend("lazy-dfa", artifact).scan(stream)


class TestResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(SPLIT_JOBS_ENV, raising=False)
        assert resolve_split_jobs(None) == 1

    def test_env_applies(self, monkeypatch):
        monkeypatch.setenv(SPLIT_JOBS_ENV, "3")
        assert resolve_split_jobs(None) == 3
        assert resolve_split_jobs("auto") == 3

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(SPLIT_JOBS_ENV, "3")
        assert resolve_split_jobs(2) == 2
        assert resolve_split_jobs("4") == 4

    def test_floor_is_one(self, monkeypatch):
        monkeypatch.delenv(SPLIT_JOBS_ENV, raising=False)
        assert resolve_split_jobs(0) == 1
        assert resolve_split_jobs(-3) == 1

    def test_effective_jobs_respects_min_chunk(self):
        assert effective_split_jobs(100, 4, 1000) == 1
        assert effective_split_jobs(2000, 4, 1000) == 2
        assert effective_split_jobs(100_000, 4, 1000) == 4
        assert effective_split_jobs(100, 4, 0) == 4


class TestBitIdentity:
    @pytest.mark.parametrize("jobs", (1, 2, 3, 4))
    @pytest.mark.parametrize("stride", (1, 2))
    def test_jobs_stride_matrix(self, jobs, stride, artifact, stream,
                                serial_result):
        backend = create_backend(
            "lazy-dfa", artifact,
            split_jobs=jobs, split_min_chunk=16, stride=stride,
        )
        result = backend.scan(stream)
        assert _full(result) == _full(serial_result)
        assert result.checkpoint == serial_result.checkpoint
        assert result.profile.reports == serial_result.profile.reports
        assert result.report_offsets() == match_offsets(
            artifact.automaton, stream
        )

    @pytest.mark.parametrize("workload", SUITE_NAMES)
    def test_suite_workloads(self, workload):
        benchmark = {b.name: b for b in build_suite(0.05)}[workload]
        artifact = CompiledArtifact.from_mapping(
            compile_automaton(benchmark.build(), CA_P)
        )
        data = benchmark.input_stream(1536, 3)
        serial = create_backend("lazy-dfa", artifact).scan(data)
        split = create_backend(
            "lazy-dfa", artifact, split_jobs=2, split_min_chunk=16
        ).scan(data)
        assert _full(split) == _full(serial)
        assert split.checkpoint == serial.checkpoint

    @pytest.mark.parametrize("length", (997, 1009, 2003))
    def test_odd_length_chunks(self, length, artifact):
        """Prime lengths over 3/4 workers: every chunk boundary lands at
        an odd offset, including the strided case (tail-seam path)."""
        data = _make_stream(length, seed=length)
        serial = create_backend("lazy-dfa", artifact).scan(data)
        for jobs, stride in ((3, 1), (4, 1), (3, 2), (4, 2)):
            split = create_backend(
                "lazy-dfa", artifact,
                split_jobs=jobs, split_min_chunk=8, stride=stride,
            ).scan(data)
            assert _full(split) == _full(serial), (jobs, stride)
            assert split.checkpoint == serial.checkpoint, (jobs, stride)

    def test_counts_without_collection(self, artifact, stream, serial_result):
        backend = create_backend(
            "lazy-dfa", artifact, split_jobs=2, split_min_chunk=16
        )
        result = backend.scan(stream, collect_reports=False)
        assert result.reports == []
        assert result.profile.reports == serial_result.profile.reports
        assert result.checkpoint == serial_result.checkpoint

    def test_scan_argument_overrides_option(self, artifact, stream,
                                            serial_result):
        backend = create_backend(
            "lazy-dfa", artifact, split_min_chunk=16
        )
        result = backend.scan(stream, split_jobs=3)
        assert _full(result) == _full(serial_result)

    def test_short_input_stays_serial(self, artifact):
        """Below jobs x min_chunk no pool is forked at all."""
        backend = create_backend("lazy-dfa", artifact, split_jobs=4)
        data = b"a needle in a catt stack"
        serial = create_backend("lazy-dfa", artifact).scan(data)
        assert _full(backend.scan(data)) == _full(serial)
        assert backend.worker_cache_info() == {"workers": 0}

    def test_second_call_reuses_warm_sfa(self, artifact, stream,
                                         serial_result):
        """The parent merges worker tables after the join, so a second
        split scan seeds workers with the whole discovered mapping
        automaton and stays bit-identical."""
        backend = create_backend(
            "lazy-dfa", artifact, split_jobs=3, split_min_chunk=16
        )
        first = backend.scan(stream)
        before = backend.worker_cache_info()
        second = backend.scan(stream)
        after = backend.worker_cache_info()
        assert _full(first) == _full(second) == _full(serial_result)
        assert after["workers"] == before["workers"] + 2
        # Warm second round: seeded workers mostly hit.
        assert after["hits"] > before["hits"]


class TestResumeInterop:
    @pytest.mark.parametrize("cut", (1, 997, 2001, 4002))
    def test_split_resumes_serial_checkpoint(self, cut, artifact, stream,
                                             serial_result):
        serial = create_backend("lazy-dfa", artifact)
        head = serial.scan(stream[:cut])
        tail_serial = serial.scan(stream[cut:], resume=head.checkpoint)
        split = create_backend(
            "lazy-dfa", artifact, split_jobs=3, split_min_chunk=8
        )
        tail_split = split.scan(stream[cut:], resume=head.checkpoint)
        assert _full(tail_split) == _full(tail_serial)
        assert tail_split.checkpoint == tail_serial.checkpoint
        assert _full(head) + _full(tail_split) == _full(serial_result)

    def test_serial_resumes_split_checkpoint(self, artifact, stream,
                                             serial_result):
        split = create_backend(
            "lazy-dfa", artifact, split_jobs=4, split_min_chunk=8
        )
        head = split.scan(stream[:2001])
        serial = create_backend("lazy-dfa", artifact)
        tail = serial.scan(stream[2001:], resume=head.checkpoint)
        assert _full(head) + _full(tail) == _full(serial_result)

    def test_streaming_through_split_backend(self, artifact, stream,
                                             serial_result):
        scanner = create_backend(
            "lazy-dfa", artifact, split_jobs=2, split_min_chunk=8
        ).stream()
        collected = []
        for start in range(0, len(stream), 1003):
            collected.extend(_full(scanner.scan(stream[start:start + 1003])))
        assert collected == _full(serial_result)


def _dense_frontier_stream() -> bytes:
    """All-'a' background: every chunk-boundary byte activates several
    STEs with distinct successor masks (the ``a+`` loop, the post-``n``
    position, the ``[ao]`` alternative), so ``slot_limit=1`` is
    guaranteed to trip no matter where the chunk boundaries fall —
    unlike mixed text, where a boundary byte like 'c' or 's' starts
    exactly one pattern and fits a single slot."""
    data = bytearray(b"a" * 4003)
    for position in (100, 600, 1500, 1990, 2600, 3500):
        data[position : position + 5] = b"nagaa"
    return bytes(data)


class TestDegradation:
    def test_frontier_explosion_degrades_per_chunk(self, artifact):
        data = _dense_frontier_stream()
        serial = create_backend("lazy-dfa", artifact).scan(data)
        backend = create_backend(
            "lazy-dfa", artifact,
            split_jobs=4, split_min_chunk=8, split_slot_limit=1,
        )
        with pytest.warns(DegradedModeWarning, match="rescanned serially"):
            result = backend.scan(data)
        assert _full(result) == _full(serial)
        assert result.checkpoint == serial.checkpoint
        assert any("frontier" in event for event in backend.health_events)

    def test_engine_surfaces_split_degradation(self, tmp_path):
        data = _dense_frontier_stream()
        engine = CacheAutomatonEngine.from_patterns(
            PATTERNS,
            backend="lazy-dfa",
            cache=str(tmp_path),
            split_jobs=2,
            backend_options={"split_min_chunk": 8, "split_slot_limit": 1},
        )
        with pytest.warns(DegradedModeWarning):
            matches = engine.scan(data)
        serial = CacheAutomatonEngine.from_patterns(
            PATTERNS, backend="lazy-dfa", cache=str(tmp_path)
        )
        assert matches == serial.scan(data)
        assert any("split scan" in event for event in engine.health().events)

    def test_pool_failure_degrades_to_serial(self, monkeypatch, artifact,
                                             stream, serial_result):
        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no processes for you")

        monkeypatch.setattr(split_module, "ProcessPoolExecutor", ExplodingPool)
        backend = create_backend(
            "lazy-dfa", artifact, split_jobs=2, split_min_chunk=8
        )
        with pytest.warns(DegradedModeWarning, match="degrading to serial"):
            result = backend.scan(stream)
        assert _full(result) == _full(serial_result)

    def test_worker_exception_propagates(self, monkeypatch, artifact, stream):
        """A worker-side failure is a bug, not a degrade: it must
        surface, mirroring the sharded pool policy."""

        def boom(payload):
            raise ValueError("worker corrupted")

        monkeypatch.setattr(split_module, "_split_mapping_worker", boom)

        class InlinePool:
            def __init__(self, *args, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

            def submit(self, fn, payload):
                from concurrent.futures import Future

                future = Future()
                try:
                    future.set_result(fn(payload))
                except BaseException as error:  # noqa: BLE001
                    future.set_exception(error)
                return future

        monkeypatch.setattr(split_module, "ProcessPoolExecutor", InlinePool)
        backend = create_backend(
            "lazy-dfa", artifact, split_jobs=2, split_min_chunk=8
        )
        with pytest.raises(ValueError, match="worker corrupted"):
            backend.scan(stream)


class TestSharedMemoryHygiene:
    """Satellite: the published block must never outlive a failed pool."""

    def _recording_shm(self, monkeypatch):
        created = []
        real = shard_module.shared_memory.SharedMemory

        class Recording(real):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self._unlinked = False
                if kwargs.get("create"):
                    created.append(self)

            def unlink(self):
                self._unlinked = True
                super().unlink()

        monkeypatch.setattr(
            shard_module.shared_memory, "SharedMemory", Recording
        )
        return created

    def _tables(self, artifact):
        backend = create_backend("lazy-dfa", artifact)
        tables = dict(backend.simulator.kernel.packed_tables())
        tables.update(backend.dfa.export_tables())
        return tables

    def test_sharded_pool_death_releases_block(self, monkeypatch, artifact):
        created = self._recording_shm(monkeypatch)

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("fork failed")

        monkeypatch.setattr(
            shard_module, "ProcessPoolExecutor", ExplodingPool
        )
        items = [(0, b"abcabc", None), (1, b"defdef", None)]
        with pytest.warns(DegradedModeWarning, match="degrading to serial"):
            outcome = scan_streams_sharded(self._tables(artifact), items, 2)
        assert outcome is None
        assert created, "publication never happened"
        assert all(shm._unlinked for shm in created), "shared memory leaked"

    def test_broken_pool_mid_map_releases_block(self, monkeypatch, artifact):
        from concurrent.futures.process import BrokenProcessPool

        created = self._recording_shm(monkeypatch)

        class DyingPool:
            def __init__(self, *args, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

            def map(self, fn, payloads):
                raise BrokenProcessPool("worker died")

        monkeypatch.setattr(shard_module, "ProcessPoolExecutor", DyingPool)
        items = [(0, b"abcabc", None)]
        with pytest.warns(DegradedModeWarning):
            outcome = scan_streams_sharded(self._tables(artifact), items, 2)
        assert outcome is None
        assert created and all(shm._unlinked for shm in created)

    def test_split_pool_death_releases_block(self, monkeypatch, artifact,
                                             stream):
        created = self._recording_shm(monkeypatch)

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("fork failed")

        monkeypatch.setattr(
            split_module, "ProcessPoolExecutor", ExplodingPool
        )
        backend = create_backend(
            "lazy-dfa", artifact, split_jobs=2, split_min_chunk=8
        )
        with pytest.warns(DegradedModeWarning):
            backend.scan(stream)
        assert created and all(shm._unlinked for shm in created)

    def test_close_is_idempotent(self):
        shared = SharedTables({"a": np.arange(8, dtype=np.uint64)})
        shared.close()
        shared.close()  # second close must be a no-op, not an error

    def test_context_manager_unlinks(self):
        with SharedTables({"a": np.arange(8, dtype=np.uint64)}) as shared:
            name = shared.meta[0]
        with pytest.raises(FileNotFoundError):
            shard_module.shared_memory.SharedMemory(name=name)


class TestWorkerCounters:
    """Satellite: per-worker cache counters survive the join."""

    def test_merge_cache_infos_conventions(self):
        merged = merge_cache_infos([
            {"states": 10, "hits": 5, "misses": 2, "flushes": 1},
            {"states": 7, "hits": 3, "misses": 4, "flushes": 0},
        ])
        assert merged["states"] == 10      # gauge: max
        assert merged["hits"] == 8         # counter: sum
        assert merged["misses"] == 6
        assert merged["flushes"] == 1
        assert merged["workers"] == 2

    def test_merge_is_associative_over_aggregates(self):
        a = {"hits": 5, "states": 10}
        b = {"hits": 3, "states": 7}
        c = {"hits": 2, "states": 12}
        once = merge_cache_infos([a, b, c])
        folded = merge_cache_infos([merge_cache_infos([a, b]), c])
        assert once == folded

    def test_empty_merge(self):
        assert merge_cache_infos([]) == {"workers": 0}

    def test_sharded_scan_many_aggregates(self, artifact, stream):
        backend = create_backend("lazy-dfa", artifact)
        streams = [stream[i * 1000 : (i + 1) * 1000] for i in range(4)]
        assert backend.worker_cache_info() == {"workers": 0}
        backend.scan_many(streams, jobs=2)
        info = backend.worker_cache_info()
        assert info["workers"] == 2
        assert info["hits"] + info["misses"] > 0

    def test_split_scan_aggregates(self, artifact, stream):
        backend = create_backend(
            "lazy-dfa", artifact, split_jobs=3, split_min_chunk=8
        )
        backend.scan(stream)
        info = backend.worker_cache_info()
        assert info["workers"] == 2  # jobs - 1 mapping workers
        assert info["misses"] > 0


class TestCapabilitiesAndCli:
    def test_capability_flag(self, artifact):
        assert create_backend("lazy-dfa", artifact).capabilities().split
        assert not create_backend(
            "golden-interpreter", artifact
        ).capabilities().split

    def test_cli_split_matches_serial(self, tmp_path, capsys):
        from repro.cli import main

        rules = tmp_path / "rules.txt"
        rules.write_text("needle\nc[ao]t+\n")
        # Must clear 2 x SPLIT_MIN_CHUNK so the CLI (which exposes no
        # min-chunk knob) actually forks the split pool.
        payload = tmp_path / "input.bin"
        payload.write_bytes(_make_stream(9000, seed=9))
        assert main([
            "scan", str(rules), str(payload), "--backend", "lazy-dfa",
        ]) == 0
        serial_output = capsys.readouterr().out
        assert main([
            "scan", str(rules), str(payload), "--backend", "lazy-dfa",
            "--split-jobs", "2",
        ]) == 0
        split_output = capsys.readouterr().out
        assert split_output == serial_output
        assert "offset" in serial_output


class TestSfaKernelInternals:
    def _kernel(self, artifact):
        return create_backend("lazy-dfa", artifact).simulator.kernel

    def test_flush_keeps_mappings_correct(self):
        """A tiny state budget forces wholesale cache flushes mid-chunk;
        the produced mapping must stay functionally identical to an
        unbudgeted one (entries and effects are flush-immune) for ANY
        entry activation row.  Hamming is the state-heaviest suite
        workload, so it overflows a floor-sized budget quickly."""
        benchmark = {b.name: b for b in build_suite(0.05)}["Hamming"]
        artifact = CompiledArtifact.from_mapping(
            compile_automaton(benchmark.build(), CA_P)
        )
        data = benchmark.input_stream(4096, 3)
        backend = create_backend("lazy-dfa", artifact)
        kernel = backend.simulator.kernel
        chunk = np.frombuffer(data[2048:], dtype=np.uint8)

        budgeted = SfaKernel(kernel, max_states=64)
        lavish = SfaKernel(kernel)
        tight = budgeted.scan_mapping(chunk)
        loose = lavish.scan_mapping(chunk)
        assert budgeted.cache_info()["flushes"] > 0
        assert lavish.cache_info()["flushes"] == 0

        first_byte = int(chunk[0])
        entries = [
            np.zeros_like(kernel.match_matrix[0]),
            kernel.match_matrix[int(chunk[100])].copy(),
            kernel.match_matrix[data[0]] | kernel.match_matrix[data[1]],
        ]
        for entry_row in entries:
            tight_events, tight_exit = split_module._apply_mapping(
                kernel, entry_row, first_byte, tight
            )
            loose_events, loose_exit = split_module._apply_mapping(
                kernel, entry_row, first_byte, loose
            )
            assert tight_events == loose_events
            assert bytes(tight_exit) == bytes(loose_exit)

        # And end to end: the state-heavy workload splits bit-identically.
        serial = backend.scan(data)
        split = create_backend(
            "lazy-dfa", artifact, split_jobs=3, split_min_chunk=8
        ).scan(data)
        assert _full(split) == _full(serial)

    def test_export_seed_roundtrip_warms(self, artifact, stream):
        kernel = self._kernel(artifact)
        warm = SfaKernel(kernel)
        symbols = np.frombuffer(stream, dtype=np.uint8)
        warm.scan_mapping(symbols)
        cold = SfaKernel(kernel)
        cold.seed(warm.export_tables())
        cold.scan_mapping(symbols)
        info = cold.cache_info()
        # Only effectful transitions (a tiny minority) re-miss.
        assert info["misses"] < warm.cache_info()["misses"] / 5
        assert info["hits"] > 0

    def test_seed_into_warm_kernel_merges(self, artifact, stream):
        kernel = self._kernel(artifact)
        left = SfaKernel(kernel)
        left.scan_mapping(np.frombuffer(stream[:1500], dtype=np.uint8))
        right = SfaKernel(kernel)
        right.scan_mapping(np.frombuffer(stream[1500:], dtype=np.uint8))
        states_before = left.cache_info()["states"]
        left.seed(right.export_tables())
        assert left.cache_info()["states"] >= states_before

    def test_mapping_rejects_empty_chunk(self, artifact):
        probe = SfaKernel(self._kernel(artifact))
        with pytest.raises(ValueError, match="non-empty"):
            probe.scan_mapping(np.frombuffer(b"", dtype=np.uint8))
