"""Tests for the functional SRAM array and the sense-amp cycling sequence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.symbols import SymbolSet
from repro.core.sram import SramArray
from repro.errors import HardwareModelError


def seeded_array(rows=256, columns=128, mux=4, seed=0) -> SramArray:
    array = SramArray(rows, columns, mux)
    rng = np.random.default_rng(seed)
    array.cells[:] = rng.integers(0, 2, size=(rows, columns), dtype=np.uint8)
    return array


class TestGeometry:
    def test_sense_amp_count(self):
        assert SramArray(256, 128, 4).sense_amps == 32
        assert SramArray(256, 128, 8).sense_amps == 16

    def test_invalid_mux(self):
        with pytest.raises(HardwareModelError):
            SramArray(256, 128, 3)  # does not divide
        with pytest.raises(HardwareModelError):
            SramArray(256, 128, 0)
        with pytest.raises(HardwareModelError):
            SramArray(0, 128, 4)


class TestWrite:
    def test_write_column_roundtrip(self):
        array = SramArray()
        image = SymbolSet.from_range("a", "f").to_onehot()
        array.write_column(5, image)
        assert (array.cells[:, 5] == image).all()

    def test_write_row_roundtrip(self):
        array = SramArray()
        bits = np.arange(128) % 2
        array.write_row(100, bits)
        assert (array.cells[100] == bits).all()

    def test_bounds_and_shapes(self):
        array = SramArray()
        with pytest.raises(HardwareModelError):
            array.write_column(128, np.zeros(256))
        with pytest.raises(HardwareModelError):
            array.write_column(0, np.zeros(255))
        with pytest.raises(HardwareModelError):
            array.write_row(256, np.zeros(128))
        with pytest.raises(HardwareModelError):
            array.write_row(0, np.zeros(127))


class TestReadSequences:
    def test_both_sequences_return_identical_data(self):
        array = seeded_array()
        for row in (0, 17, 255):
            baseline = array.read_row_baseline(row)
            cycled = array.read_row_cycled(row)
            assert (baseline.data == cycled.data).all()
            assert (baseline.data == array.cells[row]).all()

    def test_cycled_is_faster(self):
        """The Section 2.6 claim: > 2x for 4-way, more for 8-way."""
        array4 = seeded_array(mux=4)
        array8 = seeded_array(columns=128, mux=8)
        speedup4 = (
            array4.read_row_baseline(0).total_ps
            / array4.read_row_cycled(0).total_ps
        )
        speedup8 = (
            array8.read_row_baseline(0).total_ps
            / array8.read_row_cycled(0).total_ps
        )
        assert speedup4 > 2.0
        assert speedup8 > speedup4

    def test_cycled_matches_table3_delay(self):
        """A CA_P partition read (4-way mux) completes in 438 ps."""
        array = seeded_array(mux=4)
        assert array.read_row_cycled(0).total_ps == pytest.approx(438.0)

    def test_waveform_shape(self):
        """Figure 4: one setup phase, then back-to-back SAE pulses."""
        array = seeded_array(mux=4)
        read = array.read_row_cycled(9)
        assert [phase.select for phase in read.phases] == [0, 1, 2, 3]
        starts = [phase.start_ps for phase in read.phases]
        gaps = {round(b - a, 3) for a, b in zip(starts, starts[1:])}
        assert gaps == {array.parameters.sense_step_ps}
        assert starts[0] == array.parameters.precharge_wordline_ps

    def test_baseline_one_cycle_per_select(self):
        array = seeded_array(mux=4)
        read = array.read_row_baseline(9)
        starts = [phase.start_ps for phase in read.phases]
        assert starts == [
            i * array.parameters.cycle_time_ps for i in range(4)
        ]

    def test_interleaved_mux_wiring(self):
        """Column c reaches sense amp c // mux at select c % mux."""
        array = SramArray(4, 8, 4)
        array.write_row(0, np.array([1, 0, 0, 0, 0, 0, 1, 0]))
        phase0 = array.read_row_cycled(0).phases[0]
        assert phase0.bits.tolist() == [1, 0]  # columns 0 and 4
        phase2 = array.read_row_cycled(0).phases[2]
        assert phase2.bits.tolist() == [0, 1]  # columns 2 and 6

    def test_row_bounds(self):
        array = SramArray()
        with pytest.raises(HardwareModelError):
            array.read_row_cycled(256)
        with pytest.raises(HardwareModelError):
            array.read_row_baseline(-1)


class TestMatchVector:
    def test_match_vector_is_ste_match(self):
        """Writing STE one-hot columns then reading row=symbol gives the
        match vector — the state-match phase end to end."""
        array = SramArray(256, 8, 4)
        labels = [SymbolSet.from_range(10 * i, 10 * i + 5) for i in range(8)]
        for column, label in enumerate(labels):
            array.write_column(column, label.to_onehot())
        for symbol in (0, 5, 12, 200):
            vector = array.match_vector(symbol)
            expected = [1 if label.matches(symbol) else 0 for label in labels]
            assert vector.tolist() == expected

    def test_cycled_flag(self):
        array = seeded_array()
        assert (
            array.match_vector(42, cycled=True)
            == array.match_vector(42, cycled=False)
        ).all()

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=30, deadline=None)
    def test_any_symbol_consistent(self, symbol):
        array = seeded_array(seed=symbol)
        assert (
            array.read_row_baseline(symbol).data
            == array.read_row_cycled(symbol).data
        ).all()


class TestRedundancyRepair:
    """Figure 2(c): spare columns map out dead bit-lines transparently."""

    def _panel(self):
        from repro.core.sram import RepairableArray

        repairable = RepairableArray(SramArray(256, 8, 4), spare_columns=2)
        labels = [SymbolSet.from_range(20 * i, 20 * i + 9) for i in range(6)]
        return repairable, labels

    def test_transparent_repair(self):
        repairable, labels = self._panel()
        repairable.mark_defective(3)
        for column, label in enumerate(labels):
            repairable.write_column(column, label.to_onehot())
        for symbol in (0, 25, 65, 130):
            vector = repairable.match_vector(symbol)
            expected = [1 if label.matches(symbol) else 0 for label in labels]
            assert vector.tolist() == expected

    def test_physical_steering(self):
        repairable, _ = self._panel()
        assert repairable.physical_column(3) == 3
        repairable.mark_defective(3)
        assert repairable.physical_column(3) == repairable.logical_columns
        assert repairable.physical_column(2) == 2

    def test_spares_exhausted(self):
        from repro.errors import HardwareModelError

        repairable, _ = self._panel()
        repairable.mark_defective(0)
        repairable.mark_defective(1)
        with pytest.raises(HardwareModelError):
            repairable.mark_defective(2)

    def test_double_repair_rejected(self):
        from repro.errors import HardwareModelError

        repairable, _ = self._panel()
        repairable.mark_defective(0)
        with pytest.raises(HardwareModelError):
            repairable.mark_defective(0)

    def test_logical_bounds(self):
        from repro.errors import HardwareModelError

        repairable, _ = self._panel()
        with pytest.raises(HardwareModelError):
            repairable.write_column(6, np.zeros(256))  # spare region
