"""Tests for the benchmark suite, synthetic generators, distance automata,
and input streams."""

import random

import pytest

from repro.automata.components import component_stats
from repro.errors import AutomatonError, ReproError
from repro.sim.golden import match_offsets, simulate
from repro.workloads import inputs, synth
from repro.workloads.distance import (
    hamming_automaton,
    levenshtein_automaton,
    levenshtein_nfa,
)
from repro.workloads.suite import BENCHMARK_NAMES, build_suite, get_benchmark


def hamming_distance(a: bytes, b: bytes) -> int:
    assert len(a) == len(b)
    return sum(x != y for x, y in zip(a, b))


def edit_distance(a: bytes, b: bytes) -> int:
    previous = list(range(len(b) + 1))
    for i, x in enumerate(a, 1):
        current = [i]
        for j, y in enumerate(b, 1):
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + (x != y))
            )
        previous = current
    return previous[-1]


class TestHammingAutomaton:
    def test_exact_match(self):
        automaton = hamming_automaton(b"gattaca", 1)
        assert 6 in match_offsets(automaton, b"gattaca")

    def test_one_substitution(self):
        automaton = hamming_automaton(b"gattaca", 1)
        assert 6 in match_offsets(automaton, b"gatxaca")

    def test_two_substitutions_rejected_at_k1(self):
        automaton = hamming_automaton(b"gattaca", 1)
        assert match_offsets(automaton, b"gxtxaca") == []

    def test_brute_force_agreement(self):
        rng = random.Random(31)
        pattern = bytes(rng.choice(b"ACGT") for _ in range(8))
        automaton = hamming_automaton(pattern, 2)
        text = bytes(rng.choice(b"ACGT") for _ in range(300))
        expected = [
            end
            for end in range(7, len(text))
            if hamming_distance(text[end - 7 : end + 1], pattern) <= 2
        ]
        assert match_offsets(automaton, text) == expected

    def test_anchored(self):
        automaton = hamming_automaton(b"abc", 1, anchored=True)
        assert match_offsets(automaton, b"abcabc") == [2]
        assert match_offsets(automaton, b"xbcabc") == [2]  # 1 mismatch at start
        assert match_offsets(automaton, b"xycabc") == []

    def test_validation(self):
        with pytest.raises(AutomatonError):
            hamming_automaton(b"", 1)
        with pytest.raises(AutomatonError):
            hamming_automaton(b"abc", -1)
        with pytest.raises(AutomatonError):
            hamming_automaton(b"abc", 3)

    def test_report_code(self):
        automaton = hamming_automaton(b"ab", 1, report_code="gene7")
        reports = simulate(automaton, b"ab").reports
        assert all(r.report_code == "gene7" for r in reports)


class TestLevenshteinAutomaton:
    def test_exact_and_substitution(self):
        automaton = levenshtein_automaton(b"kitten", 1)
        assert match_offsets(automaton, b"kitten")
        assert match_offsets(automaton, b"kitxen")

    def test_insertion_and_deletion(self):
        automaton = levenshtein_automaton(b"kitten", 1)
        assert match_offsets(automaton, b"kit_ten")  # one insertion
        assert match_offsets(automaton, b"kiten")  # one deletion

    def test_distance_two_needed(self):
        automaton1 = levenshtein_automaton(b"kitten", 1)
        automaton2 = levenshtein_automaton(b"kitten", 2)
        assert not match_offsets(automaton1, b"sittin")
        assert match_offsets(automaton2, b"sittin")

    def test_brute_force_agreement(self):
        rng = random.Random(32)
        pattern = bytes(rng.choice(b"ab") for _ in range(6))
        automaton = levenshtein_automaton(pattern, 1)
        text = bytes(rng.choice(b"ab") for _ in range(60))
        expected = set()
        for end in range(len(text)):
            for start in range(max(0, end - 8), end + 1):
                if edit_distance(text[start : end + 1], pattern) <= 1:
                    expected.add(end)
                    break
        assert set(match_offsets(automaton, text)) == expected

    def test_nfa_epsilon_structure(self):
        nfa = levenshtein_nfa(b"abc", 1)
        assert nfa.has_epsilon()  # deletions are epsilon moves

    def test_distance_must_be_less_than_length(self):
        with pytest.raises(AutomatonError):
            levenshtein_automaton(b"ab", 2)


class TestGenerators:
    def test_determinism(self):
        assert synth.dotstar_rules(20, 0.5, seed=1) == synth.dotstar_rules(
            20, 0.5, seed=1
        )
        assert synth.ids_rules(10, seed=2) == synth.ids_rules(10, seed=2)

    def test_dotstar_fraction_respected(self):
        none = synth.dotstar_rules(50, 0.0, seed=3)
        everything = synth.dotstar_rules(50, 1.0, seed=3)
        assert not any(".*" in rule for rule in none)
        assert all(".*" in rule for rule in everything)

    def test_dotstar_fraction_validated(self):
        with pytest.raises(ReproError):
            synth.dotstar_rules(10, 1.5)

    def test_all_rule_families_compile(self):
        from repro.regex.compile import compile_patterns

        for rules in (
            synth.dotstar_rules(10, 0.5, seed=4),
            synth.range_rules(10, 1.0, seed=5),
            synth.exact_match_rules(10, seed=6),
            synth.ids_rules(10, seed=7),
            synth.prosite_motifs(10, seed=8),
            synth.spm_patterns(10, seed=9),
        ):
            machine = compile_patterns(rules)
            machine.validate()

    def test_clamav_family_sharing(self):
        signatures = synth.clamav_signatures(20, seed=10)
        heads = {s[:16] for s in signatures}
        assert len(heads) < 20  # families share heads

    def test_fermi_wide_labels(self):
        automaton = synth.fermi_automaton(5, length=4, seed=11)
        widths = [ste.symbols.cardinality() for ste in automaton.stes()]
        # Ranges clip at the alphabet edges, but stay broad on average —
        # that breadth is what keeps Fermi's active set huge.
        assert min(widths) >= 40
        assert sum(widths) / len(widths) >= 100

    def test_random_forest_structure(self):
        automaton = synth.random_forest_automaton(7, 5, seed=12)
        stats = component_stats(automaton)
        assert stats.component_count == 7
        assert stats.largest_component_size == 5

    def test_entity_names_first_letters(self):
        names = synth.entity_resolution_names(30, seed=13, first_letters="ab")
        assert {name[:1] for name in names} <= {b"a", b"b"}


class TestInputs:
    def test_lengths(self):
        for maker in (
            lambda: inputs.random_bytes(1000, seed=1),
            lambda: inputs.random_over_alphabet(1000, b"ab", seed=2),
            lambda: inputs.text_stream(1000, seed=3),
            lambda: inputs.dna_stream(1000, seed=4),
            lambda: inputs.protein_stream(1000, seed=5),
            lambda: inputs.record_stream(1000, b"0123", seed=6),
        ):
            assert len(maker()) == 1000

    def test_alphabet_respected(self):
        stream = inputs.dna_stream(500, seed=7)
        assert set(stream) <= set(b"ACGT")

    def test_planting_guarantees_occurrences(self):
        background = inputs.random_over_alphabet(2000, b"x", seed=8)
        planted = inputs.with_planted_matches(
            background, [b"needle"], occurrences=5, seed=9
        )
        assert planted.count(b"needle") >= 1

    def test_planting_validations(self):
        with pytest.raises(ReproError):
            inputs.with_planted_matches(b"short", [b"toolongneedle"], occurrences=1)
        with pytest.raises(ReproError):
            inputs.with_planted_matches(b"x" * 10, [], occurrences=1)
        with pytest.raises(ReproError):
            inputs.random_over_alphabet(10, b"")

    def test_record_stream_separators(self):
        stream = inputs.record_stream(160, b"01", record_length=16, seed=10)
        assert stream[15] == 0x0A
        assert stream[31] == 0x0A

    def test_determinism(self):
        assert inputs.random_bytes(100, seed=1) == inputs.random_bytes(100, seed=1)
        assert inputs.random_bytes(100, seed=1) != inputs.random_bytes(100, seed=2)


class TestSuite:
    def test_twenty_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 20
        assert len(set(BENCHMARK_NAMES)) == 20

    def test_lookup(self):
        assert get_benchmark("Snort").name == "Snort"
        with pytest.raises(ReproError):
            get_benchmark("NotABenchmark")

    def test_paper_rows_present(self):
        for benchmark in build_suite():
            assert benchmark.paper.states > 0
            assert benchmark.paper.s_states <= benchmark.paper.states

    def test_builders_deterministic(self):
        benchmark = get_benchmark("Bro217")
        first = benchmark.build()
        second = benchmark.build()
        assert sorted(first.ste_ids()) == sorted(second.ste_ids())
        assert sorted(first.edges()) == sorted(second.edges())

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_benchmark_builds_and_matches(self, name):
        benchmark = get_benchmark(name)
        automaton = benchmark.build()
        automaton.validate()
        data = benchmark.input_stream(2000, seed=3)
        assert len(data) == 2000
        result = simulate(automaton, data, collect_reports=False)
        # Activity must be non-trivial: the input actually exercises it.
        assert result.stats.total_matched_states > 0

    def test_space_trend_mirrors_paper(self):
        """Where the paper's CC count collapses, ours must too."""
        from repro.automata.optimize import space_optimize

        for name in ("EntityResolution", "Brill", "Snort"):
            automaton = get_benchmark(name).build()
            before = component_stats(automaton)
            after = component_stats(space_optimize(automaton))
            assert after.component_count < before.component_count / 2, name
            assert after.state_count < before.state_count, name
