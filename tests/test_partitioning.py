"""Tests for the multilevel k-way partitioner (the METIS substitute)."""

import itertools
import random

import pytest

from repro.errors import PartitioningError
from repro.partitioning import (
    PartitionGraph,
    bisect,
    cut_weight,
    from_directed_edges,
    part_weights,
    partition_into_capacity,
    partition_kway,
)
from repro.partitioning.coarsen import coarsen, contract, heavy_edge_matching
from repro.partitioning.refine import refine_bisection


def clustered_graph(clusters: int, size: int, bridges: int, seed: int = 0):
    """Dense clusters joined by a few bridge edges (known good cuts)."""
    rng = random.Random(seed)
    graph = PartitionGraph([1] * (clusters * size))
    for cluster in range(clusters):
        nodes = list(range(cluster * size, (cluster + 1) * size))
        for _ in range(size * 5):
            u, v = rng.sample(nodes, 2)
            graph.add_edge(u, v)
    for _ in range(bridges):
        a, b = rng.sample(range(clusters), 2)
        graph.add_edge(
            rng.randrange(a * size, (a + 1) * size),
            rng.randrange(b * size, (b + 1) * size),
        )
    return graph


class TestGraph:
    def test_self_loops_ignored(self):
        graph = PartitionGraph([1, 1])
        graph.add_edge(0, 0)
        assert graph.edge_count() == 0

    def test_parallel_edges_accumulate(self):
        graph = PartitionGraph([1, 1])
        graph.add_edge(0, 1)
        graph.add_edge(0, 1, 2)
        assert graph.neighbours(0)[1] == 3
        assert graph.degree_weight(0) == 3

    def test_bad_weights(self):
        with pytest.raises(PartitioningError):
            PartitionGraph([1, 0])
        graph = PartitionGraph([1, 1])
        with pytest.raises(PartitioningError):
            graph.add_edge(0, 1, 0)
        with pytest.raises(PartitioningError):
            graph.add_edge(0, 5)

    def test_from_directed_edges_collapses(self):
        graph = from_directed_edges(3, [(0, 1), (1, 0), (1, 2)])
        assert graph.neighbours(0)[1] == 2
        assert graph.neighbours(1)[2] == 1

    def test_cut_weight(self):
        graph = PartitionGraph([1] * 4)
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        graph.add_edge(1, 2, 5)
        assert cut_weight(graph, [0, 0, 1, 1]) == 5
        assert cut_weight(graph, [0, 1, 1, 0]) == 2

    def test_part_weights(self):
        graph = PartitionGraph([2, 3, 5])
        assert part_weights(graph, [0, 1, 1], 2) == [2, 8]


class TestCoarsening:
    def test_matching_projection_valid(self):
        graph = clustered_graph(2, 30, 3)
        projection = heavy_edge_matching(graph, random.Random(0), 100)
        assert len(projection) == graph.node_count
        assert max(projection) + 1 <= graph.node_count
        # At most two fine nodes per coarse node.
        counts = {}
        for coarse in projection:
            counts[coarse] = counts.get(coarse, 0) + 1
        assert max(counts.values()) <= 2

    def test_contract_preserves_total_weight(self):
        graph = clustered_graph(2, 25, 2)
        projection = heavy_edge_matching(graph, random.Random(1), 100)
        coarse = contract(graph, projection)
        assert coarse.total_weight == graph.total_weight

    def test_coarsen_reduces_size(self):
        graph = clustered_graph(3, 40, 4)
        levels = coarsen(graph, random.Random(2), stop_at=20)
        assert levels
        assert levels[-1].graph.node_count < graph.node_count // 2

    def test_coarsen_respects_node_weight_cap(self):
        graph = clustered_graph(2, 32, 2)
        levels = coarsen(graph, random.Random(3), max_node_weight=4)
        for level in levels:
            assert max(level.graph.node_weights) <= 4


class TestRefinement:
    def test_fm_improves_bad_bisection(self):
        graph = clustered_graph(2, 25, 2, seed=4)
        # Worst-case start: interleaved assignment.
        assignment = [node % 2 for node in range(graph.node_count)]
        before = cut_weight(graph, assignment)
        refine_bisection(graph, assignment, [30, 30])
        after = cut_weight(graph, assignment)
        assert after < before

    def test_fm_respects_balance(self):
        graph = clustered_graph(2, 20, 1, seed=5)
        assignment = [node % 2 for node in range(graph.node_count)]
        refine_bisection(graph, assignment, [22, 22])
        weights = part_weights(graph, assignment, 2)
        assert max(weights) <= 22


class TestBisect:
    def test_finds_bridge_cut(self):
        graph = clustered_graph(2, 50, 4, seed=6)
        assignment = bisect(graph, [50, 50])
        assert cut_weight(graph, assignment) <= 8  # near the 4-bridge optimum
        weights = part_weights(graph, assignment, 2)
        assert max(weights) <= 56

    def test_infeasible_targets_rejected(self):
        graph = PartitionGraph([1] * 10)
        with pytest.raises(PartitioningError):
            bisect(graph, [3, 3])
        with pytest.raises(PartitioningError):
            bisect(graph, [10])


class TestKway:
    def test_chain_optimal_cuts(self):
        graph = PartitionGraph([1] * 120)
        for index in range(119):
            graph.add_edge(index, index + 1)
        assignment = partition_kway(graph, 4)
        assert cut_weight(graph, assignment) <= 6  # optimum is 3
        weights = part_weights(graph, assignment, 4)
        assert max(weights) <= 40

    def test_small_graph_brute_force_comparison(self):
        """On tiny graphs the partitioner should be near the true optimum."""
        rng = random.Random(7)
        graph = PartitionGraph([1] * 10)
        for _ in range(16):
            u, v = rng.sample(range(10), 2)
            graph.add_edge(u, v)
        best = min(
            cut_weight(graph, [0] * 5 + [1] * 5 if False else list(assignment))
            for assignment in itertools.product([0, 1], repeat=10)
            if 4 <= sum(assignment) <= 6
        )
        found = cut_weight(graph, bisect(graph, [5, 5], attempts=8))
        assert found <= best * 2 + 1

    def test_k_equals_one(self):
        graph = clustered_graph(1, 10, 0)
        assert set(partition_kway(graph, 1)) == {0}

    def test_bad_k(self):
        with pytest.raises(PartitioningError):
            partition_kway(PartitionGraph([1]), 0)

    def test_all_parts_used(self):
        graph = clustered_graph(4, 25, 8, seed=8)
        assignment = partition_kway(graph, 4)
        assert set(assignment) == {0, 1, 2, 3}


class TestCapacityPartitioning:
    def test_every_part_fits(self):
        graph = clustered_graph(3, 70, 5, seed=9)
        assignment = partition_into_capacity(graph, 64)
        parts = max(assignment) + 1
        weights = part_weights(graph, assignment, parts)
        assert max(weights) <= 64
        assert parts >= 4  # 210 nodes / 64

    def test_exact_fit(self):
        graph = PartitionGraph([1] * 64)
        for index in range(63):
            graph.add_edge(index, index + 1)
        assignment = partition_into_capacity(graph, 64)
        assert max(assignment) == 0

    def test_capacity_below_heaviest_node(self):
        graph = PartitionGraph([10, 1])
        with pytest.raises(PartitioningError):
            partition_into_capacity(graph, 5)

    def test_weighted_nodes(self):
        graph = PartitionGraph([3] * 30)
        for index in range(29):
            graph.add_edge(index, index + 1)
        assignment = partition_into_capacity(graph, 10)
        parts = max(assignment) + 1
        assert max(part_weights(graph, assignment, parts)) <= 10

    def test_deterministic_given_rng(self):
        graph = clustered_graph(2, 40, 3, seed=10)
        first = partition_into_capacity(graph, 32, rng=random.Random(1))
        second = partition_into_capacity(graph, 32, rng=random.Random(1))
        assert first == second


class TestQualityVsRandom:
    def test_beats_random_partition(self):
        """The multilevel partitioner must clearly beat random assignment
        (the ablation justifying METIS in Section 3.2)."""
        graph = clustered_graph(4, 60, 10, seed=11)
        rng = random.Random(12)
        random_cut = cut_weight(
            graph, [rng.randrange(4) for _ in range(graph.node_count)]
        )
        good_cut = cut_weight(graph, partition_kway(graph, 4))
        assert good_cut < random_cut / 5
