"""Tests for the evaluation harness (experiment runners and table output)."""

import pytest

from repro.eval.experiments import (
    evaluate_benchmark,
    evaluate_suite,
    fig7,
    fig8,
    fig9a,
    fig9b,
    fig10,
    headline,
    registry,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.eval.tables import format_cell, format_table
from repro.workloads.suite import get_benchmark


@pytest.fixture(scope="module")
def sample_evaluations():
    """Three representative benchmarks, short inputs (fast for CI)."""
    return evaluate_suite(
        input_length=1500, names=["Bro217", "EntityResolution", "SPM"]
    )


class TestEvaluateBenchmark:
    def test_pipeline_outputs(self):
        evaluation = evaluate_benchmark(get_benchmark("Bro217"), input_length=1000)
        assert evaluation.perf_profile.symbols == 1000
        assert evaluation.space_profile.symbols == 1000
        assert evaluation.perf_mapping.design.name == "CA_P"
        assert evaluation.space_mapping.design.name == "CA_S"
        assert evaluation.perf_avg_active_states > 0

    def test_space_mapping_not_larger(self):
        evaluation = evaluate_benchmark(
            get_benchmark("EntityResolution"), input_length=800
        )
        assert (
            evaluation.space_mapping.cache_bytes()
            <= evaluation.perf_mapping.cache_bytes()
        )


class TestStaticExperiments:
    def test_table2_contains_published_rows(self):
        rows = table2()
        rendered = format_table(rows)
        assert "280x256" in rendered
        assert "512x512" in rendered
        # CA_P has no G4 row.
        ca_p_rows = [row for row in rows[1:] if row[0] == "CA_P"]
        assert {row[1] for row in ca_p_rows} == {"L", "G1"}

    def test_table3_values(self):
        rows = table3()
        by_name = {row[0]: row for row in rows[1:]}
        assert by_name["CA_P"][1] == pytest.approx(438, abs=1)
        assert by_name["CA_P"][5] == 2.0
        assert by_name["CA_S"][5] == 1.2

    def test_table4_ordering(self):
        rows = table4()
        for row in rows[1:]:
            achieved, no_sa, h_bus = row[1], row[2], row[3]
            assert no_sa < achieved
            assert h_bus < achieved

    def test_fig10_shape(self):
        rows = fig10()
        names = [row[0] for row in rows[1:]]
        assert names == ["CA_64", "CA_P", "CA_S", "AP"]
        by_name = {row[0]: row for row in rows[1:]}
        # CA_P dominates AP on both axes (reach and frequency).
        assert by_name["CA_P"][1] > by_name["AP"][1]
        assert by_name["CA_P"][2] > by_name["AP"][2]
        assert by_name["CA_P"][3] < by_name["AP"][3]


class TestDynamicExperiments:
    def test_table1_rows(self, sample_evaluations):
        rows = table1(sample_evaluations)
        assert len(rows) == 4
        for row in rows[1:]:
            p_states, s_states = row[1], row[5]
            assert s_states <= p_states

    def test_fig7_constant_throughput(self, sample_evaluations):
        rows = fig7(sample_evaluations)
        # Deterministic 1 symbol/cycle: same bars for every benchmark.
        assert len({row[3] for row in rows[1:]}) == 1
        assert rows[1][3] == 16.0
        assert rows[1][4] == pytest.approx(15.0, rel=0.01)

    def test_fig8_savings(self, sample_evaluations):
        rows = fig8(sample_evaluations)
        assert rows[-1][0] == "AVERAGE"
        for row in rows[1:]:
            assert row[2] <= row[1] + 1e-9  # CA_S never uses more

    def test_fig9a_ordering(self, sample_evaluations):
        rows = fig9a(sample_evaluations)
        for row in rows[1:]:
            name, ca_p, ca_s, ap_p, ap_s = row
            assert ca_p < ap_p  # CA beats Ideal AP on the same mapping
            assert ca_s < ap_s

    def test_fig9b_power_below_tdp(self, sample_evaluations):
        from repro.core.params import XEON_TDP_WATTS

        rows = fig9b(sample_evaluations)
        for row in rows[1:]:
            assert row[1] < XEON_TDP_WATTS
            assert row[2] < XEON_TDP_WATTS

    def test_headline_claims(self, sample_evaluations):
        rows = headline(sample_evaluations)
        by_metric = {row[0]: row for row in rows[1:]}
        assert by_metric["CA_P speedup over AP"][1] == pytest.approx(15.0, rel=0.01)
        assert by_metric["CA_S speedup over AP"][1] == pytest.approx(9.0, rel=0.01)
        assert by_metric["CA_P speedup over CPU"][1] == pytest.approx(
            3840, rel=0.01
        )

    def test_table5_structure(self):
        rows = table5(input_length=1200)
        assert rows[0][0] == "Metric"
        throughput = rows[1]
        # CA_P column is last-but-one; it must beat HARE and UAP.
        assert throughput[3] > throughput[1]
        assert throughput[3] > throughput[2]

    def test_registry_covers_all_experiments(self, sample_evaluations):
        experiments = registry(lambda: sample_evaluations)
        assert set(experiments) == {
            "table1", "table2", "table3", "table4", "table5",
            "fig7", "fig8", "fig9a", "fig9b", "fig10", "multistream", "headline",
        }
        for name, runner in experiments.items():
            if name == "table5":
                continue  # exercised separately (slow path)
            rows = runner()
            assert len(rows) >= 2, name


class TestTableFormatting:
    def test_format_cell(self):
        assert format_cell(3) == "3"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(31.4159) == "31.4"
        assert format_cell(31415.9) == "31,416"
        assert format_cell(0.0) == "0"
        assert format_cell("text") == "text"

    def test_format_table_alignment(self):
        rendered = format_table([("Name", "Value"), ("x", 1.5), ("long-name", 22)])
        lines = rendered.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[1].startswith("-")

    def test_empty(self):
        assert format_table([]) == ""
