"""Tests for the design-space sweep utilities."""

import pytest

from repro.core.design import CA_P, CA_S
from repro.errors import HardwareModelError
from repro.eval.sweeps import (
    sweep_g1_wires,
    sweep_g4_wires,
    sweep_partition_size,
    sweep_ways,
)


class TestG1Sweep:
    def test_reachability_monotone_in_wires(self):
        rows = sweep_g1_wires()
        reaches = [row[1] for row in rows[1:]]
        assert reaches == sorted(reaches)

    def test_area_monotone_in_wires(self):
        rows = sweep_g1_wires()
        areas = [row[4] for row in rows[1:]]
        assert areas == sorted(areas)

    def test_zero_wires_reach_is_partition(self):
        rows = sweep_g1_wires(wire_counts=(0,))
        assert rows[1][1] == CA_P.partition_size

    def test_frequency_never_increases_with_wires(self):
        rows = sweep_g1_wires(wire_counts=(0, 16, 64))
        frequencies = [row[2] for row in rows[1:]]
        assert frequencies == sorted(frequencies, reverse=True)


class TestG4Sweep:
    def test_reach_grows(self):
        rows = sweep_g4_wires()
        reaches = [row[1] for row in rows[1:]]
        assert reaches == sorted(reaches)

    def test_published_point_present(self):
        rows = sweep_g4_wires(wire_counts=(8,))
        assert rows[1][1] == pytest.approx(CA_S.reachability)


class TestPartitionSweep:
    def test_small_partitions_run_faster(self):
        rows = sweep_partition_size()
        frequencies = [row[2] for row in rows[1:]]
        assert frequencies == sorted(frequencies, reverse=True)

    def test_covers_figure10_corner(self):
        """p=64 with proportional wires ~ the 4 GHz / low-reach corner."""
        rows = sweep_partition_size(sizes=(64,))
        assert rows[1][2] > 3.0

    def test_invalid_size(self):
        with pytest.raises(HardwareModelError):
            sweep_partition_size(sizes=(512,))


class TestWaysSweep:
    def test_capacity_linear_in_ways(self):
        rows = sweep_ways(way_counts=(2, 4, 8))
        capacities = [row[2] for row in rows[1:]]
        assert capacities == [2 * 2048, 4 * 2048, 8 * 2048]

    def test_data_capacity_shrinks(self):
        rows = sweep_ways(way_counts=(2, 8, 16))
        fractions = [row[3] for row in rows[1:]]
        assert fractions == sorted(fractions, reverse=True)

    def test_frequency_independent_of_ways(self):
        rows = sweep_ways(way_counts=(2, 16))
        assert rows[1][4] == rows[2][4]
