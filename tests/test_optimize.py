"""Tests for the space-optimisation passes (prefix/suffix merging, pruning).

The cardinal property: every merge is language-preserving — the report
offsets on any input are unchanged.  Checked both on crafted cases and
differentially on random rule sets.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.anml import HomogeneousAutomaton, StartKind
from repro.automata.components import component_stats
from repro.automata.optimize import (
    merge_common_prefixes,
    merge_common_suffixes,
    prune_dead,
    prune_unreachable,
    space_optimize,
)
from repro.automata.symbols import SymbolSet
from repro.regex.compile import compile_patterns
from repro.sim.golden import match_offsets


class TestPrefixMerging:
    def test_shared_prefix_collapses(self):
        machine = compile_patterns(["art", "artifact"], report_codes=["x", "x"])
        merged = merge_common_prefixes(machine)
        # 'a' and 'r' of both patterns fuse; the two 't's stay apart
        # because one reports and the other does not: 11 -> 9 states.
        assert len(merged) == 9
        text = b"the artifact of art"
        assert match_offsets(merged, text) == match_offsets(machine, text)

    def test_reporting_states_not_fused_with_nonreporting(self):
        machine = compile_patterns(["ab", "abc"])
        merged = merge_common_prefixes(machine)
        # 'b' of "ab" reports, 'b' of "abc" does not: they must stay apart.
        reporting_b = [
            s for s in merged.stes()
            if s.symbols == SymbolSet.single("b") and s.reporting
        ]
        plain_b = [
            s for s in merged.stes()
            if s.symbols == SymbolSet.single("b") and not s.reporting
        ]
        assert len(reporting_b) == 1 and len(plain_b) == 1

    def test_self_loop_states_mergeable(self):
        """Two identical dot-star self-loop states should fuse."""
        automaton = HomogeneousAutomaton()
        for name in ("x", "y"):
            automaton.add_ste(name, SymbolSet.single("a"), start=StartKind.ALL_INPUT)
        for name in ("lx", "ly"):
            automaton.add_ste(name, SymbolSet.any(), reporting=True)
        automaton.add_edge("x", "lx")
        automaton.add_edge("y", "ly")
        automaton.add_edge("lx", "lx")
        automaton.add_edge("ly", "ly")
        merged = space_optimize(automaton)
        assert len(merged) == 2  # one start, one looping reporter

    def test_different_start_kinds_not_merged(self):
        automaton = HomogeneousAutomaton()
        automaton.add_ste(
            "anchored", SymbolSet.single("a"), start=StartKind.START_OF_DATA,
            reporting=True,
        )
        automaton.add_ste(
            "floating", SymbolSet.single("a"), start=StartKind.ALL_INPUT,
            reporting=True,
        )
        assert len(merge_common_prefixes(automaton)) == 2


class TestSuffixMerging:
    def test_shared_suffix_collapses(self):
        machine = compile_patterns(["xat", "yat"], report_codes=["r", "r"])
        merged = merge_common_suffixes(machine)
        assert len(merged) < len(machine)
        text = b"xat yat zat"
        assert match_offsets(merged, text) == match_offsets(machine, text)

    def test_start_states_never_suffix_merged(self):
        # Both starts have identical successors but different labels'
        # activation conditions must survive; labels differ here so they
        # wouldn't merge anyway — craft identical-label starts instead.
        automaton = HomogeneousAutomaton()
        automaton.add_ste("s1", SymbolSet.single("a"), start=StartKind.ALL_INPUT)
        automaton.add_ste("s2", SymbolSet.single("a"), start=StartKind.START_OF_DATA)
        automaton.add_ste("end", SymbolSet.single("b"), reporting=True)
        automaton.add_edge("s1", "end")
        automaton.add_edge("s2", "end")
        merged = merge_common_suffixes(automaton)
        assert len(merged) == 3


class TestPruning:
    def test_prune_unreachable(self):
        automaton = HomogeneousAutomaton()
        automaton.add_ste("s", SymbolSet.single("a"), start=StartKind.ALL_INPUT)
        automaton.add_ste("r", SymbolSet.single("b"), reporting=True)
        automaton.add_ste("island", SymbolSet.single("z"), reporting=True)
        automaton.add_edge("s", "r")
        pruned = prune_unreachable(automaton)
        assert "island" not in pruned
        assert len(pruned) == 2

    def test_prune_dead(self):
        automaton = HomogeneousAutomaton()
        automaton.add_ste("s", SymbolSet.single("a"), start=StartKind.ALL_INPUT)
        automaton.add_ste("r", SymbolSet.single("b"), reporting=True)
        automaton.add_ste("sink", SymbolSet.single("c"))  # never reports
        automaton.add_edge("s", "r")
        automaton.add_edge("s", "sink")
        pruned = prune_dead(automaton)
        assert "sink" not in pruned

    def test_prune_noop_returns_same_structure(self):
        machine = compile_patterns(["abc"])
        assert len(prune_unreachable(machine)) == len(machine)
        assert len(prune_dead(machine)) == len(machine)


rule_sets = st.lists(
    st.text(alphabet="abcd", min_size=1, max_size=6), min_size=1, max_size=8
)


class TestLanguagePreservation:
    @given(rule_sets, st.text(alphabet="abcd", max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_space_optimize_preserves_offsets(self, rules, text):
        machine = compile_patterns(rules)
        optimised = space_optimize(machine)
        data = text.encode()
        assert match_offsets(optimised, data) == match_offsets(machine, data)

    @given(rule_sets)
    @settings(max_examples=40, deadline=None)
    def test_space_optimize_never_grows(self, rules):
        machine = compile_patterns(rules)
        optimised = space_optimize(machine)
        assert len(optimised) <= len(machine)

    def test_random_regex_rules_preserved(self):
        rng = random.Random(9)
        from repro.workloads.synth import dotstar_rules, ids_rules

        for rules in (dotstar_rules(20, 0.5, seed=1), ids_rules(15, seed=2)):
            machine = compile_patterns(rules)
            optimised = space_optimize(machine)
            text = bytes(rng.randrange(97, 123) for _ in range(800))
            assert match_offsets(optimised, text) == match_offsets(machine, text)


class TestStructuralTrends:
    def test_merging_reduces_components_grows_largest(self):
        """The Table 1 signature: CCs drop, largest CC grows."""
        from repro.workloads.synth import exact_match_rules

        machine = compile_patterns(exact_match_rules(40, seed=4))
        before = component_stats(machine)
        after = component_stats(space_optimize(machine))
        assert after.component_count < before.component_count
        assert after.largest_component_size >= before.largest_component_size
        assert after.state_count < before.state_count
