"""Tests for circuit-level ANML XML round-tripping."""

import pytest

from repro.automata.anml import StartKind
from repro.automata.circuit_anml import circuit_from_anml, circuit_to_anml
from repro.automata.elements import CircuitAutomaton, CounterMode, GateKind
from repro.automata.symbols import SymbolSet
from repro.errors import AnmlError
from repro.sim.circuit import simulate_circuit


@pytest.fixture
def full_circuit() -> CircuitAutomaton:
    circuit = CircuitAutomaton("full")
    circuit.add_ste("tick", SymbolSet.single("t"), start=StartKind.ALL_INPUT)
    circuit.add_ste("reset", SymbolSet.single("r"), start=StartKind.ALL_INPUT)
    circuit.add_ste("follow", SymbolSet.single("f"), reporting=True,
                    report_code="F")
    circuit.add_gate("watch", GateKind.OR, reporting=True, report_code="W")
    circuit.add_counter("c3", 3, mode=CounterMode.PULSE, reporting=True,
                        report_code="C")
    circuit.connect("tick", "c3", port="count")
    circuit.connect("reset", "c3", port="reset")
    circuit.connect("c3", "watch")
    circuit.connect("c3", "follow")
    return circuit


class TestRoundTrip:
    def test_structure_preserved(self, full_circuit):
        parsed = circuit_from_anml(circuit_to_anml(full_circuit))
        assert len(parsed) == len(full_circuit)
        assert sorted(parsed.edges()) == sorted(full_circuit.edges())
        assert parsed.counter("c3").mode is CounterMode.PULSE
        assert parsed.counter("c3").target == 3
        assert parsed.gate("watch").kind is GateKind.OR
        assert parsed.ste("tick").start is StartKind.ALL_INPUT

    def test_behaviour_preserved(self, full_circuit):
        parsed = circuit_from_anml(circuit_to_anml(full_circuit))
        data = b"tttf trttt f"
        original = sorted(
            (r.offset, r.report_code)
            for r in simulate_circuit(full_circuit, data).reports
        )
        roundtripped = sorted(
            (r.offset, r.report_code)
            for r in simulate_circuit(parsed, data).reports
        )
        assert original == roundtripped

    def test_counter_port_syntax(self):
        """Counter ports serialise as 'id:port' and parse back."""
        document = circuit_to_anml(_counter_circuit())
        assert "c:count" in document or 'element="c"' in document
        parsed = circuit_from_anml(document)
        assert parsed.inputs_to("c", "count") == ["s"]

    def test_bare_counter_reference_means_count(self):
        document = (
            '<anml-network id="x">'
            '<state-transition-element id="s" symbol-set="s" start="all-input">'
            '<activate-on-match element="c"/></state-transition-element>'
            '<counter id="c" target="2" at-target="latch">'
            "<report-on-match/></counter>"
            "</anml-network>"
        )
        parsed = circuit_from_anml(document)
        assert parsed.inputs_to("c", "count") == ["s"]


class TestErrors:
    def test_bad_counter_target(self):
        with pytest.raises(AnmlError):
            circuit_from_anml(
                '<anml-network id="x"><counter id="c" target="lots"/>'
                "</anml-network>"
            )

    def test_missing_counter_target(self):
        with pytest.raises(AnmlError):
            circuit_from_anml(
                '<anml-network id="x"><counter id="c"/></anml-network>'
            )

    def test_unknown_at_target(self):
        with pytest.raises(AnmlError):
            circuit_from_anml(
                '<anml-network id="x"><counter id="c" target="2" '
                'at-target="never"/></anml-network>'
            )

    def test_unknown_element(self):
        with pytest.raises(AnmlError):
            circuit_from_anml(
                '<anml-network id="x"><xor id="g"/></anml-network>'
            )

    def test_missing_id(self):
        with pytest.raises(AnmlError):
            circuit_from_anml('<anml-network id="x"><or/></anml-network>')


def _counter_circuit() -> CircuitAutomaton:
    circuit = CircuitAutomaton()
    circuit.add_ste("s", SymbolSet.single("s"), start=StartKind.ALL_INPUT)
    circuit.add_counter("c", 2, reporting=True)
    circuit.connect("s", "c", port="count")
    return circuit
