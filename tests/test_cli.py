"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def rules_file(tmp_path):
    path = tmp_path / "rules.txt"
    path.write_text("# demo\nbat\nbar[t]?\nc[ao]t\n")
    return str(path)


@pytest.fixture
def input_file(tmp_path):
    path = tmp_path / "input.bin"
    path.write_bytes(b"the cart hit a bat and the cat ran")
    return str(path)


class TestCompile:
    def test_basic(self, rules_file, capsys):
        assert main(["compile", rules_file]) == 0
        output = capsys.readouterr().out
        assert "CA_P" in output
        assert "partitions" in output
        assert "bitstream" in output

    def test_space_design(self, rules_file, capsys):
        assert main(["compile", rules_file, "--design", "CA_S"]) == 0
        assert "CA_S" in capsys.readouterr().out

    def test_anml_export_roundtrips(self, rules_file, tmp_path, capsys):
        anml_path = str(tmp_path / "out.anml")
        assert main(["compile", rules_file, "--anml", anml_path]) == 0
        assert main(["anml-info", anml_path]) == 0
        output = capsys.readouterr().out
        assert "components:" in output

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent/rules.txt"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_empty_rules(self, tmp_path, capsys):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing but comments\n")
        assert main(["compile", str(path)]) == 1
        assert "no rules" in capsys.readouterr().err


class TestScan:
    def test_finds_matches(self, rules_file, input_file, capsys):
        assert main(["scan", rules_file, input_file]) == 0
        output = capsys.readouterr().out
        assert "'bat'" in output
        assert "matches in" in output
        assert "nJ/symbol" in output

    def test_limit(self, tmp_path, capsys):
        rules = tmp_path / "r.txt"
        rules.write_text("a\n")
        data = tmp_path / "d.bin"
        data.write_bytes(b"a" * 50)
        assert main(["scan", str(rules), str(data), "--limit", "3"]) == 0
        output = capsys.readouterr().out
        assert "and 47 more" in output


class TestDesigns:
    def test_lists_design_points(self, capsys):
        assert main(["designs"]) == 0
        output = capsys.readouterr().out
        for name in ("CA_P", "CA_S", "CA_64"):
            assert name in output


class TestAnmlInfo:
    def test_malformed_file(self, tmp_path, capsys):
        path = tmp_path / "bad.anml"
        path.write_text("<not-anml/>")
        assert main(["anml-info", str(path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestSaveMapping:
    def test_save_and_reload(self, rules_file, tmp_path, capsys):
        from repro.compiler import mapping_from_json

        path = str(tmp_path / "mapping.json")
        assert main(["compile", rules_file, "--save-mapping", path]) == 0
        assert "mapping written" in capsys.readouterr().out
        mapping = mapping_from_json(open(path, encoding="utf-8").read())
        assert mapping.design.name == "CA_P"
        assert mapping.partition_count == 1


class TestServe:
    def test_scans_inputs_through_service(self, rules_file, input_file,
                                          capsys):
        assert main(["serve", rules_file, input_file, "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("match(es)") == 2
        assert "2 completed, 0 failed" in out
        assert "breaker_trips" in out

    def test_oversized_input_fails_typed(self, rules_file, input_file,
                                         capsys):
        assert main([
            "serve", rules_file, input_file, "--max-stream-bytes", "4",
        ]) == 1
        captured = capsys.readouterr()
        assert "StreamTooLarge" in captured.out
        assert "1 failed" in captured.out

    def test_missing_input_one_line_error(self, rules_file, capsys):
        assert main(["serve", rules_file, "/nonexistent/input.bin"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestOneLineDiagnostics:
    """Library failures (ReproError and subclasses such as
    SimulationError) become a single ``error:`` line on stderr and exit
    status 1 — never a traceback.  CI scripts grep for this."""

    def test_repro_error_single_line(self, tmp_path, capsys):
        path = tmp_path / "empty.txt"
        path.write_text("# only comments\n")
        assert main(["compile", str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_simulation_error_single_line(self, rules_file, input_file,
                                          capsys, monkeypatch):
        from repro.errors import SimulationError

        def explode(arguments):
            raise SimulationError("backend wedged mid-scan")

        # build_parser() binds handlers at call time inside main(), so
        # the patched module global is what gets dispatched
        monkeypatch.setattr("repro.cli._cmd_scan", explode)
        status = main(["scan", rules_file, input_file])
        err = capsys.readouterr().err
        assert status == 1
        assert err.startswith("error: backend wedged mid-scan")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err


class TestProfileCompileCommand:
    def test_rules_file(self, rules_file, capsys):
        assert main(["profile-compile", rules_file, "--no-bitstream"]) == 0
        out = capsys.readouterr().out
        assert "Phase" in out
        assert "split" in out
        assert "total" in out

    def test_workload(self, capsys):
        assert main(
            ["profile-compile", "--workload", "Bro217", "--scale", "0.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "bitstream" in out

    def test_unknown_workload(self, capsys):
        assert main(["profile-compile", "--workload", "NotASuite"]) == 1

    def test_no_source(self, capsys):
        assert main(["profile-compile"]) == 1
