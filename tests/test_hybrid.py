"""Pattern-structure-aware hybrid execution: classifier, cost model,
artifact v3 classify tables, the hybrid backend, and the engine/service
policy knobs around them.

The headline regression here is the ISSUE 9 acceptance scenario: one
DFA-hostile component (``x.{14}y`` — bounded-gap patterns are the
classic subset-construction blow-up) mixed with several DFA-friendly
literal-ish components.  The hybrid backend must keep the friendly
groups on the lazy DFA, banish the hostile one to the packed kernel,
and remain bit-identical to the golden interpreter — reports, STE
identity, and chunked resume included.
"""

import warnings

import pytest

from repro.backends.artifact import CompiledArtifact
from repro.backends.hybrid import (
    FALLBACK_SUBSTRATE,
    HybridBackend,
    HybridCheckpoint,
)
from repro.backends.registry import create_backend
from repro.compiler import compile_automaton
from repro.compiler.classify import (
    CostModel,
    classify_automaton,
    default_probe_budget,
    probe_subset_closure,
)
from repro.core.design import CA_P
from repro.engine import CacheAutomatonEngine
from repro.errors import (
    ArtifactError,
    AutomatonError,
    DeterminisationExplosion,
    SimulationError,
)
from repro.regex.compile import compile_patterns
from repro.sim.golden import Checkpoint

#: Four DFA-friendly components plus one hostile one (bounded gap).
MIXED_PATTERNS = ["bat", "c[ao]t", "dog+", "bar[t]?", "x.{14}y"]
FRIENDLY_PATTERNS = ["bat", "c[ao]t", "dog+"]
DATA = (
    b"the cat sat on the bat while x0123456789abcdy dogged bart bar dog; "
    b"a second xAAAAAAAAAAAAAAy gap match and one cot at the end cot"
)


def _artifact(patterns):
    machine = compile_patterns(patterns, report_codes=patterns)
    return CompiledArtifact.from_mapping(compile_automaton(machine, CA_P))


def _report_set(result):
    return sorted(
        (r.offset, r.ste_id, r.report_code) for r in result.reports
    )


@pytest.fixture(scope="module")
def mixed_artifact():
    return _artifact(MIXED_PATTERNS)


@pytest.fixture(scope="module")
def golden_reports(mixed_artifact):
    backend = create_backend("golden-interpreter", mixed_artifact)
    return _report_set(backend.scan(DATA))


# ---------------------------------------------------------------------------
# classifier + cost model


class TestClassifier:
    def test_mixed_workload_assignment(self, mixed_artifact):
        classification = classify_automaton(mixed_artifact.automaton)
        assignment = {
            classification.backend_of(index)
            for index in range(classification.component_count)
        }
        assert assignment == {"lazy-dfa", "packed-kernel"}
        rows = classification.rows()
        hostile = [row for row in rows if row["backend"] == "packed-kernel"]
        assert len(hostile) == 1
        assert hostile[0]["probe_aborted"] == 1.0
        assert hostile[0]["det_growth"] > 4
        friendly = [row for row in rows if row["backend"] == "lazy-dfa"]
        assert len(friendly) == 4
        assert all(row["det_growth"] < 2 for row in friendly)

    def test_friendly_workload_single_substrate(self):
        artifact = _artifact(FRIENDLY_PATTERNS)
        classification = classify_automaton(artifact.automaton)
        assert {
            classification.backend_of(index)
            for index in range(classification.component_count)
        } == {"lazy-dfa"}

    def test_deterministic_across_runs(self, mixed_artifact):
        first = classify_automaton(mixed_artifact.automaton)
        second = classify_automaton(mixed_artifact.automaton)
        assert first.components == second.components
        assert (first.assignment == second.assignment).all()
        assert (first.features == second.features).all()

    def test_probe_counts_closure_rows(self, mixed_artifact):
        automaton = mixed_artifact.automaton
        classification = classify_automaton(automaton)
        for members in classification.components:
            rows, aborted, classes = probe_subset_closure(
                automaton, list(members), budget=1024
            )
            assert rows >= 1
            assert classes >= 1
            if not aborted:
                # A bigger budget cannot change a completed closure.
                again, _, _ = probe_subset_closure(
                    automaton, list(members), budget=4096
                )
                assert again == rows

    def test_probe_budget_scales_and_caps(self):
        assert default_probe_budget(1) == 48
        assert default_probe_budget(10) == 80
        assert default_probe_budget(10_000) == 512

    def test_cost_model_from_history(self):
        history = [
            {"mapped_symbols_per_sec": 500_000,
             "lazy_dfa_warm_symbols_per_sec": 4_000_000},
        ]
        model = CostModel.from_history(history)
        assert model.lazy_warm_us == pytest.approx(0.25)
        # Warm lazy scanning must beat the kernel on a small friendly CC
        # and lose once the probe aborts (certain thrashing).
        assert model.lazy_cost_us(4, False) < model.kernel_cost_us(4)
        assert model.lazy_cost_us(4096, True) > model.kernel_cost_us(4096)

    def test_tables_round_trip(self, mixed_artifact):
        classification = classify_automaton(mixed_artifact.automaton)
        tables = classification.to_tables()
        from repro.compiler.classify import ComponentClassification

        restored = ComponentClassification.from_tables(
            tables, mixed_artifact.automaton
        )
        assert restored.components == classification.components
        assert (restored.assignment == classification.assignment).all()

    def test_tables_reject_wrong_automaton(self, mixed_artifact):
        classification = classify_automaton(mixed_artifact.automaton)
        tables = classification.to_tables()
        other = _artifact(FRIENDLY_PATTERNS)
        from repro.compiler.classify import ComponentClassification

        with pytest.raises(AutomatonError):
            ComponentClassification.from_tables(tables, other.automaton)


# ---------------------------------------------------------------------------
# artifact v3


class TestArtifactClassifyTables:
    def test_classify_tables_round_trip_payload(self, mixed_artifact):
        classification = classify_automaton(mixed_artifact.automaton)
        artifact = mixed_artifact.with_classify_tables(
            classification.to_tables()
        )
        buffer = artifact.to_payload()
        restored = CompiledArtifact.from_payload(
            buffer, artifact.automaton, artifact.design
        )
        assert set(restored.classify_tables) == set(artifact.classify_tables)
        backend = HybridBackend.from_artifact(restored)
        assert len(backend.placement()) == 2

    def test_version_2_payload_is_quarantined(self, tmp_path, monkeypatch):
        """A cache artifact written at version 2 must be rejected
        (ArtifactError -> quarantine + recompile), not half-loaded."""
        from repro.backends import artifact as artifact_module

        cache_dir = tmp_path / "cache"
        engine = CacheAutomatonEngine.from_patterns(
            MIXED_PATTERNS, cache=str(cache_dir)
        )
        assert engine.health().tier == "cold-compile"

        monkeypatch.setattr(artifact_module, "ARTIFACT_FORMAT_VERSION", 2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            stale = CacheAutomatonEngine.from_patterns(
                MIXED_PATTERNS, cache=str(cache_dir)
            )
        health = stale.health()
        assert health.tier in ("recompiled", "cold-compile")


# ---------------------------------------------------------------------------
# hybrid backend


class TestHybridBackend:
    def test_placement_partitions_by_hostility(self, mixed_artifact):
        backend = create_backend("hybrid", mixed_artifact)
        placement = backend.placement()
        by_backend = {row["backend"]: row for row in placement}
        assert set(by_backend) == {"lazy-dfa", "packed-kernel"}
        assert by_backend["lazy-dfa"]["components"] == 4
        assert by_backend["packed-kernel"]["components"] == 1
        assert by_backend["packed-kernel"]["states"] == 16

    def test_bit_identical_to_golden(self, mixed_artifact, golden_reports):
        backend = create_backend("hybrid", mixed_artifact)
        result = backend.scan(DATA)
        assert _report_set(result) == golden_reports
        # Merged stream is offset-ordered.
        offsets = [r.offset for r in result.reports]
        assert offsets == sorted(offsets)

    def test_chunked_resume_identical(self, mixed_artifact, golden_reports):
        backend = create_backend("hybrid", mixed_artifact)
        for chunk in (1, 7, 23):
            reports = []
            checkpoint = None
            for start in range(0, len(DATA), chunk):
                result = backend.scan(
                    DATA[start:start + chunk], resume=checkpoint
                )
                reports.extend(
                    (r.offset, r.ste_id, r.report_code)
                    for r in result.reports
                )
                checkpoint = result.checkpoint
                assert isinstance(checkpoint, HybridCheckpoint)
            assert sorted(reports) == golden_reports
            assert checkpoint.symbols_processed == len(DATA)

    def test_scan_many_identical(self, mixed_artifact, golden_reports):
        backend = create_backend("hybrid", mixed_artifact)
        golden = create_backend("golden-interpreter", mixed_artifact)
        streams = [DATA, b"", DATA[:40], b"xy" * 30]
        results = backend.scan_many(streams)
        expected = [golden.scan(stream) for stream in streams]
        for result, want in zip(results, expected):
            assert _report_set(result) == _report_set(want)

    def test_count_only_scan(self, mixed_artifact, golden_reports):
        backend = create_backend("hybrid", mixed_artifact)
        result = backend.scan(DATA, collect_reports=False)
        assert result.reports == []
        assert result.profile.reports == len(golden_reports)

    def test_foreign_checkpoint_rejected(self, mixed_artifact):
        backend = create_backend("hybrid", mixed_artifact)
        plain = Checkpoint(
            symbols_processed=3,
            active_state_vector=0,
            start_of_data_pending=False,
        )
        with pytest.raises(SimulationError):
            backend.scan(b"abc", resume=plain)
        wrong_arity = HybridCheckpoint(
            symbols_processed=3,
            active_state_vector=0,
            start_of_data_pending=False,
            group_checkpoints=(None,),
        )
        with pytest.raises(SimulationError):
            backend.scan(b"abc", resume=wrong_arity)

    def test_group_degrades_to_golden(self, mixed_artifact, golden_reports):
        backend = create_backend("hybrid", mixed_artifact)

        class Boom:
            def scan(self, *args, **kwargs):
                raise SimulationError("injected group failure")

            def scan_many(self, *args, **kwargs):
                raise SimulationError("injected group failure")

        backend.groups[0].backend = Boom()
        result = backend.scan(DATA)
        assert _report_set(result) == golden_reports
        assert backend.groups[0].backend_name == FALLBACK_SUBSTRATE
        assert any(
            "fall" in event or "degrad" in event
            for event in backend.health_events
        )

    def test_respects_stored_classification(self, mixed_artifact):
        classification = classify_automaton(mixed_artifact.automaton)
        artifact = mixed_artifact.with_classify_tables(
            classification.to_tables()
        )
        backend = HybridBackend.from_artifact(artifact)
        assert [row["backend"] for row in backend.placement()] == [
            "lazy-dfa", "packed-kernel",
        ]

    def test_single_substrate_workload_single_group(self):
        artifact = _artifact(FRIENDLY_PATTERNS)
        backend = create_backend("hybrid", artifact)
        placement = backend.placement()
        assert len(placement) == 1
        assert placement[0]["backend"] == "lazy-dfa"


# ---------------------------------------------------------------------------
# determinisation-explosion satellite


class TestDeterminisationExplosion:
    def test_typed_error_carries_attribution(self, mixed_artifact):
        with pytest.raises(DeterminisationExplosion) as excinfo:
            create_backend(
                "eager-dfa", mixed_artifact, minimize=False, max_states=100
            )
        error = excinfo.value
        assert error.component_id is not None
        assert error.state_estimate >= 100
        assert error.max_states == 100
        assert error.component_id in str(error)
        # The hostile CC's states are the m4_* family (5th pattern).
        assert error.component_id.startswith("m4")

    def test_default_engine_records_health_event(self):
        engine = CacheAutomatonEngine.from_patterns(
            MIXED_PATTERNS,
            cache=False,
            backend_options={"minimize": False, "max_states": 100},
        )
        # Default backend ignores the DFA options entirely.
        assert engine.health().tier == "cold-compile"


# ---------------------------------------------------------------------------
# engine policy


class TestEngineHybrid:
    def test_scan_matches_golden(self, golden_reports):
        engine = CacheAutomatonEngine.from_patterns(
            MIXED_PATTERNS, backend="hybrid"
        )
        ends = sorted(match.end for match in engine.scan(DATA))
        assert ends == sorted(offset for offset, _, _ in golden_reports)

    def test_health_reports_placement(self):
        engine = CacheAutomatonEngine.from_patterns(
            MIXED_PATTERNS, backend="hybrid"
        )
        health = engine.health()
        assert health.backend == "hybrid"
        assert {row["backend"] for row in health.placement} == {
            "lazy-dfa", "packed-kernel",
        }

    def test_warm_cache_persists_classification(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = CacheAutomatonEngine.from_patterns(
            MIXED_PATTERNS, backend="hybrid", cache=cache_dir
        )
        assert cold.health().tier == "cold-compile"
        warm = CacheAutomatonEngine.from_patterns(
            MIXED_PATTERNS, backend="hybrid", cache=cache_dir
        )
        assert warm.health().tier == "warm-cache"
        assert warm.artifact.classify_tables
        assert warm.health().placement == cold.health().placement

    def test_classification_stable_across_compile_jobs(self, tmp_path):
        placements = []
        for jobs in (1, 2):
            engine = CacheAutomatonEngine.from_patterns(
                MIXED_PATTERNS,
                backend="hybrid",
                cache=str(tmp_path / f"cache{jobs}"),
                compile_jobs=jobs,
            )
            placements.append(engine.health().placement)
        assert placements[0] == placements[1]

    def test_auto_mixed_selects_hybrid(self):
        engine = CacheAutomatonEngine.from_patterns(MIXED_PATTERNS, auto=True)
        health = engine.health()
        assert health.backend == "hybrid"
        assert any("auto placement" in event for event in health.events)

    def test_auto_friendly_selects_single_substrate(self):
        engine = CacheAutomatonEngine.from_patterns(
            FRIENDLY_PATTERNS, auto=True
        )
        assert engine.health().backend == "lazy-dfa"
        assert engine.health().placement == ()

    def test_explicit_backend_wins_over_auto(self):
        engine = CacheAutomatonEngine.from_patterns(
            MIXED_PATTERNS, backend="packed-kernel", auto=True
        )
        assert engine.health().backend == "packed-kernel"

    def test_streaming_through_engine(self, golden_reports):
        engine = CacheAutomatonEngine.from_patterns(
            MIXED_PATTERNS, backend="hybrid"
        )
        scanner = engine.stream()
        ends = []
        for start in range(0, len(DATA), 11):
            ends.extend(
                match.end for match in scanner.scan(DATA[start:start + 11])
            )
        assert sorted(ends) == sorted(
            offset for offset, _, _ in golden_reports
        )


# ---------------------------------------------------------------------------
# service integration


class TestServiceHybrid:
    def test_tenant_budget_reaches_lazy_group(self):
        import asyncio

        from repro.service.service import ScanService, TenantLimits

        async def run():
            service = ScanService()
            await service.start()
            try:
                service.register(
                    "tenant",
                    MIXED_PATTERNS,
                    backend="hybrid",
                    limits=TenantLimits(dfa_max_states=512),
                )
                outcome = await service.scan("tenant", DATA)
                engine = service.tenant_engine("tenant")
                lazy = [
                    group
                    for group in engine._backend.groups
                    if group.backend_name == "lazy-dfa"
                ]
                assert lazy
                assert lazy[0].backend.dfa._max_states == 512
                return outcome
            finally:
                await service.stop()

        outcome = asyncio.run(run())
        assert outcome.served_by == "hybrid"
        assert outcome.reports
