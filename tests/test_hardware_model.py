"""Tests for geometry, timing, design points, and energy — the model side
of Tables 2-4 and Figures 9-10."""

from dataclasses import replace

import pytest

from repro.core.design import CA_64, CA_P, CA_S, design_space
from repro.core.energy import ActivityProfile, EnergyModel
from repro.core.geometry import SliceGeometry, XEON_SLICE
from repro.core.params import AP, H_BUS_WIRES, SRAM
from repro.core.timing import pipeline_timing, state_match_delay_ps
from repro.core.switches import SwitchSpec
from repro.errors import HardwareModelError


class TestGeometry:
    def test_xeon_slice_capacity(self):
        """2.5 MB slice = 20 ways x 8 x 16 KB sub-arrays (Figure 2b)."""
        assert XEON_SLICE.slice_kb == 2560
        assert XEON_SLICE.stes_per_subarray == 512
        assert XEON_SLICE.partitions_per_subarray_full == 2
        assert XEON_SLICE.partitions_per_subarray_half == 1

    def test_way_capacities(self):
        assert XEON_SLICE.stes_per_way(full_subarrays=True) == 4096
        assert XEON_SLICE.stes_per_way(full_subarrays=False) == 2048

    def test_column_mux_degrees(self):
        """Section 5.1: half mapping reads via 4 sense phases, full via 8."""
        assert XEON_SLICE.column_mux_degree(full_subarrays=False) == 4
        assert XEON_SLICE.column_mux_degree(full_subarrays=True) == 8

    def test_wire_distances(self):
        assert XEON_SLICE.array_to_gswitch_mm == pytest.approx(1.5)
        assert XEON_SLICE.array_to_gswitch4_mm == pytest.approx(2.138, abs=0.01)

    def test_inconsistent_geometry_rejected(self):
        with pytest.raises(HardwareModelError):
            SliceGeometry(slice_kb=1000)
        with pytest.raises(HardwareModelError):
            SliceGeometry(array_rows=128)

    def test_cache_bytes(self):
        """One partition = 256 STEs x 256 bits = 8 KB of STE storage."""
        assert XEON_SLICE.cache_bytes_for_partitions(1, full_subarrays=False) == 8192


class TestStateMatchDelay:
    def test_paper_baseline_1024ps(self):
        """Section 2.6: 4-way mux without cycling needs 4 x 256 ps."""
        assert state_match_delay_ps(4, sense_amp_cycling=False) == 1024.0

    def test_paper_cycled_438ps(self):
        """Table 3: CA_P state-match with SA cycling is 438 ps."""
        assert state_match_delay_ps(4) == pytest.approx(438.0)

    def test_paper_cycled_8way(self):
        """Table 3: CA_S state-match (8-way mux) is ~687 ps."""
        assert state_match_delay_ps(8) == pytest.approx(688.0)

    def test_speedup_at_least_2x(self):
        """Section 2.6 claims the optimisation is 2-3x for 4-way mux."""
        assert state_match_delay_ps(4, sense_amp_cycling=False) / state_match_delay_ps(
            4
        ) > 2.0

    def test_mux_one(self):
        assert state_match_delay_ps(1) == SRAM.precharge_wordline_ps + SRAM.sense_step_ps

    def test_bad_mux(self):
        with pytest.raises(HardwareModelError):
            state_match_delay_ps(0)


class TestPipelineTiming:
    def test_ca_p_table3_row(self):
        timing = CA_P.timing
        assert timing.state_match_ps == pytest.approx(438, abs=1)
        assert timing.g_switch_ps == pytest.approx(227, abs=1)
        assert timing.l_switch_ps == pytest.approx(263, abs=1)
        assert timing.max_frequency_ghz == pytest.approx(2.3, abs=0.05)
        assert timing.bottleneck == "state-match"

    def test_ca_s_table3_row(self):
        timing = CA_S.timing
        assert timing.state_match_ps == pytest.approx(687, abs=2)
        assert timing.g_switch_ps == pytest.approx(468, abs=2)
        assert timing.l_switch_ps == pytest.approx(304, abs=2)
        assert timing.max_frequency_ghz == pytest.approx(1.4, abs=0.06)

    def test_no_gswitch_design(self):
        timing = pipeline_timing(
            column_mux_degree=1,
            l_switch=SwitchSpec(64, 64),
            g_switch=None,
            g_wire_mm=0.0,
            l_wire_mm=0.0,
        )
        assert timing.g_switch_ps == 0.0
        assert timing.max_frequency_ghz > 3.9


class TestDesignPoints:
    def test_ca_p_operates_at_2ghz(self):
        assert CA_P.frequency_ghz == 2.0
        assert CA_P.throughput_gbps == 16.0

    def test_ca_s_operates_at_1_2ghz(self):
        assert CA_S.frequency_ghz == 1.2
        assert CA_S.throughput_gbps == pytest.approx(9.6)

    def test_operating_capped_by_max(self):
        hot = replace(CA_P, operating_frequency_ghz=10.0)
        assert hot.frequency_ghz == hot.max_frequency_ghz

    def test_table4_no_sa_cycling(self):
        """Table 4: ~1 GHz / ~500 MHz without sense-amp cycling."""
        assert CA_P.without_sa_cycling().frequency_ghz == pytest.approx(1.0, abs=0.05)
        assert CA_S.without_sa_cycling().frequency_ghz == pytest.approx(0.5, abs=0.03)

    def test_table4_h_bus(self):
        """Table 4: ~1.5 GHz / ~1 GHz when reusing H-Bus wires."""
        assert CA_P.with_h_bus().frequency_ghz == pytest.approx(1.6, abs=0.1)
        assert CA_S.with_h_bus().frequency_ghz == pytest.approx(1.0, abs=0.05)
        assert CA_P.with_h_bus().wires == H_BUS_WIRES

    def test_switch_topology(self):
        """Table 2 sizes: L 280x256 (CA_S), G1 128/256, G4 512."""
        assert str(CA_S.l_switch) == "280x256"
        assert str(CA_P.g1_switch) == "128x128"
        assert str(CA_S.g1_switch) == "256x256"
        assert str(CA_S.g4_switch) == "512x512"
        assert CA_P.g4_switch is None

    def test_partition_counts(self):
        assert CA_P.partitions_per_way == 8
        assert CA_S.partitions_per_way == 16
        assert CA_P.states_per_slice == 16 * 1024
        assert CA_S.states_per_slice == 32 * 1024

    def test_figure10_reachability_ordering(self):
        """CA_64 < AP < CA_P < CA_S in reach; frequencies reversed."""
        assert CA_64.reachability == 64
        assert CA_P.reachability == pytest.approx(361, rel=0.05)
        assert CA_S.reachability == pytest.approx(936, rel=0.08)
        assert CA_64.frequency_ghz > CA_P.frequency_ghz > CA_S.frequency_ghz
        assert CA_P.reachability > AP.reachability

    def test_figure10_area(self):
        """CA designs cost ~4.3-4.6 mm^2 for 32K STEs vs 38 mm^2 for AP."""
        assert CA_P.area_overhead_mm2(32 * 1024) == pytest.approx(4.3, abs=0.2)
        assert CA_S.area_overhead_mm2(32 * 1024) == pytest.approx(4.6, abs=0.2)
        assert CA_P.area_overhead_mm2(32 * 1024) < AP.area_mm2_32k / 8

    def test_fan_in_vs_ap(self):
        """Section 5.4: CA supports 256 incoming transitions, AP only 16."""
        assert CA_P.max_fan_in == 256
        assert CA_P.max_fan_in > AP.fan_in

    def test_design_space_sorted_by_reach(self):
        reaches = [design.reachability for design in design_space()]
        assert reaches == sorted(reaches)

    def test_validation(self):
        with pytest.raises(HardwareModelError):
            replace(CA_P, partition_size=0).validate()
        with pytest.raises(HardwareModelError):
            replace(CA_P, ways_used=25).validate()
        with pytest.raises(HardwareModelError):
            replace(CA_P, operating_frequency_ghz=0).validate()


class TestEnergyModel:
    def test_partition_event_energy(self):
        """Array access (22 pJ) + L-switch access (0.191 x 256 ~ 49 pJ)."""
        model = EnergyModel(CA_P)
        assert model.partition_event_pj == pytest.approx(22 + 0.191 * 256, rel=0.02)

    def test_energy_per_symbol(self):
        model = EnergyModel(CA_P)
        profile = ActivityProfile(symbols=1000, partition_activations=10_000)
        expected = 10 * model.partition_event_pj / 1000
        assert model.energy_per_symbol_nj(profile) == pytest.approx(expected)

    def test_ca_cheaper_than_ideal_ap_same_mapping(self):
        """Section 5.3: ~3x less energy than Ideal AP with the same mapping."""
        model = EnergyModel(CA_P)
        profile = ActivityProfile(symbols=100, partition_activations=1000)
        ratio = model.ideal_ap_energy_per_symbol_nj(
            profile
        ) / model.energy_per_symbol_nj(profile)
        assert 2.5 < ratio < 4.5

    def test_power_scales_with_frequency(self):
        profile = ActivityProfile(symbols=100, partition_activations=500)
        p_power = EnergyModel(CA_P).average_power_watts(profile)
        s_power = EnergyModel(CA_S).average_power_watts(profile)
        # Same activity: power ratio tracks frequency ratio (plus CA_S's
        # slightly costlier switches).
        assert p_power / s_power == pytest.approx(2.0 / 1.2, rel=0.15)

    def test_peak_power_128k_prototype(self):
        """Section 5.3: the 128K-STE CA_P prototype peaks near 71-75 W,
        well under the 160 W Xeon TDP."""
        peak = EnergyModel(CA_P).peak_power_watts(128 * 1024)
        assert 65 < peak < 80

    def test_gswitch_energy_counted(self):
        model = EnergyModel(CA_S)
        quiet = ActivityProfile(symbols=10, partition_activations=10)
        busy = ActivityProfile(
            symbols=10, partition_activations=10,
            g1_crossings=5, g1_switch_activations=5,
            g4_crossings=2, g4_switch_activations=2,
        )
        assert model.total_energy_pj(busy) > model.total_energy_pj(quiet)

    def test_empty_profile_rejected(self):
        with pytest.raises(HardwareModelError):
            EnergyModel(CA_P).energy_per_symbol_nj(ActivityProfile())

    def test_profile_merge(self):
        a = ActivityProfile(symbols=10, partition_activations=5, g1_crossings=1)
        b = ActivityProfile(symbols=20, partition_activations=15, reports=3)
        merged = a.merged_with(b)
        assert merged.symbols == 30
        assert merged.partition_activations == 20
        assert merged.g1_crossings == 1
        assert merged.reports == 3
        assert merged.average_active_partitions == pytest.approx(20 / 30)


class TestCapacityClaims:
    def test_intro_capacity_claim(self):
        """Section 1: 20-40 MB of LLC can accommodate 640K-1280K states
        if the entire cache stores NFAs."""
        per_slice_full = (
            XEON_SLICE.ways
            * XEON_SLICE.subarrays_per_way
            * XEON_SLICE.stes_per_subarray
        )
        slices_20mb = 20 * 1024 // XEON_SLICE.slice_kb  # 8 slices
        assert per_slice_full * slices_20mb >= 640 * 1024
        assert per_slice_full * slices_20mb * 2 >= 1280 * 1024

    def test_prototype_capacity_claim(self):
        """Section 5.3: 8 NFA ways per slice over 8 slices store 128K STEs
        and execute 128K transitions per cycle (CA_P mapping)."""
        assert CA_P.states_per_slice * 8 == 128 * 1024

    def test_ap_rank_comparison(self):
        """Section 1: an AP rank holds 384K states; 20-40 MB of cache is
        comparable or better."""
        per_slice_full = (
            XEON_SLICE.ways
            * XEON_SLICE.subarrays_per_way
            * XEON_SLICE.stes_per_subarray
        )
        assert per_slice_full * 8 > AP.states_per_rank
