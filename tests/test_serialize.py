"""Tests for mapping JSON serialisation."""

import json

import pytest

from repro.compiler import compile_automaton
from repro.compiler.serialize import mapping_from_json, mapping_to_json
from repro.core.design import CA_P
from repro.errors import CompileError
from repro.sim.functional import simulate_mapping
from tests.conftest import chain_automaton


@pytest.fixture(scope="module")
def mapping():
    return compile_automaton(
        chain_automaton(600, extra_edges=200, seed=44), CA_P
    )


class TestRoundTrip:
    def test_structure_preserved(self, mapping):
        loaded = mapping_from_json(mapping_to_json(mapping))
        assert loaded.design.name == "CA_P"
        assert loaded.partition_count == mapping.partition_count
        assert [p.ste_ids for p in loaded.partitions] == [
            p.ste_ids for p in mapping.partitions
        ]
        assert loaded.location == mapping.location

    def test_behaviour_preserved(self, mapping):
        loaded = mapping_from_json(mapping_to_json(mapping))
        data = bytes(range(256)) * 4
        original = simulate_mapping(mapping, data)
        reloaded = simulate_mapping(loaded, data)
        assert sorted((r.offset, r.ste_id) for r in original.reports) == sorted(
            (r.offset, r.ste_id) for r in reloaded.reports
        )
        assert (
            original.profile.partition_activations
            == reloaded.profile.partition_activations
        )


class TestValidationOnLoad:
    def _payload(self, mapping):
        return json.loads(mapping_to_json(mapping))

    def test_bad_json(self):
        with pytest.raises(CompileError):
            mapping_from_json("{not json")

    def test_bad_version(self, mapping):
        payload = self._payload(mapping)
        payload["format_version"] = 99
        with pytest.raises(CompileError):
            mapping_from_json(json.dumps(payload))

    def test_unknown_design(self, mapping):
        payload = self._payload(mapping)
        payload["design"] = "CA_X"
        with pytest.raises(CompileError):
            mapping_from_json(json.dumps(payload))

    def test_custom_design_catalogue(self, mapping):
        payload = self._payload(mapping)
        payload["design"] = "custom"
        from dataclasses import replace

        custom = replace(CA_P, name="custom")
        loaded = mapping_from_json(
            json.dumps(payload), designs={"custom": custom}
        )
        assert loaded.design.name == "custom"

    def test_duplicate_ste_rejected(self, mapping):
        payload = self._payload(mapping)
        payload["partitions"][0]["stes"][1] = payload["partitions"][0]["stes"][0]
        with pytest.raises(CompileError):
            mapping_from_json(json.dumps(payload))

    def test_missing_placement_rejected(self, mapping):
        payload = self._payload(mapping)
        payload["partitions"][0]["stes"].pop()
        with pytest.raises(CompileError):
            mapping_from_json(json.dumps(payload))

    def test_unknown_ste_rejected(self, mapping):
        payload = self._payload(mapping)
        payload["partitions"][0]["stes"][0] = "ghost"
        with pytest.raises(CompileError):
            mapping_from_json(json.dumps(payload))

    def test_sparse_indices_rejected(self, mapping):
        payload = self._payload(mapping)
        payload["partitions"][0]["index"] = 7
        with pytest.raises(CompileError):
            mapping_from_json(json.dumps(payload))

    def test_tampered_placement_fails_wire_check(self, mapping):
        """Moving a boundary state to a far partition breaks the budget
        and must be caught on load."""
        payload = self._payload(mapping)
        if len(payload["partitions"]) < 2:
            pytest.skip("single-partition mapping")
        # Interleave states between the two partitions to wreck locality:
        # every second chain edge now crosses the boundary.
        first = payload["partitions"][0]["stes"]
        second = payload["partitions"][1]["stes"]
        limit = min(len(first), len(second))
        for position in range(0, limit, 2):
            first[position], second[position] = (
                second[position], first[position],
            )
        with pytest.raises(CompileError):
            mapping_from_json(json.dumps(payload))
