"""Open-loop load generation harness (``repro.eval.loadgen``).

The fault-injected scenario is the acceptance gate for the serving
layer: every injected failure (worker kill, slow tenant, oversized
stream, backend error) must surface as a *typed, counted* outcome —
zero unhandled exceptions — with the circuit breaker observed both
tripping and recovering within the run.
"""

from __future__ import annotations

import pytest

from repro.eval.loadgen import (
    RUN_SCHEMA_VERSION,
    baseline_config,
    faulted_config,
    percentile,
    run_loadgen,
    serving_config,
)
from repro.errors import ReproError


class TestPercentile:
    def test_nearest_rank(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 50) == 20.0
        assert percentile(samples, 95) == 40.0
        assert percentile(samples, 100) == 40.0
        assert percentile(samples, 1) == 10.0

    def test_empty_is_none(self):
        assert percentile([], 95) is None


class TestScenarios:
    @pytest.fixture(scope="class")
    def faulted(self):
        return run_loadgen(faulted_config(duration_s=1.2, seed=7))

    def test_baseline_all_complete(self):
        record = run_loadgen(baseline_config(duration_s=0.5, seed=7))
        assert record.requests_sent > 0
        assert record.completed == record.requests_sent
        assert record.unhandled_exceptions == 0
        assert record.failure_rate == 0.0
        assert record.latency_p99_ms is not None
        assert record.latency_p50_ms <= record.latency_p99_ms

    def test_faulted_zero_unhandled(self, faulted):
        assert faulted.unhandled_exceptions == 0

    def test_faulted_breaker_trips_and_recovers(self, faulted):
        assert faulted.breaker_trips >= 1
        assert faulted.breaker_recoveries >= 1
        assert faulted.breaker_recovered
        assert faulted.fallback_scans >= 1

    def test_faulted_counters_nonzero(self, faulted):
        assert faulted.worker_restarts >= 1
        assert faulted.oversized >= 1
        assert faulted.timeouts >= 1
        assert faulted.shed + faulted.retried >= 1
        assert 0.0 < faulted.failure_rate < 1.0

    def test_run_record_row_is_flat(self, faulted):
        row = faulted.as_dict()
        for key in ("throughput_rps", "latency_p95_ms", "failure_rate",
                    "shed", "retried", "timeouts", "breaker_trips",
                    "scan_workers", "transport", "pool_respawns",
                    "schema_version"):
            assert key in row
        assert row["schema_version"] == RUN_SCHEMA_VERSION
        assert isinstance(row["per_tenant"], dict)
        assert set(row["per_tenant"]) == {"hot", "slow", "flaky"}

    def test_per_tenant_rows_carry_latency_percentiles(self, faulted):
        per_tenant = faulted.as_dict()["per_tenant"]
        for stats in per_tenant.values():
            for key in ("latency_p50_ms", "latency_p95_ms",
                        "latency_p99_ms"):
                assert key in stats
        hot = per_tenant["hot"]
        assert hot["completed"] > 0
        assert hot["latency_p50_ms"] <= hot["latency_p99_ms"]
        # The slowed tenant completes nothing, so its percentiles are
        # honest Nones rather than fabricated zeros.
        if per_tenant["slow"]["completed"] == 0:
            assert per_tenant["slow"]["latency_p99_ms"] is None


class TestServingScenarios:
    """The serving-plane comparison: the same open-loop load must
    complete cleanly whether chunks run in the event loop, in scan
    worker processes, or behind the TCP frame protocol."""

    @pytest.mark.parametrize(
        "scan_workers,transport",
        [(0, "inproc"), (2, "inproc"), (2, "tcp")],
    )
    def test_plane_completes_with_zero_unhandled(
        self, scan_workers, transport
    ):
        record = run_loadgen(serving_config(
            scan_workers=scan_workers, transport=transport,
            duration_s=0.8, seed=7,
        ))
        assert record.unhandled_exceptions == 0
        assert record.completed > 0
        assert record.scan_workers == scan_workers
        assert record.transport == transport
        assert record.scenario == f"serve-{transport}-w{scan_workers}"
        for stats in record.as_dict()["per_tenant"].values():
            assert stats["latency_p99_ms"] is not None

    def test_connect_forces_tcp_transport(self):
        config = serving_config(connect=("127.0.0.1", 1), scan_workers=1)
        assert config.transport == "tcp"
        assert config.connect == ("127.0.0.1", 1)
        assert config.scenario == "serve-connect-w1"

    def test_connect_rejects_fault_injection(self):
        """Chaos hooks poke service internals, which an external server
        does not expose — mixing them must be a typed config error."""
        import dataclasses

        config = serving_config(connect=("127.0.0.1", 1))
        faulted = faulted_config(duration_s=0.5)
        bad = dataclasses.replace(config, faults=faulted.faults)
        with pytest.raises(ReproError):
            run_loadgen(bad)
