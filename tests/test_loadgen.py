"""Open-loop load generation harness (``repro.eval.loadgen``).

The fault-injected scenario is the acceptance gate for the serving
layer: every injected failure (worker kill, slow tenant, oversized
stream, backend error) must surface as a *typed, counted* outcome —
zero unhandled exceptions — with the circuit breaker observed both
tripping and recovering within the run.
"""

from __future__ import annotations

import pytest

from repro.eval.loadgen import (
    baseline_config,
    faulted_config,
    percentile,
    run_loadgen,
)


class TestPercentile:
    def test_nearest_rank(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 50) == 20.0
        assert percentile(samples, 95) == 40.0
        assert percentile(samples, 100) == 40.0
        assert percentile(samples, 1) == 10.0

    def test_empty_is_none(self):
        assert percentile([], 95) is None


class TestScenarios:
    @pytest.fixture(scope="class")
    def faulted(self):
        return run_loadgen(faulted_config(duration_s=1.2, seed=7))

    def test_baseline_all_complete(self):
        record = run_loadgen(baseline_config(duration_s=0.5, seed=7))
        assert record.requests_sent > 0
        assert record.completed == record.requests_sent
        assert record.unhandled_exceptions == 0
        assert record.failure_rate == 0.0
        assert record.latency_p99_ms is not None
        assert record.latency_p50_ms <= record.latency_p99_ms

    def test_faulted_zero_unhandled(self, faulted):
        assert faulted.unhandled_exceptions == 0

    def test_faulted_breaker_trips_and_recovers(self, faulted):
        assert faulted.breaker_trips >= 1
        assert faulted.breaker_recoveries >= 1
        assert faulted.breaker_recovered
        assert faulted.fallback_scans >= 1

    def test_faulted_counters_nonzero(self, faulted):
        assert faulted.worker_restarts >= 1
        assert faulted.oversized >= 1
        assert faulted.timeouts >= 1
        assert faulted.shed + faulted.retried >= 1
        assert 0.0 < faulted.failure_rate < 1.0

    def test_run_record_row_is_flat(self, faulted):
        row = faulted.as_dict()
        for key in ("throughput_rps", "latency_p95_ms", "failure_rate",
                    "shed", "retried", "timeouts", "breaker_trips"):
            assert key in row
        assert isinstance(row["per_tenant"], dict)
        assert set(row["per_tenant"]) == {"hot", "slow", "flaky"}
