"""Backend registry, artifact IR, and the cross-backend differential matrix.

The differential matrix is the refactor's safety net: every registered
execution backend must produce the identical match set — same offsets —
on the same compiled artifact, across crafted inputs, suite workloads,
and seeded random streams, whole-stream and chunked.  Backends whose
capabilities erase rule identity (the DFA baseline) still must agree on
offsets.
"""

import io

import numpy as np
import pytest

from repro.backends import (
    DEFAULT_BACKEND,
    backend_class,
    backend_names,
    backend_spec,
    create_backend,
    register_backend,
    resolve_backend_name,
)
from repro.backends import registry as registry_module
from repro.backends.artifact import ARTIFACT_FORMAT_VERSION, CompiledArtifact
from repro.backends.base import AutomatonBackend
from repro.compiler import compile_automaton
from repro.core.design import CA_P
from repro.engine import CacheAutomatonEngine
from repro.errors import (
    ArtifactError,
    AutomatonError,
    BackendError,
    DegradedModeWarning,
    SimulationError,
)
from repro.regex.compile import compile_patterns
from repro.sim.golden import match_offsets
from repro.workloads.inputs import LOWERCASE, random_over_alphabet
from repro.workloads.suite import build_suite

PATTERNS = ["bat", "c[ao]t", "dog+", "bar[t]?"]
DATA = b"the cat sat on the bat; doggg barts in cots near a bart"

#: Suite benchmarks exercised by the matrix (small at scale 0.05).
SUITE_NAMES = ("Bro217", "ExactMatch", "Ranges05", "PowerEN")

#: Options keeping the DFA baseline's subset construction bounded; every
#: other backend ignores them.
_OPTIONS = {"minimize": False, "max_states": 60_000}


def _artifact(patterns):
    machine = compile_patterns(patterns, report_codes=patterns)
    return CompiledArtifact.from_mapping(compile_automaton(machine, CA_P))


def _backend(name, artifact):
    try:
        return create_backend(name, artifact, **_OPTIONS)
    except AutomatonError as error:  # DFA state blow-up on this workload
        pytest.skip(f"{name}: {error}")


@pytest.fixture(scope="module")
def pattern_artifact():
    return _artifact(PATTERNS)


@pytest.fixture(scope="module")
def suite_artifacts():
    benchmarks = {b.name: b for b in build_suite(0.05)}
    artifacts = {}
    for name in SUITE_NAMES:
        benchmark = benchmarks[name]
        artifacts[name] = (
            CompiledArtifact.from_mapping(
                compile_automaton(benchmark.build(), CA_P)
            ),
            benchmark.input_stream(768, 3),
        )
    return artifacts


class TestDifferentialMatrix:
    @pytest.mark.parametrize("name", backend_names())
    def test_crafted_input(self, name, pattern_artifact):
        golden = match_offsets(pattern_artifact.automaton, DATA)
        backend = _backend(name, pattern_artifact)
        assert backend.scan(DATA).report_offsets() == golden

    @pytest.mark.parametrize("name", backend_names())
    @pytest.mark.parametrize("workload", SUITE_NAMES)
    def test_suite_workloads(self, name, workload, suite_artifacts):
        artifact, data = suite_artifacts[workload]
        golden = match_offsets(artifact.automaton, data)
        backend = _backend(name, artifact)
        assert backend.scan(data).report_offsets() == golden

    @pytest.mark.parametrize("name", backend_names())
    @pytest.mark.parametrize("seed", (11, 12))
    def test_seeded_random_streams(self, name, seed, pattern_artifact):
        data = random_over_alphabet(600, b"abcdgorst ", seed=seed)
        golden = match_offsets(pattern_artifact.automaton, data)
        backend = _backend(name, pattern_artifact)
        assert backend.scan(data).report_offsets() == golden

    @pytest.mark.parametrize("name", backend_names())
    def test_report_counts_without_collection(self, name, pattern_artifact):
        backend = _backend(name, pattern_artifact)
        result = backend.scan(DATA, collect_reports=False)
        assert result.reports == []
        assert result.profile.reports == len(
            match_offsets(pattern_artifact.automaton, DATA)
        )


class TestChunkedResume:
    @pytest.mark.parametrize("name", backend_names())
    @pytest.mark.parametrize("chunk_size", (7, 64))
    def test_chunked_equals_whole_stream(
        self, name, chunk_size, pattern_artifact
    ):
        backend = _backend(name, pattern_artifact)
        if not backend.capabilities().resume:
            with pytest.raises(SimulationError):
                backend.stream()
            return
        whole = backend.scan(DATA).report_offsets()
        stream = backend.stream()
        offsets = []
        for start in range(0, len(DATA), chunk_size):
            result = stream.scan(DATA[start : start + chunk_size])
            offsets.extend(result.report_offsets())
        assert sorted(set(offsets)) == whole
        assert stream.position == len(DATA)

    @pytest.mark.parametrize("name", backend_names())
    def test_scan_many_matches_scan(self, name, pattern_artifact):
        backend = _backend(name, pattern_artifact)
        streams = [DATA, b"no matches here", DATA[10:40]]
        results = backend.scan_many(streams)
        assert len(results) == len(streams)
        for data, result in zip(streams, results):
            assert (
                result.report_offsets()
                == backend.scan(data).report_offsets()
            )

    @pytest.mark.parametrize("name", backend_names())
    def test_scan_many_resume_count_mismatch(self, name, pattern_artifact):
        backend = _backend(name, pattern_artifact)
        with pytest.raises(SimulationError, match="2 checkpoints"):
            backend.scan_many([DATA], resumes=[None, None])


def _full_reports(result):
    return [(r.offset, r.ste_id, r.report_code) for r in result.reports]


class TestLazyDfa:
    """The lazy-DFA backend's cache policy and process-sharded batch."""

    def test_overflow_flush_mid_stream_is_bit_identical(
        self, pattern_artifact
    ):
        golden = match_offsets(pattern_artifact.automaton, DATA)
        reference = create_backend("lazy-dfa", pattern_artifact)
        backend = create_backend("lazy-dfa", pattern_artifact)
        # Force the state budget far below what DATA visits so the
        # cache flushes repeatedly mid-stream (the constructor clamps
        # max_states to >= 64, hence the direct override).
        backend.dfa._max_states = 3
        result = backend.scan(DATA)
        assert result.report_offsets() == golden
        assert _full_reports(result) == _full_reports(
            reference.scan(DATA)
        )
        info = backend.cache_info()
        assert info["flushes"] > 0
        assert info["states"] <= 4
        # A second pass over the thrashing cache still agrees.
        assert backend.scan(DATA).report_offsets() == golden

    def test_cache_info_counters(self, pattern_artifact):
        backend = create_backend("lazy-dfa", pattern_artifact)
        backend.scan(DATA)
        cold = backend.cache_info()
        assert cold["states"] > 0
        assert cold["misses"] > 0
        assert cold["events"] > 0
        backend.scan(DATA)
        warm = backend.cache_info()
        assert warm["misses"] == cold["misses"]
        assert warm["hits"] > cold["hits"]

    def test_sharded_scan_many_independent_of_jobs(self, pattern_artifact):
        backend = create_backend("lazy-dfa", pattern_artifact)
        streams = [DATA, b"no matches here", DATA[5:40], DATA * 3, b""]
        serial = backend.scan_many(streams, jobs=1)
        for jobs in (2, 3):
            sharded = backend.scan_many(streams, jobs=jobs)
            assert len(sharded) == len(serial)
            for lone, many in zip(serial, sharded):
                assert _full_reports(many) == _full_reports(lone)
                assert many.checkpoint == lone.checkpoint
                assert many.profile.reports == lone.profile.reports

    def test_sharded_resume_matches_whole_stream(self, pattern_artifact):
        backend = create_backend("lazy-dfa", pattern_artifact)
        whole = backend.scan(DATA).report_offsets()
        splits = (20, 33)
        heads = [DATA[:split] for split in splits]
        first = backend.scan_many(heads, jobs=2)
        tails = [DATA[split:] for split in splits]
        second = backend.scan_many(
            tails, resumes=[r.checkpoint for r in first], jobs=2
        )
        for head, tail in zip(first, second):
            assert (
                head.report_offsets() + tail.report_offsets() == whole
            )

    def test_sharded_without_report_collection(self, pattern_artifact):
        backend = create_backend("lazy-dfa", pattern_artifact)
        streams = [DATA, DATA[7:]]
        results = backend.scan_many(
            streams, collect_reports=False, jobs=2
        )
        for data, result in zip(streams, results):
            assert result.reports == []
            assert result.profile.reports == len(
                match_offsets(pattern_artifact.automaton, data)
            )

    def test_pool_failure_degrades_to_serial(
        self, pattern_artifact, monkeypatch
    ):
        from repro.sim import shard as shard_module

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no worker processes available")

        monkeypatch.setattr(
            shard_module, "ProcessPoolExecutor", ExplodingPool
        )
        backend = create_backend("lazy-dfa", pattern_artifact)
        golden = match_offsets(pattern_artifact.automaton, DATA)
        with pytest.warns(DegradedModeWarning, match="degrading to serial"):
            results = backend.scan_many([DATA, DATA[3:25]], jobs=2)
        assert results[0].report_offsets() == golden
        assert (
            results[1].report_offsets()
            == backend.scan(DATA[3:25]).report_offsets()
        )

    def test_resolve_scan_jobs(self, monkeypatch):
        from repro.sim.shard import SCAN_JOBS_ENV, resolve_scan_jobs

        monkeypatch.delenv(SCAN_JOBS_ENV, raising=False)
        assert resolve_scan_jobs(4) == 4
        assert resolve_scan_jobs("3") == 3
        assert resolve_scan_jobs(0) == 1
        assert resolve_scan_jobs(None) >= 1
        monkeypatch.setenv(SCAN_JOBS_ENV, "5")
        assert resolve_scan_jobs() == 5
        assert resolve_scan_jobs("auto") == 5
        assert resolve_scan_jobs(2) == 2

    def test_engine_scan_jobs_passthrough(self, tmp_path):
        engine = CacheAutomatonEngine.from_patterns(
            PATTERNS, cache=str(tmp_path), backend="lazy-dfa", scan_jobs=1
        )
        assert engine.backend._jobs == 1
        offsets = sorted(m.end for m in engine.scan(DATA))
        assert offsets == match_offsets(engine.automaton, DATA)


class TestStride:
    """k-stride execution: bit-identical to the unstrided golden run.

    The differential rows here compare the *strided* lazy-DFA against
    the unstrided golden interpreter — full STE identity and corrected
    offsets, across whole streams, odd-length tails, odd-offset
    resumes, cache flushes, and the process-sharded batch.
    """

    @pytest.mark.parametrize("stride", (2, 4))
    def test_crafted_input_matches_golden(self, stride, pattern_artifact):
        golden = create_backend("golden-interpreter", pattern_artifact)
        strided = create_backend(
            "lazy-dfa", pattern_artifact, stride=stride
        )
        assert strided.dfa.stride == stride
        assert _full_reports(strided.scan(DATA)) == _full_reports(
            golden.scan(DATA)
        )

    @pytest.mark.parametrize("workload", SUITE_NAMES)
    def test_suite_workloads_bit_identical(self, workload, suite_artifacts):
        artifact, data = suite_artifacts[workload]
        golden = create_backend("golden-interpreter", artifact)
        strided = create_backend("lazy-dfa", artifact, stride=2)
        # The sliced payloads land on odd lengths, exercising the
        # unstrided tail cycles.
        for payload in (data, data[:-1], data[:7], data[:1]):
            assert _full_reports(strided.scan(payload)) == _full_reports(
                golden.scan(payload)
            ), f"{workload} diverged on a {len(payload)}-byte stream"

    def test_empty_input(self, pattern_artifact):
        strided = create_backend("lazy-dfa", pattern_artifact, stride=2)
        result = strided.scan(b"")
        assert result.reports == []
        assert result.checkpoint.symbols_processed == 0
        assert strided.cache_info()["tail_steps"] == 0

    @pytest.mark.parametrize("chunk_size", (7, 13))
    def test_odd_offset_resume(self, chunk_size, pattern_artifact):
        # Odd chunk sizes land every checkpoint on an odd byte offset;
        # the strided stream must still agree with the whole-stream
        # golden run, reports and cursor alike.
        golden = create_backend("golden-interpreter", pattern_artifact)
        whole = _full_reports(golden.scan(DATA))
        strided = create_backend("lazy-dfa", pattern_artifact, stride=2)
        stream = strided.stream()
        reports = []
        for start in range(0, len(DATA), chunk_size):
            result = stream.scan(DATA[start : start + chunk_size])
            reports.extend(_full_reports(result))
        assert reports == whole
        assert stream.position == len(DATA)
        unstrided = create_backend("lazy-dfa", pattern_artifact)
        assert (
            strided.scan(DATA).checkpoint
            == unstrided.scan(DATA).checkpoint
        )

    def test_overflow_flush_is_bit_identical(self, pattern_artifact):
        golden = create_backend("golden-interpreter", pattern_artifact)
        backend = create_backend("lazy-dfa", pattern_artifact, stride=2)
        backend.dfa._max_states = 3
        result = backend.scan(DATA)
        assert _full_reports(result) == _full_reports(golden.scan(DATA))
        info = backend.cache_info()
        assert info["flushes"] > 0
        # Flushed and repopulated caches still agree on a second pass.
        assert _full_reports(backend.scan(DATA)) == _full_reports(
            golden.scan(DATA)
        )

    def test_sharded_scan_many_composes_with_stride(self, pattern_artifact):
        unstrided = create_backend("lazy-dfa", pattern_artifact)
        strided = create_backend("lazy-dfa", pattern_artifact, stride=2)
        streams = [DATA, b"no matches here", DATA[5:40], DATA * 3, b""]
        reference = unstrided.scan_many(streams, jobs=1)
        for jobs in (1, 2, 3):
            results = strided.scan_many(streams, jobs=jobs)
            for lone, many in zip(reference, results):
                assert _full_reports(many) == _full_reports(lone)
                assert many.checkpoint == lone.checkpoint
                assert many.profile.reports == lone.profile.reports

    def test_cache_info_reports_stride(self, pattern_artifact):
        backend = create_backend("lazy-dfa", pattern_artifact, stride=2)
        backend.scan(DATA)
        info = backend.cache_info()
        assert info["stride"] == 2
        assert info["stride_requested"] == 2
        assert 0 < info["stride_classes"] < 65536
        # After the one-cycle sod step, an even-length stream leaves an
        # odd remainder — exactly one uncached tail cycle.
        backend.scan(DATA[: len(DATA) - len(DATA) % 2])
        assert backend.cache_info()["tail_steps"] >= 1
        unstrided = create_backend("lazy-dfa", pattern_artifact)
        assert unstrided.cache_info()["stride"] == 1
        assert unstrided.cache_info()["stride_classes"] == 256

    def test_resolve_stride(self, monkeypatch):
        from repro.automata.stride import STRIDE_ENV, resolve_stride
        from repro.errors import StrideError

        monkeypatch.delenv(STRIDE_ENV, raising=False)
        assert resolve_stride(2) == 2
        assert resolve_stride("4") == 4
        assert resolve_stride(None) == 1
        assert resolve_stride("auto") == 1
        monkeypatch.setenv(STRIDE_ENV, "2")
        assert resolve_stride() == 2
        assert resolve_stride("auto") == 2
        assert resolve_stride(4) == 4
        with pytest.raises(StrideError, match="one of"):
            resolve_stride(3)
        with pytest.raises(StrideError, match="integer"):
            resolve_stride("fast")
        monkeypatch.setenv(STRIDE_ENV, "7")
        with pytest.raises(StrideError, match="REPRO_STRIDE"):
            resolve_stride()

    def test_env_reaches_backend(self, monkeypatch, pattern_artifact):
        from repro.automata.stride import STRIDE_ENV

        monkeypatch.setenv(STRIDE_ENV, "2")
        backend = create_backend("lazy-dfa", pattern_artifact)
        assert backend.dfa.stride == 2
        golden = create_backend("golden-interpreter", pattern_artifact)
        assert _full_reports(backend.scan(DATA)) == _full_reports(
            golden.scan(DATA)
        )

    def test_engine_stride_round_trip(self, tmp_path):
        engine = CacheAutomatonEngine.from_patterns(
            PATTERNS, cache=str(tmp_path), backend="lazy-dfa", stride=2
        )
        assert engine.stride == 2
        assert engine.backend.dfa.stride == 2
        assert engine.artifact.stride == 2
        assert engine.artifact.stride_tables
        reference = CacheAutomatonEngine.from_patterns(
            PATTERNS, cache=False, backend="golden"
        )
        expected = [(m.end, m.state, m.rule) for m in reference.scan(DATA)]
        assert [(m.end, m.state, m.rule) for m in engine.scan(DATA)] == (
            expected
        )
        # Second construction warm-starts from the stride-keyed artifact
        # and rebuilds the compressed alphabet from the cached tables.
        warm = CacheAutomatonEngine.from_patterns(
            PATTERNS, cache=str(tmp_path), backend="lazy-dfa", stride=2
        )
        assert warm.health().tier == "warm-cache"
        assert warm.backend.dfa.stride == 2
        assert [(m.end, m.state, m.rule) for m in warm.scan(DATA)] == (
            expected
        )

    def test_strided_and_unstrided_artifacts_keyed_apart(self, tmp_path):
        from repro.compiler.cache import CompileCache

        cache = CompileCache(tmp_path)
        plain = CacheAutomatonEngine.from_patterns(
            PATTERNS, cache=cache, backend="lazy-dfa"
        )
        strided = CacheAutomatonEngine.from_patterns(
            PATTERNS, cache=cache, backend="lazy-dfa", stride=2
        )
        paths = {
            cache.mapping_path(engine.automaton, engine.design, stride=s)
            for engine, s in ((plain, 1), (strided, 2))
        }
        assert len(paths) == 2
        assert all(path.exists() for path in paths)


class TestRegistry:
    def test_default_is_registered(self):
        assert DEFAULT_BACKEND in backend_names()

    def test_unknown_name(self):
        with pytest.raises(BackendError, match="unknown backend 'nope'"):
            resolve_backend_name("nope")

    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("kernel", "packed-kernel"),
            ("mapped", "packed-kernel"),
            ("golden", "golden-interpreter"),
            ("circuit-interpreter", "circuit"),
            ("dfa", "lazy-dfa"),
            ("cpu", "lazy-dfa"),
            ("cpu-dfa", "lazy-dfa"),
            ("eager", "eager-dfa"),
            ("faulty", "fault-injected"),
        ],
    )
    def test_aliases_resolve(self, alias, canonical):
        assert resolve_backend_name(alias) == canonical
        assert backend_spec(alias).name == canonical

    def test_registration_is_latest_wins(self):
        saved_registry = dict(registry_module._REGISTRY)
        saved_aliases = dict(registry_module._ALIASES)
        try:

            @register_backend("temp-backend", aliases=("tmp",))
            class First(AutomatonBackend):
                pass

            assert backend_class("tmp") is First
            assert First.name == "temp-backend"

            @register_backend("temp-backend")
            class Second(AutomatonBackend):
                pass

            assert backend_class("temp-backend") is Second
        finally:
            registry_module._REGISTRY.clear()
            registry_module._REGISTRY.update(saved_registry)
            registry_module._ALIASES.clear()
            registry_module._ALIASES.update(saved_aliases)

    def test_every_backend_declares_capabilities(self, pattern_artifact):
        for name in backend_names():
            backend = _backend(name, pattern_artifact)
            capabilities = backend.capabilities()
            assert capabilities.description
            assert backend.name == name


class TestCompiledArtifact:
    def test_npz_round_trip_cold(self, pattern_artifact):
        restored = CompiledArtifact.from_npz_bytes(
            pattern_artifact.npz_bytes(),
            pattern_artifact.automaton,
            pattern_artifact.design,
        )
        assert restored.version == ARTIFACT_FORMAT_VERSION
        assert restored.automaton_fingerprint == (
            pattern_artifact.automaton_fingerprint
        )
        assert not restored.kernel_tables
        assert (
            restored.mapping.partition_count
            == pattern_artifact.mapping.partition_count
        )
        for partition, original in zip(
            restored.mapping.partitions, pattern_artifact.mapping.partitions
        ):
            assert list(partition.ste_ids) == list(original.ste_ids)

    def test_npz_round_trip_warm(self, pattern_artifact):
        backend = create_backend("packed-kernel", pattern_artifact)
        warm = pattern_artifact.with_kernel_tables(backend.packed_tables())
        restored = CompiledArtifact.from_npz_bytes(
            warm.npz_bytes(), warm.automaton, warm.design
        )
        assert set(restored.kernel_tables) == set(warm.kernel_tables)
        for key, table in warm.kernel_tables.items():
            assert np.array_equal(restored.kernel_tables[key], table)
        offsets = (
            create_backend("packed-kernel", restored)
            .scan(DATA)
            .report_offsets()
        )
        assert offsets == match_offsets(warm.automaton, DATA)

    def test_wrong_automaton_is_rejected(self, pattern_artifact):
        other = _artifact(["completely", "different"])
        with pytest.raises(ArtifactError, match="fingerprint"):
            CompiledArtifact.from_npz_bytes(
                pattern_artifact.npz_bytes(), other.automaton, other.design
            )

    def test_corrupt_payload_is_rejected(self, pattern_artifact):
        with pytest.raises(ArtifactError):
            CompiledArtifact.from_npz_bytes(
                b"not an npz payload",
                pattern_artifact.automaton,
                pattern_artifact.design,
            )

    def test_stride_round_trip(self, pattern_artifact):
        from repro.automata.stride import StrideAlphabet

        alphabet = StrideAlphabet.from_automaton(
            pattern_artifact.automaton, 2
        )
        strided = pattern_artifact.with_stride_tables(2, alphabet.tables())
        restored = CompiledArtifact.from_npz_bytes(
            strided.npz_bytes(), strided.automaton, strided.design, stride=2
        )
        assert restored.stride == 2
        assert set(restored.stride_tables) == set(strided.stride_tables)
        for key, table in strided.stride_tables.items():
            assert np.array_equal(restored.stride_tables[key], table)
        backend = create_backend("lazy-dfa", restored)
        assert backend.dfa.stride == 2
        offsets = backend.scan(DATA).report_offsets()
        assert offsets == match_offsets(strided.automaton, DATA)

    def test_stride_mismatch_is_rejected(self, pattern_artifact):
        # A stride-1 payload must not satisfy a stride-2 load (and vice
        # versa) — the cache treats them as distinct artifacts.
        with pytest.raises(ArtifactError, match="stride"):
            CompiledArtifact.from_npz_bytes(
                pattern_artifact.npz_bytes(),
                pattern_artifact.automaton,
                pattern_artifact.design,
                stride=2,
            )

    def test_pre_stride_payload_is_rejected(self, pattern_artifact):
        # Simulate an artifact written before the stride-aware format:
        # downgrade the version member and drop the stride scalar.
        members = dict(
            np.load(io.BytesIO(pattern_artifact.npz_bytes()))
        )
        members["artifact_version"] = np.asarray(1, dtype=np.int64)
        del members["stride"]
        buffer = io.BytesIO()
        np.savez(buffer, **members)
        with pytest.raises(
            ArtifactError, match="unsupported artifact version 1"
        ):
            CompiledArtifact.from_npz_bytes(
                buffer.getvalue(),
                pattern_artifact.automaton,
                pattern_artifact.design,
            )

    def test_cache_quarantines_pre_stride_artifact(
        self, tmp_path, pattern_artifact
    ):
        from repro.compiler.cache import CompileCache

        cache = CompileCache(tmp_path)
        cache.store_artifact(pattern_artifact)
        path = cache.mapping_path(
            pattern_artifact.automaton, pattern_artifact.design
        )
        members = dict(np.load(path))
        members["artifact_version"] = np.asarray(1, dtype=np.int64)
        del members["stride"]
        with open(path, "wb") as handle:
            np.savez(handle, **members)
        with pytest.warns(DegradedModeWarning, match="artifact version"):
            assert (
                cache.load_artifact(
                    pattern_artifact.automaton, pattern_artifact.design
                )
                is None
            )
        assert not path.exists()


class TestEngineBackendSelection:
    @pytest.mark.parametrize("name", ("golden", "cpu-dfa", "circuit"))
    def test_explicit_backend_matches_default(self, name, tmp_path):
        default = CacheAutomatonEngine.from_patterns(
            PATTERNS, cache=str(tmp_path)
        )
        engine = CacheAutomatonEngine.from_patterns(
            PATTERNS, cache=str(tmp_path), backend=name
        )
        assert (
            sorted(m.end for m in engine.scan(DATA))
            == sorted(m.end for m in default.scan(DATA))
        )
        health = engine.health()
        assert health.backend == resolve_backend_name(name)
        assert health.requested == resolve_backend_name(name)

    def test_unknown_backend_raises(self, tmp_path):
        with pytest.raises(BackendError, match="unknown backend"):
            CacheAutomatonEngine.from_patterns(
                PATTERNS, cache=str(tmp_path), backend="warp-drive"
            )

    def test_default_reports_no_request(self, tmp_path):
        engine = CacheAutomatonEngine.from_patterns(
            PATTERNS, cache=str(tmp_path)
        )
        health = engine.health()
        assert health.backend == DEFAULT_BACKEND
        assert health.requested is None
