"""The resilient multi-tenant scan service.

Deterministic wherever time matters: the service clock is injectable,
so deadline interruption, breaker cooldowns, and backoff bounds are
tested with fake clocks and counted sleeps rather than wall-clock
sleeps and luck.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.backends.base import BoundedEventLog
from repro.engine import CacheAutomatonEngine
from repro.errors import ReproError, SimulationError
from repro.service import (
    CircuitBreaker,
    DeadlineExceeded,
    Overloaded,
    RetryingClient,
    ScanService,
    ServiceClosed,
    StreamTooLarge,
    TenantLimits,
    UnknownTenant,
    WorkerCrashed,
)

PATTERNS = ["cat", "dog+", "ba[rt]"]
DATA = b"the cat sat on the bar while the dog dogged a bat " * 4


def run(coro):
    return asyncio.run(coro)


class Ticker:
    """Fake monotonic clock: advances ``step`` seconds per reading."""

    def __init__(self, step: float = 0.0, start: float = 100.0):
        self.now = start
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


async def make_service(**kwargs):
    kwargs.setdefault("cache", False)
    service = ScanService(**kwargs)
    service.register("acme", PATTERNS)
    await service.start()
    return service


def reference_rows(tenant_engine, data: bytes):
    backend = tenant_engine.backend
    result = backend.scan(data)
    return [(r.offset, r.ste_id, r.report_code) for r in result.reports]


class TestScanBasics:
    def test_scan_returns_reports(self):
        async def scenario():
            service = await make_service()
            outcome = await service.scan("acme", DATA)
            await service.stop()
            return service, outcome

        service, outcome = run(scenario())
        assert outcome.tenant == "acme"
        assert outcome.offset == len(DATA)
        assert not outcome.fallback
        assert outcome.report_rows() == reference_rows(
            service.tenant_engine("acme"), DATA
        )

    def test_chunked_scan_matches_unchunked(self):
        async def scenario():
            service = await make_service(chunk_bytes=7)
            outcome = await service.scan("acme", DATA)
            await service.stop()
            return service, outcome

        service, outcome = run(scenario())
        assert outcome.report_rows() == reference_rows(
            service.tenant_engine("acme"), DATA
        )

    def test_unknown_tenant(self):
        async def scenario():
            service = await make_service()
            with pytest.raises(UnknownTenant):
                await service.scan("ghost", b"abc")
            await service.stop()

        run(scenario())

    def test_oversized_stream_rejected(self):
        async def scenario():
            service = ScanService(cache=False)
            service.register(
                "tiny", PATTERNS, limits=TenantLimits(max_stream_bytes=16)
            )
            await service.start()
            with pytest.raises(StreamTooLarge):
                await service.scan("tiny", b"x" * 17)
            outcome = await service.scan("tiny", b"the cat!")
            await service.stop()
            return service, outcome

        service, outcome = run(scenario())
        assert service.metrics.oversized == 1
        assert len(outcome.reports) == 1

    def test_scan_after_stop_is_closed(self):
        async def scenario():
            service = await make_service()
            await service.stop()
            with pytest.raises(ServiceClosed):
                await service.scan("acme", DATA)

        run(scenario())


class TestDeadlines:
    def test_mid_stream_interrupt_and_bit_identical_resume(self):
        """The acceptance-criteria test: a deadline fires *mid-stream*
        (nonzero partial offset, strictly inside the input) and resuming
        from the carried checkpoint yields exactly the reports an
        uninterrupted scan produces."""
        clock = Ticker(step=1.0)

        async def scenario():
            service = ScanService(chunk_bytes=16, clock=clock, cache=False)
            service.register("acme", PATTERNS)
            await service.start()
            # One clock reading per chunk boundary: a budget of 3.5
            # ticks expires after a few chunks, well inside the input.
            with pytest.raises(DeadlineExceeded) as info:
                await service.scan("acme", DATA, deadline=3.5)
            error = info.value
            rest = await service.scan(
                "acme",
                DATA[error.offset :],
                deadline=10_000,
                resume=error.checkpoint,
            )
            await service.stop()
            return service, error, rest

        service, error, rest = run(scenario())
        assert 0 < error.offset < len(DATA)
        assert error.offset % 16 == 0  # interrupted at a chunk boundary
        resumed = [
            (r.offset, r.ste_id, r.report_code) for r in error.reports
        ] + rest.report_rows()
        assert resumed == reference_rows(
            service.tenant_engine("acme"), DATA
        )
        assert service.metrics.timeouts == 1

    def test_deadline_error_is_not_retryable(self):
        assert DeadlineExceeded("t", offset=3).retryable is False

    def test_default_deadline_applies(self):
        clock = Ticker(step=1.0)

        async def scenario():
            service = ScanService(
                chunk_bytes=8, default_deadline=2.5, clock=clock, cache=False
            )
            service.register("acme", PATTERNS)
            await service.start()
            with pytest.raises(DeadlineExceeded):
                await service.scan("acme", DATA)
            await service.stop()

        run(scenario())


class TestAdmission:
    def test_tenant_in_flight_limit_sheds(self):
        async def scenario():
            service = ScanService(workers=1, cache=False)
            service.register(
                "acme", PATTERNS, limits=TenantLimits(max_in_flight=1)
            )
            await service.start()
            service.set_scan_delay("acme", 0.01)
            first = asyncio.ensure_future(service.scan("acme", DATA))
            await asyncio.sleep(0)
            with pytest.raises(Overloaded) as info:
                await service.scan("acme", DATA)
            assert info.value.retryable
            await first
            await service.stop()
            return service

        service = run(scenario())
        assert service.metrics.shed == 1
        assert service.metrics.completed == 1

    def test_queue_bound_sheds(self):
        async def scenario():
            service = ScanService(workers=1, max_queue=2, cache=False)
            service.register(
                "acme", PATTERNS, limits=TenantLimits(max_in_flight=64)
            )
            await service.start()
            service.set_scan_delay("acme", 0.01)
            pending = [
                asyncio.ensure_future(service.scan("acme", DATA))
                for _ in range(2)
            ]
            await asyncio.sleep(0)
            with pytest.raises(Overloaded):
                await service.scan("acme", DATA)
            await asyncio.gather(*pending)
            await service.stop()
            return service

        service = run(scenario())
        assert service.metrics.shed == 1

    def test_round_robin_interleaves_tenants(self):
        """A tenant that floods the queue cannot starve another: the
        dequeue order alternates between tenants with pending work."""
        order = []

        async def scenario():
            service = ScanService(workers=1, max_queue=64, cache=False)
            service.register("flood", PATTERNS)
            service.register("meek", PATTERNS)
            await service.start()

            async def tracked(tenant):
                outcome = await service.scan(tenant, b"the cat")
                order.append(outcome.tenant)

            jobs = [asyncio.ensure_future(tracked("flood")) for _ in range(4)]
            jobs.append(asyncio.ensure_future(tracked("meek")))
            await asyncio.gather(*jobs)
            await service.stop()

        run(scenario())
        # The meek tenant's single request lands in the first round of
        # the rotation (position 0 or 1), never behind the flood.
        assert order.index("meek") <= 1


class TestCircuitBreaker:
    def test_unit_transitions(self):
        clock = Ticker(step=0.0)
        breaker = CircuitBreaker(threshold=2, cooldown=5.0, clock=clock)
        assert breaker.state == "closed"
        assert not breaker.record_failure()
        assert breaker.record_failure()  # second failure trips
        assert breaker.state == "open"
        assert not breaker.allow_primary()  # cooldown not elapsed
        clock.advance(5.1)
        assert breaker.allow_primary()  # half-open probe
        assert breaker.state == "half-open"
        assert breaker.record_success()
        assert breaker.state == "closed"

    def test_trip_fallback_recover_end_to_end(self):
        clock = Ticker(step=0.0)

        async def scenario():
            service = ScanService(
                workers=1,
                breaker_threshold=2,
                breaker_cooldown=4.0,
                clock=clock,
                cache=False,
            )
            service.register("acme", PATTERNS)
            await service.start()
            service.inject_scan_faults(
                "acme", 2, SimulationError("injected")
            )
            for _ in range(2):
                with pytest.raises(SimulationError):
                    await service.scan("acme", DATA)
            assert service.breaker_state("acme") == "open"
            # While open, traffic is served by the golden-fallback tier
            # with identical results.
            during = await service.scan("acme", DATA)
            assert during.fallback
            assert during.served_by == "golden-interpreter"
            clock.advance(4.1)
            probe = await service.scan("acme", DATA)
            assert not probe.fallback
            assert service.breaker_state("acme") == "closed"
            await service.stop()
            return service, during

        service, during = run(scenario())
        assert during.report_rows() == reference_rows(
            service.tenant_engine("acme"), DATA
        )
        assert service.metrics.breaker_trips == 1
        assert service.metrics.breaker_recoveries == 1
        assert service.metrics.fallback_scans == 1


class TestWorkerSupervision:
    def test_crash_fails_request_retryably_and_restarts(self):
        async def scenario():
            service = await make_service(workers=1)
            service.set_scan_delay("acme", 0.01)
            pending = asyncio.ensure_future(service.scan("acme", DATA))
            await asyncio.sleep(0.005)
            assert service.crash_worker(0)
            with pytest.raises(WorkerCrashed) as info:
                await pending
            assert info.value.retryable
            service.set_scan_delay("acme", 0.0)
            # The restarted worker serves the next request.
            outcome = await service.scan("acme", DATA)
            await service.stop()
            return service, outcome

        service, outcome = run(scenario())
        assert service.metrics.worker_restarts == 1
        assert outcome.offset == len(DATA)

    def test_client_retries_through_crash(self):
        async def scenario():
            service = await make_service(workers=1)
            client = RetryingClient(
                service, base_delay=0.001, rng=random.Random(0)
            )
            service.set_scan_delay("acme", 0.01)
            pending = asyncio.ensure_future(client.scan("acme", DATA))
            await asyncio.sleep(0.005)
            service.crash_worker(0)
            service.set_scan_delay("acme", 0.0)
            outcome = await pending
            await service.stop()
            return service, client, outcome

        service, client, outcome = run(scenario())
        assert client.retries >= 1
        assert outcome.offset == len(DATA)


class TestDrain:
    def test_stop_completes_queued_work(self):
        async def scenario():
            service = await make_service(workers=2)
            pending = [
                asyncio.ensure_future(service.scan("acme", DATA))
                for _ in range(6)
            ]
            await asyncio.sleep(0)
            await service.stop()
            outcomes = await asyncio.gather(*pending)
            return service, outcomes

        service, outcomes = run(scenario())
        assert all(o.offset == len(DATA) for o in outcomes)
        assert service.metrics.completed == 6

    def test_drain_timeout_deadlines_stuck_requests(self):
        async def scenario():
            service = await make_service(workers=1, chunk_bytes=16)
            service.set_scan_delay("acme", 0.05)  # far slower than drain
            pending = asyncio.ensure_future(service.scan("acme", DATA))
            await asyncio.sleep(0.01)
            await service.stop(drain_timeout=0.01)
            try:
                await pending
            except DeadlineExceeded as error:
                return service, error
            raise AssertionError("expected DeadlineExceeded")

        service, error = run(scenario())
        # Interrupted at a chunk boundary with resumable progress.
        assert error.checkpoint is not None or error.offset == 0
        assert service.metrics.timeouts == 1

    def test_stop_is_idempotent(self):
        async def scenario():
            service = await make_service()
            await service.stop()
            await service.stop()

        run(scenario())


class TestHotReload:
    def test_same_patterns_noop(self):
        async def scenario():
            service = await make_service()
            changed = service.register("acme", PATTERNS)
            await service.stop()
            return service, changed

        service, changed = run(scenario())
        assert changed is False
        assert service.metrics.reloads == 0

    def test_changed_patterns_swap_engine(self):
        async def scenario():
            service = await make_service()
            before = await service.scan("acme", b"cat and emu")
            changed = service.register("acme", ["emu"])
            after = await service.scan("acme", b"cat and emu")
            await service.stop()
            return service, changed, before, after

        service, changed, before, after = run(scenario())
        assert changed is True
        assert service.metrics.reloads == 1
        assert [r.report_code for r in before.reports] == ["cat"]
        assert [r.report_code for r in after.reports] == ["emu"]


class TestRetryingClient:
    def test_backoff_bounds_and_sleep_count(self):
        """Each delay is equal-jittered over a capped exponential:
        within (d/2, d] for d = min(max_delay, base * 2**attempt)."""
        sleeps = []

        async def fake_sleep(delay):
            sleeps.append(delay)

        class AlwaysShedding:
            async def scan(self, *args, **kwargs):
                raise Overloaded("t", "full")

        client = RetryingClient(
            AlwaysShedding(),
            max_attempts=4,
            base_delay=0.1,
            max_delay=0.3,
            rng=random.Random(42),
            sleep=fake_sleep,
        )
        with pytest.raises(Overloaded):
            run(client.scan("t", b"x"))
        assert len(sleeps) == 3  # attempts 1..3 back off; 4th raises
        for attempt, delay in enumerate(sleeps):
            ceiling = min(0.3, 0.1 * 2**attempt)
            assert ceiling * 0.5 <= delay <= ceiling
        assert client.retries == 3
        assert client.exhausted == 1

    def test_non_retryable_propagates_immediately(self):
        calls = []

        class Rejecting:
            async def scan(self, *args, **kwargs):
                calls.append(1)
                raise StreamTooLarge("t", 10, 5)

        client = RetryingClient(Rejecting(), max_attempts=5)
        with pytest.raises(StreamTooLarge):
            run(client.scan("t", b"x"))
        assert len(calls) == 1
        assert client.retries == 0


class TestBoundedEventLog:
    def test_drops_oldest_and_counts(self):
        log = BoundedEventLog(limit=3)
        for index in range(5):
            log.append(f"event-{index}")
        assert log.events() == ("event-2", "event-3", "event-4")
        assert log.dropped == 2
        assert len(log) == 3

    def test_rejects_silly_limit(self):
        with pytest.raises(ValueError):
            BoundedEventLog(limit=0)

    def test_engine_health_events_bounded(self):
        """A long-lived engine's health log stays flat: events beyond
        the ring capacity surface as ``events_dropped``, and the
        monotonic total keeps counting."""
        from repro.regex.compile import compile_patterns

        engine = CacheAutomatonEngine(
            compile_patterns(["abc"]), cache=None
        )
        limit = engine._health_events.limit
        for index in range(limit + 10):
            engine._health_events.append(f"degrade-{index}")
        health = engine.health()
        assert health.events_dropped >= 10
        assert len(health.events) <= limit
        assert len(health.events) + health.events_dropped >= limit + 10


class TestServiceObservability:
    def test_metrics_snapshot_shape(self):
        async def scenario():
            service = await make_service()
            await service.scan("acme", DATA)
            snapshot = service.metrics_snapshot()
            await service.stop()
            return snapshot

        snapshot = run(scenario())
        assert snapshot["completed"] == 1
        assert snapshot["tenants"]["acme"]["completed"] == 1
        assert snapshot["tenants"]["acme"]["breaker"] == "closed"
        assert any("registered" in event for event in snapshot["events"])

    def test_register_validates(self):
        service = ScanService(cache=False)
        with pytest.raises(ReproError):
            service.register("empty", [])
        with pytest.raises(ReproError):
            ScanService(workers=0)
