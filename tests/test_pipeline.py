"""Tests for the three-stage pipeline model (Section 2.5)."""

import pytest

from repro.core.design import CA_P, CA_S
from repro.core.pipeline import PIPELINE_STAGES, PipelineModel
from repro.errors import SimulationError


class TestCycles:
    def test_empty_stream(self):
        model = PipelineModel(CA_P)
        assert model.total_cycles(0) == 0
        assert model.effective_throughput_gbps(0) == 0.0
        assert model.fill_drain_overhead(0) == 0.0

    def test_single_symbol_pays_full_depth(self):
        assert PipelineModel(CA_P).total_cycles(1) == PIPELINE_STAGES

    def test_steady_state_one_per_cycle(self):
        model = PipelineModel(CA_P)
        assert model.total_cycles(1000) - model.total_cycles(999) == 1

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            PipelineModel(CA_P).total_cycles(-1)


class TestThroughput:
    def test_converges_to_line_rate(self):
        model = PipelineModel(CA_P)
        assert model.effective_throughput_gbps(10) < CA_P.throughput_gbps
        assert model.effective_throughput_gbps(10_000_000) == pytest.approx(
            CA_P.throughput_gbps, rel=1e-5
        )

    def test_fill_drain_inconsequential_at_mb_scale(self):
        """The paper's remark, quantified: < 1e-5 overhead for MB streams."""
        model = PipelineModel(CA_S)
        assert model.fill_drain_overhead(1_000_000) < 1e-5
        assert model.fill_drain_overhead(10) > 0.1  # but real for tiny bursts


class TestLatency:
    def test_report_latency(self):
        model = PipelineModel(CA_P)
        assert model.report_latency_cycles() == 3
        assert model.report_latency_ns() == pytest.approx(1.5)  # 3 / 2 GHz

    def test_runtime(self):
        model = PipelineModel(CA_P)
        # 2e6 symbols at 2 GHz ~ 1 ms (+2 fill cycles).
        assert model.runtime_ms(2_000_000) == pytest.approx(1.0, rel=1e-4)

    def test_slower_design_longer_latency(self):
        assert (
            PipelineModel(CA_S).report_latency_ns()
            > PipelineModel(CA_P).report_latency_ns()
        )
