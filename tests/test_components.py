"""Tests for connected-component analysis."""

from repro.automata.anml import HomogeneousAutomaton, StartKind
from repro.automata.components import (
    component_index,
    component_stats,
    connected_components,
    extract_component,
)
from repro.automata.symbols import SymbolSet
from repro.regex.compile import compile_patterns
from repro.sim.golden import match_offsets


def build(edges, states):
    automaton = HomogeneousAutomaton()
    for name in states:
        automaton.add_ste(name, SymbolSet.single("a"), start=StartKind.ALL_INPUT)
    for u, v in edges:
        automaton.add_edge(u, v)
    return automaton


class TestConnectedComponents:
    def test_isolated_states(self):
        automaton = build([], ["a", "b", "c"])
        components = connected_components(automaton)
        assert len(components) == 3
        assert all(len(c) == 1 for c in components)

    def test_weak_connectivity(self):
        """Direction is ignored: x->y and z->y are one component."""
        automaton = build([("x", "y"), ("z", "y")], ["x", "y", "z"])
        assert len(connected_components(automaton)) == 1

    def test_sorted_by_size_then_member(self):
        automaton = build([("a", "b")], ["a", "b", "z", "m"])
        components = connected_components(automaton)
        assert components == [["m"], ["z"], ["a", "b"]]

    def test_multi_pattern_components(self, figure1_automaton):
        components = connected_components(figure1_automaton)
        assert len(components) == 9  # one per pattern

    def test_component_index_consistent(self):
        automaton = build([("a", "b")], ["a", "b", "c"])
        index = component_index(automaton)
        assert index["a"] == index["b"]
        assert index["a"] != index["c"]

    def test_self_loop_single_component(self):
        automaton = build([("a", "a")], ["a"])
        assert connected_components(automaton) == [["a"]]


class TestStats:
    def test_stats_fields(self, figure1_automaton):
        stats = component_stats(figure1_automaton)
        assert stats.state_count == len(figure1_automaton)
        assert stats.component_count == 9
        assert stats.largest_component_size == 4  # 'bart'/'cart'
        assert stats.edge_count == figure1_automaton.edge_count()
        assert "CCs" in str(stats)

    def test_empty_automaton(self):
        stats = component_stats(HomogeneousAutomaton())
        assert stats.largest_component_size == 0
        assert stats.component_count == 0


class TestExtraction:
    def test_extracted_component_is_self_contained(self):
        machine = compile_patterns(["cat", "dog"])
        components = connected_components(machine)
        for members in components:
            sub = extract_component(machine, members)
            assert len(sub) == len(members)
            sub.validate()

    def test_extracted_component_language(self):
        machine = compile_patterns(["cat", "dog"])
        components = connected_components(machine)
        text = b"hotdog catalogue"
        union_offsets = set()
        for members in components:
            union_offsets.update(
                match_offsets(extract_component(machine, members), text)
            )
        assert sorted(union_offsets) == match_offsets(machine, text)
