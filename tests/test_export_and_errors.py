"""Tests for the ANML corpus exporter, the eval runner CLI, and the
exception hierarchy."""

import pytest

from repro import errors
from repro.automata.anml import from_anml
from repro.sim.golden import match_offsets
from repro.workloads.export import export_benchmark, export_suite, main
from repro.workloads.suite import get_benchmark


class TestExport:
    def test_export_single_roundtrips(self, tmp_path):
        benchmark = get_benchmark("Bro217")
        written = export_benchmark(
            benchmark, tmp_path, input_length=1500, seed=2
        )
        assert len(written) == 2
        automaton = from_anml(written[0].read_text(encoding="utf-8"))
        data = written[1].read_bytes()
        assert len(data) == 1500
        original = benchmark.build()
        assert match_offsets(automaton, data[:600]) == match_offsets(
            original, data[:600]
        )

    def test_export_subset(self, tmp_path):
        written = export_suite(tmp_path, names=["ExactMatch", "SPM"])
        names = {path.stem for path in written}
        assert names == {"ExactMatch", "SPM"}

    def test_cli_main(self, tmp_path, capsys):
        assert main([str(tmp_path), "--only", "Bro217",
                     "--input-length", "100"]) == 0
        output = capsys.readouterr().out
        assert "Bro217.anml" in output
        assert (tmp_path / "Bro217.input").stat().st_size == 100


class TestEvalRunnerCli:
    def test_static_experiments(self, capsys):
        from repro.eval.runner import main as runner_main

        assert runner_main(["table3", "fig10"]) == 0
        output = capsys.readouterr().out
        assert "Table 3" in output
        assert "Figure 10" in output
        assert "CA_P" in output

    def test_unknown_experiment(self, capsys):
        from repro.eval.runner import main as runner_main

        with pytest.raises(SystemExit):
            runner_main(["not-an-experiment"])


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            attribute = getattr(errors, name)
            if isinstance(attribute, type) and issubclass(attribute, Exception):
                # Warnings (DegradedModeWarning) live outside the error
                # hierarchy so `except ReproError` never swallows one.
                if issubclass(attribute, Warning):
                    continue
                assert issubclass(attribute, errors.ReproError) or (
                    attribute is errors.ReproError
                ), name

    def test_regex_syntax_error_position(self):
        error = errors.RegexSyntaxError("bad", "a[b", 1)
        assert error.position == 1
        assert "offset 1" in str(error)
        assert "a[b" in str(error)

    def test_regex_syntax_error_without_position(self):
        error = errors.RegexSyntaxError("bad")
        assert error.position == -1
        assert str(error) == "bad"

    def test_specific_hierarchies(self):
        assert issubclass(errors.CapacityError, errors.CompileError)
        assert issubclass(errors.ConnectivityError, errors.CompileError)
        assert issubclass(errors.SymbolSetError, errors.AutomatonError)
        assert issubclass(errors.AnmlError, errors.AutomatonError)
        assert issubclass(errors.FaultError, errors.ReproError)
        assert issubclass(errors.DegradedModeWarning, RuntimeWarning)


class TestMarkdownReport:
    def test_static_experiments_to_markdown(self, tmp_path):
        from repro.eval.report import generate_report, main, rows_to_markdown

        report = generate_report(experiments=["table3", "fig10"])
        assert "## Table 3" in report
        assert "| CA_P |" in report or "| CA_P " in report

        output = tmp_path / "results.md"
        assert main([str(output), "--experiments", "table2"]) == 0
        assert "280x256" in output.read_text(encoding="utf-8")

        assert rows_to_markdown([]) == ""
        table = rows_to_markdown([("A", "B"), (1, 2.5)])
        assert table.splitlines()[1] == "|---|---|"
