"""Network front end (``repro.service.net``): frame codec, verbs,
typed-error reconstruction, backpressure, and the ``repro serve``
signal-handling contract.

The wire must be invisible to correctness: a scan over TCP returns the
same rows, checkpoints, and typed errors as the in-process call, so
``RetryingClient`` works over ``NetScanClient`` unchanged.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys

import pytest

from repro.service import (
    ConnectionLost,
    DeadlineExceeded,
    NetScanClient,
    Overloaded,
    ProtocolError,
    RetryingClient,
    ScanServer,
    ScanService,
    ServiceClosed,
    StreamTooLarge,
    TenantLimits,
    UnknownTenant,
    WorkerCrashed,
    connect_retrying,
)
from repro.service.net import (
    decode_checkpoint,
    decode_error,
    decode_reports,
    encode_checkpoint,
    encode_error,
    encode_frame,
    encode_reports,
    read_frame,
)
from repro.sim.golden import Checkpoint, Report

PATTERNS = ["cat", "dog+", "ba[rt]"]
DATA = b"the cat sat on the bar while the dog dogged a bat " * 4


def run(coro):
    return asyncio.run(coro)


def rows(outcome_or_reports):
    reports = getattr(outcome_or_reports, "reports", outcome_or_reports)
    return [(r.offset, r.ste_id, r.report_code) for r in reports]


async def started_service(**kwargs):
    kwargs.setdefault("cache", False)
    service = ScanService(**kwargs)
    service.register("acme", PATTERNS)
    await service.start()
    return service


class TestFrameCodec:
    def test_frame_round_trip(self):
        async def scenario():
            header = {"op": "submit", "id": 3, "tenant": "acme"}
            blob = b"\x00\x01payload\xff"
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(header, blob))
            reader.feed_eof()
            return await read_frame(reader)

        header, blob = run(scenario())
        assert header == {"op": "submit", "id": 3, "tenant": "acme"}
        assert blob == b"\x00\x01payload\xff"

    def test_oversized_header_rejected(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\xff\xff\xff\xff\x00\x00\x00\x00")
            with pytest.raises(ProtocolError):
                await read_frame(reader)

        run(scenario())

    def test_non_json_header_rejected(self):
        async def scenario():
            import struct

            garbage = b"not json"
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">II", len(garbage), 0) + garbage)
            reader.feed_eof()
            with pytest.raises(ProtocolError):
                await read_frame(reader)

        run(scenario())

    def test_checkpoint_round_trip_preserves_bigint(self):
        """The active-state vector is an arbitrary-precision integer;
        JSON numbers cannot carry it exactly, hex strings can."""
        checkpoint = Checkpoint(
            symbols_processed=12345,
            active_state_vector=(1 << 300) | 0x5A5A,
            start_of_data_pending=True,
        )
        decoded = decode_checkpoint(encode_checkpoint(checkpoint))
        assert decoded.symbols_processed == 12345
        assert decoded.active_state_vector == (1 << 300) | 0x5A5A
        assert decoded.start_of_data_pending is True
        assert decode_checkpoint(None) is None
        with pytest.raises(ProtocolError):
            decode_checkpoint(["zap"])

    def test_report_round_trip(self):
        reports = (Report(7, "s3", "cat"), Report(40, "s9", "dog"))
        assert decode_reports(encode_reports(reports)) == reports

    @pytest.mark.parametrize(
        "error",
        [
            UnknownTenant("ghost"),
            StreamTooLarge("acme", 100, 10),
            Overloaded("acme", "queue full"),
            WorkerCrashed("acme"),
            ServiceClosed("draining"),
            ProtocolError("bad frame"),
            ConnectionLost("gone"),
        ],
    )
    def test_error_round_trip(self, error):
        decoded = decode_error(encode_error(error))
        assert type(decoded) is type(error)
        assert decoded.retryable == error.retryable

    def test_deadline_error_round_trip_carries_progress(self):
        error = DeadlineExceeded(
            "acme",
            offset=64,
            reports=[Report(7, "s3", "cat")],
            checkpoint=Checkpoint(64, 1 << 200, False),
        )
        decoded = decode_error(encode_error(error))
        assert isinstance(decoded, DeadlineExceeded)
        assert decoded.offset == 64
        assert rows(decoded.reports) == [(7, "s3", "cat")]
        assert decoded.checkpoint.active_state_vector == 1 << 200

    def test_unknown_error_type_preserves_retryable(self):
        decoded = decode_error(
            {"type": "Mystery", "message": "huh", "retryable": True}
        )
        assert decoded.retryable is True


class TestServerVerbs:
    def test_submit_matches_in_process(self):
        async def scenario():
            service = await started_service(chunk_bytes=32)
            server = ScanServer(service)
            await server.start()
            host, port = server.address
            try:
                reference = await service.scan("acme", DATA)
                async with await NetScanClient.connect(host, port) as client:
                    assert await client.ping()
                    outcome = await client.scan("acme", DATA)
                return rows(reference), rows(outcome), outcome
            finally:
                await server.stop()
                await service.stop()

        reference, networked, outcome = run(scenario())
        assert networked == reference
        assert outcome.offset == len(DATA)
        assert not outcome.fallback

    def test_typed_errors_cross_the_wire(self):
        async def scenario():
            service = await started_service()
            service.register(
                "tiny", PATTERNS, limits=TenantLimits(max_stream_bytes=8)
            )
            server = ScanServer(service)
            await server.start()
            try:
                async with await NetScanClient.connect(*server.address) as c:
                    with pytest.raises(UnknownTenant):
                        await c.scan("ghost", b"abc")
                    with pytest.raises(StreamTooLarge) as info:
                        await c.scan("tiny", b"x" * 9)
                    assert info.value.size == 9
                    assert info.value.limit == 8
            finally:
                await server.stop()
                await service.stop()

        run(scenario())

    def test_deadline_over_wire_resumes_bit_identical(self):
        """A ``DeadlineExceeded`` error frame carries the checkpoint;
        the ``resume`` verb continues the stream with the combined rows
        equal to one uninterrupted scan."""
        from tests.test_procpool import Ticker

        clock = Ticker(step=1.0)

        async def scenario():
            service = ScanService(chunk_bytes=16, clock=clock, cache=False)
            service.register("acme", PATTERNS)
            await service.start()
            server = ScanServer(service)
            await server.start()
            try:
                reference = await service.scan("acme", DATA, deadline=10_000)
                async with await NetScanClient.connect(*server.address) as c:
                    with pytest.raises(DeadlineExceeded) as info:
                        await c.scan("acme", DATA, deadline=3.5)
                    error = info.value
                    rest = await c.scan(
                        "acme",
                        DATA[error.offset:],
                        deadline=10_000,
                        resume=error.checkpoint,
                    )
                return rows(reference), error, rest
            finally:
                await server.stop()
                await service.stop()

        reference, error, rest = run(scenario())
        assert 0 < error.offset < len(DATA)
        assert rows(error.reports) + rows(rest) == reference

    def test_stream_verb_keeps_server_side_cursor(self):
        async def scenario():
            service = await started_service(chunk_bytes=32)
            server = ScanServer(service)
            await server.start()
            try:
                reference = await service.scan("acme", DATA)
                collected = []
                async with await NetScanClient.connect(*server.address) as c:
                    half = len(DATA) // 2
                    first = await c.stream_scan("acme", "s1", DATA[:half])
                    collected += rows(first)
                    second = await c.stream_scan(
                        "acme", "s1", DATA[half:], final=True
                    )
                    collected += rows(second)
                return rows(reference), collected
            finally:
                await server.stop()
                await service.stop()

        reference, collected = run(scenario())
        assert collected == reference

    def test_health_and_register_verbs(self):
        async def scenario():
            service = await started_service()
            server = ScanServer(service)
            await server.start()
            try:
                async with await NetScanClient.connect(*server.address) as c:
                    assert await c.register("wire", ["emu"]) is True
                    outcome = await c.scan("wire", b"an emu!")
                    metrics = await c.health()
                return outcome, metrics
            finally:
                await server.stop()
                await service.stop()

        outcome, metrics = run(scenario())
        assert [r.report_code for r in outcome.reports] == ["emu"]
        assert metrics["completed"] >= 1
        assert "scan_workers" in metrics

    def test_unknown_op_is_protocol_error(self):
        async def scenario():
            service = await started_service()
            server = ScanServer(service)
            await server.start()
            try:
                async with await NetScanClient.connect(*server.address) as c:
                    with pytest.raises(ProtocolError):
                        await c._request("transmogrify", {})
            finally:
                await server.stop()
                await service.stop()

        run(scenario())

    def test_retrying_client_rides_overload(self):
        """``Overloaded`` crosses the wire retryable, so the stock
        ``RetryingClient`` wrapped around a ``NetScanClient`` retries
        through a full admission queue to completion."""
        import random

        async def scenario():
            service = ScanService(workers=1, max_queue=1, cache=False)
            service.register(
                "acme", PATTERNS, limits=TenantLimits(max_in_flight=64)
            )
            await service.start()
            service.set_scan_delay("acme", 0.005)
            server = ScanServer(service)
            await server.start()
            try:
                net, retrier = await connect_retrying(
                    *server.address, base_delay=0.005, rng=random.Random(0)
                )
                async with net:
                    outcomes = await asyncio.gather(*[
                        retrier.scan("acme", DATA) for _ in range(6)
                    ])
                return retrier, outcomes
            finally:
                await server.stop()
                await service.stop()

        retrier, outcomes = run(scenario())
        assert all(o.offset == len(DATA) for o in outcomes)

    def test_drain_verb_stops_service_and_server(self):
        async def scenario():
            service = await started_service()
            server = ScanServer(service)
            await server.start()
            async with await NetScanClient.connect(*server.address) as c:
                assert await c.drain(drain_timeout=1.0) is True
            for _ in range(100):
                if server._server is None:
                    break
                await asyncio.sleep(0.01)
            assert server._server is None
            with pytest.raises(ServiceClosed):
                await service.scan("acme", DATA)

        run(scenario())


class TestConnectionFailure:
    def test_idle_timeout_disconnects(self):
        async def scenario():
            service = await started_service()
            server = ScanServer(service, idle_timeout=0.05)
            await server.start()
            try:
                client = await NetScanClient.connect(*server.address)
                await client.ping()
                await asyncio.sleep(0.2)  # idle past the timeout
                with pytest.raises(ConnectionLost):
                    await client.scan("acme", DATA)
                await client.close()
            finally:
                await server.stop()
                await service.stop()

        run(scenario())

    def test_server_death_fails_inflight_retryably(self):
        async def scenario():
            service = await started_service(workers=1)
            server = ScanServer(service)
            await server.start()
            client = await NetScanClient.connect(*server.address)
            service.set_scan_delay("acme", 0.05)
            pending = asyncio.ensure_future(client.scan("acme", DATA))
            await asyncio.sleep(0.01)
            await server.stop()
            with pytest.raises(ConnectionLost) as info:
                await pending
            assert info.value.retryable
            await client.close()
            await service.stop()

        run(scenario())

    def test_request_after_close_raises(self):
        async def scenario():
            service = await started_service()
            server = ScanServer(service)
            await server.start()
            try:
                client = await NetScanClient.connect(*server.address)
                await client.close()
                with pytest.raises(ConnectionLost):
                    await client.ping()
            finally:
                await server.stop()
                await service.stop()

        run(scenario())


class TestServeSignals:
    """``repro serve --port``: graceful drain on SIGINT/SIGTERM with the
    documented exit codes (130 and 0)."""

    @staticmethod
    def _spawn_server(tmp_path, *extra):
        rules = tmp_path / "rules.txt"
        rules.write_text("cat\ndog+\n")
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", str(rules),
             "--port", "0", *extra],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=root,
        )
        # Warnings (e.g. artifact-cache quarantine notes) may precede
        # the banner on the merged stream; skip to the banner line.
        banner = ""
        for _ in range(50):
            banner = process.stdout.readline()
            if "serving tenant" in banner or not banner:
                break
        assert "serving tenant" in banner, banner
        # "... on 127.0.0.1:PORT (..." -> PORT
        address = banner.split(" on ", 1)[1].split(" ", 1)[0]
        port = int(address.rsplit(":", 1)[1])
        return process, port

    @pytest.mark.parametrize(
        "signum,expected_exit",
        [(signal.SIGTERM, 0), (signal.SIGINT, 130)],
    )
    def test_signal_drains_with_documented_exit(
        self, tmp_path, signum, expected_exit
    ):
        process, port = self._spawn_server(tmp_path)
        try:
            async def one_scan():
                async with await NetScanClient.connect(
                    "127.0.0.1", port, timeout=10
                ) as client:
                    return await client.scan("default", b"a cat appears")

            outcome = run(one_scan())
            assert [r.report_code for r in outcome.reports] == ["cat"]
            process.send_signal(signum)
            output, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == expected_exit, output
        assert signal.Signals(signum).name in output
        assert "drained: 1 completed" in output
