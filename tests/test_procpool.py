"""Multi-process scan execution plane (``repro.service.procpool``).

The load-bearing property is bit-identity: whatever the execution plane
— chunks scanned in the event loop (``scan_workers=0``) or dispatched
to a pool of worker processes (``scan_workers=N``), including deadline
interruption and mid-request resume — the report stream must be
byte-for-byte the same.  Supervision (SIGKILLed worker process →
retryable ``WorkerCrashed`` → pool respawn) mirrors the coroutine
contract, now across real process boundaries.
"""

from __future__ import annotations

import asyncio
import multiprocessing

import pytest

from repro.compiler import compile_automaton
from repro.compiler.cache import CompileCache
from repro.core.design import CA_P
from repro.engine import CacheAutomatonEngine
from repro.service import (
    DeadlineExceeded,
    ScanService,
    ServiceClosed,
    WorkerCrashed,
)
from repro.service.procpool import (
    ProcPoolScanExecutor,
    default_mp_method,
    worker_cache_spec,
)
from tests.conftest import chain_automaton

PATTERNS = ["cat", "dog+", "ba[rt]"]
DATA = b"the cat sat on the bar while the dog dogged a bat " * 4


def run(coro):
    return asyncio.run(coro)


class Ticker:
    """Fake monotonic clock: advances ``step`` seconds per reading."""

    def __init__(self, step: float = 0.0, start: float = 100.0):
        self.now = start
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def rows(outcome_or_reports):
    reports = getattr(outcome_or_reports, "reports", outcome_or_reports)
    return [(r.offset, r.ste_id, r.report_code) for r in reports]


async def scan_rows(data, *, backend=None, scan_workers=0, chunk_bytes=16,
                    clock=None, deadline=None):
    """One full scan through a throwaway service; returns report rows."""
    kwargs = {} if clock is None else {"clock": clock}
    service = ScanService(
        workers=1,
        scan_workers=scan_workers,
        chunk_bytes=chunk_bytes,
        cache=False,
        **kwargs,
    )
    service.register("acme", PATTERNS, backend=backend)
    await service.start()
    try:
        outcome = await service.scan("acme", data, deadline=deadline)
        return rows(outcome), service.metrics_snapshot()
    finally:
        await service.stop()


class TestDifferentialBitIdentity:
    @pytest.mark.parametrize("backend", [None, "lazy-dfa"])
    def test_procpool_matches_inloop(self, backend):
        """The acceptance-criteria differential: identical report rows
        across ``scan_workers in {0, 2}`` for both the engine-rebuild
        path (default backend) and the shared-tables fast path
        (lazy-dfa)."""
        inloop, _ = run(scan_rows(DATA, backend=backend, scan_workers=0))
        pooled, snapshot = run(
            scan_rows(DATA, backend=backend, scan_workers=2)
        )
        assert pooled == inloop
        assert len(inloop) > 0
        assert snapshot["scan_workers"] == 2

    @pytest.mark.parametrize("backend", [None, "lazy-dfa"])
    def test_deadline_interrupt_and_resume(self, backend):
        """A deadline fires mid-stream on the process-pool plane and the
        checkpoint resumes — chunks before and after the interruption
        may land on *different processes* — with the combined stream
        bit-identical to an uninterrupted in-loop scan."""
        reference, _ = run(scan_rows(DATA, backend=backend, scan_workers=0))
        clock = Ticker(step=1.0)

        async def scenario():
            service = ScanService(
                workers=1, scan_workers=2, chunk_bytes=16,
                clock=clock, cache=False,
            )
            service.register("acme", PATTERNS, backend=backend)
            await service.start()
            try:
                with pytest.raises(DeadlineExceeded) as info:
                    await service.scan("acme", DATA, deadline=3.5)
                error = info.value
                rest = await service.scan(
                    "acme",
                    DATA[error.offset:],
                    deadline=10_000,
                    resume=error.checkpoint,
                )
                return error, rest
            finally:
                await service.stop()

        error, rest = run(scenario())
        assert 0 < error.offset < len(DATA)
        assert rows(error.reports) + rows(rest) == reference


class TestSupervision:
    def test_crashed_process_is_typed_and_pool_respawns(self):
        async def scenario():
            service = ScanService(
                workers=1, scan_workers=2, chunk_bytes=16, cache=False
            )
            service.register("acme", PATTERNS)
            await service.start()
            try:
                before = rows(await service.scan("acme", DATA))
                pid = service.crash_scan_process()
                assert pid is not None
                with pytest.raises(WorkerCrashed) as info:
                    await service.scan("acme", DATA)
                assert info.value.retryable
                after = rows(await service.scan("acme", DATA))
                return before, after, service.metrics_snapshot()
            finally:
                await service.stop()

        before, after, snapshot = run(scenario())
        assert after == before
        assert snapshot["pool_respawns"] == 1

    def test_crash_does_not_charge_the_breaker(self):
        """A dead process is an infrastructure fault, not evidence the
        tenant's primary backend is bad: the breaker stays closed."""

        async def scenario():
            service = ScanService(
                workers=1, scan_workers=1, breaker_threshold=1, cache=False
            )
            service.register("acme", PATTERNS)
            await service.start()
            try:
                await service.scan("acme", DATA)
                service.crash_scan_process()
                with pytest.raises(WorkerCrashed):
                    await service.scan("acme", DATA)
                return service.breaker_state("acme")
            finally:
                await service.stop()

        assert run(scenario()) == "closed"


class TestLifecycle:
    def test_stop_closes_pool_and_shared_tables(self):
        async def scenario():
            service = ScanService(
                workers=1, scan_workers=2, chunk_bytes=16, cache=False
            )
            service.register("acme", PATTERNS, backend="lazy-dfa")
            await service.start()
            await service.scan("acme", DATA)
            state = service._tenant("acme")
            assert state.shared is not None  # fast path published
            await service.stop()
            assert state.shared is None
            with pytest.raises(ServiceClosed):
                await service.scan("acme", DATA)

        run(scenario())

    def test_hot_reload_swaps_spec_and_shared_block(self):
        """Re-registering with new patterns drops the cached worker spec
        and the published shared-tables block; the next pooled scan
        serves the *new* pattern set."""

        async def scenario():
            service = ScanService(
                workers=1, scan_workers=2, chunk_bytes=16, cache=False
            )
            service.register("acme", PATTERNS, backend="lazy-dfa")
            await service.start()
            try:
                before = await service.scan("acme", b"cat and emu")
                state = service._tenant("acme")
                first_spec = state.worker_spec
                first_shared = state.shared
                assert first_spec is not None and first_shared is not None
                assert service.register("acme", ["emu"], backend="lazy-dfa")
                assert state.worker_spec is None and state.shared is None
                after = await service.scan("acme", b"cat and emu")
                assert state.worker_spec is not first_spec
                return before, after
            finally:
                await service.stop()

        before, after = run(scenario())
        assert [r.report_code for r in before.reports] == ["cat"]
        assert [r.report_code for r in after.reports] == ["emu"]

    def test_fallback_tier_scans_in_loop(self):
        """While the breaker is open the golden-fallback tier must not
        depend on the process pool: fallback scans dispatch zero chunks
        to workers."""
        from repro.errors import SimulationError

        async def scenario():
            service = ScanService(
                workers=1, scan_workers=1, breaker_threshold=1, cache=False
            )
            service.register("acme", PATTERNS)
            await service.start()
            try:
                service.inject_scan_faults("acme", 1, SimulationError("boom"))
                with pytest.raises(SimulationError):
                    await service.scan("acme", DATA)
                assert service.breaker_state("acme") == "open"
                dispatched = service._procpool.dispatched
                outcome = await service.scan("acme", DATA)
                assert outcome.fallback
                assert service._procpool.dispatched == dispatched
            finally:
                await service.stop()

        run(scenario())


class TestExecutorUnit:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ProcPoolScanExecutor(0)

    def test_default_mp_method_is_known(self):
        assert default_mp_method() in ("fork", "spawn")

    def test_worker_cache_spec_forms(self, tmp_path):
        cache = CompileCache(tmp_path / "artifacts")
        spec = worker_cache_spec(cache)
        # A live cache collapses to its *root* directory: a worker
        # building CompileCache(spec) lands on the same versioned
        # subdirectory.
        assert spec == str(tmp_path / "artifacts")
        assert CompileCache(spec).directory == cache.directory
        for passthrough in ("auto", True, False, None):
            assert worker_cache_spec(passthrough) == passthrough


# -- cross-process artifact-cache contention (satellite) --------------------

_CONTENTION_PATTERNS_SIZE = 300


def _contention_build(slot, directory, barrier, queue):
    """Child-process body: cold-start an engine against the shared cache
    directory (whose artifact has been corrupted) and report the landing
    tier plus scan rows.  Module-level so it works under any mp start
    method."""
    automaton = chain_automaton(
        _CONTENTION_PATTERNS_SIZE, seed=3, automaton_id="contention"
    )
    cache = CompileCache(directory)
    barrier.wait()
    engine = CacheAutomatonEngine(automaton, cache=cache)
    health = engine.health()
    data = bytes(range(256)) * 20
    queue.put((
        slot,
        health.tier,
        health.backend,
        [(m.end, m.state, m.rule) for m in engine.scan(data)],
    ))


class TestCrossProcessCacheContention:
    def test_corrupt_artifact_race_lands_both_processes_healthy(
        self, tmp_path
    ):
        """PR 8 proved the warm-cache → quarantine → recompile chain is
        safe under *thread* contention; the process pool makes the same
        race real across process boundaries.  Two worker processes
        cold-start the same fingerprint against one cache directory
        holding a corrupt artifact: whatever interleaving they take,
        both must land on a healthy (non-golden) tier with bit-identical
        scan results."""
        directory = str(tmp_path / "shared")
        automaton = chain_automaton(
            _CONTENTION_PATTERNS_SIZE, seed=3, automaton_id="contention"
        )
        seeder = CompileCache(directory)
        seeder.store_mapping(compile_automaton(automaton, CA_P))
        artifact = next((tmp_path / "shared").rglob("*.npz"))
        artifact.write_bytes(b"garbage, not an npz archive")

        context = multiprocessing.get_context(default_mp_method())
        barrier = context.Barrier(2)
        queue = context.Queue()
        children = [
            context.Process(
                target=_contention_build,
                args=(slot, directory, barrier, queue),
            )
            for slot in range(2)
        ]
        for child in children:
            child.start()
        results = {}
        for _ in children:
            slot, tier, backend, scan_rows_ = queue.get(timeout=120)
            results[slot] = (tier, backend, scan_rows_)
        for child in children:
            child.join(timeout=120)
            assert child.exitcode == 0

        assert set(results) == {0, 1}
        for tier, backend, _ in results.values():
            assert tier != "golden-fallback"
            assert backend != "golden-interpreter"
        assert results[0][2] == results[1][2]
        # Whichever process re-stored the artifact, a later cold start
        # gets a clean warm hit.
        relieved = CacheAutomatonEngine(
            automaton, cache=CompileCache(directory)
        )
        assert relieved.cache_info()["hits"] == 1
        assert relieved.health().tier == "warm-cache"
