"""The eager-determinisation baseline backend: a table-driven DFA walk.

Wraps :class:`~repro.baselines.cpu.DfaCpuEngine` behind the backend
protocol, with a resume-capable scan loop over the dense transition
table (the DFA state *is* the checkpoint).  Determinisation collapses
which rule fired into a single accepting bit, so reports carry match
offsets only — ``capabilities().report_identity`` is False and the
differential matrix compares this backend on offsets alone, exactly the
comparison the paper's CPU-baseline numbers rest on.

Subset construction is *eager*: the whole DFA is built before the first
symbol, which blows up on real rule sets (PowerEN exceeds any sane state
cap).  It is therefore registered as ``eager-dfa``; the ``cpu-dfa``
name — and the default CPU-DFA strategy — now belong to the lazy-DFA
backend (:mod:`repro.backends.lazydfa`), which determinises on demand
and never aborts.
"""

from __future__ import annotations

from typing import List, Optional

from repro.backends.artifact import CompiledArtifact
from repro.backends.base import (
    AutomatonBackend,
    BackendCapabilities,
    BackendResult,
)
from repro.backends.registry import register_backend
from repro.backends.validation import as_symbols
from repro.baselines.cpu import DfaCpuEngine
from repro.errors import DeterminisationExplosion
from repro.sim.golden import Checkpoint, Report, RunStats

#: STE id stamped on every report (determinisation erased the real one).
REPORT_ID = "eager-dfa"

_CAPABILITIES = BackendCapabilities(
    resume=True,
    batch=False,
    activity_profile=False,
    report_identity=False,
    fault_events=False,
    description=(
        "determinised table-driven DFA baseline; match offsets only "
        "(rule identity is erased by subset construction)"
    ),
)


@register_backend("eager-dfa", aliases=("eager",))
class CpuDfaBackend(AutomatonBackend):
    """Execution as one dense-table DFA transition per input byte."""

    def __init__(self, engine: DfaCpuEngine):
        self.engine = engine

    @classmethod
    def from_artifact(
        cls,
        artifact: CompiledArtifact,
        *,
        minimize: bool = True,
        max_states: int = 200_000,
        **_options,
    ) -> "CpuDfaBackend":
        """Determinise the artifact's automaton into a scanning DFA.

        Raises :class:`~repro.errors.DeterminisationExplosion` when
        subset construction blows past ``max_states`` — the blow-up
        itself is one of the paper's motivating observations, so it
        surfaces rather than being silently capped.  The error is
        attributed to a connected component: each CC is probed with the
        classifier's bounded subset closure, and the id and state
        estimate of the worst offender ride on the exception (the
        engine's fallback chain records them as a typed health event).
        """
        try:
            return cls(
                DfaCpuEngine(
                    artifact.automaton,
                    minimize=minimize,
                    max_states=max_states,
                )
            )
        except DeterminisationExplosion as error:
            if error.component_id is not None:
                raise
            raise cls._attribute_explosion(
                artifact.automaton, max_states, error
            ) from error

    @staticmethod
    def _attribute_explosion(
        automaton, max_states: int, error: DeterminisationExplosion
    ) -> DeterminisationExplosion:
        """Pin the blow-up on a component via per-CC closure probes."""
        from repro.automata.components import connected_components
        from repro.compiler.classify import probe_subset_closure

        worst_id: Optional[str] = None
        worst_rows = 0
        for members in connected_components(automaton):
            rows, aborted, _classes = probe_subset_closure(
                automaton, members, budget=max_states
            )
            estimate = rows if not aborted else max_states
            if estimate > worst_rows:
                worst_rows = estimate
                worst_id = members[0]
        return DeterminisationExplosion(
            f"subset construction exceeded {max_states} states "
            f"(worst component {worst_id!r}, "
            f"~{worst_rows} subset-closure rows)",
            component_id=worst_id,
            state_estimate=max(worst_rows, error.state_estimate),
            max_states=max_states,
        )

    def capabilities(self) -> BackendCapabilities:
        return _CAPABILITIES

    def scan(
        self,
        data: bytes,
        *,
        collect_reports: bool = True,
        resume: Optional[Checkpoint] = None,
    ) -> BackendResult:
        """One table load per symbol; golden-convention report offsets.

        The DFA enters an accepting state *after* consuming the matching
        symbol, so the report offset is the 0-based index of that symbol
        — identical to the golden interpreter's convention.  On resume
        the checkpoint's ``active_state_vector`` carries the DFA state.
        """
        symbols = as_symbols(data)
        dfa = self.engine.dfa
        if resume is None:
            state = dfa.start
            base_offset = 0
        else:
            state = int(resume.active_state_vector)
            base_offset = resume.symbols_processed
        table = dfa.table
        accepting = dfa.accepting
        reports: List[Report] = []
        report_count = 0
        for index, symbol in enumerate(symbols.tolist()):
            state = int(table[state, symbol])
            if accepting[state]:
                report_count += 1
                if collect_reports:
                    reports.append(Report(base_offset + index, REPORT_ID))
        checkpoint = Checkpoint(
            symbols_processed=base_offset + len(symbols),
            active_state_vector=state,
            start_of_data_pending=False,
        )
        stats = RunStats(symbols_processed=len(symbols))
        return self._basic_result(
            reports,
            symbols=len(symbols),
            report_count=report_count,
            checkpoint=checkpoint,
            stats=stats,
        )
