"""The default backend: the packed-bitset mapped-kernel simulator.

Wraps :class:`~repro.sim.functional.MappedSimulator` — the
cycle-functional model of the compiled placement — behind the
:class:`~repro.backends.base.AutomatonBackend` protocol.  This is the
only backend with the full capability set: checkpointed resume, native
multi-stream batching, and the complete energy-model activity profile
(partition activations, G1/G4 switch crossings, CBOX output buffer).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.backends.artifact import CompiledArtifact
from repro.backends.base import (
    AutomatonBackend,
    BackendCapabilities,
    BackendResult,
)
from repro.backends.registry import register_backend
from repro.backends.validation import require_resume_count
from repro.sim.functional import MappedRunResult, MappedSimulator
from repro.sim.golden import Checkpoint

_CAPABILITIES = BackendCapabilities(
    resume=True,
    batch=True,
    activity_profile=True,
    report_identity=True,
    fault_events=False,
    description=(
        "packed-bitset simulation of the compiled mapping; full "
        "activity/energy accounting, resume, and batched multi-stream "
        "scanning"
    ),
)


def _to_result(run: MappedRunResult) -> BackendResult:
    return BackendResult(
        reports=run.reports,
        profile=run.profile,
        checkpoint=run.checkpoint,
        stats=run.stats,
        output_buffer=run.output_buffer,
    )


@register_backend("packed-kernel", aliases=("kernel", "mapped"))
class PackedKernelBackend(AutomatonBackend):
    """Execution on the packed uint64 kernel of the mapped simulator."""

    consumes_kernel_tables = True

    def __init__(self, simulator: MappedSimulator):
        self.simulator = simulator

    @classmethod
    def from_artifact(
        cls, artifact: CompiledArtifact, *, simulator_cls=None, **_options
    ) -> "PackedKernelBackend":
        """Build from the artifact's kernel tables when present (the warm
        path — no per-state Python loops), else from the mapping.

        ``simulator_cls`` substitutes the simulator implementation (the
        degradation tests drive this); it must match the
        :class:`MappedSimulator` construction surface.
        """
        simulator_cls = simulator_cls or MappedSimulator
        if artifact.kernel_tables:
            simulator = simulator_cls.from_cached(
                artifact.mapping, artifact.kernel_tables
            )
        else:
            simulator = simulator_cls(artifact.mapping)
        return cls(simulator)

    def capabilities(self) -> BackendCapabilities:
        return _CAPABILITIES

    def packed_tables(self) -> dict:
        """The simulator's kernel tables, for persisting into the cache."""
        return self.simulator.packed_tables()

    def scan(
        self,
        data: bytes,
        *,
        collect_reports: bool = True,
        resume: Optional[Checkpoint] = None,
    ) -> BackendResult:
        return _to_result(
            self.simulator.run(
                data, collect_reports=collect_reports, resume=resume
            )
        )

    def scan_many(
        self,
        streams: Sequence[bytes],
        *,
        resumes: Optional[Sequence[Optional[Checkpoint]]] = None,
        collect_reports: bool = True,
    ) -> List[BackendResult]:
        streams = list(streams)
        resumes = require_resume_count(resumes, len(streams))
        runs = self.simulator.run_many(
            streams, resumes=resumes, collect_reports=collect_reports
        )
        return [_to_result(run) for run in runs]
