"""The hybrid backend: per-component substrate partitioning.

The cache-automaton design routes each part of the workload to the
substrate it fits; this backend does the same in software.  The
automaton's weakly connected components are classified by the
per-component cost model (:mod:`repro.compiler.classify`) — DFA-friendly
CCs (small subset closure) onto the ``lazy-dfa`` transition cache,
subset-hostile CCs (the ones that abort eager determinisation or thrash
the lazy cache) onto the ``packed-kernel`` — and one *sub-artifact* per
substrate group is compiled from the induced sub-automaton (CCs share no
edges, so any union of them is edge-closed).  A scan runs every group
over the same input and merges the report streams in offset order; the
merged stream is bit-identical to running the whole automaton on a
single identity-preserving backend, because each report is produced by
exactly one CC and CCs do not interact.

Checkpoints compose: a :class:`HybridCheckpoint` is the tuple of
per-group checkpoints (plus the shared symbol cursor), so chunked
``stream``/resume scanning and batched ``scan_many`` work exactly as on
a single backend.  Degradation is *per group*: a group whose backend
cannot be built, or whose scan raises, falls back to the golden
interpreter for that group alone — the other groups stay on their fast
substrates — and the event is surfaced through :attr:`health_events`.

Options accepted by ``from_artifact`` (unknown options are ignored, per
the registry contract): ``stride``/``jobs``/``split_jobs``/``max_states``
and the rest of the lazy-DFA surface are forwarded to every group
backend (each ignores what it does not understand), so e.g. a tenant's
``dfa_max_states`` budget bounds each lazy group's transition cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.automata.components import extract_component
from repro.backends.artifact import CompiledArtifact
from repro.backends.base import (
    AutomatonBackend,
    BackendCapabilities,
    BackendResult,
    BoundedEventLog,
)
from repro.backends.registry import create_backend, register_backend
from repro.backends.validation import require_resume_count
from repro.compiler.classify import (
    ComponentClassification,
    CostModel,
    classify_automaton,
)
from repro.errors import AutomatonError, SimulationError
from repro.sim.golden import Checkpoint, Report, RunStats

#: Per-group fallback substrate when the assigned backend fails.
FALLBACK_SUBSTRATE = "golden-interpreter"


@dataclass(frozen=True)
class HybridCheckpoint(Checkpoint):
    """A hybrid stream cursor: the tuple of per-group checkpoints.

    Subclasses :class:`~repro.sim.golden.Checkpoint` so it flows through
    every checkpoint-agnostic layer (engine stream scanners, the service
    deadline machinery, which reads only ``symbols_processed``);
    ``active_state_vector`` is unused (the real state lives in
    ``group_checkpoints``) and kept 0.
    """

    group_checkpoints: Tuple[Optional[Checkpoint], ...] = ()


@dataclass
class HybridGroup:
    """One substrate group: contiguous CCs executing on one backend."""

    index: int
    requested: str
    backend_name: str
    backend: AutomatonBackend
    artifact: CompiledArtifact
    components: Tuple[int, ...]
    members: Tuple[str, ...]


_CAPABILITIES_DESCRIPTION = (
    "pattern-structure-aware partitioned execution: each connected "
    "component runs on the substrate the per-CC cost model assigns "
    "(lazy-dfa for DFA-friendly CCs, packed-kernel for subset-hostile "
    "ones); report streams merge in offset order, bit-identical to a "
    "single-backend scan"
)


@register_backend("hybrid")
class HybridBackend(AutomatonBackend):
    """Partitioned execution across per-component substrate groups."""

    # Group backends rebuild their kernels from per-group sub-mappings;
    # the whole-automaton kernel tables in the artifact are never read,
    # so a construction failure never indicts the cached artifact.
    consumes_kernel_tables = False

    def __init__(
        self,
        artifact: CompiledArtifact,
        classification: ComponentClassification,
        groups: List[HybridGroup],
        health_events: Optional[BoundedEventLog] = None,
    ):
        self.artifact = artifact
        self.classification = classification
        self.groups = groups
        self._health_events = health_events or BoundedEventLog()
        arrays = artifact.automaton.edge_index_arrays()
        #: Global report-merge order: position in the automaton's sorted
        #: state order, so merged streams are deterministic and offset-
        #: ordered regardless of which group produced each report.
        self._order: Dict[str, int] = {
            ste_id: position for position, ste_id in enumerate(arrays.ids)
        }

    # -- construction ------------------------------------------------------

    @classmethod
    def from_artifact(
        cls,
        artifact: CompiledArtifact,
        *,
        classification: Optional[ComponentClassification] = None,
        cost_model: Optional[CostModel] = None,
        probe_budget: Optional[int] = None,
        **options,
    ) -> "HybridBackend":
        """Partition the artifact's automaton and build one backend per
        substrate group.

        The per-CC classification comes from, in order: the explicit
        ``classification`` argument, the artifact's ``classify_tables``
        (the warm path — no re-probing), or a fresh
        :func:`~repro.compiler.classify.classify_automaton` run.  All
        remaining ``options`` are forwarded to every group backend;
        each group ignores what it does not understand.
        """
        events = BoundedEventLog()
        automaton = artifact.automaton
        if classification is None and artifact.classify_tables:
            try:
                classification = ComponentClassification.from_tables(
                    dict(artifact.classify_tables), automaton
                )
            except AutomatonError as error:
                events.append(
                    f"cached classification tables rejected ({error}); "
                    "reclassifying"
                )
        if classification is None:
            classification = classify_automaton(
                automaton,
                cost_model=cost_model,
                probe_budget=probe_budget,
            )
        from repro.compiler import compile_automaton

        groups: List[HybridGroup] = []
        for group_index, (substrate, component_indexes) in enumerate(
            classification.groups()
        ):
            members: List[str] = []
            for component in component_indexes:
                members.extend(classification.components[component])
            sub_automaton = extract_component(
                automaton,
                members,
                automaton_id=(
                    f"{automaton.automaton_id}.hybrid{group_index}"
                ),
            )
            mapping = compile_automaton(sub_automaton, artifact.design)
            sub_artifact = CompiledArtifact.from_mapping(mapping)
            backend_name = substrate
            try:
                backend = create_backend(substrate, sub_artifact, **options)
            except Exception as error:  # noqa: BLE001 - degrade per group
                events.append(
                    f"hybrid group {group_index} ({substrate}, "
                    f"{len(members)} states) failed to build "
                    f"({type(error).__name__}: {error}); "
                    f"falling back to {FALLBACK_SUBSTRATE}"
                )
                backend_name = FALLBACK_SUBSTRATE
                backend = create_backend(FALLBACK_SUBSTRATE, sub_artifact)
            groups.append(
                HybridGroup(
                    index=group_index,
                    requested=substrate,
                    backend_name=backend_name,
                    backend=backend,
                    artifact=sub_artifact,
                    components=tuple(component_indexes),
                    members=tuple(members),
                )
            )
        if not groups:
            raise SimulationError(
                "hybrid backend needs at least one non-empty component group"
            )
        return cls(artifact, classification, groups, events)

    # -- introspection -----------------------------------------------------

    def capabilities(self) -> BackendCapabilities:
        placement = ", ".join(
            f"group{group.index}={group.backend_name}"
            f"({len(group.components)} CCs, {len(group.members)} states)"
            for group in self.groups
        )
        return BackendCapabilities(
            resume=True,
            batch=True,
            activity_profile=False,
            report_identity=True,
            fault_events=False,
            split=False,
            description=f"{_CAPABILITIES_DESCRIPTION}; placement: {placement}",
        )

    def classify_tables(self) -> Dict[str, object]:
        """The classification as artifact payload tables (cache path)."""
        return self.classification.to_tables()

    def placement(self) -> List[Dict[str, object]]:
        """One row per substrate group, for health/CLI/report surfaces."""
        return [
            {
                "group": group.index,
                "backend": group.backend_name,
                "requested": group.requested,
                "components": len(group.components),
                "states": len(group.members),
            }
            for group in self.groups
        ]

    @property
    def health_events(self) -> Tuple[str, ...]:
        """Per-group build/scan degradation notices (bounded log)."""
        events = list(self._health_events)
        for group in self.groups:
            events.extend(getattr(group.backend, "health_events", ()))
        return tuple(events)

    @property
    def health_events_dropped(self) -> int:
        dropped = self._health_events.dropped
        for group in self.groups:
            dropped += int(
                getattr(group.backend, "health_events_dropped", 0)
            )
        return dropped

    # -- scanning ----------------------------------------------------------

    def _group_resumes(
        self, resume: Optional[Checkpoint]
    ) -> List[Optional[Checkpoint]]:
        if resume is None:
            return [None] * len(self.groups)
        if not isinstance(resume, HybridCheckpoint):
            raise SimulationError(
                "hybrid scans resume from a HybridCheckpoint produced by "
                f"this backend, got {type(resume).__name__}"
            )
        if len(resume.group_checkpoints) != len(self.groups):
            raise SimulationError(
                f"checkpoint carries {len(resume.group_checkpoints)} group "
                f"cursors for {len(self.groups)} groups"
            )
        return list(resume.group_checkpoints)

    def _degrade_group(self, group: HybridGroup, error: Exception) -> None:
        """Swap one group onto the golden interpreter after a scan error."""
        self._health_events.append(
            f"hybrid group {group.index} ({group.backend_name}, "
            f"{len(group.members)} states) scan failed "
            f"({type(error).__name__}: {error}); "
            f"group degraded to {FALLBACK_SUBSTRATE}"
        )
        group.backend = create_backend(FALLBACK_SUBSTRATE, group.artifact)
        group.backend_name = FALLBACK_SUBSTRATE

    def _scan_group(
        self,
        group: HybridGroup,
        data: bytes,
        resume: Optional[Checkpoint],
        collect_reports: bool,
    ) -> BackendResult:
        try:
            return group.backend.scan(
                data, collect_reports=collect_reports, resume=resume
            )
        except Exception as error:  # noqa: BLE001 - degrade per group
            if group.backend_name == FALLBACK_SUBSTRATE:
                raise
            self._degrade_group(group, error)
            return group.backend.scan(
                data, collect_reports=collect_reports, resume=resume
            )

    def _merge(
        self,
        group_results: Sequence[BackendResult],
        data_symbols: int,
        collect_reports: bool,
    ) -> BackendResult:
        reports: List[Report] = []
        report_count = 0
        checkpoints: List[Optional[Checkpoint]] = []
        symbols_processed = 0
        sod_pending = False
        for result in group_results:
            report_count += result.profile.reports
            if collect_reports:
                reports.extend(result.reports)
            checkpoints.append(result.checkpoint)
            if result.checkpoint is not None:
                symbols_processed = result.checkpoint.symbols_processed
                sod_pending = (
                    sod_pending or result.checkpoint.start_of_data_pending
                )
        order = self._order
        reports.sort(
            key=lambda report: (
                report.offset,
                order.get(report.ste_id, len(order)),
            )
        )
        checkpoint = HybridCheckpoint(
            symbols_processed=symbols_processed,
            active_state_vector=0,
            start_of_data_pending=sod_pending,
            group_checkpoints=tuple(checkpoints),
        )
        return self._basic_result(
            reports,
            symbols=data_symbols,
            report_count=report_count,
            checkpoint=checkpoint,
            stats=RunStats(symbols_processed=data_symbols),
        )

    def scan(
        self,
        data: bytes,
        *,
        collect_reports: bool = True,
        resume: Optional[Checkpoint] = None,
    ) -> BackendResult:
        """Scan every group over ``data`` and merge in offset order."""
        resumes = self._group_resumes(resume)
        results = [
            self._scan_group(group, data, group_resume, collect_reports)
            for group, group_resume in zip(self.groups, resumes)
        ]
        return self._merge(results, len(data), collect_reports)

    def scan_many(
        self,
        streams: Sequence[bytes],
        *,
        resumes: Optional[Sequence[Optional[Checkpoint]]] = None,
        collect_reports: bool = True,
    ) -> List[BackendResult]:
        """Batched scan: each group batches natively across the streams
        (the lazy-DFA group shards across processes, the packed group
        advances all streams through one kernel), then per-stream merge.
        """
        streams = list(streams)
        resumes = require_resume_count(resumes, len(streams))
        per_group_resumes = [
            self._group_resumes(resume) for resume in resumes
        ]
        group_results: List[List[BackendResult]] = []
        for group_position, group in enumerate(self.groups):
            group_cursor = [
                cursors[group_position] for cursors in per_group_resumes
            ]
            try:
                results = group.backend.scan_many(
                    streams,
                    resumes=group_cursor,
                    collect_reports=collect_reports,
                )
            except Exception as error:  # noqa: BLE001 - degrade per group
                if group.backend_name == FALLBACK_SUBSTRATE:
                    raise
                self._degrade_group(group, error)
                results = group.backend.scan_many(
                    streams,
                    resumes=group_cursor,
                    collect_reports=collect_reports,
                )
            group_results.append(results)
        return [
            self._merge(
                [results[stream] for results in group_results],
                len(streams[stream]),
                collect_reports,
            )
            for stream in range(len(streams))
        ]
