"""The lazy-DFA backend: on-demand determinisation of the packed kernel.

This is the default DFA strategy (it owns the ``cpu-dfa``/``cpu``/``dfa``
aliases): instead of eagerly determinising the automaton — which blows
up on real rule sets like PowerEN — it hash-conses the packed kernel's
activation rows into DFA states *as the input visits them*
(:class:`~repro.sim.lazydfa.LazyDfaKernel`), so a warm transition costs
two list indexes and match/report semantics stay bit-identical to the
golden interpreter, full STE identity included.  The eager subset-
construction baseline remains available as ``eager-dfa``.

``scan_many`` additionally shards streams across a process pool
(:mod:`repro.sim.shard`): the kernel's packed tables and the warm DFA
transition tables are published once through shared memory, workers
rebuild zero-copy and return raw report events, and the parent
materialises :class:`Report` objects — so results are deterministic and
independent of the worker count.  Control the pool with the ``jobs=``
backend option (engine: ``backend_options={"jobs": N}``) or
``REPRO_SCAN_JOBS``; pool-level failures degrade to the serial loop
with a :class:`~repro.errors.DegradedModeWarning`.

The ``stride=`` option (or ``REPRO_STRIDE``) turns on k-stride
execution: the DFA consumes k bytes per cached transition over a
CAMA-style compressed class alphabet
(:mod:`repro.automata.stride`), with reports still bit-identical to
the golden run.  Striding composes with sharding — the compressed
alphabet ships through the same shared-memory block.

``scan`` can additionally *split one stream* across a worker pool
(:mod:`repro.sim.split`, SFA-style): the parent scans the leading
chunk on its warm DFA while workers build entry-state -> (exit state,
deferred events) mappings for the rest, and a left-to-right join
replays the true event stream — bit-identical to the serial scan at
every worker count and stride, STE identity and resume cursor
included.  Control it with the ``split_jobs=`` backend option (or
``REPRO_SPLIT_JOBS``); a chunk whose entry-state frontier explodes is
rescanned serially and surfaced through :attr:`health_events`, and a
pool-level failure degrades the whole call to the serial loop with a
:class:`~repro.errors.DegradedModeWarning`.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.automata.stride import StrideAlphabet, resolve_stride
from repro.backends.artifact import CompiledArtifact
from repro.backends.base import (
    AutomatonBackend,
    BackendCapabilities,
    BackendResult,
    BoundedEventLog,
)
from repro.backends.registry import register_backend
from repro.backends.validation import require_resume_count
from repro.errors import DegradedModeWarning
from repro.sim.functional import MappedSimulator
from repro.sim.golden import Checkpoint, Report, RunStats
from repro.sim.kernel import as_symbols
from repro.sim.lazydfa import LazyDfaKernel, merge_cache_infos
from repro.sim.shard import (
    RawScanResult,
    resolve_scan_jobs,
    scan_streams_sharded,
)
from repro.sim.split import (
    SPLIT_MIN_CHUNK,
    SfaKernel,
    effective_split_jobs,
    resolve_split_jobs,
    scan_stream_split,
)

_CAPABILITIES = BackendCapabilities(
    resume=True,
    batch=True,
    activity_profile=False,
    report_identity=True,
    fault_events=False,
    split=True,
    description=(
        "lazy-DFA over the packed kernel: activation rows hash-consed "
        "into DFA states on demand (RE2-style bounded transition cache, "
        "flush on overflow), bit-identical reports with full STE "
        "identity; optional k-stride execution over a compressed class "
        "alphabet (stride= / REPRO_STRIDE); scan_many shards streams "
        "across a process pool over shared-memory tables; scan splits "
        "one stream across workers via SFA state mappings "
        "(split_jobs= / REPRO_SPLIT_JOBS)"
    ),
)


@register_backend("lazy-dfa", aliases=("cpu-dfa", "cpu", "dfa"))
class LazyDfaBackend(AutomatonBackend):
    """Execution as lazily-determinised transitions over the kernel."""

    consumes_kernel_tables = True

    def __init__(
        self,
        simulator: MappedSimulator,
        *,
        jobs: Union[int, str, None] = None,
        max_states: Optional[int] = None,
        stride: Union[int, str, None] = None,
        alphabet: Optional[StrideAlphabet] = None,
        split_jobs: Union[int, str, None] = None,
        split_min_chunk: int = SPLIT_MIN_CHUNK,
        split_slot_limit: Optional[int] = None,
    ):
        self.simulator = simulator
        self.dfa = LazyDfaKernel(
            simulator.kernel,
            max_states=max_states,
            stride=stride,
            alphabet=alphabet,
        )
        self._jobs = jobs
        self._split_jobs = split_jobs
        self._split_min_chunk = max(1, int(split_min_chunk))
        self._split_slot_limit = split_slot_limit
        #: Master SFA mapping automaton for split scanning, built on
        #: first use; each join folds the workers' newly-discovered
        #: states back in, so later calls ship a warmer cache.
        self._sfa: Optional[SfaKernel] = None
        #: Aggregate of worker-process DFA/SFA cache counters across
        #: every sharded and split scan (see :meth:`worker_cache_info`).
        self._worker_totals: Dict[str, int] = {"workers": 0}
        self._health_events = BoundedEventLog()
        #: reporting-row bytes -> ((ste_id, report_code), ...) memo.
        self._idents: Dict[bytes, Tuple[Tuple[str, Optional[str]], ...]] = {}

    @classmethod
    def from_artifact(
        cls,
        artifact: CompiledArtifact,
        *,
        simulator_cls=None,
        jobs: Union[int, str, None] = None,
        max_states: Optional[int] = None,
        stride: Union[int, str, None] = None,
        split_jobs: Union[int, str, None] = None,
        split_min_chunk: int = SPLIT_MIN_CHUNK,
        split_slot_limit: Optional[int] = None,
        **_options,
    ) -> "LazyDfaBackend":
        """Build over the artifact's kernel tables when present (warm
        path), else from the mapping; no subset construction ever runs.

        ``jobs`` presets the ``scan_many`` worker count (``None`` defers
        to ``REPRO_SCAN_JOBS``/CPU count at scan time); ``split_jobs``
        presets the single-stream split worker count (``None`` defers to
        ``REPRO_SPLIT_JOBS``, default serial); ``max_states`` overrides
        the DFA cache's state budget.  ``stride`` resolution: explicit
        argument, else the stride the artifact was compiled with, else
        ``REPRO_STRIDE``, else 1.  When the resolved stride matches the
        artifact's cached ``stride_tables``, the compressed alphabet is
        rebuilt from the cache instead of rederived.
        """
        simulator_cls = simulator_cls or MappedSimulator
        if artifact.kernel_tables:
            simulator = simulator_cls.from_cached(
                artifact.mapping, artifact.kernel_tables
            )
        else:
            simulator = simulator_cls(artifact.mapping)
        if stride is None and artifact.stride != 1:
            stride = artifact.stride
        stride = resolve_stride(stride)
        alphabet = None
        if stride != 1 and stride == artifact.stride and artifact.stride_tables:
            alphabet = StrideAlphabet.from_tables(dict(artifact.stride_tables))
        return cls(
            simulator,
            jobs=jobs,
            max_states=max_states,
            stride=stride,
            alphabet=alphabet,
            split_jobs=split_jobs,
            split_min_chunk=split_min_chunk,
            split_slot_limit=split_slot_limit,
        )

    def capabilities(self) -> BackendCapabilities:
        return _CAPABILITIES

    def packed_tables(self) -> dict:
        """The simulator's kernel tables, for persisting into the cache."""
        return self.simulator.packed_tables()

    def share_tables(self) -> Dict[str, np.ndarray]:
        """Everything a worker process needs to rebuild this backend.

        The union of the kernel's packed tables and the lazy DFA's
        :meth:`~repro.sim.lazydfa.LazyDfaKernel.export_tables` (warm
        transition tables plus the compressed stride alphabet when
        strided) — publish it once through
        :class:`~repro.sim.shard.SharedTables` and workers rebuild
        zero-copy with ``BitsetKernel.from_packed`` + ``seed``.
        """
        tables = dict(self.simulator.kernel.packed_tables())
        tables.update(self.dfa.export_tables())
        return tables

    def materialise_raw(
        self, raw: RawScanResult, base_offset: int, collect_reports: bool
    ) -> BackendResult:
        """Turn a worker's :data:`~repro.sim.shard.RawScanResult` into a
        full :class:`~repro.backends.base.BackendResult` with parent-side
        STE identity (raw reporting-row bytes -> ``(ste_id,
        report_code)`` via the memoised ident table), a global-offset
        checkpoint, and the same report ordering as a serial scan."""
        return self._materialise(raw, base_offset, collect_reports)

    def cache_info(self) -> Dict[str, int]:
        """The DFA transition cache's effectiveness counters."""
        return self.dfa.cache_info()

    def worker_cache_info(self) -> Dict[str, int]:
        """Aggregate worker-process cache counters (sharded + split).

        Per-worker lazy-DFA/SFA ``cache_info`` dicts come back with
        every fan-out result and are folded into one running total
        (:func:`~repro.sim.lazydfa.merge_cache_infos` conventions:
        counters sum, gauges max, ``workers`` counts contributors).
        ``{"workers": 0}`` until a pooled scan has run.
        """
        return dict(self._worker_totals)

    def _absorb_worker_infos(self, infos) -> None:
        infos = [info for info in infos if info]
        if infos:
            self._worker_totals = merge_cache_infos(
                [self._worker_totals] + list(infos)
            )

    @property
    def health_events(self) -> Tuple[str, ...]:
        """Scan-time degradation notices (e.g. split chunks rescanned
        serially after an entry-state frontier explosion); the engine
        merges these into :meth:`~repro.engine.CacheAutomatonEngine.
        health`.  Bounded ring buffer — :attr:`health_events_dropped`
        counts evictions."""
        return tuple(self._health_events)

    @property
    def health_events_dropped(self) -> int:
        """Events evicted from the bounded scan-time log."""
        return self._health_events.dropped

    # -- report materialisation --------------------------------------------

    def _ident_of(
        self, rep_bytes: bytes
    ) -> Tuple[Tuple[str, Optional[str]], ...]:
        """(ste_id, report_code) per firing bit of one reporting row."""
        ident = self._idents.get(rep_bytes)
        if ident is None:
            kernel = self.simulator.kernel
            ids = self.simulator._bit_ids()
            automaton = self.simulator.mapping.automaton
            row = np.frombuffer(rep_bytes, dtype=np.uint64)
            entries = []
            for bit in kernel.bit_indices(row):
                ste = automaton.ste(ids[int(bit)])
                entries.append((ste.ste_id, ste.report_code))
            ident = tuple(entries)
            self._idents[rep_bytes] = ident
        return ident

    def _materialise(
        self, raw: RawScanResult, base_offset: int, collect_reports: bool
    ) -> BackendResult:
        raw_events, report_total, vector, sod, symbols = raw
        reports: List[Report] = []
        if collect_reports:
            for event_offset, _count, rep_bytes in raw_events:
                for ste_id, code in self._ident_of(rep_bytes):
                    reports.append(
                        Report(base_offset + event_offset, ste_id, code)
                    )
        checkpoint = Checkpoint(
            symbols_processed=base_offset + symbols,
            active_state_vector=vector,
            start_of_data_pending=sod,
        )
        stats = RunStats(symbols_processed=symbols)
        return self._basic_result(
            reports,
            symbols=symbols,
            report_count=report_total,
            checkpoint=checkpoint,
            stats=stats,
        )

    # -- scanning ----------------------------------------------------------

    def scan(
        self,
        data: bytes,
        *,
        collect_reports: bool = True,
        resume: Optional[Checkpoint] = None,
        split_jobs: Union[int, str, None] = None,
    ) -> BackendResult:
        """Scan one stream; when ``split_jobs`` (argument, backend
        option, or ``REPRO_SPLIT_JOBS``) resolves above 1 and the input
        is long enough to amortise the fork, the stream is split across
        a worker pool with bit-identical results (:mod:`repro.sim.
        split`); otherwise — including pool failure — the serial loop
        below runs."""
        workers = resolve_split_jobs(
            self._split_jobs if split_jobs is None else split_jobs
        )
        if workers > 1:
            result = self._scan_split(data, resume, workers, collect_reports)
            if result is not None:
                return result
        symbols = as_symbols(data)
        kernel = self.simulator.kernel
        if resume is None:
            prev = kernel.pack(0)
            sod = kernel.has_sod
            base_offset = 0
        else:
            prev = kernel.pack(resume.active_state_vector)
            sod = kernel.has_sod and resume.start_of_data_pending
            base_offset = resume.symbols_processed
        events, report_total, final_row, sod = self.dfa.scan(
            symbols, prev=prev, sod=sod, collect_events=collect_reports
        )
        raw_events = [
            (event_offset,) + self.dfa.event(event_id)
            for event_offset, event_id in events
        ]
        raw = (
            raw_events,
            report_total,
            kernel.unpack(final_row),
            bool(sod),
            len(symbols),
        )
        return self._materialise(raw, base_offset, collect_reports)

    def _scan_split(
        self,
        data: bytes,
        resume: Optional[Checkpoint],
        workers: int,
        collect_reports: bool,
    ) -> Optional[BackendResult]:
        """One SFA-split scan attempt; ``None`` falls back to serial."""
        jobs = effective_split_jobs(len(data), workers, self._split_min_chunk)
        if jobs < 2:
            return None
        if self._sfa is None:
            options = {}
            if self._split_slot_limit is not None:
                options["slot_limit"] = self._split_slot_limit
            self._sfa = SfaKernel(self.simulator.kernel, **options)
        cursor = None
        base_offset = 0
        if resume is not None:
            cursor = (
                resume.symbols_processed,
                resume.active_state_vector,
                resume.start_of_data_pending,
            )
            base_offset = resume.symbols_processed
        outcome = scan_stream_split(
            self.simulator.kernel,
            self.dfa,
            self._sfa,
            data,
            jobs,
            resume=cursor,
        )
        if outcome is None:
            return None
        raw, stats = outcome
        self._absorb_worker_infos(stats.get("worker_cache_infos", ()))
        degraded = stats.get("degraded_chunks", 0)
        if degraded:
            notice = (
                f"split scan: entry-state frontier exceeded the slot "
                f"limit in {degraded} of {stats['chunks']} chunks; "
                "those chunks were rescanned serially"
            )
            self._health_events.append(notice)
            warnings.warn(notice, DegradedModeWarning, stacklevel=3)
        return self._materialise(raw, base_offset, collect_reports)

    def scan_many(
        self,
        streams: Sequence[bytes],
        *,
        resumes: Optional[Sequence[Optional[Checkpoint]]] = None,
        collect_reports: bool = True,
        jobs: Union[int, str, None] = None,
    ) -> List[BackendResult]:
        """Scan a batch of streams, sharding across processes when
        ``jobs`` (argument, backend option, or ``REPRO_SCAN_JOBS``)
        resolves above 1.  Results are index-ordered and identical to
        the serial loop for every worker count.
        """
        streams = list(streams)
        resumes = require_resume_count(resumes, len(streams))
        workers = resolve_scan_jobs(self._jobs if jobs is None else jobs)
        if workers > 1 and len(streams) > 1:
            items = []
            for index, (data, resume) in enumerate(zip(streams, resumes)):
                cursor = None
                if resume is not None:
                    cursor = (
                        resume.symbols_processed,
                        resume.active_state_vector,
                        resume.start_of_data_pending,
                    )
                items.append((index, bytes(as_symbols(data)), cursor))
            tables = self.share_tables()
            outcome = scan_streams_sharded(
                tables, items, workers, collect_events=collect_reports
            )
            if outcome is not None:
                raws, worker_infos = outcome
                self._absorb_worker_infos(worker_infos)
                return [
                    self._materialise(
                        raw,
                        0 if resume is None else resume.symbols_processed,
                        collect_reports,
                    )
                    for raw, resume in zip(raws, resumes)
                ]
        return [
            self.scan(data, collect_reports=collect_reports, resume=resume)
            for data, resume in zip(streams, resumes)
        ]
