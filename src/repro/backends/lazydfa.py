"""The lazy-DFA backend: on-demand determinisation of the packed kernel.

This is the default DFA strategy (it owns the ``cpu-dfa``/``cpu``/``dfa``
aliases): instead of eagerly determinising the automaton — which blows
up on real rule sets like PowerEN — it hash-conses the packed kernel's
activation rows into DFA states *as the input visits them*
(:class:`~repro.sim.lazydfa.LazyDfaKernel`), so a warm transition costs
two list indexes and match/report semantics stay bit-identical to the
golden interpreter, full STE identity included.  The eager subset-
construction baseline remains available as ``eager-dfa``.

``scan_many`` additionally shards streams across a process pool
(:mod:`repro.sim.shard`): the kernel's packed tables and the warm DFA
transition tables are published once through shared memory, workers
rebuild zero-copy and return raw report events, and the parent
materialises :class:`Report` objects — so results are deterministic and
independent of the worker count.  Control the pool with the ``jobs=``
backend option (engine: ``backend_options={"jobs": N}``) or
``REPRO_SCAN_JOBS``; pool-level failures degrade to the serial loop
with a :class:`~repro.errors.DegradedModeWarning`.

The ``stride=`` option (or ``REPRO_STRIDE``) turns on k-stride
execution: the DFA consumes k bytes per cached transition over a
CAMA-style compressed class alphabet
(:mod:`repro.automata.stride`), with reports still bit-identical to
the golden run.  Striding composes with sharding — the compressed
alphabet ships through the same shared-memory block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.automata.stride import StrideAlphabet, resolve_stride
from repro.backends.artifact import CompiledArtifact
from repro.backends.base import (
    AutomatonBackend,
    BackendCapabilities,
    BackendResult,
)
from repro.backends.registry import register_backend
from repro.backends.validation import require_resume_count
from repro.sim.functional import MappedSimulator
from repro.sim.golden import Checkpoint, Report, RunStats
from repro.sim.kernel import as_symbols
from repro.sim.lazydfa import LazyDfaKernel
from repro.sim.shard import (
    RawScanResult,
    resolve_scan_jobs,
    scan_streams_sharded,
)

_CAPABILITIES = BackendCapabilities(
    resume=True,
    batch=True,
    activity_profile=False,
    report_identity=True,
    fault_events=False,
    description=(
        "lazy-DFA over the packed kernel: activation rows hash-consed "
        "into DFA states on demand (RE2-style bounded transition cache, "
        "flush on overflow), bit-identical reports with full STE "
        "identity; optional k-stride execution over a compressed class "
        "alphabet (stride= / REPRO_STRIDE); scan_many shards streams "
        "across a process pool over shared-memory tables"
    ),
)


@register_backend("lazy-dfa", aliases=("cpu-dfa", "cpu", "dfa"))
class LazyDfaBackend(AutomatonBackend):
    """Execution as lazily-determinised transitions over the kernel."""

    consumes_kernel_tables = True

    def __init__(
        self,
        simulator: MappedSimulator,
        *,
        jobs: Union[int, str, None] = None,
        max_states: Optional[int] = None,
        stride: Union[int, str, None] = None,
        alphabet: Optional[StrideAlphabet] = None,
    ):
        self.simulator = simulator
        self.dfa = LazyDfaKernel(
            simulator.kernel,
            max_states=max_states,
            stride=stride,
            alphabet=alphabet,
        )
        self._jobs = jobs
        #: reporting-row bytes -> ((ste_id, report_code), ...) memo.
        self._idents: Dict[bytes, Tuple[Tuple[str, Optional[str]], ...]] = {}

    @classmethod
    def from_artifact(
        cls,
        artifact: CompiledArtifact,
        *,
        simulator_cls=None,
        jobs: Union[int, str, None] = None,
        max_states: Optional[int] = None,
        stride: Union[int, str, None] = None,
        **_options,
    ) -> "LazyDfaBackend":
        """Build over the artifact's kernel tables when present (warm
        path), else from the mapping; no subset construction ever runs.

        ``jobs`` presets the ``scan_many`` worker count (``None`` defers
        to ``REPRO_SCAN_JOBS``/CPU count at scan time); ``max_states``
        overrides the DFA cache's state budget.  ``stride`` resolution:
        explicit argument, else the stride the artifact was compiled
        with, else ``REPRO_STRIDE``, else 1.  When the resolved stride
        matches the artifact's cached ``stride_tables``, the compressed
        alphabet is rebuilt from the cache instead of rederived.
        """
        simulator_cls = simulator_cls or MappedSimulator
        if artifact.kernel_tables:
            simulator = simulator_cls.from_cached(
                artifact.mapping, artifact.kernel_tables
            )
        else:
            simulator = simulator_cls(artifact.mapping)
        if stride is None and artifact.stride != 1:
            stride = artifact.stride
        stride = resolve_stride(stride)
        alphabet = None
        if stride != 1 and stride == artifact.stride and artifact.stride_tables:
            alphabet = StrideAlphabet.from_tables(dict(artifact.stride_tables))
        return cls(
            simulator,
            jobs=jobs,
            max_states=max_states,
            stride=stride,
            alphabet=alphabet,
        )

    def capabilities(self) -> BackendCapabilities:
        return _CAPABILITIES

    def packed_tables(self) -> dict:
        """The simulator's kernel tables, for persisting into the cache."""
        return self.simulator.packed_tables()

    def cache_info(self) -> Dict[str, int]:
        """The DFA transition cache's effectiveness counters."""
        return self.dfa.cache_info()

    # -- report materialisation --------------------------------------------

    def _ident_of(
        self, rep_bytes: bytes
    ) -> Tuple[Tuple[str, Optional[str]], ...]:
        """(ste_id, report_code) per firing bit of one reporting row."""
        ident = self._idents.get(rep_bytes)
        if ident is None:
            kernel = self.simulator.kernel
            ids = self.simulator._bit_ids()
            automaton = self.simulator.mapping.automaton
            row = np.frombuffer(rep_bytes, dtype=np.uint64)
            entries = []
            for bit in kernel.bit_indices(row):
                ste = automaton.ste(ids[int(bit)])
                entries.append((ste.ste_id, ste.report_code))
            ident = tuple(entries)
            self._idents[rep_bytes] = ident
        return ident

    def _materialise(
        self, raw: RawScanResult, base_offset: int, collect_reports: bool
    ) -> BackendResult:
        raw_events, report_total, vector, sod, symbols = raw
        reports: List[Report] = []
        if collect_reports:
            for event_offset, _count, rep_bytes in raw_events:
                for ste_id, code in self._ident_of(rep_bytes):
                    reports.append(
                        Report(base_offset + event_offset, ste_id, code)
                    )
        checkpoint = Checkpoint(
            symbols_processed=base_offset + symbols,
            active_state_vector=vector,
            start_of_data_pending=sod,
        )
        stats = RunStats(symbols_processed=symbols)
        return self._basic_result(
            reports,
            symbols=symbols,
            report_count=report_total,
            checkpoint=checkpoint,
            stats=stats,
        )

    # -- scanning ----------------------------------------------------------

    def scan(
        self,
        data: bytes,
        *,
        collect_reports: bool = True,
        resume: Optional[Checkpoint] = None,
    ) -> BackendResult:
        symbols = as_symbols(data)
        kernel = self.simulator.kernel
        if resume is None:
            prev = kernel.pack(0)
            sod = kernel.has_sod
            base_offset = 0
        else:
            prev = kernel.pack(resume.active_state_vector)
            sod = kernel.has_sod and resume.start_of_data_pending
            base_offset = resume.symbols_processed
        events, report_total, final_row, sod = self.dfa.scan(
            symbols, prev=prev, sod=sod, collect_events=collect_reports
        )
        raw_events = [
            (event_offset,) + self.dfa.event(event_id)
            for event_offset, event_id in events
        ]
        raw = (
            raw_events,
            report_total,
            kernel.unpack(final_row),
            bool(sod),
            len(symbols),
        )
        return self._materialise(raw, base_offset, collect_reports)

    def scan_many(
        self,
        streams: Sequence[bytes],
        *,
        resumes: Optional[Sequence[Optional[Checkpoint]]] = None,
        collect_reports: bool = True,
        jobs: Union[int, str, None] = None,
    ) -> List[BackendResult]:
        """Scan a batch of streams, sharding across processes when
        ``jobs`` (argument, backend option, or ``REPRO_SCAN_JOBS``)
        resolves above 1.  Results are index-ordered and identical to
        the serial loop for every worker count.
        """
        streams = list(streams)
        resumes = require_resume_count(resumes, len(streams))
        workers = resolve_scan_jobs(self._jobs if jobs is None else jobs)
        if workers > 1 and len(streams) > 1:
            items = []
            for index, (data, resume) in enumerate(zip(streams, resumes)):
                cursor = None
                if resume is not None:
                    cursor = (
                        resume.symbols_processed,
                        resume.active_state_vector,
                        resume.start_of_data_pending,
                    )
                items.append((index, bytes(as_symbols(data)), cursor))
            tables = dict(self.simulator.kernel.packed_tables())
            tables.update(self.dfa.export_tables())
            raws = scan_streams_sharded(
                tables, items, workers, collect_events=collect_reports
            )
            if raws is not None:
                return [
                    self._materialise(
                        raw,
                        0 if resume is None else resume.symbols_processed,
                        collect_reports,
                    )
                    for raw, resume in zip(raws, resumes)
                ]
        return [
            self.scan(data, collect_reports=collect_reports, resume=resume)
            for data, resume in zip(streams, resumes)
        ]
