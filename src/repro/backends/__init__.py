"""Execution backends: one compiled artifact, many substrates.

The package splits into three layers:

* :mod:`~repro.backends.artifact` — the :class:`CompiledArtifact` IR,
  the single versioned serialisation used by the on-disk cache and the
  bitstream export;
* :mod:`~repro.backends.base` — the :class:`AutomatonBackend` protocol
  (``from_artifact`` / ``scan`` / ``scan_many`` / ``stream`` /
  ``capabilities``) and its result/capability types;
* :mod:`~repro.backends.registry` — name -> backend class, with the
  built-in substrates (packed kernel, golden interpreter, circuit
  interpreter, lazy-DFA, eager-DFA baseline, fault-injection harness)
  registered lazily on first lookup.

Import discipline: importing this package must stay cheap and
cycle-free — :mod:`repro.sim.kernel` imports
:mod:`repro.backends.validation` at module scope.  Only the registry and
validation helpers load eagerly; everything else resolves lazily via
module ``__getattr__``.
"""

from __future__ import annotations

from repro.backends.registry import (
    DEFAULT_BACKEND,
    BackendSpec,
    backend_class,
    backend_names,
    backend_spec,
    create_backend,
    register_backend,
    resolve_backend_name,
)
from repro.backends.validation import (
    as_symbols,
    require_byte_streams,
    require_bytes,
    require_resume_count,
    require_stream_sequence,
)

#: Lazily resolved exports: name -> defining module.
_LAZY = {
    "ARTIFACT_FORMAT_VERSION": "repro.backends.artifact",
    "CompiledArtifact": "repro.backends.artifact",
    "AutomatonBackend": "repro.backends.base",
    "BackendCapabilities": "repro.backends.base",
    "BackendResult": "repro.backends.base",
    "BackendStream": "repro.backends.base",
    "PackedKernelBackend": "repro.backends.mapped",
    "GoldenInterpreterBackend": "repro.backends.golden",
    "CircuitInterpreterBackend": "repro.backends.circuit",
    "CpuDfaBackend": "repro.backends.cpu",
    "LazyDfaBackend": "repro.backends.lazydfa",
    "FaultInjectedBackend": "repro.backends.faulty",
}

__all__ = [
    "DEFAULT_BACKEND",
    "BackendSpec",
    "backend_class",
    "backend_names",
    "backend_spec",
    "create_backend",
    "register_backend",
    "resolve_backend_name",
    "as_symbols",
    "require_byte_streams",
    "require_bytes",
    "require_resume_count",
    "require_stream_sequence",
    *_LAZY,
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(__all__)
