"""The compiled-artifact IR: one object every backend builds from.

A :class:`CompiledArtifact` is the complete, serialisable product of
compilation — the placement (:class:`~repro.compiler.mapping.Mapping`),
the packed simulator kernel tables, and the content fingerprints of both
compiler inputs.  It replaces the ad-hoc ``(mapping, kernel_arrays)``
tuples that used to be duplicated across the artifact cache, the
simulator cache round-trip, and the engine's warm-start path, and it is
the single argument of every backend's ``from_artifact``.

Serialisation is versioned (:data:`ARTIFACT_FORMAT_VERSION`) and shared:
:meth:`CompiledArtifact.to_payload` / :meth:`from_payload` define the
array-dict layout the on-disk cache persists (``.npz``), and
:meth:`npz_bytes` / :meth:`from_npz_bytes` wrap it for byte-oriented
transport.  Any corrupt, mismatching, or out-of-version payload raises
:class:`~repro.errors.ArtifactError`, which the cache converts into
"quarantine and recompile" — in particular, version-1 payloads written
before artifacts became stride-aware are invalidated cleanly rather
than mis-deserialised as unstrided.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.automata.anml import HomogeneousAutomaton
from repro.compiler.cache import automaton_fingerprint, design_fingerprint
from repro.compiler.mapping import MappedPartition, Mapping
from repro.core.design import DesignPoint
from repro.errors import ArtifactError

#: Bump when the payload layout changes.  Version 1 is the original
#: layout (``part``/``slot``/``ways``/fingerprints/``kernel_*``); the
#: explicit ``artifact_version`` member was introduced while the layout
#: was still version 1, so payloads without it are read as version 1.
#: Version 2 adds the k-stride execution fields (``stride`` plus the
#: ``stride_*`` compressed-alphabet tables); version 3 adds the per-CC
#: classification tables (``classify_*`` — feature table, substrate
#: costs, and partition assignment; see :mod:`repro.compiler.classify`)
#: consumed by the hybrid execution backend.  Out-of-version payloads
#: are rejected with :class:`ArtifactError` so the cache quarantines and
#: recompiles instead of mis-deserialising them — version-1 payloads as
#: unstrided, version-2 payloads as carrying a (missing) placement.
ARTIFACT_FORMAT_VERSION = 3

#: Payload member prefix under which kernel tables are stored.
_KERNEL_PREFIX = "kernel_"

#: Payload member prefix for the compressed stride-alphabet tables.
_STRIDE_PREFIX = "stride_"

#: Payload member prefix for the per-CC classification tables.
_CLASSIFY_PREFIX = "classify_"


@dataclass(frozen=True)
class CompiledArtifact:
    """Everything needed to execute a compiled automaton on any backend.

    ``kernel_tables`` may be empty — backends that need the packed
    tables (see :attr:`~repro.backends.base.AutomatonBackend.
    consumes_kernel_tables`) rebuild them from the mapping when absent.
    """

    mapping: Mapping
    kernel_tables: Dict[str, np.ndarray] = field(default_factory=dict)
    automaton_fingerprint: str = ""
    design_fingerprint: str = ""
    version: int = ARTIFACT_FORMAT_VERSION
    #: Effective k-stride the artifact was compiled for (1 = unstrided).
    stride: int = 1
    #: Compressed stride-alphabet tables (``stride_k`` /
    #: ``stride_class_of`` / ``stride_reps``); empty when unstrided.
    stride_tables: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Per-CC classification tables (``classify_*`` — features, costs,
    #: partition assignment; see :mod:`repro.compiler.classify`).  Empty
    #: until a hybrid-aware path attaches them; backends that do not
    #: partition ignore them.
    classify_tables: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def automaton(self) -> HomogeneousAutomaton:
        """The automaton actually mapped (post any optimisation)."""
        return self.mapping.automaton

    @property
    def design(self) -> DesignPoint:
        return self.mapping.design

    @classmethod
    def from_mapping(
        cls,
        mapping: Mapping,
        kernel_tables: Optional[Dict[str, np.ndarray]] = None,
        *,
        stride: int = 1,
        stride_tables: Optional[Dict[str, np.ndarray]] = None,
    ) -> "CompiledArtifact":
        """Wrap a freshly compiled mapping, fingerprinting its inputs.

        ``stride`` enters the design fingerprint (when != 1), so strided
        and unstrided artifacts content-address separately.
        """
        return cls(
            mapping=mapping,
            kernel_tables=dict(kernel_tables or {}),
            automaton_fingerprint=automaton_fingerprint(mapping.automaton),
            design_fingerprint=design_fingerprint(
                mapping.design, stride=stride
            ),
            stride=stride,
            stride_tables=dict(stride_tables or {}),
        )

    def with_kernel_tables(
        self, kernel_tables: Dict[str, np.ndarray]
    ) -> "CompiledArtifact":
        """A copy of this artifact carrying ``kernel_tables``."""
        return CompiledArtifact(
            mapping=self.mapping,
            kernel_tables=dict(kernel_tables),
            automaton_fingerprint=self.automaton_fingerprint,
            design_fingerprint=self.design_fingerprint,
            version=self.version,
            stride=self.stride,
            stride_tables=dict(self.stride_tables),
            classify_tables=dict(self.classify_tables),
        )

    def with_stride_tables(
        self, stride: int, stride_tables: Dict[str, np.ndarray]
    ) -> "CompiledArtifact":
        """A copy carrying the k-stride alphabet (re-fingerprinted)."""
        return CompiledArtifact(
            mapping=self.mapping,
            kernel_tables=dict(self.kernel_tables),
            automaton_fingerprint=self.automaton_fingerprint,
            design_fingerprint=design_fingerprint(
                self.mapping.design, stride=stride
            ),
            version=self.version,
            stride=stride,
            stride_tables=dict(stride_tables),
            classify_tables=dict(self.classify_tables),
        )

    def with_classify_tables(
        self, classify_tables: Dict[str, np.ndarray]
    ) -> "CompiledArtifact":
        """A copy carrying the per-CC classification tables."""
        return CompiledArtifact(
            mapping=self.mapping,
            kernel_tables=dict(self.kernel_tables),
            automaton_fingerprint=self.automaton_fingerprint,
            design_fingerprint=self.design_fingerprint,
            version=self.version,
            stride=self.stride,
            stride_tables=dict(self.stride_tables),
            classify_tables=dict(classify_tables),
        )

    # -- serialisation -----------------------------------------------------

    def to_payload(self) -> Dict[str, np.ndarray]:
        """The versioned array-dict payload persisted by the cache."""
        automaton = self.mapping.automaton
        arrays = automaton.edge_index_arrays()
        count = len(arrays.ids)
        part = np.empty(count, dtype=np.int32)
        slot = np.empty(count, dtype=np.int32)
        location = self.mapping.location
        for position, ste_id in enumerate(arrays.ids):
            partition_index, slot_index = location[ste_id]
            part[position] = partition_index
            slot[position] = slot_index
        payload: Dict[str, np.ndarray] = {
            "artifact_version": np.asarray(self.version, dtype=np.int64),
            "part": part,
            "slot": slot,
            "ways": np.asarray(
                [partition.way for partition in self.mapping.partitions],
                dtype=np.int32,
            ),
            "fingerprint": np.asarray(
                self.automaton_fingerprint
                or automaton_fingerprint(automaton)
            ),
            "design": np.asarray(
                self.design_fingerprint
                or design_fingerprint(self.design, stride=self.stride)
            ),
            "stride": np.asarray(self.stride, dtype=np.int64),
        }
        for name, array in self.kernel_tables.items():
            payload[f"{_KERNEL_PREFIX}{name}"] = array
        for name, array in self.stride_tables.items():
            # Alphabet table names already carry the stride_ prefix.
            payload[name] = array
        for name, array in self.classify_tables.items():
            # Classification table names already carry the classify_ prefix.
            payload[name] = array
        return payload

    @classmethod
    def from_payload(
        cls,
        data,
        automaton: HomogeneousAutomaton,
        design: DesignPoint,
        *,
        stride: int = 1,
    ) -> "CompiledArtifact":
        """Rebuild an artifact against the in-memory compiler inputs.

        ``data`` is any mapping of member name -> array (an open ``npz``
        file works directly).  The payload's stored fingerprints are
        re-verified against ``automaton``/``design``/``stride``; any
        missing member, shape mismatch, unsupported version, stride
        mismatch, or fingerprint mismatch raises :class:`ArtifactError`.
        Per-state structures of the returned mapping materialise lazily
        — warm engine starts never touch them.
        """
        try:
            members = set(
                data.files if hasattr(data, "files") else data.keys()
            )
            version = (
                int(data["artifact_version"])
                if "artifact_version" in members
                else 1
            )
            if version != ARTIFACT_FORMAT_VERSION:
                raise ArtifactError(
                    f"unsupported artifact version {version} "
                    f"(expected {ARTIFACT_FORMAT_VERSION})"
                )
            part = data["part"]
            slot = data["slot"]
            ways = data["ways"]
            stored_fingerprint = str(data["fingerprint"])
            stored_design = str(data["design"])
            stored_stride = int(data["stride"])
        except ArtifactError:
            raise
        except Exception as error:
            raise ArtifactError(f"unreadable member: {error}") from None
        if stored_stride != stride:
            raise ArtifactError(
                f"artifact was compiled at stride {stored_stride}, "
                f"loaded against stride {stride}"
            )
        arrays = automaton.edge_index_arrays()
        if (
            stored_fingerprint != automaton_fingerprint(automaton)
            or stored_design != design_fingerprint(design, stride=stride)
            or part.shape[0] != len(arrays.ids)
        ):
            raise ArtifactError("stored fingerprints do not match the key")
        placement = _SharedPlacement(arrays.ids, part, slot, ways.shape[0])
        partitions = [
            _LazyPartition(index, way, placement)
            for index, way in enumerate(ways.tolist())
        ]
        location = _LazyLocation(arrays.ids, part, slot)
        mapping = Mapping(design, automaton, partitions, location)
        kernel_tables = {
            name[len(_KERNEL_PREFIX):]: data[name]
            for name in members
            if name.startswith(_KERNEL_PREFIX)
        }
        stride_tables = {
            name: data[name]
            for name in members
            if name.startswith(_STRIDE_PREFIX)
        }
        classify_tables = {
            name: data[name]
            for name in members
            if name.startswith(_CLASSIFY_PREFIX)
        }
        return cls(
            mapping=mapping,
            kernel_tables=kernel_tables,
            automaton_fingerprint=stored_fingerprint,
            design_fingerprint=stored_design,
            version=version,
            stride=stored_stride,
            stride_tables=stride_tables,
            classify_tables=classify_tables,
        )

    def npz_bytes(self) -> bytes:
        """The payload serialised as ``npz`` bytes (cache file format)."""
        buffer = io.BytesIO()
        np.savez(buffer, **self.to_payload())
        return buffer.getvalue()

    @classmethod
    def from_npz_bytes(
        cls,
        payload: bytes,
        automaton: HomogeneousAutomaton,
        design: DesignPoint,
        *,
        stride: int = 1,
    ) -> "CompiledArtifact":
        """Inverse of :meth:`npz_bytes`; raises :class:`ArtifactError`."""
        try:
            data = np.load(io.BytesIO(payload), allow_pickle=False)
        except Exception as error:
            raise ArtifactError(f"not a valid artifact archive: {error}") from None
        return cls.from_payload(data, automaton, design, stride=stride)

    def bitstream_bytes(self) -> bytes:
        """The configuration bitstream for this artifact's mapping."""
        from repro.compiler.bitstream import generate

        return generate(self.mapping).to_bytes()


class _SharedPlacement:
    """Placement arrays shared by every partition of one loaded artifact;
    the per-partition slot-ordered id lists materialise together with one
    vectorised sort, on the first partition that needs them."""

    def __init__(
        self,
        ids: List[str],
        part: np.ndarray,
        slot: np.ndarray,
        partition_count: int,
    ):
        self._ids = ids
        self._part = part
        self._slot = slot
        self._partition_count = partition_count
        self._lists: Optional[List[List[str]]] = None

    def ste_lists(self) -> List[List[str]]:
        if self._lists is None:
            order = np.lexsort((self._slot, self._part))
            ordered_parts = self._part[order]
            bounds = np.searchsorted(
                ordered_parts, np.arange(self._partition_count + 1)
            ).tolist()
            ids = self._ids
            order_list = order.tolist()
            self._lists = [
                [ids[position] for position in order_list[start:end]]
                for start, end in zip(bounds, bounds[1:])
            ]
        return self._lists


class _LazyPartition(MappedPartition):
    """A loaded partition whose ``ste_ids`` list fills on first access."""

    def __init__(self, index: int, way: int, placement: _SharedPlacement):
        super().__init__(index, way)
        self._placement: Optional[_SharedPlacement] = placement

    def __getattribute__(self, name):
        if name == "ste_ids":
            placement = object.__getattribute__(self, "_placement")
            if placement is not None:
                object.__setattr__(self, "_placement", None)
                lists = placement.ste_lists()
                index = object.__getattribute__(self, "index")
                object.__setattr__(self, "ste_ids", lists[index])
        return object.__getattribute__(self, name)


class _LazyLocation(dict):
    """A mapping's ``location`` dict, materialised on first real access.

    Warm engine construction never touches per-state locations (the
    simulator tables travel in the artifact), so the 10ms+ cost of
    building a many-thousand-entry dict of tuples is deferred until
    something — e.g. constraint re-analysis — actually asks for it.
    """

    def __init__(self, ids: List[str], part: np.ndarray, slot: np.ndarray):
        super().__init__()
        self._pending: Optional[Tuple[List[str], np.ndarray, np.ndarray]] = (
            ids,
            part,
            slot,
        )

    def _materialise(self):
        if self._pending is not None:
            ids, part, slot = self._pending
            self._pending = None
            self.update(zip(ids, zip(part.tolist(), slot.tolist())))

    def __getitem__(self, key):
        self._materialise()
        return dict.__getitem__(self, key)

    def __contains__(self, key):
        self._materialise()
        return dict.__contains__(self, key)

    def __iter__(self):
        self._materialise()
        return dict.__iter__(self)

    def __len__(self):
        self._materialise()
        return dict.__len__(self)

    def __eq__(self, other):
        self._materialise()
        return dict.__eq__(self, other)

    def __ne__(self, other):
        return not self.__eq__(other)

    def get(self, key, default=None):
        self._materialise()
        return dict.get(self, key, default)

    def keys(self):
        self._materialise()
        return dict.keys(self)

    def values(self):
        self._materialise()
        return dict.values(self)

    def items(self):
        self._materialise()
        return dict.items(self)
