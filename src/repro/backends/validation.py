"""Shared input validation for every execution backend.

Before this module existed, bytes/shape checks were repeated — with
slightly diverging messages — in ``engine.scan``/``scan_many``/``stream``
and in each simulator's ``run``.  All backends, simulators, and the
engine now funnel input through these helpers, so bad input is rejected
with identical :class:`~repro.errors.SimulationError`\\ s everywhere.

Import discipline: this module must stay importable from
:mod:`repro.sim.kernel` (which re-exports :func:`as_symbols`), so it may
depend only on :mod:`repro.errors` and numpy — never on simulators,
backends implementations, or the compiler.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError


def require_bytes(value, what: str) -> None:
    """Raise :class:`SimulationError` unless ``value`` is bytes-like."""
    if not isinstance(value, (bytes, bytearray, memoryview)):
        raise SimulationError(
            f"{what} must be bytes-like, got {type(value).__name__}"
        )


def as_symbols(data) -> np.ndarray:
    """Validate ``data`` is bytes-like and view it as a ``uint8`` array.

    Every simulator and backend funnels input through here so they
    reject bad input with identical errors.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SimulationError(f"input must be bytes-like, got {type(data)!r}")
    return np.frombuffer(bytes(data), dtype=np.uint8)


def require_stream_sequence(streams, message: str) -> List[bytes]:
    """Reject a single byte string masquerading as a stream batch.

    ``message`` is the full error text (call sites phrase the hint for
    their own API); returns ``streams`` as a list on success.
    """
    if isinstance(streams, (bytes, bytearray, memoryview, str)):
        raise SimulationError(message)
    return list(streams)


def require_byte_streams(
    streams, *, what: str, single_hint: str
) -> List[bytes]:
    """Validate a batch of byte streams; names the offending stream.

    ``what`` labels each stream in errors (e.g. ``"scan_many() stream"``),
    ``single_hint`` is the error raised when a single byte string was
    passed instead of a sequence.
    """
    streams = require_stream_sequence(streams, single_hint)
    for index, stream in enumerate(streams):
        require_bytes(stream, f"{what} {index}")
    return streams


def require_resume_count(
    resumes: Optional[Sequence], count: int
) -> Sequence:
    """One checkpoint (or ``None``) per stream, defaulting to all-None."""
    if resumes is None:
        return [None] * count
    if len(resumes) != count:
        raise SimulationError(
            f"got {len(resumes)} checkpoints for {count} streams"
        )
    return resumes
