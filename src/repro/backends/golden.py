"""The golden-interpreter backend: ground-truth semantics, no placement.

Wraps :class:`~repro.sim.golden.GoldenSimulator` (the VASim stand-in)
behind the backend protocol.  It ignores the artifact's placement and
kernel tables entirely — which is exactly why the engine uses it as the
last-resort fallback tier: it cannot be poisoned by a corrupt artifact.
No activity profile beyond symbol/report totals (there is no placement
to attribute activity to).
"""

from __future__ import annotations

from typing import Optional

from repro.backends.artifact import CompiledArtifact
from repro.backends.base import (
    AutomatonBackend,
    BackendCapabilities,
    BackendResult,
)
from repro.backends.registry import register_backend
from repro.sim.golden import Checkpoint, GoldenSimulator

_CAPABILITIES = BackendCapabilities(
    resume=True,
    batch=False,
    activity_profile=False,
    report_identity=True,
    fault_events=False,
    description=(
        "reference interpreter over the automaton alone; ground-truth "
        "reports, no placement-level activity accounting"
    ),
)


@register_backend("golden-interpreter", aliases=("golden",))
class GoldenInterpreterBackend(AutomatonBackend):
    """Execution on the hardware-agnostic reference interpreter."""

    def __init__(self, simulator: GoldenSimulator):
        self.simulator = simulator

    @classmethod
    def from_artifact(
        cls, artifact: CompiledArtifact, **_options
    ) -> "GoldenInterpreterBackend":
        return cls(GoldenSimulator(artifact.automaton))

    def capabilities(self) -> BackendCapabilities:
        return _CAPABILITIES

    def scan(
        self,
        data: bytes,
        *,
        collect_reports: bool = True,
        resume: Optional[Checkpoint] = None,
    ) -> BackendResult:
        # Reports are always materialised internally so the profile's
        # report count stays correct when the caller only wants totals.
        run = self.simulator.run(data, resume=resume)
        return self._basic_result(
            run.reports if collect_reports else [],
            symbols=run.stats.symbols_processed,
            report_count=len(run.reports),
            checkpoint=run.checkpoint,
            stats=run.stats,
        )
