"""The fault-injection backend: the mapped kernel under injected faults.

Wraps :class:`~repro.faults.injector.FaultySimulator` behind the backend
protocol so the fault campaign runs through the same registry as every
other substrate.  Events are fixed at construction (``events=`` option)
— a faulted machine *is* a different machine, so "which faults" is part
of backend identity, not a per-scan argument; with no events it must be
report-equivalent to every clean backend, which is exactly how the
differential matrix exercises it.

:meth:`FaultInjectedBackend.run_report` exposes the raw
:class:`~repro.faults.injector.FaultRunReport` (signature + parity
detections) for the campaign's masked/detected/SDC classification;
:meth:`scan` decodes the signature into golden-convention reports.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.backends.artifact import CompiledArtifact
from repro.backends.base import (
    AutomatonBackend,
    BackendCapabilities,
    BackendResult,
)
from repro.backends.registry import register_backend
from repro.faults.injector import FaultRunReport, FaultySimulator
from repro.faults.models import FaultEvent
from repro.errors import SimulationError
from repro.sim.functional import MappedSimulator
from repro.sim.golden import Checkpoint, Report

_CAPABILITIES = BackendCapabilities(
    resume=False,
    batch=False,
    activity_profile=False,
    report_identity=True,
    fault_events=True,
    description=(
        "mapped kernel executed under injected faults with match-parity "
        "detection; events are fixed at construction"
    ),
)


@register_backend("fault-injected", aliases=("faulty",))
class FaultInjectedBackend(AutomatonBackend):
    """Execution on the fault-injection harness over the mapped kernel."""

    consumes_kernel_tables = True

    def __init__(
        self,
        simulator: MappedSimulator,
        events: Tuple[FaultEvent, ...] = (),
    ):
        self.simulator = simulator
        self.faulty = FaultySimulator(simulator)
        self.events = tuple(events)

    @classmethod
    def from_artifact(
        cls,
        artifact: CompiledArtifact,
        *,
        events: Sequence[FaultEvent] = (),
        simulator_cls=None,
        **_options,
    ) -> "FaultInjectedBackend":
        simulator_cls = simulator_cls or MappedSimulator
        if artifact.kernel_tables:
            simulator = simulator_cls.from_cached(
                artifact.mapping, artifact.kernel_tables
            )
        else:
            simulator = simulator_cls(artifact.mapping)
        return cls(simulator, tuple(events))

    def capabilities(self) -> BackendCapabilities:
        return _CAPABILITIES

    # -- campaign surface --------------------------------------------------

    @property
    def state_bits(self) -> np.ndarray:
        """Occupied state-bit indices (fault-injection targets)."""
        return self.faulty.state_bits

    @property
    def edge_bits(self) -> List[Tuple[int, int]]:
        """Transitions as (source_bit, target_bit) pairs."""
        return self.faulty.edge_bits

    def run_report(
        self, data: bytes, events: Optional[Sequence[FaultEvent]] = None
    ) -> FaultRunReport:
        """Raw signature/detection report; ``events`` overrides the
        construction-time set for one run (the campaign's per-trial use)."""
        chosen = self.events if events is None else tuple(events)
        return self.faulty.run(data, chosen)

    # -- protocol ----------------------------------------------------------

    def scan(
        self,
        data: bytes,
        *,
        collect_reports: bool = True,
        resume: Optional[Checkpoint] = None,
    ) -> BackendResult:
        if resume is not None:
            raise SimulationError(
                "backend 'fault-injected' does not support checkpointed "
                "resume"
            )
        run = self.run_report(data)
        reports = self._decode(run.signature)
        result = self._basic_result(
            reports if collect_reports else [],
            symbols=len(data),
            report_count=len(reports),
        )
        result.detected = run.detected
        return result

    def _decode(
        self, signature: Sequence[Tuple[int, bytes]]
    ) -> List[Report]:
        """Signature rows -> golden-convention reports (offset + STE)."""
        automaton = self.simulator.mapping.automaton
        ids = self.simulator._bit_ids()
        kernel = self.faulty._kernel
        reports: List[Report] = []
        for offset, row_bytes in signature:
            row = np.frombuffer(row_bytes, dtype=np.uint64)
            for bit in kernel.bit_indices(row):
                ste = automaton.ste(ids[bit])
                reports.append(Report(offset, ste.ste_id, ste.report_code))
        return reports
