"""Pluggable backend registry: name -> execution substrate.

Backends self-register at import time via :func:`register_backend`; the
built-in set (packed kernel, golden interpreter, circuit interpreter,
fault-injection harness, CPU DFA baseline) is imported lazily on the
first lookup so that importing :mod:`repro.backends` never drags the
whole simulator stack in (and cannot create import cycles with it).

Import discipline: this module depends only on the standard library and
:mod:`repro.errors`.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple, Type

from repro.errors import BackendError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.artifact import CompiledArtifact
    from repro.backends.base import AutomatonBackend

#: The engine's default substrate: the packed-bitset mapped kernel.
DEFAULT_BACKEND = "packed-kernel"

#: Modules whose import registers the built-in backends.
_BUILTIN_MODULES = (
    "repro.backends.mapped",
    "repro.backends.golden",
    "repro.backends.circuit",
    "repro.backends.cpu",
    "repro.backends.lazydfa",
    "repro.backends.hybrid",
    "repro.backends.faulty",
)


@dataclass(frozen=True)
class BackendSpec:
    """One registry entry: the backend class plus its naming."""

    name: str
    cls: Type["AutomatonBackend"]
    aliases: Tuple[str, ...] = ()


_REGISTRY: Dict[str, BackendSpec] = {}
_ALIASES: Dict[str, str] = {}
_builtins_loaded = False


def register_backend(name: str, *, aliases: Tuple[str, ...] = ()):
    """Class decorator registering an :class:`AutomatonBackend`.

    Sets the class's ``name`` attribute to the canonical registry name;
    re-registering a name replaces the previous entry (latest wins), so
    downstream code can override a built-in substrate.
    """

    def wrap(cls):
        cls.name = name
        _REGISTRY[name] = BackendSpec(name, cls, tuple(aliases))
        for alias in aliases:
            _ALIASES[alias] = name
        return cls

    return wrap


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def resolve_backend_name(name: str) -> str:
    """Canonical name for ``name`` (resolving aliases); raises
    :class:`BackendError` with the full roster on an unknown name."""
    _ensure_builtins()
    canonical = _ALIASES.get(name, name)
    if canonical not in _REGISTRY:
        raise BackendError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(sorted(_REGISTRY))}"
        )
    return canonical


def backend_names() -> List[str]:
    """Sorted canonical names of every registered backend."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def backend_spec(name: str) -> BackendSpec:
    """The full registry entry for ``name`` (alias-tolerant)."""
    return _REGISTRY[resolve_backend_name(name)]


def backend_class(name: str) -> Type["AutomatonBackend"]:
    """The backend class registered under ``name`` (alias-tolerant)."""
    return backend_spec(name).cls


def create_backend(
    name: str, artifact: "CompiledArtifact", **options
) -> "AutomatonBackend":
    """Instantiate the backend ``name`` from a compiled artifact.

    ``options`` are passed through to the backend's ``from_artifact``;
    every backend ignores options it does not understand, so callers can
    pass a superset (e.g. ``simulator_cls=`` is only meaningful to the
    kernel-table consumers).
    """
    return backend_class(name).from_artifact(artifact, **options)
