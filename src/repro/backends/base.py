"""The execution-backend protocol: one contract for every substrate.

The paper evaluates the same NFAs on several execution substrates (the
cache automaton proper, the AP, CPU baselines); this module defines the
software analogue — a uniform :class:`AutomatonBackend` surface over the
golden interpreter, the packed-bitset kernel, the set-based circuit
interpreter, the fault-injection harness, and the CPU DFA baseline, so
the engine, the CLI, the eval harness, and the differential tests can
treat "which substrate scans the bytes" as a runtime parameter.

Every backend is constructed :meth:`~AutomatonBackend.from_artifact` a
:class:`~repro.backends.artifact.CompiledArtifact` and answers
:meth:`~AutomatonBackend.capabilities` so callers can discover — rather
than hard-code — whether it supports checkpointed resume, native
multi-stream batching, full energy-model activity profiles, or
per-report STE identity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

from repro.backends.validation import require_resume_count
from repro.core.energy import ActivityProfile
from repro.errors import SimulationError
from repro.sim.golden import Checkpoint, Report, RunStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.backends.artifact import CompiledArtifact


#: Default capacity of a :class:`BoundedEventLog`.
EVENT_LOG_LIMIT = 64


class BoundedEventLog:
    """Ring buffer of health-event strings with a drop counter.

    Long-lived serving processes accumulate degradation notices (split
    chunks rescanned serially, quarantines, breaker trips) on every
    degraded scan; an unbounded list would grow for the life of the
    process.  This log keeps the most recent ``limit`` events and
    counts — rather than silently forgets — how many older ones were
    dropped, so ``len(log) + log.dropped`` stays a monotonic "events
    ever seen" counter that consumers (the per-tenant circuit breaker)
    can diff across scans.
    """

    def __init__(self, limit: int = EVENT_LOG_LIMIT):
        if limit < 1:
            raise ValueError(f"event-log limit must be >= 1, got {limit}")
        self._events: "deque[str]" = deque(maxlen=limit)
        self.limit = limit
        #: Events evicted to stay within ``limit``.
        self.dropped = 0

    def append(self, event: str) -> None:
        if len(self._events) == self.limit:
            self.dropped += 1
        self._events.append(event)

    def extend(self, events) -> None:
        for event in events:
            self.append(event)

    def events(self) -> Tuple[str, ...]:
        """The retained (most recent) events, oldest first."""
        return tuple(self._events)

    def __iter__(self) -> Iterator[str]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events) or self.dropped > 0


@dataclass(frozen=True)
class BackendCapabilities:
    """What one backend can and cannot do; consult before relying on it.

    ``resume`` — checkpointed chunked scanning (:meth:`AutomatonBackend.
    stream` and the ``resume=`` argument); ``batch`` — a native
    multi-stream ``scan_many`` (others fall back to a per-stream loop);
    ``activity_profile`` — full energy-model counters (partition
    activations, G-switch crossings), not just symbol/report totals;
    ``report_identity`` — reports carry the firing STE's identity and
    rule code (the CPU DFA baseline collapses rule identity during
    determinisation, so only match *offsets* are comparable);
    ``fault_events`` — accepts injected
    :class:`~repro.faults.models.FaultEvent`\\ s;
    ``split`` — a single stream can be split across a worker pool with
    bit-identical results (``split_jobs=`` option /
    ``REPRO_SPLIT_JOBS``), the SFA-style intra-stream parallel path.
    """

    resume: bool = False
    batch: bool = False
    activity_profile: bool = False
    report_identity: bool = True
    fault_events: bool = False
    split: bool = False
    description: str = ""


@dataclass
class BackendResult:
    """Normalised result of one backend scan.

    ``reports`` follow golden-simulator conventions (0-based end
    offsets); ``profile`` always carries at least ``symbols`` and
    ``reports`` counts (full activity only when the backend's
    capabilities claim ``activity_profile``); ``checkpoint`` resumes the
    stream on backends supporting it.  ``stats``, ``output_buffer`` and
    ``detected`` are substrate extras: run statistics, the CBOX
    output-buffer model, and fault-parity detection cycles.
    """

    reports: List[Report]
    profile: ActivityProfile
    checkpoint: Optional[Checkpoint] = None
    stats: Optional[RunStats] = None
    output_buffer: Optional[object] = None
    detected: Tuple[int, ...] = field(default_factory=tuple)

    def report_offsets(self) -> List[int]:
        return sorted({report.offset for report in self.reports})


class BackendStream:
    """Stateful chunked scanner over one backend (global offsets)."""

    def __init__(self, backend: "AutomatonBackend"):
        self._backend = backend
        self.checkpoint: Optional[Checkpoint] = None

    @property
    def position(self) -> int:
        if self.checkpoint is None:
            return 0
        return self.checkpoint.symbols_processed

    def scan(self, chunk: bytes, *, collect_reports: bool = True) -> BackendResult:
        result = self._backend.scan(
            chunk, collect_reports=collect_reports, resume=self.checkpoint
        )
        self.checkpoint = result.checkpoint
        return result


class AutomatonBackend:
    """Base class / protocol for execution backends.

    Subclasses implement :meth:`from_artifact`, :meth:`scan`, and
    :meth:`capabilities`; ``scan_many`` and ``stream`` have protocol-level
    defaults (per-stream loop; checkpoint-driven scanner).  ``name`` is
    set by :func:`repro.backends.registry.register_backend`.
    """

    #: Canonical registry name (assigned at registration).
    name: str = "abstract"

    #: True when :meth:`from_artifact` consumes the artifact's packed
    #: kernel tables — the engine uses this to decide whether a backend
    #: construction failure on a warm cache hit indicts the artifact
    #: (quarantine + recompile) or the request itself.
    consumes_kernel_tables: bool = False

    @classmethod
    def from_artifact(
        cls, artifact: "CompiledArtifact", **options
    ) -> "AutomatonBackend":
        raise NotImplementedError

    def capabilities(self) -> BackendCapabilities:
        raise NotImplementedError

    def scan(
        self,
        data: bytes,
        *,
        collect_reports: bool = True,
        resume: Optional[Checkpoint] = None,
    ) -> BackendResult:
        raise NotImplementedError

    def scan_many(
        self,
        streams: Sequence[bytes],
        *,
        resumes: Optional[Sequence[Optional[Checkpoint]]] = None,
        collect_reports: bool = True,
    ) -> List[BackendResult]:
        streams = list(streams)
        resumes = require_resume_count(resumes, len(streams))
        return [
            self.scan(data, collect_reports=collect_reports, resume=resume)
            for data, resume in zip(streams, resumes)
        ]

    def stream(self) -> BackendStream:
        if not self.capabilities().resume:
            raise SimulationError(
                f"backend {self.name!r} does not support checkpointed "
                "streaming (capabilities().resume is False)"
            )
        return BackendStream(self)

    def _basic_result(
        self,
        reports: List[Report],
        *,
        symbols: int,
        report_count: Optional[int] = None,
        checkpoint: Optional[Checkpoint] = None,
        stats: Optional[RunStats] = None,
    ) -> BackendResult:
        """Result with a symbols/reports-only activity profile."""
        profile = ActivityProfile()
        profile.add_activity(
            symbols=symbols,
            reports=len(reports) if report_count is None else report_count,
        )
        return BackendResult(reports, profile, checkpoint, stats)
