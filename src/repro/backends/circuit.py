"""The circuit-interpreter backend: element-level ANML semantics.

Lifts the artifact's homogeneous automaton into a pure-STE
:class:`~repro.automata.elements.CircuitAutomaton` and scans with the
set-based :class:`~repro.sim.circuit.CircuitSimulator`.  Deliberately
the slowest, most literal substrate in the registry: per-symbol Python
sets, no bitset packing, no placement — which makes it a third
independent implementation of the report semantics for the differential
matrix (a bug would have to be reproduced in set algebra, in the golden
kernel, *and* in the mapped kernel to slip through).
"""

from __future__ import annotations

from typing import Optional

from repro.automata.anml import HomogeneousAutomaton
from repro.automata.elements import CircuitAutomaton
from repro.backends.artifact import CompiledArtifact
from repro.backends.base import (
    AutomatonBackend,
    BackendCapabilities,
    BackendResult,
)
from repro.backends.registry import register_backend
from repro.backends.validation import require_bytes
from repro.errors import SimulationError
from repro.sim.circuit import CircuitSimulator
from repro.sim.golden import Checkpoint

_CAPABILITIES = BackendCapabilities(
    resume=False,
    batch=False,
    activity_profile=False,
    report_identity=True,
    fault_events=False,
    description=(
        "set-based element-level interpreter over the automaton lifted "
        "to an ANML circuit; independent reference, whole-stream only"
    ),
)


def _lift_to_circuit(automaton: HomogeneousAutomaton) -> CircuitAutomaton:
    """A pure-STE circuit with the automaton's exact structure."""
    circuit = CircuitAutomaton()
    for ste in automaton.stes():
        circuit.add_ste(
            ste.ste_id,
            ste.symbols,
            start=ste.start,
            reporting=ste.reporting,
            report_code=ste.report_code,
        )
    for source, target in automaton.edges():
        circuit.connect(source, target)
    return circuit


@register_backend("circuit", aliases=("circuit-interpreter",))
class CircuitInterpreterBackend(AutomatonBackend):
    """Execution on the element-level circuit interpreter."""

    def __init__(self, simulator: CircuitSimulator):
        self.simulator = simulator

    @classmethod
    def from_artifact(
        cls, artifact: CompiledArtifact, **_options
    ) -> "CircuitInterpreterBackend":
        return cls(CircuitSimulator(_lift_to_circuit(artifact.automaton)))

    def capabilities(self) -> BackendCapabilities:
        return _CAPABILITIES

    def scan(
        self,
        data: bytes,
        *,
        collect_reports: bool = True,
        resume: Optional[Checkpoint] = None,
    ) -> BackendResult:
        if resume is not None:
            raise SimulationError(
                "backend 'circuit' does not support checkpointed resume"
            )
        require_bytes(data, "input")
        run = self.simulator.run(data)
        return self._basic_result(
            run.reports if collect_reports else [],
            symbols=len(data),
            report_count=len(run.reports),
        )
