"""Energy and power model (Section 5.3, Figure 9).

Per-symbol energy is driven by two activity factors the compiler's
mapping controls (and the functional simulator measures):

* **active partitions** — "even if one STE is active in a partition, it
  results in an array access and local switch access";
* **dynamic inter-partition transitions** — each costs a global-switch
  evaluation plus wire energy to and from the switch.

The *Ideal AP* comparison model assumes zero interconnect energy and an
optimistic 1 pJ/bit DRAM array access (conventional DRAM is 2.5-10
pJ/bit), exactly as Section 5.3 specifies.  Partition-disabling circuits
(wired-OR of the active-state vector, as in the Micron AP patent) are
assumed: idle partitions consume no dynamic energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.core.design import DesignPoint
from repro.core.params import AP, SRAM, ApParameters, SramParameters
from repro.errors import HardwareModelError


@dataclass
class ActivityProfile:
    """Dynamic activity counters accumulated over a simulated input stream.

    Produced by :class:`repro.sim.functional.MappedSimulator`; consumed by
    :class:`EnergyModel`.
    """

    symbols: int = 0
    #: Sum over cycles of partitions with at least one enabled or matched STE.
    partition_activations: int = 0
    #: Dynamic signals crossing partitions through a within-way G-switch.
    g1_crossings: int = 0
    #: Dynamic signals crossing through a 4-way G-switch.
    g4_crossings: int = 0
    #: Sum over cycles of within-way G-switches with at least one active input.
    g1_switch_activations: int = 0
    #: Sum over cycles of 4-way G-switches with at least one active input.
    g4_switch_activations: int = 0
    #: Report records generated.
    reports: int = 0

    def add_activity(
        self,
        *,
        symbols: int = 0,
        partition_activations: int = 0,
        g1_crossings: int = 0,
        g4_crossings: int = 0,
        g1_switch_activations: int = 0,
        g4_switch_activations: int = 0,
        reports: int = 0,
    ) -> None:
        """Bulk accounting hook for batch simulation kernels.

        The packed-bitset kernel computes whole chunks of activity at a
        time; this is the single audited mutation point through which
        those batched counters enter the energy model.
        """
        self.symbols += symbols
        self.partition_activations += partition_activations
        self.g1_crossings += g1_crossings
        self.g4_crossings += g4_crossings
        self.g1_switch_activations += g1_switch_activations
        self.g4_switch_activations += g4_switch_activations
        self.reports += reports

    def merged_with(self, other: "ActivityProfile") -> "ActivityProfile":
        return ActivityProfile(
            symbols=self.symbols + other.symbols,
            partition_activations=self.partition_activations
            + other.partition_activations,
            g1_crossings=self.g1_crossings + other.g1_crossings,
            g4_crossings=self.g4_crossings + other.g4_crossings,
            g1_switch_activations=self.g1_switch_activations
            + other.g1_switch_activations,
            g4_switch_activations=self.g4_switch_activations
            + other.g4_switch_activations,
            reports=self.reports + other.reports,
        )

    @property
    def average_active_partitions(self) -> float:
        if self.symbols == 0:
            return 0.0
        return self.partition_activations / self.symbols


class EnergyModel:
    """Derives Figure 9's energy/power series for one design point."""

    def __init__(
        self,
        design: DesignPoint,
        *,
        sram: SramParameters = SRAM,
        ap: ApParameters = AP,
    ):
        self.design = design
        self.sram = sram
        self.ap = ap

    # -- per-event energies ------------------------------------------------

    @property
    def partition_event_pj(self) -> float:
        """One active partition for one symbol: array read + L-switch."""
        return self.sram.access_energy_pj + self.design.l_switch.access_energy_pj

    @property
    def g1_event_pj(self) -> float:
        """One within-way G-switch evaluation (all outputs sensed)."""
        g1 = self.design.g1_switch
        return g1.access_energy_pj if g1 else 0.0

    @property
    def g4_event_pj(self) -> float:
        g4 = self.design.g4_switch
        return g4.access_energy_pj if g4 else 0.0

    @property
    def g1_wire_pj_per_crossing(self) -> float:
        """Wire energy to and from the within-way G-switch for one signal."""
        return (
            2.0
            * self.design.g_wire_mm
            * self.design.wires.energy_pj_per_mm_per_bit
        )

    @property
    def g4_wire_pj_per_crossing(self) -> float:
        return (
            2.0
            * self.design.g_wire4_mm
            * self.design.wires.energy_pj_per_mm_per_bit
        )

    # -- aggregate metrics ---------------------------------------------------

    def total_energy_pj(self, profile: ActivityProfile) -> float:
        return (
            profile.partition_activations * self.partition_event_pj
            + profile.g1_switch_activations * self.g1_event_pj
            + profile.g4_switch_activations * self.g4_event_pj
            + profile.g1_crossings * self.g1_wire_pj_per_crossing
            + profile.g4_crossings * self.g4_wire_pj_per_crossing
        )

    def energy_per_symbol_nj(self, profile: ActivityProfile) -> float:
        """Figure 9(a): nJ expended per input symbol."""
        if profile.symbols == 0:
            raise HardwareModelError("profile covers no symbols")
        return self.total_energy_pj(profile) / profile.symbols / 1000.0

    def average_power_watts(self, profile: ActivityProfile) -> float:
        """Figure 9(b): energy/symbol x symbol rate."""
        return (
            self.energy_per_symbol_nj(profile)
            * self.design.frequency_ghz
        )

    def peak_power_watts(self, states: int) -> float:
        """Worst case: every partition of a ``states``-sized NFA active.

        The 128K-STE CA_P prototype lands at ~73 W (the paper quotes a
        71.3 W maximum and a 75 W bound), far below the 160 W Xeon TDP.
        """
        partitions = -(-states // self.design.partition_size)
        ways = -(-partitions // self.design.partitions_per_way)
        per_cycle = partitions * self.partition_event_pj
        per_cycle += ways * self.g1_event_pj
        if self.design.g4_switch:
            per_cycle += -(-ways // 4) * self.g4_event_pj
        return per_cycle * self.design.frequency_ghz / 1000.0

    # -- the Ideal AP comparison model ----------------------------------------

    def ideal_ap_energy_per_symbol_nj(self, profile: ActivityProfile) -> float:
        """Ideal-AP energy for the *same mapping/activity*: DRAM rows only.

        Zero interconnect/routing-matrix energy; each active partition
        reads one 256-bit DRAM row at 1 pJ/bit.
        """
        if profile.symbols == 0:
            raise HardwareModelError("profile covers no symbols")
        row_pj = self.ap.dram_access_pj_per_bit * self.ap.row_bits
        return profile.partition_activations * row_pj / profile.symbols / 1000.0
