"""Cache Automaton design points: CA_P, CA_S, and exploration variants.

A :class:`DesignPoint` bundles the slice geometry, the switch topology,
the wire technology, and the mapping footprint, and derives from them the
pipeline timing (Table 3), throughput (Figure 7), reachability and area
(Figure 10), and capacity.  The two headline designs:

* ``CA_P`` — performance-optimised: STEs only in ``Array_L`` halves
  (4-way column mux), 128x128 within-way G-switches, 2 GHz operation;
* ``CA_S`` — space-optimised: full sub-arrays (8-way mux), 256x256
  within-way G-switches plus a 512x512 switch spanning 4 ways, 1.2 GHz.

Section 5.5's ablations are expressed as derived variants
(:meth:`DesignPoint.without_sa_cycling`, :meth:`DesignPoint.with_h_bus`),
and Figure 10's high-frequency/low-reachability corner as ``CA_64``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.core.geometry import PARTITION_SIZE, SliceGeometry, XEON_SLICE
from repro.core.params import GLOBAL_WIRES, H_BUS_WIRES, WireParameters
from repro.core.switches import SwitchInventory, SwitchSpec
from repro.core.timing import PipelineTiming, pipeline_timing
from repro.errors import HardwareModelError


@dataclass(frozen=True)
class DesignPoint:
    """One point in the Cache Automaton design space."""

    name: str
    description: str
    geometry: SliceGeometry = XEON_SLICE
    #: Mapping footprint: whole sub-arrays (CA_S) vs Array_L halves (CA_P).
    full_subarrays: bool = False
    #: STEs per partition (256 except for exploration corners).
    partition_size: int = PARTITION_SIZE
    #: Within-way G-switch wires per partition (0 disables the G-switch).
    g1_wires_per_partition: int = 16
    #: 4-way G-switch wires per partition (0 disables it).
    g4_wires_per_partition: int = 0
    ways_used: int = 8
    sense_amp_cycling: bool = True
    wires: WireParameters = GLOBAL_WIRES
    #: The frequency the paper chooses to operate at (<= max frequency).
    operating_frequency_ghz: float = 2.0

    # -- topology ------------------------------------------------------------

    @property
    def partitions_per_way(self) -> int:
        per_way_stes = self.geometry.stes_per_way(full_subarrays=self.full_subarrays)
        return per_way_stes // self.partition_size

    @property
    def partitions_per_slice(self) -> int:
        return self.partitions_per_way * self.ways_used

    @property
    def states_per_slice(self) -> int:
        return self.partitions_per_slice * self.partition_size

    @property
    def l_switch(self) -> SwitchSpec:
        """Local switch: partition inputs plus returning global wires.

        The physical L-switch is provisioned for the full interconnect
        (16 G1 + 8 G4 returning wires for a 256-STE partition — Table 2
        lists 280x256 for *both* designs, even though CA_P leaves the G4
        inputs unused).  Exploration points with more wires than the
        provision grow the switch accordingly.
        """
        provisioned = 24 * self.partition_size // PARTITION_SIZE
        wires = max(
            provisioned,
            self.g1_wires_per_partition + self.g4_wires_per_partition,
        )
        return SwitchSpec(self.partition_size + wires, self.partition_size)

    @property
    def g1_switch(self) -> Optional[SwitchSpec]:
        """Within-way global switch: all partitions' G1 wires cross-connect."""
        if self.g1_wires_per_partition == 0:
            return None
        ports = self.g1_wires_per_partition * self.partitions_per_way
        return SwitchSpec(ports, ports)

    @property
    def g4_switch(self) -> Optional[SwitchSpec]:
        """Four-way global switch (space-optimised design only)."""
        if self.g4_wires_per_partition == 0:
            return None
        ports = self.g4_wires_per_partition * self.partitions_per_way * 4
        return SwitchSpec(ports, ports)

    @property
    def column_mux_degree(self) -> int:
        mux = self.geometry.column_mux_degree(full_subarrays=self.full_subarrays)
        # Exploration corners with small partitions read fewer columns.
        return max(1, mux * self.partition_size // PARTITION_SIZE)

    # -- timing ----------------------------------------------------------------

    @property
    def g_wire_mm(self) -> float:
        return self.geometry.array_to_gswitch_mm

    @property
    def g_wire4_mm(self) -> float:
        return self.geometry.array_to_gswitch4_mm

    @property
    def l_wire_mm(self) -> float:
        """Return wire from the farthest global switch to the L-switch."""
        if self.g4_wires_per_partition:
            return self.g_wire4_mm
        if self.g1_wires_per_partition:
            return self.g_wire_mm
        return 0.0

    @property
    def timing(self) -> PipelineTiming:
        return pipeline_timing(
            column_mux_degree=self.column_mux_degree,
            l_switch=self.l_switch,
            g_switch=self.g1_switch,
            g_wire_mm=self.g_wire_mm,
            l_wire_mm=self.l_wire_mm,
            g_switch4=self.g4_switch,
            g_wire4_mm=self.g_wire4_mm,
            sense_amp_cycling=self.sense_amp_cycling,
            wires=self.wires,
        )

    @property
    def max_frequency_ghz(self) -> float:
        return self.timing.max_frequency_ghz

    @property
    def frequency_ghz(self) -> float:
        """Effective symbol rate: the chosen operating point, never above max."""
        return min(self.operating_frequency_ghz, self.max_frequency_ghz)

    @property
    def throughput_gbps(self) -> float:
        """Deterministic line rate: one 8-bit symbol per cycle."""
        return self.frequency_ghz * 8.0

    # -- reachability / area (Figure 10) -----------------------------------------

    @property
    def reachability(self) -> float:
        """Average number of states reachable from a state in one cycle.

        Every state reaches its whole partition through the L-switch; the
        partition's G1 wires reach the other partitions of the way, and
        G4 wires reach the remaining partitions of the 4-way group.  The
        per-state average weights the global wires by their share of the
        partition's states.
        """
        reach = float(self.partition_size)
        if self.g1_wires_per_partition:
            other = (self.partitions_per_way - 1) * self.partition_size
            reach += self.g1_wires_per_partition / self.partition_size * other
        if self.g4_wires_per_partition:
            group = 4 * self.partitions_per_way * self.partition_size
            beyond_way = group - self.partitions_per_way * self.partition_size
            reach += self.g4_wires_per_partition / self.partition_size * beyond_way
        return reach

    @property
    def max_fan_in(self) -> int:
        """Maximum incoming transitions per state (AP supports only 16)."""
        return self.partition_size

    def switch_inventory(self, states: Optional[int] = None) -> SwitchInventory:
        """The switch complement serving ``states`` (default: one slice)."""
        states = states or self.states_per_slice
        partitions = -(-states // self.partition_size)  # ceil
        ways = -(-partitions // self.partitions_per_way)
        return SwitchInventory(
            local=self.l_switch,
            local_count=partitions,
            global_way=self.g1_switch,
            global_way_count=ways if self.g1_switch else 0,
            global_ways4=self.g4_switch,
            global_ways4_count=-(-ways // 4) if self.g4_switch else 0,
            supported_states=partitions * self.partition_size,
        )

    def area_overhead_mm2(self, states: int = 32 * 1024) -> float:
        """Total switch area for a ``states``-sized state space (Fig. 10).

        Figure 10 reports overhead for 32K STEs.  The perf-optimised
        design stores 32K STEs across twice as many (half-filled)
        sub-arrays, hence twice the L-switch count of its per-slice
        inventory — which lands both designs at ~4.3-4.6 mm^2.
        """
        inventory = self.switch_inventory(states)
        return inventory.total_area_mm2()

    # -- capacity ---------------------------------------------------------------

    def cache_bytes_for_states(self, states: int) -> int:
        """Cache footprint (bytes) of a mapped automaton with ``states`` STEs.

        Each partition stores its STE one-hot columns (8 KB); partially
        filled partitions still occupy whole arrays.
        """
        partitions = -(-states // self.partition_size)
        return self.geometry.cache_bytes_for_partitions(
            partitions, full_subarrays=self.full_subarrays
        )

    # -- variants ---------------------------------------------------------------

    def without_sa_cycling(self) -> "DesignPoint":
        """Section 5.5 ablation: plain column-multiplexed reads."""
        return replace(
            self,
            name=f"{self.name}-noSA",
            description=f"{self.description} (no sense-amp cycling)",
            sense_amp_cycling=False,
            operating_frequency_ghz=1000.0,  # report the derived maximum
        )

    def with_h_bus(self) -> "DesignPoint":
        """Section 5.5 ablation: reuse the slice's H-Bus wires (300 ps/mm)."""
        return replace(
            self,
            name=f"{self.name}-HBus",
            description=f"{self.description} (H-Bus wires)",
            wires=H_BUS_WIRES,
            operating_frequency_ghz=1000.0,
        )

    def validate(self):
        if self.partition_size <= 0 or self.partition_size > PARTITION_SIZE:
            raise HardwareModelError(
                f"partition size {self.partition_size} outside (0, 256]"
            )
        if self.ways_used > self.geometry.ways:
            raise HardwareModelError("cannot use more ways than the slice has")
        if self.operating_frequency_ghz <= 0:
            raise HardwareModelError("operating frequency must be positive")


#: Performance-optimised design (Table 3: 438/227/263 ps, 2.3 GHz max, 2 GHz).
CA_P = DesignPoint(
    name="CA_P",
    description="performance-optimised Cache Automaton",
    full_subarrays=False,
    g1_wires_per_partition=16,
    g4_wires_per_partition=0,
    operating_frequency_ghz=2.0,
)

#: Space-optimised design (Table 3: 687/468/304 ps, 1.4 GHz max, 1.2 GHz).
CA_S = DesignPoint(
    name="CA_S",
    description="space-optimised Cache Automaton",
    full_subarrays=True,
    g1_wires_per_partition=16,
    g4_wires_per_partition=8,
    operating_frequency_ghz=1.2,
)

#: Figure 10's high-frequency corner: 64-state partitions, no global
#: switches — one sense phase per read, ~4 GHz, reachability 64.
CA_64 = DesignPoint(
    name="CA_64",
    description="64-state-reach exploration corner",
    full_subarrays=False,
    partition_size=64,
    g1_wires_per_partition=0,
    g4_wires_per_partition=0,
    operating_frequency_ghz=4.0,
)


def design_space() -> List[DesignPoint]:
    """The Figure 10 Cache Automaton design points, low to high reach."""
    return [CA_64, CA_P, CA_S]
