"""The three-stage symbol pipeline (Section 2.5, Figure 3).

Stage 1 reads the match vector (SRAM access) for symbol *t* while stage 2
propagates symbol *t-1* through the G-switch and stage 3 finishes *t-2*
through the L-switch — so after a 2-cycle fill, one symbol completes per
clock.  This module quantifies the paper's "fill-up and drain time are
inconsequential" remark: total cycles, effective throughput vs stream
length, and the latency from a symbol entering the pipe to its report
reaching the output buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.design import DesignPoint
from repro.errors import SimulationError

#: Pipeline depth: state-match, G-switch, L-switch.
PIPELINE_STAGES = 3


@dataclass(frozen=True)
class PipelineModel:
    """Fill/drain and latency accounting for one design point."""

    design: DesignPoint
    stages: int = PIPELINE_STAGES

    def total_cycles(self, symbols: int) -> int:
        """Cycles to fully process ``symbols`` (fill + steady state).

        The last symbol's L-switch write-back completes ``stages - 1``
        cycles after its match read issues.
        """
        if symbols < 0:
            raise SimulationError("negative symbol count")
        if symbols == 0:
            return 0
        return symbols + self.stages - 1

    def report_latency_cycles(self) -> int:
        """Cycles from a symbol entering stage 1 to its report event.

        A match is known at the end of stage 1; the report vector check
        (AND with the output mask, Section 2.8) rides the remaining
        stages to the CBOX.
        """
        return self.stages

    def report_latency_ns(self) -> float:
        return self.report_latency_cycles() / self.design.frequency_ghz

    def effective_throughput_gbps(self, symbols: int) -> float:
        """Throughput including fill/drain — converges to the line rate."""
        cycles = self.total_cycles(symbols)
        if cycles == 0:
            return 0.0
        return (symbols / cycles) * self.design.throughput_gbps

    def fill_drain_overhead(self, symbols: int) -> float:
        """Fraction of cycles lost to fill/drain: (stages-1)/total.

        For the paper's MB-GB streams this is ~1e-6 — "inconsequential".
        """
        cycles = self.total_cycles(symbols)
        if cycles == 0:
            return 0.0
        return (self.stages - 1) / cycles

    def runtime_ms(self, symbols: int) -> float:
        return self.total_cycles(symbols) / (self.design.frequency_ghz * 1e9) * 1e3
