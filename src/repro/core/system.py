"""System integration models (Sections 2.8-2.10, 2.9).

Everything around the datapath that makes Cache Automaton a *system*:

* the **input FIFO** in the CBOX — 128 one-byte entries refilled a cache
  block (64 B) at a time through regular cache accesses;
* the **configuration model** — bitstream size, load bandwidth, and the
  resulting configuration latency (the paper measures ~0.2 ms for its
  largest benchmark, vs tens of ms for the AP), plus the
  overlap-configuration-with-processing optimisation sketched as future
  work in Section 2.10;
* the **ISA descriptor** — the one new instruction: input base address,
  symbol count, report-buffer interrupt vector;
* **way sharing** with the CPU via Intel CAT (Section 2.9): which ways of
  which slices run NFAs, what remains for regular caching, and the
  peak-power hint the compiler hands the OS scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.compiler.bitstream import Bitstream
from repro.compiler.mapping import Mapping
from repro.core.design import DesignPoint
from repro.core.energy import EnergyModel
from repro.errors import HardwareModelError, SimulationError

#: CBOX input FIFO entries (Section 2.8).
INPUT_FIFO_ENTRIES = 128

#: Cache block size: one FIFO refill transfers this many input bytes.
CACHE_BLOCK_BYTES = 64


@dataclass
class InputFifoModel:
    """Counts FIFO refills for an input stream of a given length.

    The FIFO drains one symbol per pipeline clock and is refilled one
    cache block at a time; with a block refill every 64 cycles against a
    128-entry buffer, the FIFO never underruns in steady state — the
    property this model makes checkable.
    """

    entries: int = INPUT_FIFO_ENTRIES
    block_bytes: int = CACHE_BLOCK_BYTES

    def __post_init__(self):
        if self.block_bytes > self.entries:
            raise HardwareModelError(
                "a refill block must fit in the FIFO "
                f"({self.block_bytes} > {self.entries})"
            )

    def refills_for(self, input_bytes: int) -> int:
        """Cache-block reads needed to stream ``input_bytes`` symbols."""
        if input_bytes < 0:
            raise SimulationError("negative input length")
        return -(-input_bytes // self.block_bytes)

    def underruns(self, input_bytes: int) -> int:
        """Refills arrive every ``block_bytes`` drained symbols; capacity
        is double that, so steady-state underruns are structurally zero."""
        del input_bytes
        return 0


@dataclass(frozen=True)
class ScanDescriptor:
    """The operand block of the Cache Automaton ISA instruction (§2.10).

    One instruction supplies everything the CBOX needs: where the input
    bytes live, how many to process, and where reports go.
    """

    input_base_address: int
    symbol_count: int
    report_buffer_address: int

    def __post_init__(self):
        if self.symbol_count <= 0:
            raise HardwareModelError("symbol count must be positive")
        if self.input_base_address < 0 or self.report_buffer_address < 0:
            raise HardwareModelError("addresses must be non-negative")

    def input_cache_blocks(self) -> int:
        return -(-self.symbol_count // CACHE_BLOCK_BYTES)


@dataclass(frozen=True)
class ConfigurationModel:
    """Configuration latency from bitstream size and store bandwidth.

    Configuration uses ordinary CPU stores: STE column images load as
    binary pages (huge-page mapped so set-index bits match), and switches
    program through their write mode.  The default bandwidth reproduces
    the paper's ~0.2 ms for the largest benchmark; the AP needs tens of
    milliseconds ([36]).
    """

    #: Effective configuration store bandwidth (bytes/s).  A Xeon-class
    #: core streams ~10 GB/s to L3.
    bandwidth_bytes_per_s: float = 10e9

    def configuration_bytes(self, bitstream: Bitstream) -> int:
        return (bitstream.configuration_bits() + 7) // 8

    def configuration_ms(self, bitstream: Bitstream) -> float:
        return self.configuration_bytes(bitstream) / self.bandwidth_bytes_per_s * 1e3

    def overlapped_configuration_ms(
        self, bitstreams: List[Bitstream], *, slices: int = 8
    ) -> float:
        """Section 2.10's future-work optimisation: configure one slice
        while others keep processing.  With per-slice configuration
        streams, only the longest slice's load is exposed."""
        if not bitstreams:
            return 0.0
        if slices < 1:
            raise HardwareModelError("need at least one slice")
        per_slice = sorted(
            self.configuration_ms(bitstream) for bitstream in bitstreams
        )
        # Round-robin the bitstreams over slices; exposed time is the
        # heaviest slice's total.
        loads = [0.0] * slices
        for cost in reversed(per_slice):
            loads[loads.index(min(loads))] += cost
        return max(loads)


@dataclass(frozen=True)
class WayAllocation:
    """Intel CAT-style way partitioning between NFAs and regular data.

    Section 2.9: NFA computation occupies 4-8 ways per slice; the other
    12-16 ways stay available to co-running processes, with the NFA
    process pinned to a high-priority class of service so its ways are
    never evicted.
    """

    design: DesignPoint
    nfa_ways: int

    def __post_init__(self):
        if not 1 <= self.nfa_ways <= self.design.geometry.ways:
            raise HardwareModelError(
                f"{self.nfa_ways} NFA ways outside 1..{self.design.geometry.ways}"
            )

    @property
    def data_ways(self) -> int:
        return self.design.geometry.ways - self.nfa_ways

    @property
    def data_capacity_fraction(self) -> float:
        """Fraction of the slice still serving ordinary cache traffic.

        The perf-optimised design additionally leaves the Array_H half of
        every NFA way usable for data (Section 3.1)."""
        total = self.design.geometry.ways
        fraction = self.data_ways / total
        if not self.design.full_subarrays:
            fraction += 0.5 * self.nfa_ways / total
        return fraction

    def nfa_state_capacity(self, slices: int = 1) -> int:
        per_way = self.design.geometry.stes_per_way(
            full_subarrays=self.design.full_subarrays
        )
        return per_way * self.nfa_ways * slices

    def peak_power_hint_watts(self, mapping: Mapping) -> float:
        """The coarse peak-power estimate the compiler hands the OS
        scheduler (Section 2.9) for TDP admission control."""
        model = EnergyModel(self.design)
        return model.peak_power_watts(
            mapping.partition_count * self.design.partition_size
        )


def scan_time_ms(design: DesignPoint, symbol_count: int) -> float:
    """Pure streaming time for ``symbol_count`` symbols at line rate."""
    if symbol_count < 0:
        raise SimulationError("negative symbol count")
    return symbol_count / (design.frequency_ghz * 1e9) * 1e3


def end_to_end_ms(
    design: DesignPoint,
    bitstream: Bitstream,
    symbol_count: int,
    *,
    configuration: ConfigurationModel = ConfigurationModel(),
) -> float:
    """Configuration + streaming latency for one scan job."""
    return configuration.configuration_ms(bitstream) + scan_time_ms(
        design, symbol_count
    )
