"""The Cache Automaton hardware model and design points."""

from repro.core.design import CA_64, CA_P, CA_S, DesignPoint, design_space
from repro.core.energy import ActivityProfile, EnergyModel
from repro.core.geometry import PARTITION_SIZE, SliceGeometry, XEON_SLICE
from repro.core.pipeline import PIPELINE_STAGES, PipelineModel
from repro.core.system import (
    ConfigurationModel,
    InputFifoModel,
    ScanDescriptor,
    WayAllocation,
    end_to_end_ms,
    scan_time_ms,
)
from repro.core.switches import CrossbarSwitch, SwitchInventory, SwitchSpec
from repro.core.timing import PipelineTiming, pipeline_timing, state_match_delay_ps

__all__ = [
    "ActivityProfile",
    "CA_64",
    "CA_P",
    "CA_S",
    "CrossbarSwitch",
    "DesignPoint",
    "EnergyModel",
    "PARTITION_SIZE",
    "PIPELINE_STAGES",
    "PipelineModel",
    "ConfigurationModel",
    "InputFifoModel",
    "ScanDescriptor",
    "WayAllocation",
    "end_to_end_ms",
    "scan_time_ms",
    "PipelineTiming",
    "SliceGeometry",
    "SwitchInventory",
    "SwitchSpec",
    "XEON_SLICE",
    "design_space",
    "pipeline_timing",
    "state_match_delay_ps",
]
