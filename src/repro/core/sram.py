"""Functional SRAM array model with column multiplexing (Section 2.6).

The timing side of sense-amplifier cycling lives in
:mod:`repro.core.timing`; this module models the *data path*: a 256x128
6T array whose bit-lines share sense amplifiers through a column
multiplexer, read out either the conventional way (one full
pre-charge/decode/sense cycle per multiplexer position) or with the
paper's optimised sequence (pre-charge all bit-lines once, then cycle
SAE/SEL through the positions).

Both sequences must return the same row data — the optimisation changes
*when* bits appear, not *which* — and the model exposes the per-phase
schedule so tests can check the Figure 4 waveform properties: one
pre-charge + word-line assertion, then ``mux`` sense pulses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.params import SRAM, SramParameters
from repro.errors import HardwareModelError


@dataclass(frozen=True)
class SensePhase:
    """One sense event: which mux position, when, which bits came out."""

    select: int
    start_ps: float
    bits: np.ndarray  # one bit per sense amp


@dataclass(frozen=True)
class RowRead:
    """A completed row read: the data plus its phase schedule."""

    data: np.ndarray  # all columns, in column order
    phases: List[SensePhase]
    total_ps: float


class SramArray:
    """A 6T array of ``rows x columns`` cells with shared sense amps."""

    def __init__(
        self,
        rows: int = 256,
        columns: int = 128,
        column_mux: int = 4,
        *,
        parameters: SramParameters = SRAM,
    ):
        if rows <= 0 or columns <= 0:
            raise HardwareModelError("array dimensions must be positive")
        if column_mux <= 0 or columns % column_mux:
            raise HardwareModelError(
                f"{columns} columns do not divide into mux degree {column_mux}"
            )
        self.rows = rows
        self.columns = columns
        self.column_mux = column_mux
        self.parameters = parameters
        self.cells = np.zeros((rows, columns), dtype=np.uint8)

    @property
    def sense_amps(self) -> int:
        return self.columns // self.column_mux

    # -- write path -----------------------------------------------------------

    def write_column(self, column: int, bits: np.ndarray):
        """Store one STE's one-hot label image into a column."""
        if not 0 <= column < self.columns:
            raise HardwareModelError(f"column {column} out of range")
        if bits.shape != (self.rows,):
            raise HardwareModelError(
                f"column image must have {self.rows} bits, got {bits.shape}"
            )
        self.cells[:, column] = bits.astype(np.uint8) & 1

    def write_row(self, row: int, bits: np.ndarray):
        if not 0 <= row < self.rows:
            raise HardwareModelError(f"row {row} out of range")
        if bits.shape != (self.columns,):
            raise HardwareModelError(
                f"row image must have {self.columns} bits, got {bits.shape}"
            )
        self.cells[row] = bits.astype(np.uint8) & 1

    # -- read path ----------------------------------------------------------------

    def _sense(self, row: int, select: int) -> np.ndarray:
        """Bits seen by the sense amps at multiplexer position ``select``.

        Column ``c`` connects to sense amp ``c // mux`` when
        ``c % mux == select`` (interleaved multiplexing).
        """
        return self.cells[row, select :: self.column_mux].copy()

    def _assemble(self, phases: List[SensePhase]) -> np.ndarray:
        data = np.zeros(self.columns, dtype=np.uint8)
        for phase in phases:
            data[phase.select :: self.column_mux] = phase.bits
        return data

    def read_row_baseline(self, row: int) -> RowRead:
        """Conventional multiplexed read: ``mux`` full array cycles.

        Each position pays decode + pre-charge + sense (one whole cycle),
        which is why matching 256 STEs costs 1024 ps without the
        optimisation.
        """
        self._check_row(row)
        cycle = self.parameters.cycle_time_ps
        phases = [
            SensePhase(select, start_ps=select * cycle, bits=self._sense(row, select))
            for select in range(self.column_mux)
        ]
        return RowRead(self._assemble(phases), phases, self.column_mux * cycle)

    def read_row_cycled(self, row: int) -> RowRead:
        """Sense-amplifier cycling (Figure 4's optimised sequence).

        PCH and RWL assert once — all bit-lines develop their differential
        together — then SAE/SEL pulse through the positions back-to-back.
        """
        self._check_row(row)
        setup = self.parameters.precharge_wordline_ps
        step = self.parameters.sense_step_ps
        phases = [
            SensePhase(
                select,
                start_ps=setup + select * step,
                bits=self._sense(row, select),
            )
            for select in range(self.column_mux)
        ]
        return RowRead(
            self._assemble(phases), phases, setup + self.column_mux * step
        )

    def _check_row(self, row: int):
        if not 0 <= row < self.rows:
            raise HardwareModelError(f"row {row} out of range")

    def match_vector(self, symbol: int, *, cycled: bool = True) -> np.ndarray:
        """The automata read: broadcast ``symbol`` as the row address."""
        read = self.read_row_cycled(symbol) if cycled else self.read_row_baseline(
            symbol
        )
        return read.data


class RepairableArray:
    """An SRAM array with spare columns for mapping out dead bit-lines.

    Figure 2(c): "Each array has 2 redundant columns and 4 redundant rows
    to map out dead lines."  STE placement addresses *logical* columns;
    the repair map steers a logical column whose physical line is dead to
    a spare, so the compiler never needs to know about defects.
    """

    def __init__(
        self,
        array: SramArray | None = None,
        *,
        spare_columns: int = 2,
    ):
        self.array = array or SramArray()
        if spare_columns < 0 or spare_columns >= self.array.columns:
            raise HardwareModelError(f"bad spare column count {spare_columns}")
        self.spare_columns = spare_columns
        #: Logical columns usable for STEs (the spares are reserved).
        self.logical_columns = self.array.columns - spare_columns
        self._repair_map: dict[int, int] = {}
        self._spares_used = 0

    def mark_defective(self, logical_column: int):
        """Retire a logical column's physical line onto a spare.

        Data already stored in the column is lost (repair happens at
        manufacturing test, before configuration).  Raises when the
        spares are exhausted — the array must then be disabled.
        """
        self._check_logical(logical_column)
        if logical_column in self._repair_map:
            raise HardwareModelError(
                f"column {logical_column} already repaired"
            )
        if self._spares_used >= self.spare_columns:
            raise HardwareModelError(
                f"no spare columns left for column {logical_column}"
            )
        spare = self.logical_columns + self._spares_used
        self._repair_map[logical_column] = spare
        self._spares_used += 1

    def physical_column(self, logical_column: int) -> int:
        self._check_logical(logical_column)
        return self._repair_map.get(logical_column, logical_column)

    def write_column(self, logical_column: int, bits: np.ndarray):
        self.array.write_column(self.physical_column(logical_column), bits)

    def match_vector(self, symbol: int) -> np.ndarray:
        """Match vector over *logical* columns (repairs transparent)."""
        raw = self.array.match_vector(symbol)
        data = raw[: self.logical_columns].copy()
        for logical, spare in self._repair_map.items():
            data[logical] = raw[spare]
        return data

    def _check_logical(self, logical_column: int):
        if not 0 <= logical_column < self.logical_columns:
            raise HardwareModelError(
                f"logical column {logical_column} outside "
                f"0..{self.logical_columns - 1}"
            )
