"""The 8T-SRAM crossbar switch model (Section 2.7, Table 2).

An automaton switch is an 8T bit-cell array without decode/control
overhead: a 6T cell stores each cross-point enable bit and a 2T block
gates the input bit-line onto the output bit-line, so an output wire
carries the wired-OR of all enabled active inputs.  Two operating modes:
*crossbar* (evaluate transitions) and *write* (program enable bits).

Delay, energy/bit and area are published for four design sizes (Table 2);
:class:`SwitchModel` interpolates between those anchor points on log-log
axes so the Figure 10 design-space sweep can evaluate other sizes, while
reproducing the published values exactly at the anchors.

The module also contains :class:`CrossbarSwitch`, a *functional* model of
the switch used by the mapped simulator and bitstream tests: it stores the
enable matrix and evaluates the wired-OR semantics with numpy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import HardwareModelError

#: Table 2 anchor points: (inputs, outputs) -> (delay ps, energy pJ/bit, area mm^2).
TABLE2_ANCHORS = {
    (128, 128): (128.0, 0.16, 0.011),
    (256, 256): (163.0, 0.19, 0.032),
    (280, 256): (163.5, 0.191, 0.033),
    (512, 512): (327.0, 0.381, 0.1293),
}


def _loglog_interpolate(x: float, points: Sequence[Tuple[float, float]]) -> float:
    """Piecewise power-law interpolation through ``points`` (x ascending).

    Outside the anchor range the nearest segment's slope extrapolates,
    which keeps small/large Figure 10 design points physically monotone.
    """
    if x <= 0:
        raise HardwareModelError(f"interpolation input must be positive: {x}")
    if len(points) < 2:
        raise HardwareModelError("need at least two anchor points")
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x <= x1 or (x1, y1) == points[-1]:
            if x0 == x1:
                return y0
            slope = math.log(y1 / y0) / math.log(x1 / x0)
            return y0 * (x / x0) ** slope
    raise AssertionError("unreachable")


# Anchor tables keyed on the physically relevant dimension.
_DELAY_POINTS = [(128.0, 128.0), (256.0, 163.0), (280.0, 163.5), (512.0, 327.0)]
_ENERGY_POINTS = [(128.0, 0.16), (256.0, 0.19), (280.0, 0.191), (512.0, 0.381)]
_AREA_POINTS = [  # keyed on cross-point count (inputs * outputs)
    (128.0 * 128, 0.011),
    (256.0 * 256, 0.032),
    (280.0 * 256, 0.033),
    (512.0 * 512, 0.1293),
]


@dataclass(frozen=True)
class SwitchSpec:
    """One crossbar switch design point: ``inputs x outputs`` 1-bit ports."""

    inputs: int
    outputs: int

    def __post_init__(self):
        if self.inputs <= 0 or self.outputs <= 0:
            raise HardwareModelError(f"switch must have positive ports: {self}")

    @property
    def cross_points(self) -> int:
        return self.inputs * self.outputs

    @property
    def delay_ps(self) -> float:
        """Crossbar-mode propagation delay (input valid -> output sensed).

        Dominated by the output bit-line RC, which grows with the number
        of input ports hanging off each OBL.
        """
        return _loglog_interpolate(float(self.inputs), _DELAY_POINTS)

    @property
    def energy_pj_per_bit(self) -> float:
        """Dynamic energy per output bit evaluated in crossbar mode."""
        return _loglog_interpolate(float(self.inputs), _ENERGY_POINTS)

    @property
    def area_mm2(self) -> float:
        """Layout area (8T push-rule cells, no decoder in crossbar mode)."""
        return _loglog_interpolate(float(self.cross_points), _AREA_POINTS)

    @property
    def access_energy_pj(self) -> float:
        """Energy of one full crossbar evaluation (all outputs sensed)."""
        return self.energy_pj_per_bit * self.outputs

    def __str__(self) -> str:
        return f"{self.inputs}x{self.outputs}"


class CrossbarSwitch:
    """Functional 8T crossbar: programmable enables, wired-OR evaluation.

    ``enable[i, j]`` connects input port ``i`` to output port ``j``.  In
    crossbar mode, ``evaluate`` computes, for every output, the OR of its
    enabled active inputs — the active-low wired-AND of Section 2.7 seen
    from the logical (active-high) side.

    Manufacturing/wear-out defects on the port wires are modelled as
    stuck-at faults (:meth:`set_stuck_input`, :meth:`set_stuck_output`):
    a stuck-at-0 wire never carries its signal, a stuck-at-1 wire always
    does, regardless of the programmed enables.  The fault-injection
    campaign (:mod:`repro.faults`) uses these to mirror its kernel-level
    crossbar faults at the structural layer.
    """

    def __init__(self, spec: SwitchSpec):
        self.spec = spec
        self.enable = np.zeros((spec.inputs, spec.outputs), dtype=bool)
        self._stuck_in_zero = np.zeros(spec.inputs, dtype=bool)
        self._stuck_in_one = np.zeros(spec.inputs, dtype=bool)
        self._stuck_out_zero = np.zeros(spec.outputs, dtype=bool)
        self._stuck_out_one = np.zeros(spec.outputs, dtype=bool)

    def connect(self, input_port: int, output_port: int):
        """Program one cross-point (write mode)."""
        self._check_ports(input_port, output_port)
        self.enable[input_port, output_port] = True

    def disconnect(self, input_port: int, output_port: int):
        self._check_ports(input_port, output_port)
        self.enable[input_port, output_port] = False

    def write_row(self, input_port: int, row: np.ndarray):
        """Program a whole word-line of enables in one write-mode cycle."""
        if row.shape != (self.spec.outputs,):
            raise HardwareModelError(
                f"row must have {self.spec.outputs} bits, got {row.shape}"
            )
        self._check_ports(input_port, 0)
        self.enable[input_port] = row.astype(bool)

    def set_stuck_input(self, input_port: int, value: int):
        """Model input wire ``input_port`` stuck at ``value`` (0 or 1)."""
        self._check_ports(input_port, 0)
        self._set_stuck(self._stuck_in_zero, self._stuck_in_one, input_port, value)

    def set_stuck_output(self, output_port: int, value: int):
        """Model output wire ``output_port`` stuck at ``value`` (0 or 1)."""
        self._check_ports(0, output_port)
        self._set_stuck(
            self._stuck_out_zero, self._stuck_out_one, output_port, value
        )

    @staticmethod
    def _set_stuck(zeros: np.ndarray, ones: np.ndarray, port: int, value: int):
        if value not in (0, 1):
            raise HardwareModelError(f"stuck value must be 0 or 1, got {value}")
        zeros[port] = value == 0
        ones[port] = value == 1

    def clear_stuck_faults(self):
        """Remove all injected stuck-at wire faults."""
        for mask in (
            self._stuck_in_zero,
            self._stuck_in_one,
            self._stuck_out_zero,
            self._stuck_out_one,
        ):
            mask[:] = False

    def has_stuck_faults(self) -> bool:
        return bool(
            self._stuck_in_zero.any()
            or self._stuck_in_one.any()
            or self._stuck_out_zero.any()
            or self._stuck_out_one.any()
        )

    def evaluate(self, active_inputs: np.ndarray) -> np.ndarray:
        """Crossbar mode: boolean outputs = wired-OR of enabled inputs.

        Stuck-at wire faults apply here: a stuck input drives (or never
        drives) its row regardless of the actual activation, and a stuck
        output overrides whatever the wired-OR computed.
        """
        if active_inputs.shape != (self.spec.inputs,):
            raise HardwareModelError(
                f"expected {self.spec.inputs} inputs, got {active_inputs.shape}"
            )
        driven = (
            active_inputs.astype(bool) | self._stuck_in_one
        ) & ~self._stuck_in_zero
        outputs = (driven[:, None] & self.enable).any(axis=0)
        return (outputs | self._stuck_out_one) & ~self._stuck_out_zero

    def fan_in(self, output_port: int) -> int:
        """Number of inputs wired to ``output_port`` (multi-fan-in support)."""
        self._check_ports(0, output_port)
        return int(self.enable[:, output_port].sum())

    def used_cross_points(self) -> int:
        return int(self.enable.sum())

    def _check_ports(self, input_port: int, output_port: int):
        if not 0 <= input_port < self.spec.inputs:
            raise HardwareModelError(f"input port {input_port} out of range")
        if not 0 <= output_port < self.spec.outputs:
            raise HardwareModelError(f"output port {output_port} out of range")


@dataclass(frozen=True)
class SwitchInventory:
    """The switch complement of one design point (a Table 2 row)."""

    local: SwitchSpec
    local_count: int
    global_way: SwitchSpec | None
    global_way_count: int
    global_ways4: SwitchSpec | None
    global_ways4_count: int
    #: STE state space this inventory serves (for per-STE area normalising).
    supported_states: int

    def total_area_mm2(self) -> float:
        area = self.local.area_mm2 * self.local_count
        if self.global_way is not None:
            area += self.global_way.area_mm2 * self.global_way_count
        if self.global_ways4 is not None:
            area += self.global_ways4.area_mm2 * self.global_ways4_count
        return area

    def area_mm2_for_states(self, states: int) -> float:
        """Scale the inventory's area to a ``states``-sized state space."""
        if self.supported_states <= 0:
            raise HardwareModelError("inventory supports no states")
        return self.total_area_mm2() * states / self.supported_states

    def rows(self) -> List[tuple]:
        """(kind, spec, count, delay, energy/bit, area) rows for Table 2."""
        table = [("L", self.local, self.local_count)]
        if self.global_way is not None:
            table.append(("G1", self.global_way, self.global_way_count))
        if self.global_ways4 is not None:
            table.append(("G4", self.global_ways4, self.global_ways4_count))
        return [
            (
                kind,
                str(spec),
                count,
                spec.delay_ps,
                spec.energy_pj_per_bit,
                spec.area_mm2,
            )
            for kind, spec, count in table
        ]
