"""Pipeline-stage timing and operating-frequency derivation.

Section 2.5's three-stage pipeline processes one input symbol per clock;
the clock period is the slowest of:

1. **state-match** — read one SRAM row for every STE of a partition.
   Column multiplexing forces several sense phases; the sense-amplifier
   cycling optimisation (Section 2.6) pre-charges all bit-lines once and
   then cycles the sense-amp enable, replacing ``mux`` full array cycles
   with one pre-charge phase plus ``mux`` short sense steps;
2. **G-switch** — wire run from the array to the global switch plus the
   global crossbar delay;
3. **L-switch** — wire run back plus the local crossbar delay.

Every value in Table 3 and Table 4 is computed by this module from the
constants in :mod:`repro.core.params` and the slice geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.params import SRAM, GLOBAL_WIRES, SramParameters, WireParameters
from repro.core.switches import SwitchSpec
from repro.errors import HardwareModelError


def state_match_delay_ps(
    column_mux_degree: int,
    *,
    sense_amp_cycling: bool = True,
    sram: SramParameters = SRAM,
) -> float:
    """Delay to read a partition's match vector.

    Without cycling, every multiplexed bit costs a full array cycle
    (4-way mux => 1024 ps, Section 2.6's baseline).  With cycling, one
    pre-charge + word-line phase is followed by ``mux`` sense steps
    (4-way => 188 + 4 x 62.5 = 438 ps, the Table 3 CA_P value).
    """
    if column_mux_degree < 1:
        raise HardwareModelError(f"bad column mux degree {column_mux_degree}")
    if sense_amp_cycling:
        return sram.precharge_wordline_ps + column_mux_degree * sram.sense_step_ps
    return column_mux_degree * sram.cycle_time_ps


@dataclass(frozen=True)
class PipelineTiming:
    """Delays of the three pipeline stages for one design point."""

    state_match_ps: float
    g_switch_ps: float
    l_switch_ps: float

    @property
    def clock_period_ps(self) -> float:
        return max(self.state_match_ps, self.g_switch_ps, self.l_switch_ps)

    @property
    def max_frequency_ghz(self) -> float:
        return 1000.0 / self.clock_period_ps

    @property
    def bottleneck(self) -> str:
        delays = {
            "state-match": self.state_match_ps,
            "g-switch": self.g_switch_ps,
            "l-switch": self.l_switch_ps,
        }
        return max(delays, key=delays.get)


def pipeline_timing(
    *,
    column_mux_degree: int,
    l_switch: SwitchSpec,
    g_switch: Optional[SwitchSpec],
    g_wire_mm: float,
    l_wire_mm: float,
    g_switch4: Optional[SwitchSpec] = None,
    g_wire4_mm: float = 0.0,
    sense_amp_cycling: bool = True,
    wires: WireParameters = GLOBAL_WIRES,
    sram: SramParameters = SRAM,
) -> PipelineTiming:
    """Assemble the stage delays for a design point.

    The G-switch stage is the slower of the within-way switch and (when
    present) the 4-way switch, each including its wire run from the
    arrays.  The L-switch stage includes the return wire from the
    G-switch to the local switches.  Designs with no global switch (the
    64-state Figure 10 point) have a zero-delay second stage.
    """
    match_ps = state_match_delay_ps(
        column_mux_degree, sense_amp_cycling=sense_amp_cycling, sram=sram
    )
    g_stage = 0.0
    if g_switch is not None:
        g_stage = g_wire_mm * wires.delay_ps_per_mm + g_switch.delay_ps
    if g_switch4 is not None:
        g_stage = max(
            g_stage, g_wire4_mm * wires.delay_ps_per_mm + g_switch4.delay_ps
        )
    l_stage = l_switch.delay_ps + l_wire_mm * wires.delay_ps_per_mm
    return PipelineTiming(match_ps, g_stage, l_stage)
