"""Last-level-cache slice geometry, modelled exactly after the Xeon E5.

Section 2.4 / Figure 2: a 2.5 MB LLC slice holds a central control box
(CBOX) and 20 columns (ways); each way has eight 16 KB data sub-arrays;
each 16 KB sub-array is two independent 8 KB chunks, each chunk two 4 KB
halves (``Array_H`` / ``Array_L``, 256x128 6T cells) sharing 32 sense
amps.  An STE is a 256-bit column, so a 4 KB array holds 128 STEs and a
*partition* — the unit served by one L-switch — is 256 STEs.

Two mapping footprints exist (Section 3.1): the performance-optimised
design maps STEs only to ``Array_L`` halves (A[16]=0; the other half keeps
caching data), while the space-optimised design fills whole sub-arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError

#: STEs per partition — one L-switch's worth of states.
PARTITION_SIZE = 256


@dataclass(frozen=True)
class SliceGeometry:
    """Physical organisation of one LLC slice."""

    slice_kb: int = 2560
    ways: int = 20
    subarrays_per_way: int = 8
    subarray_kb: int = 16
    #: 256x128 6T cells: 128 STE columns of 256 bits each.
    array_rows: int = 256
    array_columns: int = 128
    #: Sense amplifiers per 4 KB half (32 => 4-way column multiplexing
    #: within a half; 8 bit-lines share I/O across the two halves).
    sense_amps_per_half: int = 32
    #: Physical slice dimensions (mm), Section 5.1.
    slice_width_mm: float = 3.19
    slice_height_mm: float = 3.0

    def __post_init__(self):
        if self.array_rows != 256:
            raise HardwareModelError("an STE column must span 256 rows")
        if self.slice_kb != self.ways * self.subarrays_per_way * self.subarray_kb:
            raise HardwareModelError(
                "slice capacity must equal ways * subarrays * subarray size"
            )

    @property
    def stes_per_array(self) -> int:
        """STE columns per 4 KB half-array."""
        return self.array_columns

    @property
    def stes_per_subarray(self) -> int:
        """STE columns in a full 16 KB sub-array (4 halves)."""
        return 4 * self.stes_per_array

    @property
    def partitions_per_subarray_full(self) -> int:
        """Partitions when whole sub-arrays are used (space-optimised)."""
        return self.stes_per_subarray // PARTITION_SIZE

    @property
    def partitions_per_subarray_half(self) -> int:
        """Partitions when only Array_L halves are used (perf-optimised)."""
        return self.stes_per_subarray // 2 // PARTITION_SIZE

    def partitions_per_way(self, *, full_subarrays: bool) -> int:
        per_subarray = (
            self.partitions_per_subarray_full
            if full_subarrays
            else self.partitions_per_subarray_half
        )
        return self.subarrays_per_way * per_subarray

    def stes_per_way(self, *, full_subarrays: bool) -> int:
        return self.partitions_per_way(full_subarrays=full_subarrays) * PARTITION_SIZE

    def column_mux_degree(self, *, full_subarrays: bool) -> int:
        """Bit-lines sharing one sense amp for a partition's match read.

        Half-sub-array mapping: each chunk reads its 128-STE Array_L via 32
        sense amps => 4 reads.  Full sub-array: the two halves of a chunk
        share the 32 amps => 8 reads.
        """
        per_half = self.stes_per_array // self.sense_amps_per_half
        return per_half * 2 if full_subarrays else per_half

    @property
    def array_to_gswitch_mm(self) -> float:
        """Distance from an SRAM array to its way's G-switch.

        Section 5.1 estimates 1.5 mm for the 3.19 x 3 mm slice: arrays sit
        along a way (a column of the slice), so the mean run to the way's
        switch is half the slice height.
        """
        return self.slice_height_mm / 2

    @property
    def array_to_gswitch4_mm(self) -> float:
        """Distance to the G-switch spanning four ways (space-optimised).

        The within-way run plus the lateral span of four way columns
        across the slice width.
        """
        return self.array_to_gswitch_mm + self.slice_width_mm * 4 / self.ways

    def cache_bytes_for_partitions(
        self, partitions: int, *, full_subarrays: bool
    ) -> int:
        """Cache footprint of ``partitions`` mapped partitions.

        The perf-optimised mapping *occupies* whole sub-array halves even
        though only Array_L holds STEs — the paper's Figure 8 utilisation
        counts the STE storage itself (256 STEs x 256 bits = 8 KB per
        partition) which is identical for both designs; the difference in
        Figure 8 comes from the state count after optimisation.
        """
        del full_subarrays  # same STE storage either way; kept for clarity
        return partitions * PARTITION_SIZE * self.array_rows // 8


#: The Xeon-E5-derived default geometry used throughout the evaluation.
XEON_SLICE = SliceGeometry()
