"""Published circuit- and technology-level constants.

Every number here is taken directly from the paper (Section 4, Table 2,
Section 5.1) — 28 nm foundry memory-compiler estimates in the original.
The rest of :mod:`repro.core` *derives* the pipeline delays, frequencies,
energies, and areas of Tables 2–4 and Figures 9–10 from these constants
plus geometry, rather than hard-coding the result tables.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WireParameters:
    """Global-metal wire model (Section 4; H-Bus alternative from §5.5)."""

    #: Delay of repeated global-metal wires (66 ps/mm, SPICE-derived).
    delay_ps_per_mm: float = 66.0
    #: Energy of global wires (0.07 pJ/mm/bit).
    energy_pj_per_mm_per_bit: float = 0.07


#: The slower hierarchical-bus wires inside an LLC slice (300 ps/mm, [12]).
H_BUS_WIRES = WireParameters(delay_ps_per_mm=300.0)

#: Default global-metal wires.
GLOBAL_WIRES = WireParameters()


@dataclass(frozen=True)
class SramParameters:
    """6T SRAM sub-array timing/energy, modelled after the Xeon E5 LLC."""

    #: Fastest safe array clock (paper limits arrays to 4 GHz => 250 ps;
    #: the paper's arithmetic uses 256 ps cycles, which we keep).
    cycle_time_ps: float = 256.0
    #: Pre-charge + read-word-line phase preceding the first sense in the
    #: sense-amp cycling sequence (the remaining 438 - 4*62.5 = 188 ps of
    #: the published 438 ps CA_P state-match).
    precharge_wordline_ps: float = 188.0
    #: One SAE/SEL step when cycling the sense amps: the 8 GHz pulse
    #: generator yields 125 ps pulses, overlapped to an effective 62.5 ps
    #: per additional column-multiplexed bit.
    sense_step_ps: float = 62.5
    #: Energy of one access to a 256x256 6T cache sub-array (22 pJ).
    access_energy_pj: float = 22.0
    #: Nominal supply for the 28 nm node.
    nominal_voltage: float = 0.9


SRAM = SramParameters()


@dataclass(frozen=True)
class ApParameters:
    """Micron Automata Processor reference numbers (Sections 1, 5, 6)."""

    #: AP symbol clock: 133 MHz, 1 symbol/cycle.
    frequency_ghz: float = 0.133
    #: Ideal-AP energy model: 1 pJ/bit DRAM array access, zero interconnect.
    dram_access_pj_per_bit: float = 1.0
    #: Bits read per active 256-state block (one 256-bit row).
    row_bits: int = 256
    #: Average fan-out reachability of a state (Section 5.4).
    reachability: float = 230.5
    #: Maximum incoming transitions per state.
    fan_in: int = 16
    #: Area of the DRAM routing matrix for a 32K-STE state space (mm^2).
    area_mm2_32k: float = 38.0
    #: STE capacity of one AP chip.
    states_per_chip: int = 48 * 1024
    #: STE capacity of one rank (8 dies).
    states_per_rank: int = 384 * 1024
    #: Configuration latency (up to tens of ms; [36]).
    configuration_ms: float = 45.0


AP = ApParameters()

#: x86 CPU baseline: the AP outperforms CPUs by 256x across the same
#: benchmark suites (Wadden et al. [39], quoted in Sections 1 and 5.1).
CPU_SLOWDOWN_VS_AP = 256.0

#: Xeon E5-2600 v3 thermal design power (Section 5.3).
XEON_TDP_WATTS = 160.0

#: Xeon E5 server die area (Section 5.4).
XEON_DIE_AREA_MM2 = 354.0

#: Cache Automaton configuration time for the largest benchmark (§2.10).
CA_CONFIGURATION_MS = 0.2

#: Pulse generator overhead for the SA-cycling control signals (§2.6).
PULSE_GENERATOR_POWER_UW = 8.0
