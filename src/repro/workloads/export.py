"""Export the synthetic benchmark suite as ANML files.

Writes one ``.anml`` per benchmark (plus its input stream as ``.input``),
giving downstream tools — VASim, the AP SDK, other automata engines — a
self-contained corpus to chew on::

    python -m repro.workloads.export out/ --scale 1.0 --input-length 100000

The exported files round-trip through :func:`repro.automata.anml.from_anml`.
"""

from __future__ import annotations

import argparse
import pathlib
from typing import List, Optional

from repro.automata.anml import to_anml
from repro.workloads.suite import Benchmark, build_suite


def export_benchmark(
    benchmark: Benchmark,
    directory: pathlib.Path,
    *,
    input_length: int = 0,
    seed: int = 1,
) -> List[pathlib.Path]:
    """Write one benchmark's ANML (and optionally its input stream)."""
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    anml_path = directory / f"{benchmark.name}.anml"
    anml_path.write_text(to_anml(benchmark.build()), encoding="utf-8")
    written.append(anml_path)
    if input_length > 0:
        input_path = directory / f"{benchmark.name}.input"
        input_path.write_bytes(benchmark.input_stream(input_length, seed))
        written.append(input_path)
    return written


def export_suite(
    directory: pathlib.Path,
    *,
    scale: float = 1.0,
    input_length: int = 0,
    seed: int = 1,
    names: Optional[List[str]] = None,
) -> List[pathlib.Path]:
    """Export every benchmark (or the named subset)."""
    written = []
    for benchmark in build_suite(scale):
        if names and benchmark.name not in names:
            continue
        written.extend(
            export_benchmark(
                benchmark, directory, input_length=input_length, seed=seed
            )
        )
    return written


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("directory", type=pathlib.Path)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--input-length", type=int, default=0,
                        help="also write an input stream of this many bytes")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--only", nargs="*", default=None,
                        help="benchmark names to export (default: all)")
    arguments = parser.parse_args(argv)
    written = export_suite(
        arguments.directory,
        scale=arguments.scale,
        input_length=arguments.input_length,
        seed=arguments.seed,
        names=arguments.only,
    )
    for path in written:
        print(path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
