"""Input-stream generators for the benchmark suite.

The ANMLZoo benchmarks ship 1 MB/10 MB input traces; offline we
synthesise streams with the same *statistical role*: background text over
the workload's alphabet with occasional planted pattern occurrences, so
matches (and the activity profile driving the energy model) actually
happen at a realistic rate.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.errors import ReproError

DNA_ALPHABET = b"ACGT"
PROTEIN_ALPHABET = b"ACDEFGHIKLMNPQRSTVWY"
LOWERCASE = bytes(range(ord("a"), ord("z") + 1))


def random_bytes(length: int, *, seed: int = 0) -> bytes:
    """Uniform random bytes (worst-case background noise)."""
    rng = random.Random(seed)
    return rng.randbytes(length)


def random_over_alphabet(
    length: int, alphabet: bytes, *, seed: int = 0, zipf: bool = False
) -> bytes:
    """Random stream over ``alphabet``; optionally Zipf-skewed like text."""
    if not alphabet:
        raise ReproError("empty alphabet")
    rng = random.Random(seed)
    if not zipf:
        return bytes(rng.choice(alphabet) for _ in range(length))
    weights = [1.0 / (rank + 1) for rank in range(len(alphabet))]
    return bytes(rng.choices(alphabet, weights=weights, k=length))


def with_planted_matches(
    background: bytes,
    needles: Sequence[bytes],
    *,
    occurrences: int,
    seed: int = 0,
) -> bytes:
    """Overwrite ``occurrences`` random windows of ``background`` with
    randomly chosen needles, so the stream contains guaranteed matches."""
    if not needles:
        raise ReproError("no needles to plant")
    rng = random.Random(seed)
    stream = bytearray(background)
    longest = max(len(needle) for needle in needles)
    if longest > len(stream):
        raise ReproError("needles longer than the stream")
    for _ in range(occurrences):
        needle = rng.choice(list(needles))
        position = rng.randrange(0, len(stream) - len(needle) + 1)
        stream[position : position + len(needle)] = needle
    return bytes(stream)


def text_stream(
    length: int,
    *,
    seed: int = 0,
    words: Optional[List[bytes]] = None,
) -> bytes:
    """Space-separated pseudo-text from a vocabulary (log/NLP workloads)."""
    rng = random.Random(seed)
    if words is None:
        words = [
            bytes(rng.choice(LOWERCASE) for _ in range(rng.randint(2, 9)))
            for _ in range(200)
        ]
    pieces: List[bytes] = []
    size = 0
    while size <= length:  # join() adds one separator fewer than words
        word = rng.choice(words)
        pieces.append(word)
        size += len(word) + 1
    return b" ".join(pieces)[:length]


def dna_stream(length: int, *, seed: int = 0) -> bytes:
    """Uniform DNA bases (gene-matching workloads)."""
    return random_over_alphabet(length, DNA_ALPHABET, seed=seed)


def protein_stream(length: int, *, seed: int = 0) -> bytes:
    """Uniform amino-acid stream (Protomata-style motif search)."""
    return random_over_alphabet(length, PROTEIN_ALPHABET, seed=seed)


def record_stream(
    length: int,
    field_alphabet: bytes,
    *,
    record_length: int = 16,
    separator: int = 0x0A,
    seed: int = 0,
) -> bytes:
    """Fixed-length records over a small symbol alphabet with separators
    (feature vectors for RandomForest-style workloads, item baskets for
    sequence mining)."""
    rng = random.Random(seed)
    stream = bytearray()
    while len(stream) < length:
        stream.extend(
            rng.choice(field_alphabet) for _ in range(record_length - 1)
        )
        stream.append(separator)
    return bytes(stream[:length])
