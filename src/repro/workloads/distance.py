"""Levenshtein and Hamming distance automata.

Two ANMLZoo benchmark families are *distance automata*: given a pattern
``p`` and an error budget ``k``, they report every input position where a
string within distance ``k`` of ``p`` ends.

* **Hamming** — substitutions only.  Directly homogeneous: a lattice of
  states ``(i, e)`` ("matched i pattern symbols with e mismatches").
* **Levenshtein** — substitutions, insertions and deletions.  Deletions
  consume no input, so the automaton is built as a classical epsilon-NFA
  and run through epsilon elimination + homogenisation
  (:mod:`repro.automata.transform`), exercising the whole front-end
  pipeline exactly as a user would.
"""

from __future__ import annotations

from repro.automata.anml import HomogeneousAutomaton, StartKind
from repro.automata.nfa import Nfa
from repro.automata.symbols import SymbolSet
from repro.automata.transform import to_homogeneous
from repro.errors import AutomatonError


def hamming_automaton(
    pattern: bytes,
    distance: int,
    *,
    report_code: str | None = None,
    anchored: bool = False,
) -> HomogeneousAutomaton:
    """Automaton reporting substrings within Hamming distance ``distance``.

    States ``(i, e)`` for ``1 <= i <= len(pattern)``, ``0 <= e <= distance``:
    position *i* consumed with *e* mismatches so far.  A state's label is
    the matching symbol (``pattern[i-1]``) on the same-error row and its
    complement on the error-incrementing diagonal.
    """
    if not pattern:
        raise AutomatonError("empty pattern")
    if distance < 0:
        raise AutomatonError("distance must be non-negative")
    if distance >= len(pattern):
        raise AutomatonError("distance must be smaller than the pattern length")
    automaton = HomogeneousAutomaton(f"hamming:{pattern!r}:{distance}")
    start_kind = StartKind.START_OF_DATA if anchored else StartKind.ALL_INPUT
    length = len(pattern)

    def state_id(i: int, e: int, matched: bool) -> str:
        return f"h{i}.{e}.{'m' if matched else 'x'}"

    # Two STEs per lattice point: entered by a match vs by a mismatch.
    for i in range(1, length + 1):
        expected = SymbolSet.single(pattern[i - 1])
        for e in range(distance + 1):
            reporting = i == length
            automaton.add_ste(
                state_id(i, e, True),
                expected,
                start=start_kind if i == 1 and e == 0 else StartKind.NONE,
                reporting=reporting,
                report_code=report_code if reporting else None,
            )
            if e > 0:
                automaton.add_ste(
                    state_id(i, e, False),
                    expected.complement(),
                    start=start_kind if i == 1 and e == 1 else StartKind.NONE,
                    reporting=reporting,
                    report_code=report_code if reporting else None,
                )

    for i in range(1, length):
        for e in range(distance + 1):
            sources = [state_id(i, e, True)]
            if e > 0:
                sources.append(state_id(i, e, False))
            for source in sources:
                automaton.add_edge(source, state_id(i + 1, e, True))
                if e < distance:
                    automaton.add_edge(source, state_id(i + 1, e + 1, False))
    return automaton


def levenshtein_nfa(pattern: bytes, distance: int) -> Nfa:
    """Classical epsilon-NFA for edit distance (the textbook lattice).

    States ``(i, e)``: *i* pattern symbols matched, *e* edits spent.
    Edges: match ``(i,e) -p[i]-> (i+1,e)``; substitution
    ``(i,e) -any-> (i+1,e+1)``; insertion ``(i,e) -any-> (i,e+1)``;
    deletion ``(i,e) -eps-> (i+1,e+1)``.
    """
    if not pattern:
        raise AutomatonError("empty pattern")
    if distance < 0:
        raise AutomatonError("distance must be non-negative")
    nfa = Nfa()
    length = len(pattern)
    any_symbol = SymbolSet.any()

    def name(i: int, e: int) -> str:
        return f"l{i}.{e}"

    for e in range(distance + 1):
        nfa.add_state(name(0, e), start=e == 0)
        for i in range(1, length + 1):
            nfa.add_state(name(i, e), accept=i == length)
    for i in range(length + 1):
        for e in range(distance + 1):
            if i < length:
                nfa.add_transition(
                    name(i, e), SymbolSet.single(pattern[i]), name(i + 1, e)
                )
            if e < distance:
                if i < length:
                    nfa.add_transition(name(i, e), any_symbol, name(i + 1, e + 1))
                    nfa.add_epsilon(name(i, e), name(i + 1, e + 1))
                nfa.add_transition(name(i, e), any_symbol, name(i, e + 1))
    return nfa


def levenshtein_automaton(
    pattern: bytes,
    distance: int,
    *,
    anchored: bool = False,
) -> HomogeneousAutomaton:
    """Homogeneous edit-distance automaton (ANMLZoo's *Levenshtein*).

    Built from :func:`levenshtein_nfa` through epsilon removal and
    label-splitting homogenisation.
    """
    if distance >= len(pattern):
        raise AutomatonError("distance must be smaller than the pattern length")
    nfa = levenshtein_nfa(pattern, distance)
    start = StartKind.START_OF_DATA if anchored else StartKind.ALL_INPUT
    return to_homogeneous(
        nfa, automaton_id=f"lev:{pattern!r}:{distance}", start=start
    )
