"""Synthetic generators for the benchmark families.

The real ANMLZoo/Regex rule sets are not redistributable, so each family
is *re-synthesised from its published recipe*: the generators below
produce rule sets / automata whose structure (connected-component size
distribution, label shapes, activity behaviour) mirrors the Table 1
characterisation, scaled down so pure-Python simulation stays fast.

All generators are deterministic given their seed.
"""

from __future__ import annotations

import random
from typing import List

from repro.automata.anml import HomogeneousAutomaton, StartKind
from repro.automata.symbols import SymbolSet
from repro.errors import ReproError
from repro.workloads.inputs import LOWERCASE, PROTEIN_ALPHABET

#: Characters safe to embed in generated regexes without escaping.
_SAFE = "abcdefghijklmnopqrstuvwxyz0123456789"


def _word(rng: random.Random, low: int, high: int) -> str:
    return "".join(rng.choice(_SAFE) for _ in range(rng.randint(low, high)))


# -- Regex-suite families (Becchi's workload generator recipes) ----------------


def _prefix_pool(rng: random.Random, count: int) -> List[str]:
    """Shared rule prefixes: real rule sets (Snort payloads, protocol
    headers, signature families) share long leading literals, which is
    what makes prefix merging shrink them severalfold."""
    return [_word(rng, 6, 10) for _ in range(count)]


def dotstar_rules(
    count: int,
    dotstar_fraction: float,
    *,
    seed: int = 0,
    prefix_sharing: int = 12,
) -> List[str]:
    """Becchi-style synthetic rules: literals, a fraction containing ``.*``.

    ``Dotstar0.3/0.6/0.9`` differ in the probability that a rule contains
    unbounded ``.*`` gaps; more dot-stars mean more long-lived active
    states.  ``prefix_sharing`` rules on average share each leading
    literal (0 disables sharing).
    """
    if not 0.0 <= dotstar_fraction <= 1.0:
        raise ReproError(f"bad dotstar fraction {dotstar_fraction}")
    rng = random.Random(seed)
    prefixes = (
        _prefix_pool(rng, max(1, count // prefix_sharing)) if prefix_sharing else []
    )
    rules = []
    for _ in range(count):
        segments = [_word(rng, 4, 10) for _ in range(rng.randint(2, 3))]
        if prefixes:
            segments[0] = rng.choice(prefixes) + segments[0][:3]
        if rng.random() < dotstar_fraction:
            rules.append(".*".join(segments))
        else:
            rules.append("".join(segments))
    return rules


def range_rules(
    count: int,
    ranges_per_rule: float,
    *,
    seed: int = 0,
    prefix_sharing: int = 12,
) -> List[str]:
    """Rules with character ranges (the ``Ranges0.5`` / ``Ranges1`` sets)."""
    rng = random.Random(seed)
    prefixes = (
        _prefix_pool(rng, max(1, count // prefix_sharing)) if prefix_sharing else []
    )
    rules = []
    for _ in range(count):
        pieces = [rng.choice(prefixes)] if prefixes else []
        length = rng.randint(8, 16)
        expected_ranges = ranges_per_rule
        for position in range(length):
            if rng.random() < expected_ranges / length:
                letters = _SAFE[:26]  # ranges stay within a-z (byte-ordered)
                low = rng.choice(letters[:20])
                span = rng.randint(2, 8)
                high_index = min(letters.index(low) + span, len(letters) - 1)
                pieces.append(f"[{low}-{letters[high_index]}]")
            else:
                pieces.append(rng.choice(_SAFE))
        rules.append("".join(pieces))
    return rules


def exact_match_rules(
    count: int, *, seed: int = 0, prefix_sharing: int = 12
) -> List[str]:
    """Pure literal rules (the ``ExactMatch`` set)."""
    rng = random.Random(seed)
    prefixes = (
        _prefix_pool(rng, max(1, count // prefix_sharing)) if prefix_sharing else []
    )
    return [
        (rng.choice(prefixes) if prefixes else "") + _word(rng, 6, 12)
        for _ in range(count)
    ]


def ids_rules(
    count: int,
    *,
    seed: int = 0,
    class_probability: float = 0.25,
    repeat_probability: float = 0.15,
    dotstar_probability: float = 0.1,
    shared_prefixes: int = 0,
) -> List[str]:
    """Snort/Bro/PowerEN-flavoured IDS rules: literals, classes, bounded
    repeats, occasional ``.*`` gaps, and optional shared prefixes (which
    is what makes prefix merging effective on real IDS sets)."""
    rng = random.Random(seed)
    prefixes = [_word(rng, 4, 6) for _ in range(shared_prefixes)] or [""]
    rules = []
    for _ in range(count):
        pieces: List[str] = [rng.choice(prefixes)]
        for _ in range(rng.randint(5, 12)):
            roll = rng.random()
            if roll < class_probability:
                members = "".join(
                    sorted(rng.sample(_SAFE, rng.randint(2, 5)))
                )
                pieces.append(f"[{members}]")
            elif roll < class_probability + repeat_probability:
                low = rng.randint(1, 3)
                pieces.append(f"{rng.choice(_SAFE)}{{{low},{low + rng.randint(0, 3)}}}")
            else:
                pieces.append(rng.choice(_SAFE))
        if rng.random() < dotstar_probability:
            pieces.insert(rng.randint(1, len(pieces) - 1), ".*")
        rules.append("".join(pieces))
    return rules


def clamav_signatures(
    count: int, *, seed: int = 0, family_sharing: int = 4
) -> List[str]:
    """Long literal virus signatures (hex-string style, 30-80 symbols).

    Signatures of one malware *family* share a long common head — the
    redundancy ClamAV's own signature format exploits and that prefix
    merging recovers."""
    rng = random.Random(seed)
    families = [
        "".join(rng.choice("0123456789abcdef") for _ in range(rng.randint(16, 28)))
        for _ in range(max(1, count // family_sharing))
    ]
    return [
        rng.choice(families)
        + "".join(rng.choice("0123456789abcdef") for _ in range(rng.randint(14, 40)))
        for _ in range(count)
    ]


def prosite_motifs(count: int, *, seed: int = 0) -> List[str]:
    """PROSITE-style protein motifs (the Protomata family).

    Amino-acid alternatives in classes, fixed and bounded gaps, e.g.
    ``[AG]C.{2,4}[DE]HH``.
    """
    rng = random.Random(seed)
    amino = PROTEIN_ALPHABET.decode()
    # Motif families share conserved heads (protein domains recur).
    heads = ["".join(rng.choice(amino) for _ in range(4)) for _ in range(count // 8 or 1)]
    motifs = []
    for _ in range(count):
        pieces: List[str] = [rng.choice(heads)]
        for _ in range(rng.randint(4, 10)):
            roll = rng.random()
            if roll < 0.3:
                members = "".join(sorted(rng.sample(amino, rng.randint(2, 4))))
                pieces.append(f"[{members}]")
            elif roll < 0.45:
                low = rng.randint(1, 3)
                pieces.append(f".{{{low},{low + rng.randint(0, 2)}}}")
            else:
                pieces.append(rng.choice(amino))
        motifs.append("".join(pieces))
    return motifs


def spm_patterns(
    count: int, *, item_alphabet: bytes = LOWERCASE, items_per_pattern: int = 4,
    seed: int = 0,
) -> List[str]:
    """Sequential-pattern-mining queries: items separated by ``.*`` gaps.

    Every triggered gap state self-loops forever, which is what gives SPM
    its enormous average active set (Table 1: ~7000).
    """
    rng = random.Random(seed)
    alphabet = item_alphabet.decode("latin-1")
    return [
        ".*".join(rng.choice(alphabet) for _ in range(items_per_pattern))
        for _ in range(count)
    ]


def brill_rules(count: int, *, seed: int = 0, vocabulary: int = 40) -> List[str]:
    """Brill-tagger contextual rules: templates over a small shared
    vocabulary, so common prefixes abound and prefix merging collapses
    the rule set into one big component (Table 1: 1962 CCs -> 1)."""
    rng = random.Random(seed)
    words = [_word(rng, 3, 6) for _ in range(vocabulary)]
    tags = ["nn", "vb", "jj", "dt", "in", "rb"]
    rules = []
    for _ in range(count):
        rules.append(
            f"{rng.choice(words)} {rng.choice(tags)} {rng.choice(words)}"
        )
    return rules


# -- Direct automaton families --------------------------------------------------


def random_forest_automaton(
    trees: int,
    depth: int,
    *,
    feature_alphabet: bytes = bytes(range(0x30, 0x40)),
    seed: int = 0,
) -> HomogeneousAutomaton:
    """Decision-tree ensembles as chain automata (the RandomForest family).

    Each tree path is a chain of feature-interval tests applied to a
    stream of feature symbols; every chain is its own small CC and many
    chains match simultaneously — high average active set, near-zero
    cross-CC redundancy (Table 1: optimisation does not shrink it).
    """
    rng = random.Random(seed)
    automaton = HomogeneousAutomaton("randomforest")
    low, high = feature_alphabet[0], feature_alphabet[-1]
    for tree in range(trees):
        previous = None
        for level in range(depth):
            split = rng.randint(low, high - 1)
            if rng.random() < 0.5:
                label = SymbolSet.from_range(low, split)
            else:
                label = SymbolSet.from_range(split + 1, high)
            ste_id = f"t{tree}n{level}"
            automaton.add_ste(
                ste_id,
                label,
                start=StartKind.ALL_INPUT if level == 0 else StartKind.NONE,
                reporting=level == depth - 1,
                report_code=f"tree{tree}" if level == depth - 1 else None,
            )
            if previous is not None:
                automaton.add_edge(previous, ste_id)
            previous = ste_id
    return automaton


def fermi_automaton(
    paths: int,
    *,
    length: int = 10,
    seed: int = 0,
) -> HomogeneousAutomaton:
    """Fermi track-finding: many tiny CCs with very wide labels.

    Hit coordinates are coarse, so each state matches a broad symbol
    range and a large fraction of all states is active every cycle
    (Table 1: ~4700 average active of ~40K states).
    """
    rng = random.Random(seed)
    automaton = HomogeneousAutomaton("fermi")
    for path in range(paths):
        previous = None
        for position in range(length):
            centre = rng.randrange(0, 256)
            half_width = rng.randint(40, 90)
            label = SymbolSet.from_range(
                max(0, centre - half_width), min(255, centre + half_width)
            )
            ste_id = f"f{path}.{position}"
            automaton.add_ste(
                ste_id,
                label,
                start=StartKind.ALL_INPUT if position == 0 else StartKind.NONE,
                reporting=position == length - 1,
                report_code=f"track{path}" if position == length - 1 else None,
            )
            if previous is not None:
                automaton.add_edge(previous, ste_id)
            previous = ste_id
    return automaton


def entity_resolution_names(
    count: int, *, seed: int = 0, first_letters: str = "abcde"
) -> List[bytes]:
    """Name corpus for entity resolution, skewed onto few first letters so
    prefix merging collapses the per-name CCs into a handful of tries
    (Table 1: 1000 CCs -> 5)."""
    rng = random.Random(seed)
    names = []
    for _ in range(count):
        first = rng.choice(first_letters)
        rest = _word(rng, 5, 10)
        names.append((first + rest).encode())
    return names
