"""The 20-benchmark evaluation suite (ANMLZoo + Regex, Table 1).

Each :class:`Benchmark` bundles a deterministic automaton builder, an
input-stream builder, and the paper's Table 1 row for reference.  The
synthetic automata are scaled down (hundreds to a few thousand states
instead of tens of thousands) so the pure-Python evaluation completes in
minutes; the *structural* characteristics that drive every result —
CC-size distribution, the effect of prefix merging, the average active
set — mirror the originals (asserted by the Table 1 tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.automata.anml import HomogeneousAutomaton, merge
from repro.errors import ReproError
from repro.regex.compile import compile_patterns, literal_pattern
from repro.workloads import inputs, synth
from repro.workloads.distance import hamming_automaton, levenshtein_automaton

Builder = Callable[[], HomogeneousAutomaton]
InputBuilder = Callable[[int, int], bytes]


@dataclass(frozen=True)
class PaperRow:
    """One Table 1 row: performance-optimised and space-optimised variants."""

    states: int
    ccs: int
    largest_cc: int
    avg_active: float
    s_states: int
    s_ccs: int
    s_largest_cc: int
    s_avg_active: float


@dataclass(frozen=True)
class Benchmark:
    """One suite entry: named builders plus the paper's reference row."""

    name: str
    family: str
    description: str
    paper: PaperRow
    build: Builder
    make_input: InputBuilder

    def input_stream(self, length: int = 20_000, seed: int = 1) -> bytes:
        return self.make_input(length, seed)


def _mutate(word: bytes, edits: int, rng: random.Random, alphabet: bytes) -> bytes:
    mutated = bytearray(word)
    for _ in range(edits):
        mutated[rng.randrange(len(mutated))] = rng.choice(alphabet)
    return bytes(mutated)


def _planted_text(
    length: int, seed: int, needles: List[bytes], *, rate: float = 0.003
) -> bytes:
    background = inputs.random_over_alphabet(
        length, inputs.LOWERCASE + b"0123456789 ", seed=seed, zipf=True
    )
    occurrences = max(2, int(length * rate / max(1, len(needles[0]))))
    return inputs.with_planted_matches(
        background, needles, occurrences=occurrences, seed=seed + 1
    )


def _literal_heads(rules: List[str], limit: int = 12) -> List[bytes]:
    """Leading literal runs of rules, used as plantable needles."""
    heads = []
    for rule in rules:
        head = []
        for character in rule:
            if character.isalnum():
                head.append(character)
            else:
                break
        if len(head) >= 4:
            heads.append("".join(head).encode())
        if len(heads) >= limit:
            break
    return heads or [rules[0][:4].encode()]


def _regex_benchmark(
    name: str,
    family: str,
    description: str,
    paper: PaperRow,
    rules_factory: Callable[[], List[str]],
    *,
    input_alphabet: Optional[bytes] = None,
) -> Benchmark:
    def build() -> HomogeneousAutomaton:
        rules = rules_factory()
        machine = compile_patterns(rules, automaton_id=name)
        return machine

    def make_input(length: int, seed: int) -> bytes:
        rules = rules_factory()
        if input_alphabet is not None:
            return inputs.random_over_alphabet(length, input_alphabet, seed=seed)
        return _planted_text(length, seed, _literal_heads(rules))

    return Benchmark(name, family, description, paper, build, make_input)


# -- individual builders --------------------------------------------------------


def _big_alternation_rule(rng: random.Random, words: int, segments: int) -> str:
    pieces = []
    for _ in range(segments):
        options = "|".join(synth._word(rng, 4, 7) for _ in range(words))
        pieces.append(f"(?:{options})")
    return "".join(pieces)


def _scaled(count: int, scale: float) -> int:
    return max(1, round(count * scale))


def _tcp_rules(scale: float = 1.0) -> List[str]:
    rng = random.Random(42)
    rules = synth.ids_rules(_scaled(60, scale), seed=7, dotstar_probability=0.05)
    rules.append(_big_alternation_rule(rng, words=10, segments=5))
    rules.append(_big_alternation_rule(rng, words=8, segments=4))
    return rules


def _brill_automaton(scale: float = 1.0) -> HomogeneousAutomaton:
    rules = synth.brill_rules(_scaled(220, scale), seed=11)
    parts = [
        literal_pattern(rule, report_code=str(index), state_prefix=f"r{index}_")
        for index, rule in enumerate(rules)
    ]
    return merge(parts, automaton_id="Brill")


def _brill_input(length: int, seed: int) -> bytes:
    rules = synth.brill_rules(220, seed=11)
    words = sorted({w.encode() for rule in rules for w in rule.split()})
    return inputs.text_stream(length, seed=seed, words=list(words))


def _clamav_automaton(scale: float = 1.0) -> HomogeneousAutomaton:
    signatures = synth.clamav_signatures(_scaled(45, scale), seed=13)
    parts = [
        literal_pattern(s, report_code=str(i), state_prefix=f"sig{i}_")
        for i, s in enumerate(signatures)
    ]
    return merge(parts, automaton_id="ClamAV")


def _clamav_input(length: int, seed: int) -> bytes:
    signatures = [s.encode() for s in synth.clamav_signatures(45, seed=13)]
    background = inputs.random_over_alphabet(
        length, b"0123456789abcdef", seed=seed
    )
    return inputs.with_planted_matches(
        background, signatures, occurrences=max(2, length // 4000), seed=seed
    )


def _entity_automaton(scale: float = 1.0) -> HomogeneousAutomaton:
    """Entity resolution compiles one matcher per record *pair*, so the
    same name recurs in many nearly identical automata — the massive
    redundancy (Table 1: 95K states / 1000 CCs collapsing to 5.7K / 5)
    that makes it the space-optimisation poster child."""
    names = synth.entity_resolution_names(_scaled(35, scale), seed=17)
    parts = [
        hamming_automaton(name, 1, report_code=name.decode())
        for name in names
        for _ in range(4)  # one instance per record-pair context
    ]
    return merge(parts, automaton_id="EntityResolution")


def _entity_input(length: int, seed: int) -> bytes:
    rng = random.Random(seed)
    names = synth.entity_resolution_names(35, seed=17)
    needles = [
        _mutate(name, rng.randint(0, 1), rng, inputs.LOWERCASE) for name in names
    ]
    return _planted_text(length, seed, needles, rate=0.01)


def _levenshtein_automaton(scale: float = 1.0) -> HomogeneousAutomaton:
    rng = random.Random(19)
    words = [
        bytes(rng.choice(inputs.LOWERCASE) for _ in range(12))
        for _ in range(_scaled(24, scale))
    ]
    parts = [levenshtein_automaton(word, 2) for word in words]
    return merge(parts, automaton_id="Levenshtein")


def _levenshtein_input(length: int, seed: int) -> bytes:
    rng = random.Random(19)
    words = [
        bytes(rng.choice(inputs.LOWERCASE) for _ in range(12)) for _ in range(24)
    ]
    plant_rng = random.Random(seed)
    needles = [_mutate(w, plant_rng.randint(0, 2), plant_rng, inputs.LOWERCASE) for w in words]
    return _planted_text(length, seed, needles, rate=0.01)


def _hamming_automaton(scale: float = 1.0) -> HomogeneousAutomaton:
    rng = random.Random(23)
    genes = [
        bytes(rng.choice(inputs.DNA_ALPHABET) for _ in range(20))
        for _ in range(_scaled(40, scale))
    ]
    parts = [hamming_automaton(gene, 2) for gene in genes]
    return merge(parts, automaton_id="Hamming")


def _hamming_input(length: int, seed: int) -> bytes:
    rng = random.Random(23)
    genes = [
        bytes(rng.choice(inputs.DNA_ALPHABET) for _ in range(20)) for _ in range(40)
    ]
    plant_rng = random.Random(seed)
    needles = [
        _mutate(g, plant_rng.randint(0, 2), plant_rng, inputs.DNA_ALPHABET)
        for g in genes
    ]
    background = inputs.dna_stream(length, seed=seed)
    return inputs.with_planted_matches(
        background, needles, occurrences=max(2, length // 1500), seed=seed
    )


def _spm_automaton(scale: float = 1.0) -> HomogeneousAutomaton:
    patterns = synth.spm_patterns(_scaled(260, scale), items_per_pattern=4, seed=29)
    return compile_patterns(patterns, automaton_id="SPM")


def _spm_input(length: int, seed: int) -> bytes:
    return inputs.random_over_alphabet(length, inputs.LOWERCASE, seed=seed, zipf=True)


def _fermi_input(length: int, seed: int) -> bytes:
    return inputs.random_bytes(length, seed=seed)


def _random_forest_input(length: int, seed: int) -> bytes:
    return inputs.record_stream(
        length, bytes(range(0x30, 0x40)), record_length=16, seed=seed
    )


def _protomata_input(length: int, seed: int) -> bytes:
    return inputs.protein_stream(length, seed=seed)


# -- the suite -------------------------------------------------------------------


def build_suite(scale: float = 1.0) -> List[Benchmark]:
    """All 20 benchmarks, in Table 1 order.

    ``scale`` multiplies every family's rule/pattern count: 1.0 (default)
    is the fast test-suite size; ~8-10 approaches the paper's automaton
    sizes at proportionally longer build/simulation times.
    """
    if scale <= 0:
        raise ReproError(f"scale must be positive, got {scale}")
    return [
        _regex_benchmark(
            "Dotstar03", "regex", "synthetic rules, 30% with .* gaps",
            PaperRow(12144, 299, 92, 3.78, 11124, 56, 1639, 0.84),
            lambda: synth.dotstar_rules(_scaled(150, scale), 0.3, seed=3),
        ),
        _regex_benchmark(
            "Dotstar06", "regex", "synthetic rules, 60% with .* gaps",
            PaperRow(12640, 298, 104, 37.55, 11598, 54, 1595, 3.40),
            lambda: synth.dotstar_rules(_scaled(150, scale), 0.6, seed=6),
        ),
        _regex_benchmark(
            "Dotstar09", "regex", "synthetic rules, 90% with .* gaps",
            PaperRow(12431, 297, 104, 38.07, 11229, 59, 1509, 4.39),
            lambda: synth.dotstar_rules(_scaled(150, scale), 0.9, seed=9),
        ),
        _regex_benchmark(
            "Ranges05", "regex", "rules averaging 0.5 character ranges",
            PaperRow(12439, 299, 94, 6.00, 11596, 63, 1197, 1.53),
            lambda: synth.range_rules(_scaled(150, scale), 0.5, seed=5),
        ),
        _regex_benchmark(
            "Ranges1", "regex", "rules averaging 1 character range",
            PaperRow(12464, 297, 96, 6.43, 11418, 57, 1820, 1.46),
            lambda: synth.range_rules(_scaled(150, scale), 1.0, seed=10),
        ),
        _regex_benchmark(
            "ExactMatch", "regex", "pure literal rules",
            PaperRow(12439, 297, 87, 5.99, 11270, 53, 998, 1.42),
            lambda: synth.exact_match_rules(_scaled(150, scale), seed=15),
        ),
        _regex_benchmark(
            "Bro217", "ids", "Bro IDS payload patterns",
            PaperRow(2312, 187, 84, 3.40, 1893, 59, 245, 1.89),
            lambda: synth.ids_rules(_scaled(40, scale), seed=217, dotstar_probability=0.05),
        ),
        _regex_benchmark(
            "TCP", "ids", "Snort TCP-stream rules with a large component",
            PaperRow(19704, 715, 391, 12.94, 13819, 47, 3898, 2.21),
            lambda: _tcp_rules(scale),
        ),
        _regex_benchmark(
            "Snort", "ids", "Snort HTTP ruleset slice",
            PaperRow(69029, 2585, 222, 431.43, 34480, 73, 10513, 29.59),
            lambda: synth.ids_rules(
                _scaled(170, scale), seed=31, dotstar_probability=0.25,
                shared_prefixes=12,
            ),
        ),
        Benchmark(
            "Brill", "nlp", "Brill-tagger contextual rules",
            PaperRow(42568, 1962, 67, 1662.76, 26364, 1, 26364, 14.29),
            lambda: _brill_automaton(scale), _brill_input,
        ),
        Benchmark(
            "ClamAV", "av", "antivirus hex-literal signatures",
            PaperRow(49538, 515, 542, 82.84, 42543, 41, 11965, 4.30),
            lambda: _clamav_automaton(scale), _clamav_input,
        ),
        _regex_benchmark(
            "Dotstar", "regex", "general dot-star rule mix",
            PaperRow(96438, 2837, 95, 45.05, 38951, 90, 2977, 3.25),
            lambda: synth.dotstar_rules(_scaled(200, scale), 0.5, seed=50),
        ),
        Benchmark(
            "EntityResolution", "database",
            "approximate (Hamming-1) name matching",
            PaperRow(95136, 1000, 96, 1192.84, 5672, 5, 4568, 7.88),
            lambda: _entity_automaton(scale), _entity_input,
        ),
        Benchmark(
            "Levenshtein", "bioinformatics", "edit-distance-2 word automata",
            PaperRow(2784, 24, 116, 114.21, 2784, 1, 2605, 114.21),
            lambda: _levenshtein_automaton(scale), _levenshtein_input,
        ),
        Benchmark(
            "Hamming", "bioinformatics", "Hamming-distance-2 gene automata",
            PaperRow(11346, 93, 122, 285.1, 11254, 69, 11254, 240.09),
            lambda: _hamming_automaton(scale), _hamming_input,
        ),
        Benchmark(
            "Fermi", "physics", "track-finding path automata, wide labels",
            PaperRow(40783, 2399, 17, 4715.96, 39032, 648, 39038, 4715.96),
            lambda: synth.fermi_automaton(_scaled(130, scale), length=10, seed=37),
            _fermi_input,
        ),
        Benchmark(
            "SPM", "mining", "sequential pattern mining (.*-gapped itemsets)",
            PaperRow(100500, 5025, 20, 6964.47, 18126, 1, 18126, 1432.55),
            lambda: _spm_automaton(scale), _spm_input,
        ),
        Benchmark(
            "RandomForest", "ml", "decision-tree ensemble feature chains",
            PaperRow(33220, 1661, 20, 398.24, 33220, 1, 33220, 398.24),
            lambda: synth.random_forest_automaton(_scaled(90, scale), 18, seed=41),
            _random_forest_input,
        ),
        _regex_benchmark(
            "PowerEN", "ids", "IBM PowerEN regex set",
            PaperRow(14109, 1000, 48, 61.02, 12194, 62, 357, 30.02),
            lambda: synth.ids_rules(
                _scaled(110, scale), seed=43, class_probability=0.35,
                dotstar_probability=0.08,
            ),
        ),
        Benchmark(
            "Protomata", "bioinformatics", "PROSITE protein motifs",
            PaperRow(42011, 2340, 123, 1578.51, 38243, 513, 3745, 594.68),
            lambda: compile_patterns(
                synth.prosite_motifs(_scaled(170, scale), seed=47),
                automaton_id="Protomata",
            ),
            _protomata_input,
        ),
    ]


_SUITE_CACHE: Optional[Dict[str, Benchmark]] = None


def suite_by_name() -> Dict[str, Benchmark]:
    global _SUITE_CACHE
    if _SUITE_CACHE is None:
        _SUITE_CACHE = {benchmark.name: benchmark for benchmark in build_suite()}
    return _SUITE_CACHE


def get_benchmark(name: str) -> Benchmark:
    try:
        return suite_by_name()[name]
    except KeyError:
        known = ", ".join(sorted(suite_by_name()))
        raise ReproError(f"unknown benchmark {name!r}; known: {known}") from None


BENCHMARK_NAMES = [benchmark.name for benchmark in build_suite()]
