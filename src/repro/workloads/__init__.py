"""Benchmark workloads: the 20-benchmark suite, generators, and inputs."""

from repro.workloads.distance import (
    hamming_automaton,
    levenshtein_automaton,
    levenshtein_nfa,
)
from repro.workloads.suite import (
    BENCHMARK_NAMES,
    Benchmark,
    PaperRow,
    build_suite,
    get_benchmark,
    suite_by_name,
)

__all__ = [
    "BENCHMARK_NAMES",
    "Benchmark",
    "PaperRow",
    "build_suite",
    "get_benchmark",
    "hamming_automaton",
    "levenshtein_automaton",
    "levenshtein_nfa",
    "suite_by_name",
]
