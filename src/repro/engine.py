"""High-level scanning engine: the library's front door.

Wraps the whole pipeline — regex/ANML front-end, space optimisation,
compiler, execution backends, performance/energy models — behind one
object, in the style of a software pattern-matching engine:

>>> from repro.engine import CacheAutomatonEngine
>>> engine = CacheAutomatonEngine.from_patterns(["bat", "c[ao]t"])
>>> [match.end for match in engine.scan(b"the cat sat on the bat")]
[6, 21]

The engine itself is a *policy* layer.  All execution goes through the
pluggable backend registry (:mod:`repro.backends`): compilation produces
one :class:`~repro.backends.artifact.CompiledArtifact`, the requested
backend (``backend=`` — default the packed-bitset mapped kernel) is
instantiated from it, and the engine's job is deciding *which* artifact
and backend serve traffic — warm cache hit, cold compile,
quarantine-and-recompile, or golden-interpreter fallback
(:meth:`CacheAutomatonEngine.health` reports which rung won and why).

Streams can be scanned incrementally (:meth:`CacheAutomatonEngine.stream`
returns a stateful scanner using the Section 2.9 checkpoint mechanism),
several independent streams can be batched through one packed-bitset
kernel invocation (:meth:`CacheAutomatonEngine.scan_many` for whole
inputs, :meth:`CacheAutomatonEngine.stream_many` for chunked traffic —
the Section 6 multi-stream scenario), and :meth:`performance_summary`
reports the modelled line rate, cache footprint, and energy for the
traffic seen so far.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.automata.anml import HomogeneousAutomaton, from_anml
from repro.automata.stride import StrideAlphabet, resolve_stride
from repro.backends.artifact import CompiledArtifact
from repro.backends.base import (
    AutomatonBackend,
    BackendCapabilities,
    BoundedEventLog,
)
from repro.backends.registry import (
    DEFAULT_BACKEND,
    backend_class,
    create_backend,
    resolve_backend_name,
)
from repro.backends.validation import (
    require_byte_streams,
    require_bytes,
    require_stream_sequence,
)
from repro.baselines.ap import ApModel
from repro.compiler import Mapping, compile_automaton, compile_space_optimized
from repro.compiler.cache import CompileCache
from repro.core.design import CA_P, DesignPoint
from repro.core.energy import ActivityProfile, EnergyModel
from repro.errors import DegradedModeWarning, ReproError, SimulationError
from repro.regex.compile import compile_patterns
from repro.sim.functional import MappedSimulator
from repro.sim.golden import Checkpoint

#: Accepted values for the engine's ``cache`` argument.
CacheSpec = Union[CompileCache, str, Path, bool, None]

#: Engine tiers, best first — which rung of the fallback chain built the
#: scanning backend (see :meth:`CacheAutomatonEngine.health`).
TIER_WARM_CACHE = "warm-cache"
TIER_COLD_COMPILE = "cold-compile"
TIER_RECOMPILED = "recompiled"
TIER_GOLDEN = "golden-fallback"

#: Health-event retention per engine: a long-lived serving process keeps
#: the most recent events and counts the rest as dropped, instead of
#: growing the log for the life of the process.
HEALTH_EVENT_LIMIT = 64


def _resolve_cache(cache: CacheSpec) -> Optional[CompileCache]:
    if cache is None or cache is False:
        return None
    if isinstance(cache, CompileCache):
        return cache
    if cache is True or cache == "auto":
        return CompileCache()
    return CompileCache(cache)


@dataclass(frozen=True)
class Match:
    """One match: the rule that fired and the end offset (0-based)."""

    end: int
    rule: Optional[str]
    state: str


@dataclass(frozen=True)
class EngineHealth:
    """Which tier of the fallback chain served this engine, and why.

    ``tier`` is one of ``warm-cache`` (artifact cache hit), ``cold-compile``
    (no cached artifact), ``recompiled`` (a corrupt artifact was
    quarantined first), or ``golden-fallback`` (the requested backend could
    not be built and the reference interpreter is scanning instead).
    ``backend`` is the registry name of the backend actually serving
    traffic; ``requested`` is the name the caller asked for (``None``
    when the default was used), so a fallback is visible as
    ``backend != requested``.  ``events`` is the ordered log of
    degradation decisions taken during construction; ``cache`` snapshots
    the artifact-cache counters.
    """

    tier: str
    backend: str
    degraded: bool
    events: Tuple[str, ...]
    cache: Dict[str, int]
    requested: Optional[str] = None
    #: Events evicted from the bounded logs (engine + backend) to keep a
    #: long-lived process's memory flat; ``len(events) + events_dropped``
    #: is a monotonic "events ever seen" counter.
    events_dropped: int = 0
    #: Per-group substrate placement when the hybrid backend is serving
    #: (one row per group: group index, backend, requested substrate,
    #: component and state counts); empty for single-substrate backends.
    placement: Tuple[Dict[str, object], ...] = ()


@dataclass(frozen=True)
class PerformanceSummary:
    """Modelled performance of the engine on the traffic seen so far."""

    design: str
    throughput_gbps: float
    speedup_vs_ap: float
    cache_kilobytes: float
    states: int
    partitions: int
    energy_nj_per_symbol: Optional[float]
    average_power_watts: Optional[float]


class StreamScanner:
    """Incremental scanner over one logical input stream.

    Feed chunks with :meth:`scan`; match offsets are global across
    chunks, exactly as if the whole stream were scanned at once.
    """

    def __init__(self, engine: "CacheAutomatonEngine"):
        self._engine = engine
        self._checkpoint: Optional[Checkpoint] = None

    @property
    def position(self) -> int:
        """Symbols consumed so far."""
        if self._checkpoint is None:
            return 0
        return self._checkpoint.symbols_processed

    def scan(self, chunk: bytes) -> List[Match]:
        require_bytes(chunk, "stream chunk")
        result = self._engine._backend.scan(chunk, resume=self._checkpoint)
        self._checkpoint = result.checkpoint
        self._engine._accumulate(result.profile)
        return self._engine._matches(result.reports)


class MultiStreamScanner:
    """Batched incremental scanner over several logical input streams.

    Each call to :meth:`scan` feeds one chunk per stream; on the default
    backend all chunks advance together through one kernel invocation
    (:meth:`repro.sim.functional.MappedSimulator.run_many`), sharing the
    match-matrix gather and the propagation table across streams.  Match
    offsets are global per stream, exactly as if each stream were scanned
    on its own.
    """

    def __init__(self, engine: "CacheAutomatonEngine", count: int):
        if count <= 0:
            raise SimulationError(
                f"stream count must be positive, got {count}"
            )
        if not engine._backend.capabilities().resume:
            raise SimulationError(
                f"backend {engine._backend.name!r} does not support "
                "checkpointed streaming (capabilities().resume is False)"
            )
        self._engine = engine
        self._checkpoints: List[Optional[Checkpoint]] = [None] * count

    @property
    def stream_count(self) -> int:
        return len(self._checkpoints)

    @property
    def positions(self) -> List[int]:
        """Symbols consumed so far, per stream."""
        return [
            0 if checkpoint is None else checkpoint.symbols_processed
            for checkpoint in self._checkpoints
        ]

    def scan(self, chunks: Sequence[bytes]) -> List[List[Match]]:
        """Feed one chunk per stream; returns each stream's new matches.

        Use ``b""`` for streams with no pending traffic this round.
        """
        chunks = require_stream_sequence(
            chunks,
            "scan() expects a sequence of per-stream chunks, "
            "not a single byte string",
        )
        if len(chunks) != len(self._checkpoints):
            raise SimulationError(
                f"got {len(chunks)} chunks for {len(self._checkpoints)} streams"
            )
        for index, chunk in enumerate(chunks):
            require_bytes(chunk, f"chunk for stream {index}")
        results = self._engine._backend.scan_many(
            chunks, resumes=self._checkpoints
        )
        self._checkpoints = [result.checkpoint for result in results]
        matches: List[List[Match]] = []
        for result in results:
            self._engine._accumulate(result.profile)
            matches.append(self._engine._matches(result.reports))
        return matches


class CacheAutomatonEngine:
    """A compiled, ready-to-scan Cache Automaton instance."""

    def __init__(
        self,
        automaton: HomogeneousAutomaton,
        *,
        design: DesignPoint = CA_P,
        optimize: bool = False,
        cache: CacheSpec = "auto",
        compile_jobs: Union[int, str, None] = None,
        scan_jobs: Union[int, str, None] = None,
        split_jobs: Union[int, str, None] = None,
        stride: Union[int, str, None] = None,
        backend: Optional[str] = None,
        backend_options: Optional[Dict[str, object]] = None,
        auto: bool = False,
    ):
        """Compile ``automaton`` onto ``design``.

        ``optimize=True`` runs the space-optimisation ladder first (use
        with the space-oriented design CA_S); the default maps the
        automaton as-is, which is the CA_P configuration.

        ``cache`` controls the content-addressed artifact cache:
        ``"auto"`` (default) uses ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro``; a path or :class:`CompileCache` selects a
        specific store; ``None``/``False`` compiles cold every time.  A
        cache hit rebuilds both the mapping and the packed simulator
        tables without recompiling; :meth:`cache_info` reports hit/miss/
        bypass counts.  ``compile_jobs`` caps the compiler's parallel
        split workers (also settable via ``REPRO_COMPILE_JOBS``).

        ``backend`` selects the execution substrate by registry name
        (see :func:`repro.backends.backend_names`; aliases accepted) —
        the packed mapped kernel by default.  ``backend="hybrid"``
        partitions the ruleset per connected component across substrates
        (see :mod:`repro.backends.hybrid`).  ``auto=True`` (default off)
        is the placement policy knob: when no backend is named, the
        engine runs the per-CC classifier
        (:mod:`repro.compiler.classify`) and picks the substrate itself
        — ``hybrid`` when components disagree about their best
        substrate, the single agreed substrate otherwise; the decision
        is recorded in :meth:`health`.  ``backend_options`` are passed
        through to the backend's ``from_artifact``.
        ``scan_jobs`` presets the worker count for process-sharded
        ``scan_many`` on backends that support it (the lazy-DFA
        backend; also settable via ``REPRO_SCAN_JOBS``); it is shorthand
        for ``backend_options={"jobs": ...}``.  ``split_jobs`` presets
        the *single-stream* split worker count on backends whose
        capabilities claim ``split`` (the lazy-DFA backend's SFA-style
        split scanning; also settable via ``REPRO_SPLIT_JOBS``) — a
        ``scan`` over one long input is partitioned across the pool
        with bit-identical results; it is shorthand for
        ``backend_options={"split_jobs": ...}``.  A scan that has to
        degrade (frontier explosion forcing serial chunk rescans) is
        surfaced through :meth:`health`.

        ``stride`` selects k-stride execution (k in {1, 2, 4}; also
        settable via ``REPRO_STRIDE``): the lazy-DFA backend consumes k
        bytes per cached transition over a CAMA-style compressed class
        alphabet, with matches bit-identical to the unstrided run.  The
        compressed alphabet is derived once from the automaton, cached
        inside the artifact (stride is part of the design fingerprint),
        and may *degrade* to a smaller k when the ruleset's byte-class
        count makes the strided table intractable — :attr:`stride`
        reports the effective value and :meth:`health` logs a degrade.
        Backends without a strided path ignore the option.

        The optimisation ladder chooses among several automaton variants,
        so ``optimize=True`` always bypasses the cache (the key would
        identify the input automaton, not the variant actually mapped).

        Construction walks a documented fallback chain and never leaves
        the engine unusable short of a compile error: a warm cache hit is
        preferred; a corrupt artifact is quarantined and the automaton
        recompiled; if the default backend cannot be built at all, the
        golden reference interpreter serves traffic (slower, but
        match-for-match identical).  An explicitly requested backend is
        never silently substituted — its construction errors propagate.
        :meth:`health` reports which tier won and why.
        """
        self.design = design
        self._cache = _resolve_cache(cache)
        self._health_events = BoundedEventLog(HEALTH_EVENT_LIMIT)
        self._tier = TIER_COLD_COMPILE
        self._requested_backend = (
            None if backend is None else resolve_backend_name(backend)
        )
        backend_name = self._requested_backend or DEFAULT_BACKEND
        backend_options = dict(backend_options or {})
        if auto and self._requested_backend is None:
            backend_name = self._auto_placement(
                automaton, optimize, backend_options
            )
        if scan_jobs is not None:
            backend_options.setdefault("jobs", scan_jobs)
        if split_jobs is not None:
            backend_options.setdefault("split_jobs", split_jobs)
        stride = resolve_stride(stride)
        alphabet: Optional[StrideAlphabet] = None
        if stride > 1:
            # Derive the compressed alphabet from the input automaton's
            # symbol sets; in the non-optimised path this is the mapped
            # automaton, so the partition matches the kernel's exactly.
            alphabet = StrideAlphabet.from_automaton(automaton, stride)
            if alphabet.stride != stride:
                self._health_events.append(
                    f"stride degraded from {stride} to {alphabet.stride} "
                    f"({alphabet.n_byte_classes} byte classes exceed the "
                    "stride-class budget)"
                )
                stride = alphabet.stride
            if stride == 1:
                alphabet = None
        self.stride = stride
        backend_options.setdefault("stride", stride)
        engine_backend: Optional[AutomatonBackend] = None
        artifact: Optional[CompiledArtifact] = None
        recompiling = False

        if optimize:
            if self._cache is not None:
                self._cache.stats.bypasses += 1
            mapping = compile_space_optimized(
                automaton, design, jobs=compile_jobs
            )
            # The ladder may map a different automaton variant, whose
            # byte classes can differ from the input's — let the backend
            # rederive the alphabet from the kernel it actually runs.
            artifact = CompiledArtifact.from_mapping(mapping)
        else:
            loaded = None
            if self._cache is not None:
                # load_artifact quarantines (deletes + warns about)
                # corrupt artifacts itself; the stats delta tells us it
                # happened.
                quarantines_before = self._cache.stats.quarantines
                loaded = self._cache.load_artifact(
                    automaton, design, stride=stride
                )
                if self._cache.stats.quarantines > quarantines_before:
                    recompiling = True
                    self._health_events.append(
                        "quarantined corrupt cache artifact"
                    )
            if loaded is not None:
                try:
                    engine_backend = self._create_backend(
                        backend_name, loaded, backend_options
                    )
                    artifact = loaded
                    self._tier = TIER_WARM_CACHE
                except Exception as error:
                    if not backend_class(backend_name).consumes_kernel_tables:
                        # The artifact is not implicated: this backend
                        # never touched its kernel tables.
                        raise
                    # Tables passed the loader's integrity checks but the
                    # kernel still refused them (stale format, bad shapes).
                    self._cache.quarantine_mapping(
                        automaton, design, stride=stride
                    )
                    warnings.warn(
                        "cached simulator tables rejected "
                        f"({type(error).__name__}: {error}); "
                        "quarantining artifact and recompiling",
                        DegradedModeWarning,
                        stacklevel=2,
                    )
                    self._health_events.append(
                        "cached tables rejected by kernel; "
                        "quarantined and recompiled"
                    )
                    recompiling = True
            if artifact is None:
                mapping = compile_automaton(
                    automaton, design, jobs=compile_jobs
                )
                artifact = CompiledArtifact.from_mapping(
                    mapping,
                    stride=stride,
                    stride_tables=(
                        alphabet.tables() if alphabet is not None else None
                    ),
                )
                if recompiling:
                    self._tier = TIER_RECOMPILED

        if engine_backend is None:
            engine_backend = self._build_backend(
                backend_name, artifact, backend_options
            )
        if (
            self._cache is not None
            and not optimize
            and self._tier is not TIER_GOLDEN
            and not artifact.kernel_tables
        ):
            stored = artifact
            if hasattr(engine_backend, "packed_tables"):
                stored = artifact.with_kernel_tables(
                    engine_backend.packed_tables()
                )
            if not artifact.classify_tables and hasattr(
                engine_backend, "classify_tables"
            ):
                # Persist the per-CC classification so warm hybrid
                # starts skip the subset-closure probes.
                stored = stored.with_classify_tables(
                    engine_backend.classify_tables()
                )
            if self._tier is not TIER_WARM_CACHE or stored is not artifact:
                self._cache.store_artifact(stored)

        self.artifact = artifact
        self.mapping: Mapping = artifact.mapping
        self._backend = engine_backend
        #: The automaton actually mapped (the optimised variant when
        #: ``optimize`` selected one).
        self.automaton = artifact.automaton
        self._profile = ActivityProfile()

    def _auto_placement(
        self,
        automaton: HomogeneousAutomaton,
        optimize: bool,
        backend_options: Dict[str, object],
    ) -> str:
        """The ``auto=True`` policy: classify the ruleset's components
        and pick the substrate — ``hybrid`` when components disagree,
        the single agreed substrate otherwise.  Records the decision as
        a health event."""
        from repro.compiler.classify import classify_automaton

        classification = classify_automaton(automaton)
        substrates = {
            classification.backend_of(index)
            for index in range(classification.component_count)
        }
        if len(substrates) > 1:
            chosen = "hybrid"
            if not optimize:
                # The mapped automaton is the input automaton here, so
                # the decision's classification is reusable as-is.
                backend_options.setdefault("classification", classification)
        elif substrates:
            chosen = resolve_backend_name(next(iter(substrates)))
        else:
            chosen = DEFAULT_BACKEND
        self._health_events.append(
            f"auto placement selected {chosen} "
            f"({classification.component_count} components over "
            f"{max(1, len(substrates))} substrate(s))"
        )
        return chosen

    @staticmethod
    def _create_backend(
        backend_name: str,
        artifact: CompiledArtifact,
        options: Dict[str, object],
    ) -> AutomatonBackend:
        # The module-global MappedSimulator is resolved at call time so a
        # substituted implementation reaches the kernel-table backends.
        options = dict(options)
        options.setdefault("simulator_cls", MappedSimulator)
        return create_backend(backend_name, artifact, **options)

    def _build_backend(
        self,
        backend_name: str,
        artifact: CompiledArtifact,
        options: Dict[str, object],
    ) -> AutomatonBackend:
        """Requested backend if possible; golden interpreter as the last
        rung — but only when the caller did not name a backend."""
        try:
            return self._create_backend(backend_name, artifact, options)
        except Exception as error:
            if self._requested_backend is not None:
                raise
            warnings.warn(
                "packed simulator construction failed "
                f"({type(error).__name__}: {error}); "
                "falling back to the golden reference interpreter",
                DegradedModeWarning,
                stacklevel=3,
            )
            self._health_events.append(
                "packed kernel construction failed; "
                "golden interpreter serving traffic"
            )
            self._tier = TIER_GOLDEN
            return self._create_backend("golden-interpreter", artifact, {})

    def health(self) -> EngineHealth:
        """Which fallback tier served this engine, and the decisions taken.

        Construction-time events (cache quarantine, stride degrade,
        backend fallback) are joined by any *scan-time* degradations the
        backend has recorded since — e.g. split-scan chunks rescanned
        serially after an entry-state frontier explosion.  Both logs are
        bounded ring buffers (:data:`HEALTH_EVENT_LIMIT` /
        :data:`~repro.backends.base.EVENT_LOG_LIMIT`);
        ``events_dropped`` counts evictions, so a long-lived serving
        process neither grows without limit nor miscounts degradations.
        """
        scan_events = tuple(getattr(self._backend, "health_events", ()))
        dropped = self._health_events.dropped + int(
            getattr(self._backend, "health_events_dropped", 0)
        )
        placement_of = getattr(self._backend, "placement", None)
        return EngineHealth(
            tier=self._tier,
            backend=self._backend.name,
            degraded=self._tier in (TIER_RECOMPILED, TIER_GOLDEN),
            events=tuple(self._health_events) + scan_events,
            cache=self.cache_info(),
            requested=self._requested_backend,
            events_dropped=dropped,
            placement=(
                tuple(placement_of()) if callable(placement_of) else ()
            ),
        )

    @property
    def backend(self) -> AutomatonBackend:
        """The execution backend serving this engine's traffic."""
        return self._backend

    def backend_capabilities(self) -> BackendCapabilities:
        """Capability flags of the backend serving traffic."""
        return self._backend.capabilities()

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/bypass/store counts for this engine's artifact cache
        (all zero when caching is disabled)."""
        if self._cache is None:
            return {
                "hits": 0,
                "misses": 0,
                "bypasses": 0,
                "stores": 0,
                "quarantines": 0,
                "retries": 0,
            }
        return self._cache.stats.as_dict()

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_patterns(
        cls,
        patterns: Sequence[str],
        *,
        rule_ids: Optional[Iterable[str]] = None,
        design: DesignPoint = CA_P,
        optimize: bool = False,
        cache: CacheSpec = "auto",
        compile_jobs: Union[int, str, None] = None,
        scan_jobs: Union[int, str, None] = None,
        split_jobs: Union[int, str, None] = None,
        stride: Union[int, str, None] = None,
        backend: Optional[str] = None,
        backend_options: Optional[Dict[str, object]] = None,
        auto: bool = False,
    ) -> "CacheAutomatonEngine":
        """Compile a regex rule set; matches carry the rule id."""
        codes = list(rule_ids) if rule_ids is not None else list(patterns)
        machine = compile_patterns(
            patterns, report_codes=codes, automaton_id="engine"
        )
        return cls(
            machine,
            design=design,
            optimize=optimize,
            cache=cache,
            compile_jobs=compile_jobs,
            scan_jobs=scan_jobs,
            split_jobs=split_jobs,
            stride=stride,
            backend=backend,
            backend_options=backend_options,
            auto=auto,
        )

    @classmethod
    def from_anml(
        cls,
        document: str,
        *,
        design: DesignPoint = CA_P,
        optimize: bool = False,
        cache: CacheSpec = "auto",
        compile_jobs: Union[int, str, None] = None,
        scan_jobs: Union[int, str, None] = None,
        split_jobs: Union[int, str, None] = None,
        stride: Union[int, str, None] = None,
        backend: Optional[str] = None,
        backend_options: Optional[Dict[str, object]] = None,
        auto: bool = False,
    ) -> "CacheAutomatonEngine":
        return cls(
            from_anml(document),
            design=design,
            optimize=optimize,
            cache=cache,
            compile_jobs=compile_jobs,
            scan_jobs=scan_jobs,
            split_jobs=split_jobs,
            stride=stride,
            backend=backend,
            backend_options=backend_options,
            auto=auto,
        )

    @classmethod
    def from_anml_file(
        cls,
        path: str,
        *,
        design: DesignPoint = CA_P,
        optimize: bool = False,
        cache: CacheSpec = "auto",
        compile_jobs: Union[int, str, None] = None,
        scan_jobs: Union[int, str, None] = None,
        split_jobs: Union[int, str, None] = None,
        stride: Union[int, str, None] = None,
        backend: Optional[str] = None,
        backend_options: Optional[Dict[str, object]] = None,
        auto: bool = False,
    ) -> "CacheAutomatonEngine":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_anml(
                handle.read(),
                design=design,
                optimize=optimize,
                cache=cache,
                compile_jobs=compile_jobs,
                scan_jobs=scan_jobs,
                split_jobs=split_jobs,
                stride=stride,
                backend=backend,
                backend_options=backend_options,
                auto=auto,
            )

    # -- scanning ------------------------------------------------------------

    @staticmethod
    def _matches(reports) -> List[Match]:
        return [
            Match(report.offset, report.report_code, report.ste_id)
            for report in reports
        ]

    def scan(self, data: bytes) -> List[Match]:
        """Scan one complete input; returns matches in offset order."""
        require_bytes(data, "scan() input")
        result = self._backend.scan(data)
        self._accumulate(result.profile)
        return self._matches(result.reports)

    def count(self, data: bytes) -> int:
        """Number of match events in ``data`` (no record materialisation)."""
        require_bytes(data, "count() input")
        result = self._backend.scan(data, collect_reports=False)
        self._accumulate(result.profile)
        return result.profile.reports

    def scan_many(self, streams: Sequence[bytes]) -> List[List[Match]]:
        """Scan several independent streams in one batched backend pass.

        The Section 6 multi-stream scenario: every stream runs the same
        compiled automaton, so the default backend advances all of them
        through one shared kernel and amortises its table lookups across
        the batch (backends without native batching fall back to a
        per-stream loop).  Returns one match list per stream, each
        identical to ``scan`` on that stream alone.
        """
        streams = require_byte_streams(
            streams,
            what="scan_many() stream",
            single_hint=(
                "scan_many() expects a sequence of byte streams; "
                "use scan() for a single input"
            ),
        )
        results = self._backend.scan_many(streams)
        matches: List[List[Match]] = []
        for result in results:
            self._accumulate(result.profile)
            matches.append(self._matches(result.reports))
        return matches

    def stream(self) -> StreamScanner:
        """A stateful scanner for chunked input (global offsets)."""
        if not self._backend.capabilities().resume:
            raise SimulationError(
                f"backend {self._backend.name!r} does not support "
                "checkpointed streaming (capabilities().resume is False)"
            )
        return StreamScanner(self)

    def stream_many(self, count: int) -> MultiStreamScanner:
        """A batched stateful scanner over ``count`` logical streams."""
        return MultiStreamScanner(self, count)

    def _accumulate(self, profile: ActivityProfile):
        self._profile = self._profile.merged_with(profile)

    # -- introspection ----------------------------------------------------------

    @property
    def state_count(self) -> int:
        return len(self.automaton)

    @property
    def cache_bytes(self) -> int:
        return self.mapping.cache_bytes()

    @property
    def throughput_gbps(self) -> float:
        return self.design.throughput_gbps

    def scan_time_ms(self, input_bytes: int) -> float:
        """Modelled hardware time to stream ``input_bytes``."""
        if input_bytes < 0:
            raise ReproError("negative input length")
        return input_bytes / (self.design.frequency_ghz * 1e9) * 1e3

    def performance_summary(self) -> PerformanceSummary:
        """Line rate, footprint, and (if traffic was scanned) energy."""
        energy_model = EnergyModel(self.design)
        energy = power = None
        if self._profile.symbols:
            energy = energy_model.energy_per_symbol_nj(self._profile)
            power = energy_model.average_power_watts(self._profile)
        return PerformanceSummary(
            design=self.design.name,
            throughput_gbps=self.design.throughput_gbps,
            speedup_vs_ap=ApModel().speedup_of(self.design),
            cache_kilobytes=self.cache_bytes / 1024.0,
            states=self.state_count,
            partitions=self.mapping.partition_count,
            energy_nj_per_symbol=energy,
            average_power_watts=power,
        )
