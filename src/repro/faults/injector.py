"""Seeded fault injection and detection over a compiled mapping.

:class:`FaultInjector` turns per-subsystem rates into a deterministic
plan of :class:`~repro.faults.models.FaultEvent`\\ s; :func:`draw_event`
draws exactly one event for a chosen site (the campaign runner's
one-fault-per-trial mode, which keeps outcome attribution unambiguous).

:class:`FaultySimulator` executes a :class:`~repro.sim.functional.
MappedSimulator`'s packed kernel under a set of events:

* persistent crossbar faults become a perturbed kernel
  (:meth:`~repro.sim.kernel.BitsetKernel.with_faults`): stuck-at-0
  cross-points drop successor-table edges, stuck-at-1 enable wires
  promote their state to an all-input start;
* transient match flips XOR single bits into the raw match-vector reads
  before the enabled-AND, exactly where a sense-amplifier upset lands;
* transient state faults set/clear one bit of the pending activation
  vector between cycles.

Detection is a per-column parity check: the golden parity of every
match-matrix row is computed at configuration time
(:meth:`~repro.sim.kernel.BitsetKernel.match_parity`) and each faulted
read is re-checked against it, so any odd-weight match upset is caught.
Execution uses the plain per-cycle reference recurrence (memoised
propagation, but *no* idle fast path): the fast path's escape tables
are built from the unfaulted match matrix and would teleport over
injected faults, so the harness refuses to take shortcuts.  Its
unfaulted run is asserted against the golden interpreter by the
campaign runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import FaultError
from repro.faults.models import (
    DETECTED,
    MASKED,
    SDC,
    FaultConfig,
    FaultEvent,
    FaultSite,
)
from repro.sim.functional import MappedSimulator
from repro.sim.kernel import CHUNK_SYMBOLS, as_symbols, popcount_rows


def draw_event(
    rng: np.random.Generator,
    site: FaultSite,
    config: FaultConfig,
    n_symbols: int,
    bits: np.ndarray,
    edges: Sequence[Tuple[int, int]],
) -> FaultEvent:
    """Draw one fault event for ``site`` (uniform over its coordinates).

    ``bits`` are the occupied state-bit indices and ``edges`` the
    ``(source_bit, target_bit)`` transition list of the mapping under
    test; ``config`` decides which kinds are in play at the site.
    """
    if bits.size == 0:
        raise FaultError("cannot inject into an automaton with no states")
    if site is FaultSite.MATCH:
        if n_symbols <= 0:
            raise FaultError("transient faults need a non-empty input")
        return FaultEvent(
            site, "flip",
            int(rng.integers(n_symbols)), int(bits[rng.integers(bits.size)]),
        ).validate()
    if site is FaultSite.STATE:
        if n_symbols <= 0:
            raise FaultError("transient faults need a non-empty input")
        kinds = [
            kind
            for kind, rate in (
                ("drop", config.state_drop_rate),
                ("ghost", config.state_ghost_rate),
            )
            if rate > 0
        ] or ["drop", "ghost"]
        kind = kinds[int(rng.integers(len(kinds)))]
        return FaultEvent(
            site, kind,
            int(rng.integers(n_symbols)), int(bits[rng.integers(bits.size)]),
        ).validate()
    kinds = [
        kind
        for kind, rate in (
            ("stuck0", config.crossbar_stuck0_rate),
            ("stuck1", config.crossbar_stuck1_rate),
        )
        if rate > 0
    ] or ["stuck0", "stuck1"]
    if not edges:
        kinds = [kind for kind in kinds if kind != "stuck0"]
        if not kinds:
            raise FaultError("no edges to inject stuck-at-0 faults into")
    kind = kinds[int(rng.integers(len(kinds)))]
    if kind == "stuck0":
        source, target = edges[int(rng.integers(len(edges)))]
        return FaultEvent(site, "stuck0", -1, source, target).validate()
    return FaultEvent(
        site, "stuck1", -1, int(bits[rng.integers(bits.size)])
    ).validate()


class FaultInjector:
    """Plans deterministic fault events from per-subsystem rates.

    The same ``(config, input length, target)`` always yields the same
    plan: all randomness flows through one ``numpy`` generator seeded
    with ``config.seed``.
    """

    def __init__(self, config: FaultConfig):
        self.config = config.validate()

    def plan(
        self,
        n_symbols: int,
        bits: np.ndarray,
        edges: Sequence[Tuple[int, int]],
    ) -> Tuple[FaultEvent, ...]:
        """Rate-driven plan: transient counts are binomial in the stream
        length, stuck-at faults one coin per cross-point / enable wire."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        events: List[FaultEvent] = []
        if bits.size == 0:
            return ()
        for site, kind, rate in (
            (FaultSite.MATCH, "flip", config.match_flip_rate),
            (FaultSite.STATE, "drop", config.state_drop_rate),
            (FaultSite.STATE, "ghost", config.state_ghost_rate),
        ):
            if rate <= 0 or n_symbols == 0:
                continue
            count = int(rng.binomial(n_symbols, rate))
            cycles = rng.integers(0, n_symbols, size=count)
            chosen = bits[rng.integers(0, bits.size, size=count)]
            events.extend(
                FaultEvent(site, kind, int(cycle), int(bit)).validate()
                for cycle, bit in zip(cycles, chosen)
            )
        if config.crossbar_stuck0_rate > 0 and edges:
            struck = np.flatnonzero(
                rng.random(len(edges)) < config.crossbar_stuck0_rate
            )
            events.extend(
                FaultEvent(
                    FaultSite.CROSSBAR, "stuck0", -1,
                    edges[index][0], edges[index][1],
                ).validate()
                for index in struck.tolist()
            )
        if config.crossbar_stuck1_rate > 0:
            struck = np.flatnonzero(
                rng.random(bits.size) < config.crossbar_stuck1_rate
            )
            events.extend(
                FaultEvent(
                    FaultSite.CROSSBAR, "stuck1", -1, int(bits[index])
                ).validate()
                for index in struck.tolist()
            )
        return tuple(events)


@dataclass(frozen=True)
class FaultRunReport:
    """Outcome-relevant record of one (possibly faulted) run.

    ``signature`` pins the exact report stream — one ``(offset, packed
    reporting-row bytes)`` pair per reporting cycle — so comparing two
    runs compares every report's offset *and* identity.  ``detected``
    lists the cycles at which the match-vector parity check fired.
    """

    signature: Tuple[Tuple[int, bytes], ...]
    detected: Tuple[int, ...]
    events: Tuple[FaultEvent, ...]

    def report_offsets(self) -> List[int]:
        return sorted({offset for offset, _ in self.signature})


def classify(report: FaultRunReport, reference: FaultRunReport) -> str:
    """masked / detected / sdc for one faulted run vs its clean reference."""
    if report.detected:
        return DETECTED
    return MASKED if report.signature == reference.signature else SDC


class FaultySimulator:
    """Drives a compiled mapping's kernel under injected faults."""

    def __init__(self, simulator: MappedSimulator):
        self._kernel = simulator.kernel
        self._parity = self._kernel.match_parity()
        mapping = simulator.mapping
        size = mapping.design.partition_size

        def bit_of(ste_id: str) -> int:
            partition, slot = mapping.location[ste_id]
            return partition * size + slot

        #: Occupied state-bit indices (injection targets; padding slots
        #: hold no automaton state, so faults there are trivially masked).
        self.state_bits = np.array(
            sorted(bit_of(ste_id) for ste_id in mapping.location),
            dtype=np.int64,
        )
        #: Transitions as (source_bit, target_bit), in automaton order.
        self.edge_bits: List[Tuple[int, int]] = [
            (bit_of(source), bit_of(target))
            for source, target in mapping.automaton.edges()
        ]

    def run(
        self, data: bytes, events: Sequence[FaultEvent] = ()
    ) -> FaultRunReport:
        """Scan ``data`` with ``events`` injected; see the module doc."""
        symbols = as_symbols(data)
        drop_edges = []
        stuck_high = []
        match_flips: Dict[int, List[int]] = {}
        state_faults: Dict[int, List[Tuple[str, int]]] = {}
        for event in events:
            event.validate()
            if event.kind == "stuck0":
                drop_edges.append((event.bit, event.target))
            elif event.kind == "stuck1":
                stuck_high.append(event.bit)
            elif event.kind == "flip":
                match_flips.setdefault(event.cycle, []).append(event.bit)
            else:
                state_faults.setdefault(event.cycle, []).append(
                    (event.kind, event.bit)
                )
        kernel = self._kernel
        if drop_edges or stuck_high:
            kernel = kernel.with_faults(
                drop_edges=tuple(drop_edges),
                stuck_high_bits=tuple(stuck_high),
            )

        signature: List[Tuple[int, bytes]] = []
        detected: List[int] = []
        prev = kernel.pack(0)
        prev_nonzero = False
        sod = kernel.has_sod
        start_row = kernel.start_all_row
        report_row = kernel.report_row
        for start in range(0, len(symbols), CHUNK_SYMBOLS):
            sym = symbols[start : start + CHUNK_SYMBOLS]
            matched = kernel.match_matrix[sym]
            for cycle, bits in match_flips.items():
                if start <= cycle < start + len(sym):
                    for bit in bits:
                        matched[cycle - start, bit >> 6] ^= np.uint64(
                            1 << (bit & 63)
                        )
            # Per-column parity of the raw reads, against the golden table.
            parity = (popcount_rows(matched) & 1).astype(np.uint8)
            for cycle in np.flatnonzero(parity != self._parity[sym]):
                detected.append(start + int(cycle))
            for i in range(len(sym)):
                for kind, bit in state_faults.get(start + i, ()):
                    if not prev.flags.writeable:
                        prev = prev.copy()
                    mask = np.uint64(1 << (bit & 63))
                    if kind == "drop":
                        prev[bit >> 6] &= ~mask
                    else:
                        prev[bit >> 6] |= mask
                    prev_nonzero = bool(prev.any())
                mrow = matched[i]
                if prev_nonzero or sod:
                    erow = np.bitwise_or(prev, start_row)
                    if sod:
                        erow |= kernel.start_sod_row
                        sod = False
                    mrow &= erow
                else:
                    mrow &= start_row
                reporting = mrow & report_row
                if reporting.any():
                    signature.append((start + i, reporting.tobytes()))
                prev, prev_nonzero = kernel.propagate(mrow)
        return FaultRunReport(
            tuple(signature), tuple(detected), tuple(events)
        )
