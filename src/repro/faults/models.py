"""Fault taxonomy for the Cache Automaton hardware state.

Three fault *sites* cover the state the paper actually builds:

* ``MATCH`` — a transient bit flip in one packed match-matrix word: the
  sense amplifiers mis-read one bit of an STE column during the state
  match.  Transient (one cycle, one bit).
* ``CROSSBAR`` — a stuck-at fault in an L/G-switch 8T crossbar:
  stuck-at-0 kills one cross-point (the transition never fires),
  stuck-at-1 holds a state's enable wire high (the state is enabled
  every cycle).  Persistent for the run.
* ``STATE`` — a dropped or ghost bit in the active state vector between
  cycles (a flip in the latches holding pending successor activations).
  Transient (strikes before one cycle).

Each injected fault is classified into one of three *outcomes*:

* ``masked`` — the report stream is unchanged and no detector fired
  (the fault hit a don't-care: a disabled state, a dead cycle, an
  unused column);
* ``detected`` — the per-column parity check on the match-vector read
  caught it (parity covers every odd-weight match read upset, so single
  MATCH flips are always detected);
* ``sdc`` — silent data corruption: the report stream differs from the
  golden reference and nothing fired.  This is the AVF numerator.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

from repro.errors import FaultError

#: Outcome classes of one injected fault.
MASKED = "masked"
DETECTED = "detected"
SDC = "sdc"
OUTCOMES = (MASKED, DETECTED, SDC)


class FaultSite(str, Enum):
    """Where a fault strikes (the three hardware structures modelled)."""

    MATCH = "match"
    CROSSBAR = "crossbar"
    STATE = "state"


#: Fault kinds per site (documented here, checked by FaultEvent.validate).
_SITE_KINDS = {
    FaultSite.MATCH: ("flip",),
    FaultSite.CROSSBAR: ("stuck0", "stuck1"),
    FaultSite.STATE: ("drop", "ghost"),
}


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault.

    ``cycle`` is the symbol index at which a transient fault strikes
    (``-1`` for persistent stuck-at faults, which hold for the whole
    run).  ``bit`` is the state-bit coordinate (for ``stuck0`` it is the
    *source* bit and ``target`` the destination bit of the dead
    cross-point).
    """

    site: FaultSite
    kind: str
    cycle: int
    bit: int
    target: int = -1

    def validate(self) -> "FaultEvent":
        kinds = _SITE_KINDS[self.site]
        if self.kind not in kinds:
            raise FaultError(
                f"{self.site.value} faults must be one of {kinds}, "
                f"got {self.kind!r}"
            )
        if self.kind == "stuck0" and self.target < 0:
            raise FaultError("stuck0 faults need a target bit")
        persistent = self.kind in ("stuck0", "stuck1")
        if persistent != (self.cycle < 0):
            raise FaultError(
                f"{self.kind} faults are "
                f"{'persistent (cycle=-1)' if persistent else 'transient (cycle>=0)'}"
                f", got cycle={self.cycle}"
            )
        return self


@dataclass(frozen=True)
class FaultConfig:
    """Per-subsystem fault-rate knobs for rate-driven injection.

    Transient rates (``match_flip_rate``, ``state_drop_rate``,
    ``state_ghost_rate``) are per-symbol-cycle probabilities; stuck
    rates are per-cross-point (``crossbar_stuck0_rate``, over edges) and
    per-enable-wire (``crossbar_stuck1_rate``, over states)
    probabilities, drawn once per run.  A site with every rate at zero
    is excluded from campaigns.
    """

    seed: int = 0
    match_flip_rate: float = 0.0
    state_drop_rate: float = 0.0
    state_ghost_rate: float = 0.0
    crossbar_stuck0_rate: float = 0.0
    crossbar_stuck1_rate: float = 0.0

    def validate(self) -> "FaultConfig":
        for name in (
            "match_flip_rate",
            "state_drop_rate",
            "state_ghost_rate",
            "crossbar_stuck0_rate",
            "crossbar_stuck1_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultError(f"{name} must be in [0, 1], got {rate}")
        return self

    def enabled_sites(self) -> Tuple[FaultSite, ...]:
        """Sites with at least one positive rate, in stable order."""
        sites = []
        if self.match_flip_rate > 0:
            sites.append(FaultSite.MATCH)
        if self.crossbar_stuck0_rate > 0 or self.crossbar_stuck1_rate > 0:
            sites.append(FaultSite.CROSSBAR)
        if self.state_drop_rate > 0 or self.state_ghost_rate > 0:
            sites.append(FaultSite.STATE)
        return tuple(sites)


#: Convenience config enabling every site at a uniform (low) rate —
#: campaigns that inject exactly one fault per trial only consult the
#: rates to decide which sites and kinds are in play.
ALL_SITES = FaultConfig(
    match_flip_rate=1e-4,
    state_drop_rate=1e-4,
    state_ghost_rate=1e-4,
    crossbar_stuck0_rate=1e-4,
    crossbar_stuck1_rate=1e-4,
)
