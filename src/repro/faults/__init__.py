"""Fault models, injection, and detection for the Cache Automaton.

Computing *in* LLC SRAM arrays with aggressive sense-amplifier cycling
makes transient bit flips in STE match columns and stuck-at faults in
the 8T crossbar switches first-class hardware concerns (related
in-memory automata designs — CAMA, ReRAM crossbar FSAs — evaluate
device non-idealities as a core axis).  This package models them:

* :mod:`repro.faults.models` — the fault taxonomy: sites (match array,
  crossbar switch, active state vector), kinds (flip, drop, ghost,
  stuck-at-0/1), per-subsystem rate knobs, and outcome classes
  (masked / detected / silent data corruption);
* :mod:`repro.faults.injector` — the seeded deterministic
  :class:`FaultInjector` and the :class:`FaultySimulator` harness that
  drives a compiled mapping under injected faults with per-column
  parity detection.

The AVF-style campaign runner lives in :mod:`repro.eval.faults`
(``python -m repro.cli fault-campaign``).
"""

from repro.faults.models import (
    ALL_SITES,
    DETECTED,
    MASKED,
    OUTCOMES,
    SDC,
    FaultConfig,
    FaultEvent,
    FaultSite,
)
from repro.faults.injector import (
    FaultInjector,
    FaultRunReport,
    FaultySimulator,
    classify,
    draw_event,
)

__all__ = [
    "ALL_SITES",
    "DETECTED",
    "MASKED",
    "OUTCOMES",
    "SDC",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultRunReport",
    "FaultSite",
    "FaultySimulator",
    "classify",
    "draw_event",
]
