"""Regex engine: parser, AST, and compilation to automata."""

from repro.regex.ast import Pattern
from repro.regex.compile import compile_pattern, compile_patterns, literal_pattern
from repro.regex.glushkov import build_glushkov
from repro.regex.parser import parse, parse_many
from repro.regex.thompson import build_thompson

__all__ = [
    "Pattern",
    "build_glushkov",
    "build_thompson",
    "compile_pattern",
    "compile_patterns",
    "literal_pattern",
    "parse",
    "parse_many",
]
