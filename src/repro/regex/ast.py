"""Regular-expression abstract syntax tree.

A deliberately small node set: everything the parser accepts is desugared
into literals (character classes), concatenation, alternation, unbounded
star, and the empty string.  Bounded repetition ``{m,n}`` is expanded by
duplication in :func:`desugar_repeat`, which is exactly what a spatial
automata compiler must do anyway — each repetition consumes real STEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.automata.symbols import SymbolSet
from repro.errors import RegexSyntaxError

#: Expanding ``{m,n}`` duplicates the sub-pattern; this cap keeps a single
#: pattern from consuming an entire cache slice by accident.
MAX_REPEAT_EXPANSION = 1024


class Node:
    """Base class for AST nodes (value objects, compared structurally)."""

    __slots__ = ()


@dataclass(frozen=True)
class Empty(Node):
    """Matches the empty string."""

    __slots__ = ()

    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class Literal(Node):
    """Matches any single byte in ``symbols``."""

    symbols: SymbolSet

    __slots__ = ("symbols",)

    def __str__(self) -> str:
        return self.symbols.canonical_expression()


@dataclass(frozen=True)
class Concat(Node):
    """Matches ``left`` followed by ``right``."""

    left: Node
    right: Node

    __slots__ = ("left", "right")

    def __str__(self) -> str:
        return f"{self.left}{self.right}"


@dataclass(frozen=True)
class Alternation(Node):
    """Matches either ``left`` or ``right``."""

    left: Node
    right: Node

    __slots__ = ("left", "right")

    def __str__(self) -> str:
        return f"(?:{self.left}|{self.right})"


@dataclass(frozen=True)
class Star(Node):
    """Matches zero or more repetitions of ``child``."""

    child: Node

    __slots__ = ("child",)

    def __str__(self) -> str:
        return f"(?:{self.child})*"


def concat_all(nodes: list[Node]) -> Node:
    """Right-associated concatenation of ``nodes`` (Empty when none)."""
    result: Node = Empty()
    for node in reversed(nodes):
        if isinstance(node, Empty):
            continue
        result = node if isinstance(result, Empty) else Concat(node, result)
    return result


def alternate_all(nodes: list[Node]) -> Node:
    """Right-associated alternation of ``nodes``."""
    if not nodes:
        return Empty()
    result = nodes[-1]
    for node in reversed(nodes[:-1]):
        result = Alternation(node, result)
    return result


def desugar_repeat(
    child: Node, minimum: int, maximum: Optional[int], pattern: str = ""
) -> Node:
    """Expand ``child{minimum,maximum}`` into concat/star/optional form.

    ``maximum=None`` means unbounded.  ``x{2,4}`` becomes
    ``x x (x (x)?)?`` so that the optional tail nests (this keeps the
    Glushkov position count exactly ``maximum``).
    """
    if minimum < 0 or (maximum is not None and maximum < minimum):
        raise RegexSyntaxError(f"bad repeat bounds {{{minimum},{maximum}}}", pattern)
    expansion_size = maximum if maximum is not None else minimum + 1
    if expansion_size > MAX_REPEAT_EXPANSION:
        raise RegexSyntaxError(
            f"repeat expansion of {expansion_size} exceeds cap "
            f"{MAX_REPEAT_EXPANSION}",
            pattern,
        )
    required = concat_all([child] * minimum)
    if maximum is None:
        return Concat(required, Star(child)) if minimum else Star(child)
    optional_count = maximum - minimum
    optional_tail: Node = Empty()
    for _ in range(optional_count):
        # x (tail)? nested: innermost first.
        inner = Concat(child, optional_tail) if not isinstance(
            optional_tail, Empty
        ) else child
        optional_tail = Alternation(inner, Empty())
    if isinstance(required, Empty):
        return optional_tail
    if isinstance(optional_tail, Empty):
        return required
    return Concat(required, optional_tail)


def nullable(node: Node) -> bool:
    """True iff ``node`` matches the empty string."""
    if isinstance(node, Empty):
        return True
    if isinstance(node, Literal):
        return False
    if isinstance(node, Concat):
        return nullable(node.left) and nullable(node.right)
    if isinstance(node, Alternation):
        return nullable(node.left) or nullable(node.right)
    if isinstance(node, Star):
        return True
    raise TypeError(f"unknown AST node {node!r}")


def count_positions(node: Node) -> int:
    """Number of literal positions = number of Glushkov states."""
    if isinstance(node, (Empty,)):
        return 0
    if isinstance(node, Literal):
        return 1
    if isinstance(node, (Concat, Alternation)):
        return count_positions(node.left) + count_positions(node.right)
    if isinstance(node, Star):
        return count_positions(node.child)
    raise TypeError(f"unknown AST node {node!r}")


@dataclass(frozen=True)
class Pattern:
    """A parsed pattern: the AST plus top-level anchoring flags."""

    root: Node
    anchored_start: bool = False
    anchored_end: bool = False
    source: str = ""

    def position_count(self) -> int:
        return count_positions(self.root)


Bounds = Tuple[int, Optional[int]]
