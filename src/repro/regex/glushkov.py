"""Glushkov position automaton: regex AST -> homogeneous automaton.

The Glushkov construction is the natural compiler front-end for spatial
automata processors: it produces an epsilon-free automaton with exactly
one state per literal *position* in the pattern, and every state is
entered only on that position's character class — i.e. the result is
*already homogeneous* (ANML-shaped), no label splitting required.

Construction (standard): compute ``nullable``, ``first``, ``last`` and the
``follow`` relation over positions; states are positions, start states are
``first``, reporting states are ``last``, edges are ``follow``.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.automata.anml import HomogeneousAutomaton, StartKind
from repro.automata.symbols import SymbolSet
from repro.errors import RegexError
from repro.regex.ast import (
    Alternation,
    Concat,
    Empty,
    Literal,
    Node,
    Pattern,
    Star,
)


class _Positions:
    """Assigns dense indices to literal positions and gathers follow pairs."""

    def __init__(self):
        self.symbols: List[SymbolSet] = []
        self.follow: Set[Tuple[int, int]] = set()

    def new_position(self, symbols: SymbolSet) -> int:
        self.symbols.append(symbols)
        return len(self.symbols) - 1

    def analyse(self, node: Node) -> Tuple[bool, frozenset, frozenset]:
        """Return (nullable, first, last) of ``node``, recording follows."""
        if isinstance(node, Empty):
            return True, frozenset(), frozenset()
        if isinstance(node, Literal):
            position = self.new_position(node.symbols)
            singleton = frozenset({position})
            return False, singleton, singleton
        if isinstance(node, Concat):
            left_nullable, left_first, left_last = self.analyse(node.left)
            right_nullable, right_first, right_last = self.analyse(node.right)
            for source in left_last:
                for target in right_first:
                    self.follow.add((source, target))
            first = left_first | right_first if left_nullable else left_first
            last = right_last | left_last if right_nullable else right_last
            return left_nullable and right_nullable, first, last
        if isinstance(node, Alternation):
            left_nullable, left_first, left_last = self.analyse(node.left)
            right_nullable, right_first, right_last = self.analyse(node.right)
            return (
                left_nullable or right_nullable,
                left_first | right_first,
                left_last | right_last,
            )
        if isinstance(node, Star):
            _, first, last = self.analyse(node.child)
            for source in last:
                for target in first:
                    self.follow.add((source, target))
            return True, first, last
        raise TypeError(f"unknown AST node {node!r}")


def build_glushkov(
    pattern: Pattern,
    *,
    automaton_id: str = "glushkov",
    report_code: str | None = None,
    state_prefix: str = "p",
) -> HomogeneousAutomaton:
    """Build the homogeneous position automaton for ``pattern``.

    Start-state kind follows the pattern's anchoring: ``^``-anchored
    patterns get :attr:`StartKind.START_OF_DATA` (active for the first
    symbol only), unanchored patterns get :attr:`StartKind.ALL_INPUT`
    (re-armed every cycle — the scanning semantics automata processors
    use).  Patterns that match the empty string are rejected: a
    homogeneous automaton cannot report before consuming a symbol.

    ``$`` anchoring has no portable ANML encoding; callers that need it
    should append an explicit end-of-data sentinel to both pattern and
    input (see :func:`repro.regex.compile.compile_pattern`).
    """
    analysis = _Positions()
    nullable, first, last = analysis.analyse(pattern.root)
    if nullable:
        raise RegexError(
            f"pattern {pattern.source!r} matches the empty string; "
            "spatial automata report only after consuming input"
        )
    if pattern.anchored_end:
        raise RegexError(
            "'$' anchors must be desugared to a sentinel before construction"
        )
    start_kind = (
        StartKind.START_OF_DATA if pattern.anchored_start else StartKind.ALL_INPUT
    )
    automaton = HomogeneousAutomaton(automaton_id)
    for position, symbols in enumerate(analysis.symbols):
        automaton.add_ste(
            f"{state_prefix}{position}",
            symbols,
            start=start_kind if position in first else StartKind.NONE,
            reporting=position in last,
            report_code=report_code if position in last else None,
        )
    for source, target in sorted(analysis.follow):
        automaton.add_edge(f"{state_prefix}{source}", f"{state_prefix}{target}")
    return automaton
