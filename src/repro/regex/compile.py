"""High-level regex -> automaton compilation entry points.

This is the user-facing front door of the regex engine:

>>> from repro.regex.compile import compile_patterns
>>> machine = compile_patterns(["bat", "bar", "car[t]?"])
>>> machine.edge_count() > 0
True

``compile_pattern`` builds one homogeneous automaton per pattern (via the
Glushkov construction); ``compile_patterns`` merges a whole rule set into
one multi-pattern machine, each rule reporting with its own report code —
the shape every paper workload takes before entering the Cache Automaton
compiler.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.automata.anml import HomogeneousAutomaton, StartKind, merge
from repro.automata.symbols import SymbolSet
from repro.errors import RegexError
from repro.regex.ast import Concat, Literal, Pattern
from repro.regex.glushkov import build_glushkov
from repro.regex.parser import parse


def compile_pattern(
    pattern: str,
    *,
    report_code: Optional[str] = None,
    eod_sentinel: Optional[int] = None,
    automaton_id: Optional[str] = None,
) -> HomogeneousAutomaton:
    """Compile one regex into a homogeneous automaton.

    ``eod_sentinel`` enables ``$`` support: the anchor is desugared into a
    trailing literal matching the sentinel byte, and the caller must
    terminate input streams with that byte.  Without it, ``$`` raises
    :class:`~repro.errors.RegexError`.
    """
    parsed = parse(pattern)
    if parsed.anchored_end:
        if eod_sentinel is None:
            raise RegexError(
                f"pattern {pattern!r} uses '$' but no eod_sentinel was given"
            )
        parsed = Pattern(
            Concat(parsed.root, Literal(SymbolSet.single(eod_sentinel))),
            parsed.anchored_start,
            False,
            parsed.source,
        )
    return build_glushkov(
        parsed,
        automaton_id=automaton_id or f"re:{pattern}",
        report_code=report_code,
    )


def compile_patterns(
    patterns: Sequence[str],
    *,
    report_codes: Optional[Iterable[str]] = None,
    eod_sentinel: Optional[int] = None,
    automaton_id: str = "ruleset",
) -> HomogeneousAutomaton:
    """Compile a rule set into one multi-pattern homogeneous automaton.

    Each rule's reporting states carry its report code (defaulting to the
    rule index as a string), so simulator report records identify which
    pattern fired.
    """
    if not patterns:
        raise RegexError("empty rule set")
    if report_codes is None:
        codes: List[str] = [str(index) for index in range(len(patterns))]
    else:
        codes = list(report_codes)
        if len(codes) != len(patterns):
            raise RegexError(
                f"{len(patterns)} patterns but {len(codes)} report codes"
            )
    parts = [
        compile_pattern(pattern, report_code=code, eod_sentinel=eod_sentinel)
        for pattern, code in zip(patterns, codes)
    ]
    return merge(parts, automaton_id=automaton_id)


def literal_pattern(
    text: str,
    *,
    report_code: Optional[str] = None,
    anchored: bool = False,
    state_prefix: str = "lit",
) -> HomogeneousAutomaton:
    """Build the chain automaton for an exact string (no regex parsing).

    Exact-match rule sets (ExactMatch, ClamAV signatures, dictionary
    scans) are a large fraction of real workloads; building them directly
    avoids escaping issues and is O(len).
    """
    if not text:
        raise RegexError("empty literal")
    automaton = HomogeneousAutomaton(f"lit:{text}")
    start_kind = StartKind.START_OF_DATA if anchored else StartKind.ALL_INPUT
    previous = None
    for index, character in enumerate(text):
        ste_id = f"{state_prefix}{index}"
        is_last = index == len(text) - 1
        automaton.add_ste(
            ste_id,
            SymbolSet.single(character),
            start=start_kind if index == 0 else StartKind.NONE,
            reporting=is_last,
            report_code=report_code if is_last else None,
        )
        if previous is not None:
            automaton.add_edge(previous, ste_id)
        previous = ste_id
    return automaton
