"""Thompson construction: regex AST -> classical epsilon-NFA.

The Thompson automaton is linear in the pattern size and easy to prove
correct, which makes it the ideal *oracle* against which the Glushkov
construction is tested (after epsilon removal they must be language-
equivalent).  It is also the entry point for users who want a classical
NFA to feed through :func:`repro.automata.transform.to_homogeneous`.
"""

from __future__ import annotations

import itertools

from repro.automata.nfa import Nfa
from repro.errors import RegexError
from repro.regex.ast import Alternation, Concat, Empty, Literal, Node, Pattern, Star


def build_thompson(pattern: Pattern, *, state_prefix: str = "t") -> Nfa:
    """Build the classical epsilon-NFA for ``pattern``.

    The result has a single start state and a single accept state and
    accepts exactly the language of the pattern (whole-string semantics;
    anchors are the caller's concern, as in
    :func:`repro.regex.glushkov.build_glushkov`).
    """
    if pattern.anchored_end:
        raise RegexError(
            "'$' anchors must be desugared to a sentinel before construction"
        )
    nfa = Nfa()
    counter = itertools.count()

    def fresh() -> str:
        return f"{state_prefix}{next(counter)}"

    def build(node: Node) -> tuple[str, str]:
        """Return (entry, exit) states of the fragment for ``node``."""
        entry, exit_ = fresh(), fresh()
        if isinstance(node, Empty):
            nfa.add_epsilon(entry, exit_)
        elif isinstance(node, Literal):
            nfa.add_transition(entry, node.symbols, exit_)
        elif isinstance(node, Concat):
            left_entry, left_exit = build(node.left)
            right_entry, right_exit = build(node.right)
            nfa.add_epsilon(entry, left_entry)
            nfa.add_epsilon(left_exit, right_entry)
            nfa.add_epsilon(right_exit, exit_)
        elif isinstance(node, Alternation):
            left_entry, left_exit = build(node.left)
            right_entry, right_exit = build(node.right)
            nfa.add_epsilon(entry, left_entry)
            nfa.add_epsilon(entry, right_entry)
            nfa.add_epsilon(left_exit, exit_)
            nfa.add_epsilon(right_exit, exit_)
        elif isinstance(node, Star):
            child_entry, child_exit = build(node.child)
            nfa.add_epsilon(entry, child_entry)
            nfa.add_epsilon(child_exit, child_entry)
            nfa.add_epsilon(entry, exit_)
            nfa.add_epsilon(child_exit, exit_)
        else:
            raise TypeError(f"unknown AST node {node!r}")
        return entry, exit_

    start, accept = build(pattern.root)
    nfa.set_start(start)
    nfa.set_accept(accept)
    return nfa
