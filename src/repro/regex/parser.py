"""Recursive-descent regular-expression parser.

Supported syntax (the subset exercised by the Regex/ANMLZoo benchmark
families — Becchi-style rule sets, Snort content patterns):

* literals, ``\\`` escapes (``\\xNN``, ``\\d \\w \\s`` and complements,
  control escapes), ``.`` (any byte except newline);
* character classes ``[...]`` with ranges and negation;
* grouping ``( )`` and non-capturing ``(?: )``;
* quantifiers ``* + ?`` and counted ``{m} {m,} {m,n}``, each optionally
  followed by a lazy ``?`` (accepted and ignored — match *reporting* in
  automata processing is greedy-agnostic: every match end is reported);
* alternation ``|``;
* anchors ``^`` (only as the first character) and ``$`` (only as the
  last), recorded as pattern-level flags.

Anything else raises :class:`~repro.errors.RegexSyntaxError` with the
offending offset.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.automata.charclass import parse_class_body, parse_escape
from repro.automata.symbols import SymbolSet
from repro.errors import RegexSyntaxError
from repro.regex.ast import (
    Literal,
    Node,
    Pattern,
    alternate_all,
    concat_all,
    desugar_repeat,
)

#: ``.`` in a regex: every byte except newline (PCRE default).
DOT = SymbolSet.single("\n").complement()

_QUANTIFIER_START = "*+?{"
_SPECIAL = set("|()[{*+?\\^$")


class _Parser:
    def __init__(self, pattern: str):
        self.pattern = pattern
        self.position = 0

    # -- low-level helpers ---------------------------------------------------

    def _error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(message, self.pattern, self.position)

    def _peek(self) -> Optional[str]:
        if self.position < len(self.pattern):
            return self.pattern[self.position]
        return None

    def _take(self) -> str:
        character = self.pattern[self.position]
        self.position += 1
        return character

    def _expect(self, character: str):
        if self._peek() != character:
            raise self._error(f"expected {character!r}")
        self.position += 1

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> Pattern:
        anchored_start = False
        if self._peek() == "^":
            anchored_start = True
            self.position += 1
        root = self._alternation()
        anchored_end = False
        # '$' is only valid as the very last character of the pattern;
        # _alternation stops before it because we treat it as a terminator.
        if self._peek() == "$":
            self.position += 1
            anchored_end = True
        if self.position != len(self.pattern):
            raise self._error("unexpected trailing input")
        return Pattern(root, anchored_start, anchored_end, self.pattern)

    def _alternation(self) -> Node:
        branches = [self._concatenation()]
        while self._peek() == "|":
            self.position += 1
            branches.append(self._concatenation())
        return alternate_all(branches)

    def _concatenation(self) -> Node:
        parts: List[Node] = []
        while True:
            character = self._peek()
            if character is None or character in "|)":
                break
            if character == "$" and self.position == len(self.pattern) - 1:
                break  # terminal anchor, handled by parse()
            parts.append(self._repeat())
        return concat_all(parts)

    def _repeat(self) -> Node:
        atom = self._atom()
        while True:
            character = self._peek()
            if character is None or character not in _QUANTIFIER_START:
                return atom
            if character == "*":
                self.position += 1
                atom = desugar_repeat(atom, 0, None, self.pattern)
            elif character == "+":
                self.position += 1
                atom = desugar_repeat(atom, 1, None, self.pattern)
            elif character == "?":
                self.position += 1
                atom = desugar_repeat(atom, 0, 1, self.pattern)
            else:  # '{'
                minimum, maximum = self._counted_bounds()
                atom = desugar_repeat(atom, minimum, maximum, self.pattern)
            # Lazy modifier: accepted, ignored (see module docstring).
            if self._peek() == "?":
                self.position += 1

    def _counted_bounds(self) -> Tuple[int, Optional[int]]:
        """Parse ``{m}``, ``{m,}`` or ``{m,n}`` starting at '{'."""
        start = self.position
        self.position += 1  # consume '{'
        digits = ""
        while self._peek() is not None and self._peek().isdigit():
            digits += self._take()
        if not digits:
            self.position = start
            raise self._error("'{' must introduce a counted repeat {m,n}")
        minimum = int(digits)
        maximum: Optional[int] = minimum
        if self._peek() == ",":
            self.position += 1
            upper_digits = ""
            while self._peek() is not None and self._peek().isdigit():
                upper_digits += self._take()
            maximum = int(upper_digits) if upper_digits else None
        self._expect("}")
        return (minimum, maximum)

    def _atom(self) -> Node:
        character = self._peek()
        if character is None:
            raise self._error("expected an atom")
        if character == "(":
            self.position += 1
            if self.pattern.startswith("?:", self.position):
                self.position += 2
            elif self._peek() == "?":
                raise self._error("only (?: ) groups are supported")
            inner = self._alternation()
            self._expect(")")
            return inner
        if character == "[":
            self.position += 1
            symbols, self.position = _parse_class(self.pattern, self.position)
            return Literal(symbols)
        if character == "\\":
            symbols, self.position = parse_escape(self.pattern, self.position)
            return Literal(symbols)
        if character == ".":
            self.position += 1
            return Literal(DOT)
        if character in "*+?{":
            raise self._error(f"quantifier {character!r} with nothing to repeat")
        if character in ")|":
            raise self._error(f"unexpected {character!r}")
        if character in "^$":
            raise self._error(f"anchor {character!r} only allowed at pattern edge")
        if ord(character) > 255:
            raise self._error(f"non-byte character {character!r}")
        self.position += 1
        return Literal(SymbolSet.single(character))


def _parse_class(pattern: str, position: int) -> Tuple[SymbolSet, int]:
    try:
        return parse_class_body(pattern, position)
    except Exception as error:
        raise RegexSyntaxError(str(error), pattern, position) from error


def parse(pattern: str) -> Pattern:
    """Parse ``pattern`` into a :class:`~repro.regex.ast.Pattern`."""
    if pattern == "":
        raise RegexSyntaxError("empty pattern", pattern, 0)
    return _Parser(pattern).parse()


def parse_many(patterns: List[str]) -> List[Pattern]:
    """Parse a rule set; errors are annotated with the rule index."""
    parsed = []
    for index, pattern in enumerate(patterns):
        try:
            parsed.append(parse(pattern))
        except RegexSyntaxError as error:
            raise RegexSyntaxError(
                f"rule {index}: {error}", pattern, error.position
            ) from error
    return parsed
