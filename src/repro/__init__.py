"""Cache Automaton (MICRO 2017) reproduction.

In-cache automata processing: a compiler that maps real-world NFAs onto
last-level-cache SRAM arrays with a hierarchical crossbar interconnect,
functional simulators at three fidelity levels, analytic timing / energy
/ area models, baselines (Micron AP, x86 CPU, HARE, UAP), and the full
20-benchmark evaluation suite.

Quickstart::

    from repro import compile_patterns, CA_P, compile_automaton, simulate_mapping

    machine = compile_patterns(["bat", "bar[t]?", "c[ao]t"])
    mapping = compile_automaton(machine, CA_P)
    result = simulate_mapping(mapping, b"the cart hit the bat")
    for report in result.reports:
        print(report.offset, report.report_code)
"""

from repro.automata import HomogeneousAutomaton, StartKind, SymbolSet
from repro.baselines import ApModel, CpuReferenceModel
from repro.compiler import Mapping, compile_automaton
from repro.core import CA_64, CA_P, CA_S, DesignPoint, EnergyModel
from repro.engine import CacheAutomatonEngine, Match
from repro.errors import ReproError
from repro.regex import compile_pattern, compile_patterns, literal_pattern
from repro.sim import GoldenSimulator, MappedSimulator, simulate, simulate_mapping

__version__ = "1.0.0"

__all__ = [
    "ApModel",
    "CA_64",
    "CA_P",
    "CA_S",
    "CacheAutomatonEngine",
    "Match",
    "CpuReferenceModel",
    "DesignPoint",
    "EnergyModel",
    "GoldenSimulator",
    "HomogeneousAutomaton",
    "MappedSimulator",
    "Mapping",
    "ReproError",
    "StartKind",
    "SymbolSet",
    "compile_automaton",
    "compile_pattern",
    "compile_patterns",
    "literal_pattern",
    "simulate",
    "simulate_mapping",
    "__version__",
]
