"""Exception hierarchy for the Cache Automaton reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the major
subsystems: automata construction, regex parsing, compilation/mapping, and
hardware-model configuration.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class AutomatonError(ReproError):
    """Invalid automaton structure or an operation on an unsuitable automaton."""


class SymbolSetError(AutomatonError):
    """Invalid symbol, range, or symbol-set expression."""


class DeterminisationExplosion(AutomatonError):
    """Eager subset construction blew past its state budget.

    Carries machine-readable attribution so callers (the engine's
    fallback chain, the hybrid backend's health log) can report *which*
    component caused the blow-up instead of a bare string:
    ``component_id`` is the smallest STE id of the offending connected
    component (``None`` when attribution was not possible),
    ``state_estimate`` the number of subset-construction rows reached
    before aborting, and ``max_states`` the budget that was exceeded.
    """

    def __init__(
        self,
        message: str,
        *,
        component_id: "str | None" = None,
        state_estimate: int = 0,
        max_states: int = 0,
    ):
        self.component_id = component_id
        self.state_estimate = state_estimate
        self.max_states = max_states
        super().__init__(message)


class StrideError(AutomatonError):
    """Invalid k-stride configuration (unsupported stride value or an
    alphabet the stride transform cannot represent)."""


class RegexError(ReproError):
    """Base class for regex-engine errors."""


class RegexSyntaxError(RegexError):
    """Malformed regular expression.

    Carries the pattern and the offset at which parsing failed so tooling
    can point at the offending character.
    """

    def __init__(self, message: str, pattern: str = "", position: int = -1):
        self.pattern = pattern
        self.position = position
        if position >= 0:
            message = f"{message} (at offset {position} in {pattern!r})"
        super().__init__(message)


class AnmlError(AutomatonError):
    """Malformed ANML document or unsupported ANML feature."""


class CompileError(ReproError):
    """The compiler could not map an automaton onto the target design."""


class CapacityError(CompileError):
    """The automaton does not fit in the configured cache capacity."""


class ConnectivityError(CompileError):
    """A mapping violates the interconnect's wire budget."""


class PartitioningError(ReproError):
    """The graph partitioner was given an infeasible request."""


class HardwareModelError(ReproError):
    """Inconsistent hardware-model parameters (geometry, timing, energy)."""


class SimulationError(ReproError):
    """The functional simulator was driven with invalid state or input."""


class BackendError(ReproError):
    """Unknown execution backend, or a backend request it cannot serve."""


class ArtifactError(ReproError):
    """A compiled-artifact payload is corrupt, incomplete, or does not
    belong to the (automaton, design) it was loaded against.

    The artifact cache treats this as "quarantine and recompile", never
    as a hard failure."""


class FaultError(ReproError):
    """Invalid fault-injection configuration or an uninjectable target."""


class DegradedModeWarning(RuntimeWarning):
    """A subsystem fell back to a slower but safe tier.

    Emitted (never raised) when the engine or compiler degrades
    gracefully instead of failing: parallel compilation dropping to the
    serial path, a corrupt cache artefact being quarantined and
    recompiled, or the mapped simulator giving way to the golden
    interpreter.  It derives from :class:`RuntimeWarning`, not
    :class:`ReproError`, because the operation still succeeds.
    """
