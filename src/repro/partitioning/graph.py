"""Weighted undirected graphs for the partitioner.

The Cache Automaton compiler partitions the *undirected* state-connectivity
graph of an NFA: a directed transition in either direction between two
states means they would pay a G-switch wire if placed in different
partitions, so edge weight counts directed edges collapsed onto the pair.

The representation is index-based (nodes ``0..n-1``) with contiguous
adjacency dictionaries — simple, and fast enough for the tens-of-thousands
of-states automata this library handles.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import PartitioningError


class PartitionGraph:
    """Undirected graph with integer node weights and edge weights."""

    def __init__(self, node_weights: Sequence[int]):
        if any(weight <= 0 for weight in node_weights):
            raise PartitioningError("node weights must be positive")
        self.node_weights: List[int] = list(node_weights)
        self.adjacency: List[Dict[int, int]] = [{} for _ in node_weights]

    @property
    def node_count(self) -> int:
        return len(self.node_weights)

    @property
    def total_weight(self) -> int:
        return sum(self.node_weights)

    def add_edge(self, u: int, v: int, weight: int = 1):
        """Add ``weight`` to the edge ``{u, v}``; self-loops are ignored
        (a self-transition never crosses a partition boundary)."""
        if u == v:
            return
        if weight <= 0:
            raise PartitioningError("edge weights must be positive")
        if not (0 <= u < self.node_count and 0 <= v < self.node_count):
            raise PartitioningError(f"edge ({u}, {v}) out of range")
        self.adjacency[u][v] = self.adjacency[u].get(v, 0) + weight
        self.adjacency[v][u] = self.adjacency[v].get(u, 0) + weight

    def neighbours(self, u: int) -> Dict[int, int]:
        return self.adjacency[u]

    def edge_count(self) -> int:
        return sum(len(a) for a in self.adjacency) // 2

    def edges(self) -> Iterable[Tuple[int, int, int]]:
        for u, adjacency in enumerate(self.adjacency):
            for v, weight in adjacency.items():
                if u < v:
                    yield (u, v, weight)

    def degree_weight(self, u: int) -> int:
        return sum(self.adjacency[u].values())


def cut_weight(graph: PartitionGraph, assignment: Sequence[int]) -> int:
    """Total weight of edges whose endpoints are in different parts."""
    total = 0
    for u, v, weight in graph.edges():
        if assignment[u] != assignment[v]:
            total += weight
    return total


def part_weights(graph: PartitionGraph, assignment: Sequence[int], parts: int) -> List[int]:
    """Node weight per part under ``assignment``."""
    weights = [0] * parts
    for node, part in enumerate(assignment):
        weights[part] += graph.node_weights[node]
    return weights


def from_directed_edges(
    node_count: int,
    directed_edges: Iterable[Tuple[int, int]],
    node_weights: Sequence[int] | None = None,
) -> PartitionGraph:
    """Collapse a directed edge list into the undirected partition graph."""
    graph = PartitionGraph(node_weights or [1] * node_count)
    for source, target in directed_edges:
        if source != target:
            graph.add_edge(source, target, 1)
    return graph
