"""Fiduccia–Mattheyses boundary refinement for bisections.

After each uncoarsening step the projected bisection is improved by FM
passes: nodes are tentatively moved to the other side in best-gain-first
order (each node at most once per pass), and the best prefix of the move
sequence is kept.  Balance is enforced as hard per-side maxima, which is
how the compiler expresses "a partition holds at most 256 STEs".
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

from repro.partitioning.graph import PartitionGraph


def _gain(graph: PartitionGraph, assignment: Sequence[int], node: int) -> int:
    """Cut reduction if ``node`` switched sides: external - internal weight."""
    internal = external = 0
    side = assignment[node]
    for neighbour, weight in graph.neighbours(node).items():
        if assignment[neighbour] == side:
            internal += weight
        else:
            external += weight
    return external - internal


def fm_pass(
    graph: PartitionGraph,
    assignment: List[int],
    side_weights: List[int],
    max_side_weights: Sequence[int],
) -> int:
    """One FM pass, mutating ``assignment``/``side_weights`` in place.

    Returns the cut improvement achieved (>= 0); zero means the pass found
    nothing and refinement has converged.
    """
    heap = []  # (-gain, tiebreak, node)
    for node in range(graph.node_count):
        heapq.heappush(heap, (-_gain(graph, assignment, node), node, node))
    moved = [False] * graph.node_count
    move_sequence: List[int] = []
    cumulative = 0
    best_cumulative = 0
    best_prefix = 0
    # Stale-entry lazy deletion: gains change as moves happen, so entries
    # are re-validated on pop and re-pushed when out of date.
    while heap:
        negative_gain, _, node = heapq.heappop(heap)
        if moved[node]:
            continue
        current_gain = _gain(graph, assignment, node)
        if -negative_gain != current_gain:
            heapq.heappush(heap, (-current_gain, node, node))
            continue
        source = assignment[node]
        target = 1 - source
        weight = graph.node_weights[node]
        if side_weights[target] + weight > max_side_weights[target]:
            moved[node] = True  # cannot ever move this pass; lock it
            continue
        # Tentatively move.
        assignment[node] = target
        side_weights[source] -= weight
        side_weights[target] += weight
        moved[node] = True
        move_sequence.append(node)
        cumulative += current_gain
        if cumulative > best_cumulative:
            best_cumulative = cumulative
            best_prefix = len(move_sequence)
    # Roll back moves past the best prefix.
    for node in move_sequence[best_prefix:]:
        side = assignment[node]
        weight = graph.node_weights[node]
        assignment[node] = 1 - side
        side_weights[side] -= weight
        side_weights[1 - side] += weight
    return best_cumulative


def refine_bisection(
    graph: PartitionGraph,
    assignment: List[int],
    max_side_weights: Sequence[int],
    *,
    max_passes: int = 8,
) -> None:
    """Run FM passes until convergence (or ``max_passes``), in place."""
    side_weights = [0, 0]
    for node, side in enumerate(assignment):
        side_weights[side] += graph.node_weights[node]
    for _ in range(max_passes):
        if fm_pass(graph, assignment, side_weights, max_side_weights) == 0:
            break
