"""Fiduccia–Mattheyses boundary refinement for bisections.

After each uncoarsening step the projected bisection is improved by FM
passes: nodes are tentatively moved to the other side in best-gain-first
order (each node at most once per pass), and the best prefix of the move
sequence is kept.  Balance is enforced as hard per-side maxima, which is
how the compiler expresses "a partition holds at most 256 STEs".

The inner loop works on a flat CSR copy of the adjacency (built once per
refinement): initial gains come from one vectorised bincount over the
edge list, then moves pick candidates through a lazy max-heap with O(1)
gain lookups and delta-update each neighbour in place — no per-move dict
scans, and no per-move numpy calls either, since typical neighbour lists
are far too short to amortise array overhead.  Selection order is
deterministic — highest current gain first, ties broken by lowest node
index — which is what the compiler's parallel/serial equivalence
guarantee rests on.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.partitioning.graph import PartitionGraph

#: ``(indptr, indices, weights)`` CSR view of a graph's adjacency.
AdjacencyCSR = Tuple[np.ndarray, np.ndarray, np.ndarray]


def adjacency_csr(graph: PartitionGraph) -> AdjacencyCSR:
    """Flatten ``graph``'s adjacency dicts into CSR arrays (built once per
    refinement so every FM pass is pure array work)."""
    degrees = np.fromiter(
        (len(adjacency) for adjacency in graph.adjacency),
        dtype=np.int64,
        count=graph.node_count,
    )
    indptr = np.zeros(graph.node_count + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    indices = np.empty(int(indptr[-1]), dtype=np.int64)
    weights = np.empty(int(indptr[-1]), dtype=np.int64)
    cursor = 0
    for adjacency in graph.adjacency:
        step = len(adjacency)
        indices[cursor : cursor + step] = list(adjacency.keys())
        weights[cursor : cursor + step] = list(adjacency.values())
        cursor += step
    return indptr, indices, weights


def _gain(graph: PartitionGraph, assignment: Sequence[int], node: int) -> int:
    """Cut reduction if ``node`` switched sides: external - internal weight."""
    internal = external = 0
    side = assignment[node]
    for neighbour, weight in graph.neighbours(node).items():
        if assignment[neighbour] == side:
            internal += weight
        else:
            external += weight
    return external - internal


def _initial_gains(
    assignment: np.ndarray, csr: AdjacencyCSR
) -> np.ndarray:
    indptr, indices, weights = csr
    node_count = assignment.shape[0]
    edge_source = np.repeat(
        np.arange(node_count, dtype=np.int64), np.diff(indptr)
    )
    if edge_source.size == 0:
        return np.zeros(node_count, dtype=np.int64)
    crossing = assignment[indices] != assignment[edge_source]
    signed = np.where(crossing, weights, -weights)
    return np.bincount(
        edge_source, weights=signed, minlength=node_count
    ).astype(np.int64)


def fm_pass(
    graph: PartitionGraph,
    assignment: List[int],
    side_weights: List[int],
    max_side_weights: Sequence[int],
    csr: Optional[AdjacencyCSR] = None,
) -> int:
    """One FM pass, mutating ``assignment``/``side_weights`` in place.

    Returns the cut improvement achieved (>= 0); zero means the pass found
    nothing and refinement has converged.
    """
    node_count = graph.node_count
    if node_count == 0:
        return 0
    if csr is None:
        csr = adjacency_csr(graph)
    sides = list(assignment)
    node_weights = graph.node_weights
    gains = _initial_gains(np.asarray(sides, dtype=np.int64), csr).tolist()
    indptr = csr[0].tolist()
    indices = csr[1].tolist()
    edge_weights = csr[2].tolist()
    # Lazy max-heap over (-gain, node).  Gain updates push fresh entries;
    # a popped entry whose priority disagrees with the gains list is
    # stale and skipped (the fresh entry is elsewhere in the heap).
    locked = [False] * node_count
    heap = [(-gain, node) for node, gain in enumerate(gains)]
    heapq.heapify(heap)
    move_sequence: List[int] = []
    cumulative = 0
    best_cumulative = 0
    best_prefix = 0
    weights_now = [int(side_weights[0]), int(side_weights[1])]
    heappop = heapq.heappop
    heappush = heapq.heappush
    while heap:
        negative_gain, node = heappop(heap)
        if locked[node]:
            continue
        gain = gains[node]
        if -negative_gain != gain:
            continue  # stale entry; the refreshed one is still queued
        source = sides[node]
        target = 1 - source
        weight = node_weights[node]
        locked[node] = True
        if weights_now[target] + weight > max_side_weights[target]:
            continue  # cannot ever move this pass; stays locked
        sides[node] = target
        weights_now[source] -= weight
        weights_now[target] += weight
        move_sequence.append(node)
        cumulative += gain
        if cumulative > best_cumulative:
            best_cumulative = cumulative
            best_prefix = len(move_sequence)
        # Delta-update neighbour gains: an edge to the side the node left
        # became crossing (+2w); an edge to the side it joined is now
        # internal (-2w).
        for position in range(indptr[node], indptr[node + 1]):
            neighbour = indices[position]
            if locked[neighbour]:
                continue
            edge_weight = edge_weights[position]
            if sides[neighbour] == source:
                updated = gains[neighbour] + 2 * edge_weight
            else:
                updated = gains[neighbour] - 2 * edge_weight
            gains[neighbour] = updated
            heappush(heap, (-updated, neighbour))
    # Roll back moves past the best prefix.
    for node in move_sequence[best_prefix:]:
        side = sides[node]
        weight = node_weights[node]
        sides[node] = 1 - side
        weights_now[side] -= weight
        weights_now[1 - side] += weight
    assignment[:] = sides
    side_weights[0] = weights_now[0]
    side_weights[1] = weights_now[1]
    return best_cumulative


def refine_bisection(
    graph: PartitionGraph,
    assignment: List[int],
    max_side_weights: Sequence[int],
    *,
    max_passes: int = 8,
) -> None:
    """Run FM passes until convergence (or ``max_passes``), in place."""
    side_weights = [0, 0]
    for node, side in enumerate(assignment):
        side_weights[side] += graph.node_weights[node]
    csr = adjacency_csr(graph)
    for _ in range(max_passes):
        if fm_pass(graph, assignment, side_weights, max_side_weights, csr) == 0:
            break
