"""Multilevel k-way partitioning by recursive bisection.

This is the library's METIS substitute (paper reference [23]): coarsen by
heavy-edge matching, bisect the coarsest graph by greedy region growing,
project back up refining with FM at every level, and recurse on each side
until ``k`` parts exist.  The compiler's contract — METIS "consistently
produces connected-component partitions that have less than 16 state
transitions between them" with "nearly equal number of states per
partition" (Section 3.2) — is what the tests hold this module to.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.errors import PartitioningError
from repro.partitioning.coarsen import coarsen
from repro.partitioning.graph import PartitionGraph, cut_weight
from repro.partitioning.refine import refine_bisection

#: Fractional slack allowed above the perfectly balanced side weight.
DEFAULT_IMBALANCE = 0.10


def _greedy_growth_bisection(
    graph: PartitionGraph, target_weight: int, rng: random.Random
) -> List[int]:
    """Grow side 0 from a random seed by best-connectivity-first BFS."""
    assignment = [1] * graph.node_count
    if graph.node_count == 0:
        return assignment
    seed = rng.randrange(graph.node_count)
    assignment[seed] = 0
    grown_weight = graph.node_weights[seed]
    # connectivity[node] = edge weight into the grown region.
    connectivity = dict(graph.neighbours(seed))
    while grown_weight < target_weight:
        candidate = None
        best_connection = -1
        for node, connection in connectivity.items():
            if assignment[node] == 0:
                continue
            if connection > best_connection:
                candidate, best_connection = node, connection
        if candidate is None:
            # Region is a whole component; restart growth from a new seed.
            remaining = [n for n in range(graph.node_count) if assignment[n] == 1]
            if not remaining:
                break
            candidate = rng.choice(remaining)
        if grown_weight + graph.node_weights[candidate] > target_weight * 1.5:
            break
        assignment[candidate] = 0
        grown_weight += graph.node_weights[candidate]
        for neighbour, weight in graph.neighbours(candidate).items():
            if assignment[neighbour] == 1:
                connectivity[neighbour] = connectivity.get(neighbour, 0) + weight
        connectivity.pop(candidate, None)
    return assignment


def bisect(
    graph: PartitionGraph,
    target_weights: Sequence[int],
    *,
    rng: Optional[random.Random] = None,
    imbalance: float = DEFAULT_IMBALANCE,
    attempts: int = 4,
) -> List[int]:
    """Multilevel bisection into sides of roughly ``target_weights``.

    ``attempts`` independent multilevel runs are made (different random
    seeds for matching and growth) and the best feasible cut kept.
    """
    if len(target_weights) != 2:
        raise PartitioningError("bisect needs exactly two target weights")
    if sum(target_weights) < graph.total_weight:
        raise PartitioningError(
            f"targets {target_weights} cannot hold total weight {graph.total_weight}"
        )
    rng = rng or random.Random(0x5EED)
    max_side = [
        max(int(target * (1 + imbalance)), target + 1) for target in target_weights
    ]
    best_assignment: Optional[List[int]] = None
    best_cut = None
    for _ in range(attempts):
        levels = coarsen(graph, rng)
        coarsest = levels[-1].graph if levels else graph
        assignment = _greedy_growth_bisection(coarsest, target_weights[0], rng)
        refine_bisection(coarsest, assignment, max_side)
        # Project back through the hierarchy, refining at each level.
        for level_index in range(len(levels) - 1, -1, -1):
            level = levels[level_index]
            fine_graph = levels[level_index - 1].graph if level_index else graph
            assignment = [assignment[coarse] for coarse in level.projection]
            refine_bisection(fine_graph, assignment, max_side)
        cut = cut_weight(graph, assignment)
        if best_cut is None or cut < best_cut:
            best_cut = cut
            best_assignment = assignment
    assert best_assignment is not None
    return best_assignment


def partition_kway(
    graph: PartitionGraph,
    k: int,
    *,
    rng: Optional[random.Random] = None,
    imbalance: float = DEFAULT_IMBALANCE,
) -> List[int]:
    """Partition into ``k`` load-balanced parts by recursive bisection."""
    if k < 1:
        raise PartitioningError(f"k must be positive, got {k}")
    rng = rng or random.Random(0x5EED)
    assignment = [0] * graph.node_count
    _recurse(graph, list(range(graph.node_count)), k, 0, assignment, rng, imbalance)
    return assignment


def _recurse(
    graph: PartitionGraph,
    nodes: List[int],
    k: int,
    first_part: int,
    assignment: List[int],
    rng: random.Random,
    imbalance: float,
) -> None:
    if k == 1:
        for node in nodes:
            assignment[node] = first_part
        return
    left_parts = k // 2
    right_parts = k - left_parts
    subgraph, local_to_global = _induced_subgraph(graph, nodes)
    total = subgraph.total_weight
    left_target = (total * left_parts + k - 1) // k
    right_target = total - left_target
    sides = bisect(
        subgraph, [left_target, right_target], rng=rng, imbalance=imbalance
    )
    left_nodes = [local_to_global[i] for i, side in enumerate(sides) if side == 0]
    right_nodes = [local_to_global[i] for i, side in enumerate(sides) if side == 1]
    _recurse(graph, left_nodes, left_parts, first_part, assignment, rng, imbalance)
    _recurse(
        graph, right_nodes, right_parts, first_part + left_parts, assignment, rng,
        imbalance,
    )


def _induced_subgraph(
    graph: PartitionGraph, nodes: List[int]
) -> tuple[PartitionGraph, List[int]]:
    local_index = {node: i for i, node in enumerate(nodes)}
    subgraph = PartitionGraph([graph.node_weights[node] for node in nodes])
    for node in nodes:
        for neighbour, weight in graph.neighbours(node).items():
            if neighbour in local_index and node < neighbour:
                subgraph.add_edge(local_index[node], local_index[neighbour], weight)
    return subgraph, nodes


def partition_into_capacity(
    graph: PartitionGraph,
    capacity: int,
    *,
    rng: Optional[random.Random] = None,
) -> List[int]:
    """Partition so every part's node weight fits ``capacity``.

    This is the call the compiler makes for an oversized connected
    component: k starts at ``ceil(total/capacity)`` and is increased until
    every part fits (METIS-style balancing makes the first k succeed in
    practice; the loop is a safety net).
    """
    if capacity < max(graph.node_weights, default=1):
        raise PartitioningError(
            f"capacity {capacity} below heaviest node "
            f"{max(graph.node_weights)}"
        )
    total = graph.total_weight
    k = (total + capacity - 1) // capacity
    rng = rng or random.Random(0x5EED)
    while True:
        if k > graph.node_count:
            raise PartitioningError(
                f"cannot fit weight {total} into parts of capacity {capacity}"
            )
        # Shrink imbalance as k approaches perfect packing so parts fit.
        slack = capacity * k / total - 1 if total else 1.0
        assignment = partition_kway(
            graph, k, rng=rng, imbalance=max(0.0, min(DEFAULT_IMBALANCE, slack))
        )
        weights = [0] * k
        for node, part in enumerate(assignment):
            weights[part] += graph.node_weights[node]
        if all(weight <= capacity for weight in weights):
            return assignment
        k += 1
