"""Graph coarsening by heavy-edge matching (the METIS first phase).

Each coarsening level contracts a maximal matching that prefers the
heaviest incident edge, halving the node count while preserving most of
the cut structure: a heavy edge contracted early can never be cut later,
which is precisely why heavy-edge matching yields good partitions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.partitioning.graph import PartitionGraph


@dataclass
class CoarseLevel:
    """One level of the coarsening hierarchy."""

    graph: PartitionGraph
    #: fine node index -> coarse node index in ``graph``.
    projection: List[int]


def heavy_edge_matching(
    graph: PartitionGraph, rng: random.Random, max_node_weight: int
) -> List[int]:
    """Return the fine->coarse projection from one matching pass.

    Nodes are visited in random order; each unmatched node is matched with
    its heaviest unmatched neighbour whose combined weight stays within
    ``max_node_weight`` (so coarse nodes never outgrow a partition).
    """
    order = list(range(graph.node_count))
    rng.shuffle(order)
    match = [-1] * graph.node_count
    for u in order:
        if match[u] != -1:
            continue
        best = -1
        best_weight = 0
        for v, weight in graph.neighbours(u).items():
            if match[v] != -1:
                continue
            if graph.node_weights[u] + graph.node_weights[v] > max_node_weight:
                continue
            if weight > best_weight:
                best, best_weight = v, weight
        match[u] = best if best != -1 else u
        if best != -1:
            match[best] = u
    projection = [-1] * graph.node_count
    next_coarse = 0
    for u in range(graph.node_count):
        if projection[u] != -1:
            continue
        projection[u] = next_coarse
        partner = match[u]
        if partner != u and partner != -1:
            projection[partner] = next_coarse
        next_coarse += 1
    return projection


def contract(graph: PartitionGraph, projection: List[int]) -> PartitionGraph:
    """Build the coarse graph induced by ``projection``."""
    coarse_count = max(projection) + 1
    weights = [0] * coarse_count
    for node, coarse in enumerate(projection):
        weights[coarse] += graph.node_weights[node]
    coarse = PartitionGraph(weights)
    for u, v, weight in graph.edges():
        cu, cv = projection[u], projection[v]
        if cu != cv:
            coarse.add_edge(cu, cv, weight)
    return coarse


def coarsen(
    graph: PartitionGraph,
    rng: random.Random,
    *,
    stop_at: int = 48,
    max_node_weight: int | None = None,
) -> List[CoarseLevel]:
    """Coarsen until ``stop_at`` nodes remain or matching stalls.

    Returns the hierarchy from finest to coarsest; an empty list means the
    input was already small enough.
    """
    if max_node_weight is None:
        # Allow coarse nodes up to ~1/8 of total weight so that a balanced
        # bisection of the coarsest graph remains possible.
        max_node_weight = max(1, graph.total_weight // 8)
    levels: List[CoarseLevel] = []
    current = graph
    while current.node_count > stop_at:
        projection = heavy_edge_matching(current, rng, max_node_weight)
        coarse_count = max(projection) + 1
        if coarse_count >= current.node_count * 0.95:
            break  # matching stalled (e.g. star graphs); stop coarsening
        coarse_graph = contract(current, projection)
        levels.append(CoarseLevel(coarse_graph, projection))
        current = coarse_graph
    return levels
