"""Multilevel k-way graph partitioning (the compiler's METIS substitute)."""

from repro.partitioning.graph import PartitionGraph, cut_weight, from_directed_edges, part_weights
from repro.partitioning.kway import bisect, partition_into_capacity, partition_kway

__all__ = [
    "PartitionGraph",
    "bisect",
    "cut_weight",
    "from_directed_edges",
    "part_weights",
    "partition_into_capacity",
    "partition_kway",
]
