"""Command-line interface for the Cache Automaton toolchain.

Subcommands::

    python -m repro.cli compile RULES.txt [--design CA_P] [--anml OUT.anml]
        compile a rule file (one regex per line, '#' comments) and print
        the mapping report: states, partitions, ways, cache bytes, wire
        usage, derived clock.

    python -m repro.cli scan RULES.txt INPUT.bin [INPUT2.bin ...]
                        [--design CA_P] [--limit N] [--backend NAME]
                        [--jobs N] [--split-jobs N] [--stride K]
        compile, map, and scan one or more binary input files; print
        match records and the modelled performance/energy summary.
        ``--backend`` selects any registered execution backend (default:
        the packed kernel; ``--backend lazy-dfa`` for the lazy-DFA
        transition cache).  With several inputs and a sharding backend,
        ``--jobs`` controls the scan worker pool (also settable via
        ``REPRO_SCAN_JOBS``).  ``--split-jobs N`` (also
        ``REPRO_SPLIT_JOBS``) splits each *single* input across N
        workers on backends with an SFA split path (the lazy-DFA
        backend), bit-identical to the serial scan.  ``--stride K``
        (1, 2, or 4; also ``REPRO_STRIDE``) makes the lazy-DFA backend
        consume K bytes per step over a compressed stride alphabet.

    python -m repro.cli backends
        list the registered execution backends with their aliases and
        capability matrix.

    python -m repro.cli anml-info FILE.anml
        parse an ANML document and print its structural characteristics.

    python -m repro.cli classify RULES.txt [--probe-budget N]
        run the per-component structural classifier and cost model
        (see :mod:`repro.compiler.classify`) and print one row per
        connected component: states, estimated determinisation growth
        (bounded subset-closure probe), symbol entropy, modelled
        per-symbol cost on each substrate, and the substrate the hybrid
        backend would place the component on.

    python -m repro.cli designs
        list the built-in design points with their derived parameters.

    python -m repro.cli profile-compile [RULES.txt | --workload NAME]
        compile cold (single process) and print the wall-clock
        attribution per compiler phase: validate, components, pack,
        split (with coarsen/refine sub-phases), place, check, bitstream.

    python -m repro.cli fault-campaign [RULES.txt | --workload NAME]
        run a seeded single-fault injection campaign (match-array flips,
        crossbar stuck-ats, state-vector upsets) and print the AVF-style
        masked / detected / SDC table per fault site.

    python -m repro.cli serve RULES.txt INPUT.bin [INPUT2.bin ...]
                        [--deadline S] [--workers N] [--repeat N]
                        [--scan-workers N]
        run the resilient scan service in-process: register the rule
        file as a tenant, submit every input through the admission
        queue with a per-request deadline (scans are chunked, so
        expiry interrupts mid-stream), retry shed requests with
        backoff, drain gracefully, and print per-request outcomes plus
        the service metrics snapshot.  ``--scan-workers N`` moves chunk
        execution into a pool of N worker processes.

    python -m repro.cli serve RULES.txt --port P [--host H]
                        [--scan-workers N] [--drain-timeout S]
        network mode: serve the tenant over the length-prefixed TCP
        frame protocol until SIGINT/SIGTERM, then drain gracefully
        (exit 130 on SIGINT, 0 on SIGTERM).  ``--port 0`` picks a free
        port and prints it.

    python -m repro.cli loadgen [--scenario baseline|faulted|both|serving]
                        [--duration S] [--seed N] [--scan-workers N]
                        [--transport inproc|tcp] [--connect HOST:PORT]
        drive the service with the open-loop load generator; the
        ``faulted`` scenario kills a worker, slows one tenant past its
        deadline, submits oversized streams, and injects backend
        faults (circuit breaker trips to the golden-fallback tier and
        recovers).  Prints the run table recorded by
        ``benchmarks/bench_service.py``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.automata.anml import from_anml, to_anml
from repro.automata.components import component_stats
from repro.automata.stride import resolve_stride
from repro.backends import (
    DEFAULT_BACKEND,
    backend_names,
    backend_spec,
    create_backend,
    resolve_backend_name,
)
from repro.backends.artifact import CompiledArtifact
from repro.baselines.ap import ApModel
from repro.compiler import (
    analyse,
    compile_automaton,
    compile_space_optimized,
    generate,
    mapping_to_json,
)
from repro.core.design import CA_64, CA_P, CA_S, DesignPoint
from repro.core.energy import EnergyModel
from repro.core.system import ConfigurationModel
from repro.errors import ReproError
from repro.eval.tables import format_table
from repro.regex.compile import compile_patterns

_DESIGNS = {design.name: design for design in (CA_P, CA_S, CA_64)}


def _load_rules(path: str) -> List[str]:
    with open(path, "r", encoding="utf-8") as handle:
        rules = [
            line.strip()
            for line in handle
            if line.strip() and not line.lstrip().startswith("#")
        ]
    if not rules:
        raise ReproError(f"no rules found in {path}")
    return rules


def _design(name: str) -> DesignPoint:
    try:
        return _DESIGNS[name]
    except KeyError:
        raise ReproError(
            f"unknown design {name!r}; choose from {', '.join(_DESIGNS)}"
        ) from None


def _compile(rules: List[str], design: DesignPoint):
    machine = compile_patterns(rules, report_codes=rules)
    if design.name.startswith("CA_S"):
        return compile_space_optimized(machine, design)
    return compile_automaton(machine, design)


def _print_mapping_report(mapping) -> None:
    design = mapping.design
    stats = component_stats(mapping.automaton)
    report = analyse(mapping)
    edges = mapping.classify_edges()
    print(f"design:            {design.name} ({design.description})")
    print(f"states:            {stats.state_count} in {stats.component_count} CCs "
          f"(largest {stats.largest_component_size})")
    print(f"partitions:        {mapping.partition_count} across "
          f"{mapping.ways_used} way(s), "
          f"{mapping.occupancy_fraction()*100:.0f}% slot occupancy")
    print(f"cache utilisation: {mapping.cache_bytes()/1024:.0f} KB")
    print(f"edges:             {edges['local']} local, {edges['g1']} within-way, "
          f"{edges['g4']} cross-way")
    print(f"wire usage:        G1 out/in {report.max_out_g1}/{report.max_in_g1} "
          f"(budget {design.g1_wires_per_partition}), "
          f"G4 out/in {report.max_out_g4}/{report.max_in_g4} "
          f"(budget {design.g4_wires_per_partition})")
    print(f"clock:             {design.frequency_ghz:g} GHz "
          f"(max {design.max_frequency_ghz:.2f}) -> "
          f"{design.throughput_gbps:.1f} Gb/s")


def _cmd_compile(arguments) -> int:
    design = _design(arguments.design)
    mapping = _compile(_load_rules(arguments.rules), design)
    _print_mapping_report(mapping)
    bitstream = generate(mapping)
    configuration = ConfigurationModel()
    print(f"bitstream:         {configuration.configuration_bytes(bitstream)//1024} KB, "
          f"loads in {configuration.configuration_ms(bitstream):.4f} ms")
    if arguments.anml:
        with open(arguments.anml, "w", encoding="utf-8") as handle:
            handle.write(to_anml(mapping.automaton))
        print(f"ANML written to    {arguments.anml}")
    if arguments.save_mapping:
        with open(arguments.save_mapping, "w", encoding="utf-8") as handle:
            handle.write(mapping_to_json(mapping))
        print(f"mapping written to {arguments.save_mapping}")
    return 0


def _cmd_scan(arguments) -> int:
    design = _design(arguments.design)
    backend_name = resolve_backend_name(arguments.backend)
    mapping = _compile(_load_rules(arguments.rules), design)
    streams = []
    for path in arguments.input:
        with open(path, "rb") as handle:
            streams.append(handle.read())
    options = {}
    if arguments.jobs is not None:
        options["jobs"] = arguments.jobs
    if arguments.split_jobs is not None:
        options["split_jobs"] = arguments.split_jobs
    if arguments.stride is not None:
        options["stride"] = resolve_stride(arguments.stride)
    backend = create_backend(
        backend_name, CompiledArtifact.from_mapping(mapping), **options
    )
    if len(streams) == 1:
        results = [backend.scan(streams[0])]
    else:
        results = backend.scan_many(streams)
    total_matches = 0
    for path, result in zip(arguments.input, results):
        if len(streams) > 1:
            print(f"-- {path}")
        total_matches += len(result.reports)
        shown = result.reports[: arguments.limit]
        for record in shown:
            print(f"offset {record.offset}: {record.report_code!r}")
        if len(result.reports) > len(shown):
            print(f"... and {len(result.reports) - len(shown)} more")
    result = results[0]
    data = streams[0]
    energy = EnergyModel(design)
    ap = ApModel()
    print(f"\n{total_matches} matches in {sum(map(len, streams))} bytes "
          f"(backend {backend.name})")
    print(f"modelled scan:  {len(data)/(design.frequency_ghz*1e9)*1e3:.4f} ms "
          f"at {design.throughput_gbps:.1f} Gb/s "
          f"({ap.speedup_of(design):.1f}x Micron's AP)")
    if backend.capabilities().activity_profile and result.profile.symbols:
        print(f"energy:         "
              f"{energy.energy_per_symbol_nj(result.profile):.3f} nJ/symbol, "
              f"avg power {energy.average_power_watts(result.profile):.2f} W")
    if result.output_buffer is not None:
        print(f"output buffer:  {result.output_buffer.interrupts} interrupt(s)")
    return 0


def _cmd_backends(_arguments) -> int:
    machine = compile_patterns(["a"])
    artifact = CompiledArtifact.from_mapping(compile_automaton(machine, CA_P))
    rows = [(
        "Backend", "Aliases", "Resume", "Batch", "Split", "Profile",
        "Faults", "Description",
    )]
    for name in backend_names():
        spec = backend_spec(name)
        capabilities = create_backend(name, artifact).capabilities()
        rows.append((
            f"{name} *" if name == DEFAULT_BACKEND else name,
            ", ".join(spec.aliases) if spec.aliases else "-",
            "yes" if capabilities.resume else "no",
            "yes" if capabilities.batch else "no",
            "yes" if capabilities.split else "no",
            "yes" if capabilities.activity_profile else "no",
            "yes" if capabilities.fault_events else "no",
            capabilities.description,
        ))
    print(format_table(rows))
    print("\n* default backend")
    return 0


def _cmd_classify(arguments) -> int:
    from repro.compiler.classify import classify_automaton

    rules = _load_rules(arguments.rules)
    machine = compile_patterns(rules, report_codes=rules)
    classification = classify_automaton(
        machine, probe_budget=arguments.probe_budget
    )
    rows = [(
        "CC", "Repr", "States", "Classes", "Entropy", "Probe",
        "Aborted", "Growth", "Lazy us", "Kernel us", "Backend",
    )]
    for row in classification.rows():
        rows.append((
            int(row["component"]),
            row["representative"],
            int(row["states"]),
            int(row["byte_classes"]),
            f"{row['symbol_entropy']:.3f}",
            int(row["probe_states"]),
            "yes" if row["probe_aborted"] else "no",
            f"{row['det_growth']:.2f}",
            f"{row['cost_lazy-dfa_us']:.3f}",
            f"{row['cost_packed-kernel_us']:.3f}",
            row["backend"],
        ))
    print(format_table(rows))
    placed: dict = {}
    for row in classification.rows():
        placed[row["backend"]] = placed.get(row["backend"], 0) + 1
    summary = ", ".join(
        f"{count} CC(s) -> {backend}" for backend, count in sorted(placed.items())
    )
    print(f"\nplacement: {summary}")
    print(f"cost model: {classification.cost_model.as_dict()}")
    return 0


def _cmd_anml_info(arguments) -> int:
    with open(arguments.file, "r", encoding="utf-8") as handle:
        automaton = from_anml(handle.read())
    stats = component_stats(automaton)
    print(f"id:         {automaton.automaton_id}")
    print(f"states:     {stats.state_count}")
    print(f"edges:      {stats.edge_count} (avg fan-out {stats.average_fan_out:.2f})")
    print(f"components: {stats.component_count} (largest {stats.largest_component_size})")
    print(f"starts:     {len(automaton.start_states())}")
    print(f"reporting:  {len(automaton.reporting_states())}")
    return 0


def _cmd_profile_compile(arguments) -> int:
    from repro.eval.profiling import profile_compile

    design = _design(arguments.design)
    if arguments.workload:
        from repro.workloads.suite import build_suite

        suite = {
            benchmark.name: benchmark
            for benchmark in build_suite(arguments.scale)
        }
        try:
            automaton = suite[arguments.workload].build()
        except KeyError:
            raise ReproError(
                f"unknown workload {arguments.workload!r}; choose from "
                f"{', '.join(sorted(suite))}"
            ) from None
        source = f"{arguments.workload} (scale {arguments.scale:g})"
    elif arguments.rules:
        automaton = compile_patterns(_load_rules(arguments.rules))
        source = arguments.rules
    else:
        raise ReproError("supply a rules file or --workload NAME")
    profile, mapping = profile_compile(
        automaton, design, include_bitstream=not arguments.no_bitstream
    )
    print(f"workload:   {source}")
    print(f"design:     {design.name}")
    print(f"states:     {profile.states}")
    print(f"partitions: {profile.partitions}")
    print(format_table(profile.rows()))
    return 0


def _cmd_fault_campaign(arguments) -> int:
    from repro.eval.faults import run_campaign
    from repro.workloads.inputs import LOWERCASE, random_over_alphabet

    design = _design(arguments.design)
    if arguments.workload:
        from repro.workloads.suite import build_suite

        suite = {
            benchmark.name: benchmark
            for benchmark in build_suite(arguments.scale)
        }
        try:
            automaton = suite[arguments.workload].build()
        except KeyError:
            raise ReproError(
                f"unknown workload {arguments.workload!r}; choose from "
                f"{', '.join(sorted(suite))}"
            ) from None
        source = f"{arguments.workload} (scale {arguments.scale:g})"
    elif arguments.rules:
        rules = _load_rules(arguments.rules)
        automaton = compile_patterns(rules, report_codes=rules)
        source = arguments.rules
    else:
        raise ReproError("supply a rules file or --workload NAME")
    data = random_over_alphabet(
        arguments.input_bytes, LOWERCASE, seed=arguments.seed
    )
    result = run_campaign(
        automaton,
        data,
        design=design,
        trials=arguments.trials,
        seed=arguments.seed,
    )
    print(f"workload:   {source}")
    print(f"design:     {design.name}")
    print(f"states:     {result.states}")
    print(f"input:      {result.input_bytes} bytes, "
          f"{result.trials} trials, seed {result.seed}")
    print(format_table(result.table_rows()))
    return 0


def _cmd_serve(arguments) -> int:
    import asyncio

    from repro.service import (
        DeadlineExceeded,
        RetryingClient,
        ScanService,
        ServiceError,
        TenantLimits,
    )

    rules = _load_rules(arguments.rules)
    if arguments.port is not None:
        return _serve_network(arguments, rules)
    if not arguments.input:
        raise ReproError(
            "serve needs input files in batch mode, or --port to run "
            "the network server"
        )
    streams = []
    for path in arguments.input:
        with open(path, "rb") as handle:
            streams.append((path, handle.read()))

    async def run() -> int:
        service = ScanService(
            workers=arguments.workers,
            scan_workers=arguments.scan_workers,
            chunk_bytes=arguments.chunk_bytes,
            default_deadline=arguments.deadline,
        )
        service.register(
            arguments.tenant,
            rules,
            limits=TenantLimits(max_stream_bytes=arguments.max_stream_bytes),
            backend=arguments.backend,
        )
        client = RetryingClient(service)
        completed = failed = 0
        async with service:
            requests = [
                (path, data)
                for path, data in streams
                for _ in range(arguments.repeat)
            ]

            async def one(path: str, data: bytes):
                nonlocal completed, failed
                try:
                    outcome = await client.scan(arguments.tenant, data)
                except DeadlineExceeded as error:
                    failed += 1
                    print(f"{path}: DEADLINE after {error.offset} bytes "
                          f"({len(error.reports)} partial match(es))")
                except ServiceError as error:
                    failed += 1
                    print(f"{path}: {type(error).__name__}: {error}")
                else:
                    completed += 1
                    tier = " [fallback]" if outcome.fallback else ""
                    print(f"{path}: {len(outcome.reports)} match(es) in "
                          f"{outcome.offset} bytes via {outcome.served_by}"
                          f"{tier} ({outcome.latency_s * 1e3:.2f} ms)")

            await asyncio.gather(
                *(one(path, data) for path, data in requests)
            )
            await service.stop(drain_timeout=arguments.drain_timeout)
        snapshot = service.metrics_snapshot()
        print(f"\n{completed} completed, {failed} failed "
              f"({snapshot['shed']} shed, {snapshot['timeouts']} deadlined, "
              f"{client.retries} retried)")
        rows = [("Counter", "Value")] + [
            (key, snapshot[key])
            for key in ("submitted", "admitted", "completed", "failed",
                        "shed", "oversized", "timeouts", "fallback_scans",
                        "breaker_trips", "breaker_recoveries",
                        "worker_restarts")
        ]
        print(format_table(rows))
        return 0 if failed == 0 else 1

    return asyncio.run(run())


def _serve_network(arguments, rules) -> int:
    """Long-running TCP server mode (``repro serve --port``).

    SIGINT and SIGTERM both trigger a graceful drain — stop admitting,
    let queued and in-flight requests finish (deadlines forced after
    ``--drain-timeout``), join the workers, close the sockets — then
    exit with the documented one-line-diagnostic codes: 130 for SIGINT
    (interrupted by the user), 0 for SIGTERM (clean supervised stop).
    """
    import asyncio
    import signal

    from repro.service import ScanServer, ScanService, TenantLimits

    async def run() -> int:
        service = ScanService(
            workers=arguments.workers,
            scan_workers=arguments.scan_workers,
            chunk_bytes=arguments.chunk_bytes,
            default_deadline=arguments.deadline,
        )
        service.register(
            arguments.tenant,
            rules,
            limits=TenantLimits(max_stream_bytes=arguments.max_stream_bytes),
            backend=arguments.backend,
        )
        await service.start()
        server = ScanServer(
            service, host=arguments.host, port=arguments.port
        )
        await server.start()
        host, port = server.address
        print(
            f"serving tenant {arguments.tenant!r} on {host}:{port} "
            f"({arguments.workers} worker(s), "
            f"{arguments.scan_workers} scan process(es)); "
            "SIGINT/SIGTERM drains",
            flush=True,
        )
        stop = asyncio.Event()
        received: dict = {}
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(
                signum,
                lambda signum=signum: (
                    received.setdefault("signal", signum),
                    stop.set(),
                ),
            )
        await stop.wait()
        signum = received.get("signal", signal.SIGTERM)
        print(
            f"{signal.Signals(signum).name} received: draining "
            f"(budget {arguments.drain_timeout}s)",
            flush=True,
        )
        # Drain the service first (stops admitting; in-flight requests
        # finish or deadline out), then close the listening socket and
        # any lingering connections.
        await service.stop(drain_timeout=arguments.drain_timeout)
        await server.stop()
        snapshot = service.metrics_snapshot()
        print(
            f"drained: {snapshot['completed']} completed, "
            f"{snapshot['shed']} shed, {snapshot['timeouts']} deadlined, "
            f"{snapshot['failed']} failed",
            flush=True,
        )
        return 130 if signum == signal.SIGINT else 0

    return asyncio.run(run())


def _parse_hostport(value: str):
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise ReproError(f"expected HOST:PORT, got {value!r}")
    return (host or "127.0.0.1", int(port))


def _cmd_loadgen(arguments) -> int:
    import dataclasses

    from repro.eval.loadgen import (
        baseline_config,
        faulted_config,
        run_loadgen,
        serving_config,
    )

    if arguments.connect is not None:
        connect = _parse_hostport(arguments.connect)
        configs = [
            serving_config(
                connect=connect,
                scan_workers=arguments.scan_workers,
                duration_s=arguments.duration,
                seed=arguments.seed,
            )
        ]
    elif arguments.scenario == "serving":
        configs = [
            serving_config(
                scan_workers=arguments.scan_workers,
                transport=arguments.transport,
                duration_s=arguments.duration,
                seed=arguments.seed,
            )
        ]
    else:
        builders = {"baseline": baseline_config, "faulted": faulted_config}
        names = (
            list(builders) if arguments.scenario == "both"
            else [arguments.scenario]
        )
        configs = [
            dataclasses.replace(
                builders[name](
                    duration_s=arguments.duration, seed=arguments.seed
                ),
                scan_workers=arguments.scan_workers,
                transport=arguments.transport,
            )
            for name in names
        ]
    rows = [(
        "Scenario", "Sent", "Done", "Shed", "Timeout", "Oversize",
        "Retried", "Thru rps", "p50 ms", "p95 ms", "p99 ms",
        "Fail rate", "Trips", "Recov", "Restarts",
    )]
    unhandled = 0
    completed = 0
    for config in configs:
        record = run_loadgen(config)
        unhandled += record.unhandled_exceptions
        completed += record.completed
        rows.append((
            record.scenario,
            record.requests_sent,
            record.completed,
            record.shed,
            record.timeouts,
            record.oversized,
            record.retried,
            f"{record.throughput_rps:.1f}",
            "-" if record.latency_p50_ms is None
            else f"{record.latency_p50_ms:.2f}",
            "-" if record.latency_p95_ms is None
            else f"{record.latency_p95_ms:.2f}",
            "-" if record.latency_p99_ms is None
            else f"{record.latency_p99_ms:.2f}",
            f"{record.failure_rate:.3f}",
            record.breaker_trips,
            record.breaker_recoveries,
            record.worker_restarts,
        ))
    print(format_table(rows))
    # Machine-readable summary lines the CI smoke jobs grep for.
    print(f"completed_total: {completed}")
    print(f"unhandled_exceptions: {unhandled}")
    if unhandled:
        raise ReproError(
            f"{unhandled} unhandled exception(s) escaped the typed-error "
            "surface"
        )
    return 0


def _cmd_designs(_arguments) -> int:
    rows = [(
        "Design", "Clock (GHz)", "Throughput (Gb/s)", "Reach",
        "States/slice", "Area@32K (mm2)",
    )]
    for design in _DESIGNS.values():
        rows.append((
            design.name,
            design.frequency_ghz,
            design.throughput_gbps,
            design.reachability,
            design.states_per_slice,
            design.area_overhead_mm2(32 * 1024),
        ))
    print(format_table(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="Cache Automaton toolchain"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compile_parser = subparsers.add_parser("compile", help="compile a rule file")
    compile_parser.add_argument("rules")
    compile_parser.add_argument("--design", default="CA_P", choices=sorted(_DESIGNS))
    compile_parser.add_argument("--anml", help="also write the automaton as ANML XML")
    compile_parser.add_argument(
        "--save-mapping", help="write the compiled placement as a JSON artefact"
    )
    compile_parser.set_defaults(handler=_cmd_compile)

    scan_parser = subparsers.add_parser(
        "scan", help="compile and scan one or more input files"
    )
    scan_parser.add_argument("rules")
    scan_parser.add_argument("input", nargs="+")
    scan_parser.add_argument("--design", default="CA_P", choices=sorted(_DESIGNS))
    scan_parser.add_argument("--limit", type=int, default=20,
                             help="max match records to print (per input)")
    scan_parser.add_argument(
        "--backend", default=DEFAULT_BACKEND,
        help="execution backend (see `python -m repro.cli backends`)",
    )
    scan_parser.add_argument(
        "--jobs", default=None,
        help="worker processes for multi-input scans on backends that "
             "shard (lazy-dfa); default REPRO_SCAN_JOBS or the CPU count",
    )
    scan_parser.add_argument(
        "--split-jobs", default=None, dest="split_jobs",
        help="split each single input across N workers on backends with "
             "an SFA split path (lazy-dfa), bit-identical to serial; "
             "default REPRO_SPLIT_JOBS or 1 (no splitting)",
    )
    scan_parser.add_argument(
        "--stride", default=None,
        help="consume k bytes per step on backends with a k-stride path "
             "(lazy-dfa; one of 1, 2, 4); default REPRO_STRIDE or 1",
    )
    scan_parser.set_defaults(handler=_cmd_scan)

    backends_parser = subparsers.add_parser(
        "backends", help="list registered execution backends"
    )
    backends_parser.set_defaults(handler=_cmd_backends)

    classify_parser = subparsers.add_parser(
        "classify", help="per-component substrate classification"
    )
    classify_parser.add_argument("rules")
    classify_parser.add_argument(
        "--probe-budget", type=int, default=None, dest="probe_budget",
        help="subset-closure probe row budget per component "
             "(default: scaled from component size, capped at 512)",
    )
    classify_parser.set_defaults(handler=_cmd_classify)

    info_parser = subparsers.add_parser("anml-info", help="inspect an ANML file")
    info_parser.add_argument("file")
    info_parser.set_defaults(handler=_cmd_anml_info)

    designs_parser = subparsers.add_parser("designs", help="list design points")
    designs_parser.set_defaults(handler=_cmd_designs)

    profile_parser = subparsers.add_parser(
        "profile-compile", help="per-phase compile-time breakdown"
    )
    profile_parser.add_argument("rules", nargs="?", help="rule file to compile")
    profile_parser.add_argument(
        "--workload", help="profile a suite benchmark instead of a rule file"
    )
    profile_parser.add_argument(
        "--scale", type=float, default=1.0,
        help="suite scale factor for --workload (default 1.0)",
    )
    profile_parser.add_argument(
        "--design", default="CA_P", choices=sorted(_DESIGNS)
    )
    profile_parser.add_argument(
        "--no-bitstream", action="store_true",
        help="skip the bitstream-generation phase",
    )
    profile_parser.set_defaults(handler=_cmd_profile_compile)

    fault_parser = subparsers.add_parser(
        "fault-campaign", help="seeded fault-injection campaign (AVF table)"
    )
    fault_parser.add_argument("rules", nargs="?", help="rule file to compile")
    fault_parser.add_argument(
        "--workload", help="inject into a suite benchmark instead of a rule file"
    )
    fault_parser.add_argument(
        "--scale", type=float, default=1.0,
        help="suite scale factor for --workload (default 1.0)",
    )
    fault_parser.add_argument(
        "--design", default="CA_P", choices=sorted(_DESIGNS)
    )
    fault_parser.add_argument(
        "--trials", type=int, default=48,
        help="single-fault trials to run (default 48)",
    )
    fault_parser.add_argument(
        "--input-bytes", type=int, default=2048,
        help="length of the generated input stream (default 2048)",
    )
    fault_parser.add_argument(
        "--seed", type=int, default=7,
        help="campaign seed (input generation and fault draws)",
    )
    fault_parser.set_defaults(handler=_cmd_fault_campaign)

    serve_parser = subparsers.add_parser(
        "serve", help="run the resilient scan service over input files"
    )
    serve_parser.add_argument("rules")
    serve_parser.add_argument(
        "input", nargs="*",
        help="input files (batch mode; omit when running with --port)",
    )
    serve_parser.add_argument(
        "--tenant", default="default", help="tenant name (default 'default')"
    )
    serve_parser.add_argument(
        "--backend", default=None,
        help="execution backend for the tenant's engine",
    )
    serve_parser.add_argument(
        "--deadline", type=float, default=None,
        help="per-request deadline in seconds (default: unbounded)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2,
        help="service worker coroutines (default 2)",
    )
    serve_parser.add_argument(
        "--chunk-bytes", type=int, default=4096, dest="chunk_bytes",
        help="scan chunk size — the deadline/fairness quantum "
             "(default 4096)",
    )
    serve_parser.add_argument(
        "--max-stream-bytes", type=int, default=1 << 20,
        dest="max_stream_bytes",
        help="admission limit on one request's stream (default 1 MiB)",
    )
    serve_parser.add_argument(
        "--repeat", type=int, default=1,
        help="submit each input N times (default 1)",
    )
    serve_parser.add_argument(
        "--drain-timeout", type=float, default=30.0, dest="drain_timeout",
        help="graceful-drain budget on shutdown (default 30 s)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for network mode (default 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=None,
        help="run as a TCP server on this port instead of batch mode "
             "(0 picks a free port)",
    )
    serve_parser.add_argument(
        "--scan-workers", type=int, default=0, dest="scan_workers",
        help="scan worker processes (0 = scan in the event loop)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    loadgen_parser = subparsers.add_parser(
        "loadgen", help="open-loop load generation with injected faults"
    )
    loadgen_parser.add_argument(
        "--scenario", default="both",
        choices=("baseline", "faulted", "both", "serving"),
        help="which canned scenario(s) to run (default both)",
    )
    loadgen_parser.add_argument(
        "--duration", type=float, default=2.0,
        help="seconds of open-loop load per scenario (default 2.0)",
    )
    loadgen_parser.add_argument(
        "--seed", type=int, default=7,
        help="RNG seed for streams and jitter (default 7)",
    )
    loadgen_parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="drive an already-running `repro serve --port` server over "
             "TCP instead of building a local service",
    )
    loadgen_parser.add_argument(
        "--transport", default="inproc", choices=("inproc", "tcp"),
        help="how requests reach the locally built service "
             "(default inproc; ignored with --connect)",
    )
    loadgen_parser.add_argument(
        "--scan-workers", type=int, default=0, dest="scan_workers",
        help="scan worker processes for the locally built service "
             "(0 = scan in the event loop)",
    )
    loadgen_parser.set_defaults(handler=_cmd_loadgen)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    arguments = build_parser().parse_args(argv)
    # SimulationError, CompileError, and every other library failure
    # derive from ReproError, so each becomes a one-line diagnostic and
    # exit status 1 (argparse reserves 2 for usage errors) — never a
    # traceback.  Scripts and the CI jobs rely on this contract.
    try:
        return arguments.handler(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("error: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
