"""Save/load compiled mappings as JSON artefacts.

A deployment pipeline compiles once and configures many machines; this
module makes the compiled placement a durable artefact: the automaton
(embedded as ANML), the design-point name, and every partition's STE
placement round-trip through JSON.  Loading re-validates wire budgets, so
a stale artefact compiled against different constraints is rejected
rather than silently mis-simulated.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.automata.anml import from_anml, to_anml
from repro.compiler.constraints import check
from repro.compiler.mapping import MappedPartition, Mapping
from repro.core.design import CA_64, CA_P, CA_S, DesignPoint
from repro.errors import CompileError

FORMAT_VERSION = 1

_BUILTIN_DESIGNS = {design.name: design for design in (CA_P, CA_S, CA_64)}


def mapping_to_json(mapping: Mapping) -> str:
    """Serialise a mapping (automaton + placement) to a JSON document."""
    payload = {
        "format_version": FORMAT_VERSION,
        "design": mapping.design.name,
        "automaton_anml": to_anml(mapping.automaton),
        "partitions": [
            {
                "index": partition.index,
                "way": partition.way,
                "stes": list(partition.ste_ids),
            }
            for partition in mapping.partitions
        ],
    }
    return json.dumps(payload, indent=2)


def mapping_from_json(
    document: str,
    *,
    designs: Dict[str, DesignPoint] | None = None,
) -> Mapping:
    """Load a mapping; re-validates structure and wire budgets.

    ``designs`` may supply custom design points keyed by name; built-in
    points (CA_P, CA_S, CA_64) resolve automatically.
    """
    try:
        payload = json.loads(document)
    except json.JSONDecodeError as error:
        raise CompileError(f"not valid JSON: {error}") from error
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise CompileError(
            f"unsupported mapping format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    design_name = payload.get("design")
    catalogue = {**_BUILTIN_DESIGNS, **(designs or {})}
    if design_name not in catalogue:
        raise CompileError(
            f"unknown design {design_name!r}; known: {', '.join(catalogue)}"
        )
    design = catalogue[design_name]
    automaton = from_anml(payload["automaton_anml"])

    partitions = []
    location = {}
    seen = set()
    for entry in payload.get("partitions", []):
        partition = MappedPartition(
            index=int(entry["index"]), way=int(entry["way"]),
            ste_ids=list(entry["stes"]),
        )
        if partition.index != len(partitions):
            raise CompileError(
                f"partition indices must be dense; got {partition.index} "
                f"at position {len(partitions)}"
            )
        if partition.occupancy > design.partition_size:
            raise CompileError(
                f"partition {partition.index} holds {partition.occupancy} "
                f"STEs > partition size {design.partition_size}"
            )
        for slot, ste_id in enumerate(partition.ste_ids):
            if ste_id in seen:
                raise CompileError(f"STE {ste_id!r} mapped twice")
            if ste_id not in automaton:
                raise CompileError(f"placed STE {ste_id!r} not in automaton")
            seen.add(ste_id)
            location[ste_id] = (partition.index, slot)
        partitions.append(partition)
    missing = set(automaton.ste_ids()) - seen
    if missing:
        raise CompileError(
            f"{len(missing)} automaton state(s) have no placement, e.g. "
            f"{sorted(missing)[0]!r}"
        )
    mapping = Mapping(design, automaton, partitions, location)
    check(mapping)
    return mapping


def artifact_to_json(artifact) -> str:
    """Serialise a :class:`~repro.backends.artifact.CompiledArtifact`'s
    placement to the portable JSON mapping format.

    Kernel tables are deliberately not included — JSON artefacts are the
    cross-machine deployment format, and tables rebuild deterministically
    from the placement; the binary ``npz`` payload
    (:meth:`~repro.backends.artifact.CompiledArtifact.npz_bytes`) is the
    cache-local fast path that carries them.
    """
    return mapping_to_json(artifact.mapping)


def artifact_from_json(
    document: str,
    *,
    designs: Dict[str, DesignPoint] | None = None,
):
    """Load a JSON mapping artefact as a
    :class:`~repro.backends.artifact.CompiledArtifact` (fingerprints
    recomputed from the loaded, re-validated mapping)."""
    from repro.backends.artifact import CompiledArtifact

    return CompiledArtifact.from_mapping(
        mapping_from_json(document, designs=designs)
    )
