"""Per-component structural classification and substrate cost model.

The cache-automaton design wins by routing each part of the workload to
the substrate it fits; the unit of routing is the weakly connected
component (CC), exactly the compiler's atomic mapping unit
(:mod:`repro.automata.components`).  This module computes, for every CC
of a homogeneous automaton:

* **structural features** — state count, edge count, fan-out density,
  byte-class count, symbol-set entropy, start-anchoredness — plus an
  **estimated determinisation growth** obtained by *bounded
  subset-closure probing*: a byte-class-compressed subset construction
  over the scanning semantics of just that CC, abandoned once a budget
  of distinct activation rows is exceeded.  The probe counts exactly the
  rows the lazy-DFA backend would hash-cons, so it predicts both the
  eager backend's blow-up and the lazy backend's cache pressure;
* a **cost model** — per-symbol microsecond estimates for running the CC
  on each candidate substrate, with coefficients calibrated from the
  repo's ``BENCH_simulator.json`` measurement history
  (:meth:`CostModel.from_history`); the baked-in defaults are the
  calibration result for the most recent recorded run;
* the resulting **partition assignment** — each CC is placed on the
  substrate with the lowest predicted cost.  DFA-friendly CCs (small
  subset closure) go to ``lazy-dfa``; subset-hostile CCs (the ones that
  abort eager determinisation and thrash the lazy cache) stay on the
  ``packed-kernel``, whose cost grows only with the packed word count.

The result serialises to flat numpy tables (``classify_*`` payload
members) carried by version-3 :class:`~repro.backends.artifact.
CompiledArtifact` payloads, and is consumed by the ``hybrid`` execution
backend (:mod:`repro.backends.hybrid`) and the ``repro classify`` CLI.

Everything here is deterministic: component order is the deterministic
:func:`~repro.automata.components.connected_components` order, the probe
iterates byte classes in first-byte order, and no wall-clock or RNG
input enters the features or the assignment — the same automaton always
yields the same placement, regardless of ``compile_jobs`` or process
count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.automata.anml import HomogeneousAutomaton, StartKind
from repro.automata.components import connected_components
from repro.errors import AutomatonError

#: Candidate substrates, in preference order (ties go to the earlier
#: entry).  Order is part of the serialised format: ``classify_assignment``
#: stores indexes into this tuple.
SUBSTRATES: Tuple[str, ...] = ("lazy-dfa", "packed-kernel")

#: Feature-table columns, in ``classify_features`` column order.
FEATURE_COLUMNS: Tuple[str, ...] = (
    "states",
    "edges",
    "fan_out",
    "byte_classes",
    "symbol_entropy",
    "start_all_input",
    "start_anchored_fraction",
    "probe_states",
    "probe_aborted",
    "det_growth",
)

#: Hard cap on distinct activation rows the bounded probe will visit.
PROBE_BUDGET_CAP = 512

#: Serialised classification-table schema version (independent of the
#: artifact format version; bump when columns change meaning).
CLASSIFY_TABLE_VERSION = 1

#: Payload-member prefix for classification tables inside an artifact.
CLASSIFY_PREFIX = "classify_"


def default_probe_budget(state_count: int) -> int:
    """Row budget for one CC's subset-closure probe.

    Generous relative to the CC itself (a friendly CC's closure is a
    small multiple of its state count) but capped so a subset-hostile CC
    aborts quickly instead of enumerating an exponential closure.
    """
    return min(PROBE_BUDGET_CAP, max(48, 8 * state_count))


@dataclass(frozen=True)
class CostModel:
    """Per-symbol substrate cost coefficients, in microseconds.

    The defaults are calibrated from the most recent
    ``BENCH_simulator.json`` entry carrying both a packed-kernel and a
    warm lazy-DFA rate (PowerEN, 21 packed words — see
    :data:`CALIBRATION_WORDS`); :meth:`from_history` recomputes them
    from any history list.

    * ``lazy_warm_us`` — one warm lazy-DFA transition (size-independent);
    * ``lazy_miss_us`` — one lazy-DFA cache miss (a packed kernel step
      plus hash-consing the new row); charged per symbol scaled by the
      predicted steady-state miss fraction;
    * ``kernel_base_us`` / ``kernel_word_us`` — the packed kernel's
      fixed per-symbol overhead and its per-64-state-word gather+OR cost;
    * ``dfa_budget`` — the transition-cache state budget assumed when
      predicting whether a CC's closure thrashes the lazy cache.
    """

    lazy_warm_us: float = 0.26
    lazy_miss_us: float = 25.0
    kernel_base_us: float = 0.2
    kernel_word_us: float = 0.094
    dfa_budget: int = 4096

    @classmethod
    def from_history(cls, history: Sequence[dict]) -> "CostModel":
        """Calibrate from a ``BENCH_simulator.json`` history list.

        Uses the newest entry recording both ``mapped_symbols_per_sec``
        and ``lazy_dfa_warm_symbols_per_sec``; entries missing either
        leave the corresponding defaults in place.  Deterministic: the
        same history always yields the same model.
        """
        lazy_warm_us = cls.lazy_warm_us
        kernel_base_us = cls.kernel_base_us
        kernel_word_us = cls.kernel_word_us
        for entry in reversed(list(history)):
            mapped = entry.get("mapped_symbols_per_sec")
            lazy = entry.get("lazy_dfa_warm_symbols_per_sec")
            if not mapped or not lazy:
                continue
            lazy_warm_us = 1e6 / float(lazy)
            kernel_symbol_us = 1e6 / float(mapped)
            kernel_word_us = max(
                1e-3,
                (kernel_symbol_us - kernel_base_us) / CALIBRATION_WORDS,
            )
            break
        return cls(
            lazy_warm_us=lazy_warm_us,
            kernel_base_us=kernel_base_us,
            kernel_word_us=kernel_word_us,
        )

    def lazy_cost_us(self, probe_states: float, aborted: bool) -> float:
        """Predicted per-symbol cost of the CC on the lazy-DFA backend."""
        if aborted:
            miss_fraction = 1.0
        else:
            half = self.dfa_budget / 2.0
            if probe_states <= half:
                miss_fraction = 0.0
            else:
                miss_fraction = min(1.0, (probe_states - half) / half)
        return self.lazy_warm_us + miss_fraction * self.lazy_miss_us

    def kernel_cost_us(self, state_count: int) -> float:
        """Predicted per-symbol cost of the CC on the packed kernel."""
        words = (state_count + 63) // 64
        return self.kernel_base_us + self.kernel_word_us * max(1, words)

    def as_dict(self) -> Dict[str, float]:
        return {
            "lazy_warm_us": self.lazy_warm_us,
            "lazy_miss_us": self.lazy_miss_us,
            "kernel_base_us": self.kernel_base_us,
            "kernel_word_us": self.kernel_word_us,
            "dfa_budget": self.dfa_budget,
        }


#: Packed word count of the calibration workload (PowerEN: 1315 states).
CALIBRATION_WORDS = 21


def _component_byte_signatures(
    automaton: HomogeneousAutomaton, members: Sequence[str]
) -> List[int]:
    """Per-byte member-match bitmasks for one CC.

    ``result[b]`` has bit ``i`` set iff ``members[i]`` matches byte
    ``b``; bytes with identical signatures are one equivalence class of
    the CC's alphabet.
    """
    signatures = [0] * 256
    for position, ste_id in enumerate(members):
        mask = automaton.ste(ste_id).symbols.mask
        bit = 1 << position
        byte = 0
        while mask:
            low = mask & -mask
            byte = low.bit_length() - 1
            signatures[byte] |= bit
            mask ^= low
    return signatures


def probe_subset_closure(
    automaton: HomogeneousAutomaton,
    members: Sequence[str],
    *,
    budget: Optional[int] = None,
) -> Tuple[int, bool, int]:
    """Bounded subset-closure probe of one CC's scanning semantics.

    Runs a byte-class-compressed subset construction over the activation
    rows of the CC alone — the exact rows the lazy-DFA backend would
    hash-cons — and stops as soon as more than ``budget`` distinct rows
    exist.  Returns ``(rows_visited, aborted, byte_classes)``; when
    ``aborted`` is True the closure is larger than the budget (possibly
    exponentially so).

    Deterministic: the worklist is ordered, byte classes are iterated in
    first-occurrence order, and rows are Python ints.
    """
    if not members:
        return 0, False, 0
    if budget is None:
        budget = default_probe_budget(len(members))
    position = {ste_id: index for index, ste_id in enumerate(members)}
    signatures = _component_byte_signatures(automaton, members)
    # Distinct byte classes, in first-byte order.
    classes: List[int] = []
    seen_signatures = set()
    for signature in signatures:
        if signature not in seen_signatures:
            seen_signatures.add(signature)
            classes.append(signature)
    successor_mask = [0] * len(members)
    all_input_mask = 0
    sod_mask = 0
    for ste_id in members:
        source = position[ste_id]
        for target in automaton.successors(ste_id):
            if target in position:
                successor_mask[source] |= 1 << position[target]
        start = automaton.ste(ste_id).start
        if start is StartKind.ALL_INPUT:
            all_input_mask |= 1 << source
        elif start is StartKind.START_OF_DATA:
            sod_mask |= 1 << source
    # The initial configuration: nothing active, start-of-data pending.
    # Its successors activate both start kinds; afterwards only the
    # all-input starts self-enable.
    seen = {0}
    worklist = [(0, True)]
    aborted = False
    while worklist:
        row, sod_pending = worklist.pop()
        enabled = all_input_mask
        if sod_pending:
            enabled |= sod_mask
        remaining = row
        while remaining:
            low = remaining & -remaining
            enabled |= successor_mask[low.bit_length() - 1]
            remaining ^= low
        for signature in classes:
            successor = enabled & signature
            if successor not in seen:
                if len(seen) > budget:
                    aborted = True
                    worklist.clear()
                    break
                seen.add(successor)
                worklist.append((successor, False))
    return len(seen), aborted, len(classes)


def _symbol_entropy(signatures: Sequence[int]) -> float:
    """Shannon entropy (bits) of the CC's byte -> byte-class map.

    0 when every byte behaves identically (one class); up to 8 when all
    256 bytes are distinguishable.  High entropy marks rich symbol
    structure (ranges, case-folds) that widens the subset alphabet.
    """
    counts: Dict[int, int] = {}
    for signature in signatures:
        counts[signature] = counts.get(signature, 0) + 1
    entropy = 0.0
    for count in counts.values():
        p = count / 256.0
        entropy -= p * math.log2(p)
    return entropy


@dataclass(frozen=True)
class ComponentClassification:
    """Per-CC feature table, substrate costs, and partition assignment.

    ``components`` is the deterministic CC order of
    :func:`~repro.automata.components.connected_components`; row ``i``
    of ``features``/``costs``/``assignment`` describes ``components[i]``.
    ``substrates`` names the columns of ``costs`` and the codomain of
    ``assignment`` (indexes into it).
    """

    components: Tuple[Tuple[str, ...], ...]
    features: np.ndarray
    costs: np.ndarray
    assignment: np.ndarray
    substrates: Tuple[str, ...] = SUBSTRATES
    cost_model: CostModel = CostModel()

    @property
    def component_count(self) -> int:
        return len(self.components)

    def backend_of(self, component: int) -> str:
        return self.substrates[int(self.assignment[component])]

    def groups(self) -> List[Tuple[str, List[int]]]:
        """CC indexes grouped by assigned substrate, substrate order.

        Only substrates with at least one CC appear; the hybrid backend
        builds one sub-artifact per returned group.
        """
        grouped: List[Tuple[str, List[int]]] = []
        for index, substrate in enumerate(self.substrates):
            members = [
                component
                for component in range(self.component_count)
                if int(self.assignment[component]) == index
            ]
            if members:
                grouped.append((substrate, members))
        return grouped

    def feature(self, component: int, column: str) -> float:
        return float(self.features[component, FEATURE_COLUMNS.index(column)])

    def rows(self) -> List[Dict[str, object]]:
        """One plain-python dict per CC (CLI/report table rows)."""
        table: List[Dict[str, object]] = []
        for index, members in enumerate(self.components):
            row: Dict[str, object] = {
                "component": index,
                "representative": members[0],
            }
            for column_index, column in enumerate(FEATURE_COLUMNS):
                row[column] = float(self.features[index, column_index])
            for substrate_index, substrate in enumerate(self.substrates):
                row[f"cost_{substrate}_us"] = float(
                    self.costs[index, substrate_index]
                )
            row["backend"] = self.backend_of(index)
            table.append(row)
        return table

    # -- serialisation -----------------------------------------------------

    def to_tables(self) -> Dict[str, np.ndarray]:
        """Flat array tables (``classify_*`` artifact payload members)."""
        return {
            f"{CLASSIFY_PREFIX}version": np.asarray(
                CLASSIFY_TABLE_VERSION, dtype=np.int64
            ),
            f"{CLASSIFY_PREFIX}features": np.asarray(
                self.features, dtype=np.float64
            ),
            f"{CLASSIFY_PREFIX}costs": np.asarray(
                self.costs, dtype=np.float64
            ),
            f"{CLASSIFY_PREFIX}assignment": np.asarray(
                self.assignment, dtype=np.int32
            ),
            f"{CLASSIFY_PREFIX}substrates": np.asarray(self.substrates),
            f"{CLASSIFY_PREFIX}model": np.asarray(
                [
                    self.cost_model.lazy_warm_us,
                    self.cost_model.lazy_miss_us,
                    self.cost_model.kernel_base_us,
                    self.cost_model.kernel_word_us,
                    float(self.cost_model.dfa_budget),
                ],
                dtype=np.float64,
            ),
        }

    @classmethod
    def from_tables(
        cls, tables: Dict[str, np.ndarray], automaton: HomogeneousAutomaton
    ) -> "ComponentClassification":
        """Rebuild from payload tables against the in-memory automaton.

        Component membership is reconstructed from the automaton (the CC
        order is deterministic), so only the per-CC rows travel in the
        payload; a row-count mismatch means the tables do not belong to
        this automaton and raises :class:`AutomatonError`.
        """
        try:
            version = int(tables[f"{CLASSIFY_PREFIX}version"])
            features = np.asarray(
                tables[f"{CLASSIFY_PREFIX}features"], dtype=np.float64
            )
            costs = np.asarray(
                tables[f"{CLASSIFY_PREFIX}costs"], dtype=np.float64
            )
            assignment = np.asarray(
                tables[f"{CLASSIFY_PREFIX}assignment"], dtype=np.int32
            )
            substrates = tuple(
                str(name)
                for name in np.asarray(
                    tables[f"{CLASSIFY_PREFIX}substrates"]
                ).reshape(-1)
            )
            model_row = np.asarray(
                tables[f"{CLASSIFY_PREFIX}model"], dtype=np.float64
            ).reshape(-1)
        except KeyError as error:
            raise AutomatonError(
                f"classification tables missing member {error}"
            ) from None
        if version != CLASSIFY_TABLE_VERSION:
            raise AutomatonError(
                f"unsupported classification-table version {version} "
                f"(expected {CLASSIFY_TABLE_VERSION})"
            )
        components = tuple(
            tuple(members) for members in connected_components(automaton)
        )
        if features.shape[0] != len(components) or assignment.shape[0] != len(
            components
        ):
            raise AutomatonError(
                "classification tables do not match the automaton "
                f"({features.shape[0]} rows for {len(components)} components)"
            )
        model = CostModel(
            lazy_warm_us=float(model_row[0]),
            lazy_miss_us=float(model_row[1]),
            kernel_base_us=float(model_row[2]),
            kernel_word_us=float(model_row[3]),
            dfa_budget=int(model_row[4]),
        )
        return cls(
            components=components,
            features=features,
            costs=costs,
            assignment=assignment,
            substrates=substrates,
            cost_model=model,
        )


def classify_automaton(
    automaton: HomogeneousAutomaton,
    *,
    cost_model: Optional[CostModel] = None,
    probe_budget: Optional[int] = None,
) -> ComponentClassification:
    """Classify every CC of ``automaton`` and assign it a substrate.

    ``probe_budget`` overrides the per-CC subset-closure row budget
    (default :func:`default_probe_budget`); ``cost_model`` overrides the
    calibrated coefficients.  Deterministic for a given automaton and
    arguments.
    """
    model = cost_model or CostModel()
    components = tuple(
        tuple(members) for members in connected_components(automaton)
    )
    features = np.zeros((len(components), len(FEATURE_COLUMNS)), dtype=np.float64)
    costs = np.zeros((len(components), len(SUBSTRATES)), dtype=np.float64)
    assignment = np.zeros(len(components), dtype=np.int32)
    for index, members in enumerate(components):
        state_count = len(members)
        edge_count = sum(
            1
            for ste_id in members
            for target in automaton.successors(ste_id)
            if target in set(members)
        )
        signatures = _component_byte_signatures(automaton, members)
        probe_states, aborted, byte_classes = probe_subset_closure(
            automaton, members, budget=probe_budget
        )
        starts = [
            automaton.ste(ste_id).start
            for ste_id in members
            if automaton.ste(ste_id).start is not StartKind.NONE
        ]
        all_input = sum(1 for start in starts if start is StartKind.ALL_INPUT)
        anchored_fraction = (
            (len(starts) - all_input) / len(starts) if starts else 0.0
        )
        growth = probe_states / max(1, state_count)
        features[index] = (
            state_count,
            edge_count,
            edge_count / max(1, state_count),
            byte_classes,
            _symbol_entropy(signatures),
            all_input,
            anchored_fraction,
            probe_states,
            1.0 if aborted else 0.0,
            growth,
        )
        lazy_cost = model.lazy_cost_us(probe_states, aborted)
        kernel_cost = model.kernel_cost_us(state_count)
        costs[index] = (lazy_cost, kernel_cost)
        assignment[index] = int(np.argmin(costs[index]))
    return ComponentClassification(
        components=components,
        features=features,
        costs=costs,
        assignment=assignment,
        substrates=SUBSTRATES,
        cost_model=model,
    )
