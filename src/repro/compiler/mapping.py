"""The Cache Automaton compiler: NFA states -> cache partitions.

Implements Section 3.2's three-step algorithm:

1. find connected components (CCs) — each is an atomic mapping unit;
2. pack CCs no larger than a partition greedily, smallest first, filling
   each partition with as many whole CCs as fit (Section 3.3's case
   study);
3. split oversized CCs across ``k`` partitions with multilevel k-way
   graph partitioning (:mod:`repro.partitioning`, the METIS substitute),
   minimising inter-partition transitions and load-balancing states.

Partitions are then *placed* onto ways so that partitions of the same CC
share a way whenever possible (within-way G1 wires are cheaper and more
plentiful than cross-way G4 wires), and the result is validated against
the design's wire budget by :mod:`repro.compiler.constraints`.
"""

from __future__ import annotations

import os
import random
import time
import warnings
import zlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.automata.anml import HomogeneousAutomaton
from repro.automata.components import connected_components
from repro.core.design import DesignPoint
from repro.errors import CapacityError, DegradedModeWarning
from repro.partitioning import PartitionGraph, partition_into_capacity

#: Environment override for the split-and-place worker count ("1" = serial).
COMPILE_JOBS_ENV = "REPRO_COMPILE_JOBS"

#: Oversized-CC states below which process fan-out cannot pay for itself.
PARALLEL_SPLIT_MIN_STATES = 4096


def resolve_compile_jobs(jobs: Union[int, str, None] = None) -> int:
    """Worker count for parallel CC splitting.

    ``jobs`` may be an int, a numeric string, or ``None``/"auto" — the
    latter consults ``REPRO_COMPILE_JOBS`` and falls back to the CPU
    count.  The result is always >= 1.
    """
    if jobs is None or jobs == "auto":
        jobs = os.environ.get(COMPILE_JOBS_ENV) or (os.cpu_count() or 1)
    return max(1, int(jobs))


def _component_seed(base_seed: int, component: List[str]) -> int:
    """Deterministic per-component partitioning seed.

    Derived from the component's member ids (not from a shared RNG
    stream), so splitting CCs concurrently — in any order, on any worker
    count — yields bit-identical assignments to the serial path.
    """
    digest = zlib.crc32("\x00".join(component).encode("utf-8"))
    return (base_seed * 0x9E3779B1 + digest) & 0xFFFFFFFF


def _component_split_payload(
    automaton: HomogeneousAutomaton, component: List[str]
) -> Tuple[int, List[Tuple[int, int]], List[str]]:
    """(node count, directed intra-CC edge list, members) for one split."""
    index = {ste_id: i for i, ste_id in enumerate(component)}
    edges: List[Tuple[int, int]] = []
    for ste_id in component:
        source = index[ste_id]
        for target in automaton.successors(ste_id):
            if target in index and target != ste_id:
                edges.append((source, index[target]))
    return len(component), edges, component


def _split_payload_worker(
    payload: Tuple[int, List[Tuple[int, int]], List[str], int, int],
) -> List[List[str]]:
    """Split one oversized CC (top-level so process pools can pickle it)."""
    node_count, edges, component, capacity, seed = payload
    graph = PartitionGraph([1] * node_count)
    for source, target in edges:
        graph.add_edge(source, target, 1)
    assignment = partition_into_capacity(
        graph, capacity, rng=random.Random(seed)
    )
    parts: Dict[int, List[str]] = {}
    for node, ste_id in enumerate(component):
        parts.setdefault(assignment[node], []).append(ste_id)
    return [parts[key] for key in sorted(parts)]


@dataclass
class MappedPartition:
    """One partition: up to ``partition_size`` STEs on two SRAM arrays.

    ``way`` is a *global* way index; dividing by the design's
    ``ways_used`` yields the slice it lives in (an NFA larger than one
    slice's NFA ways spills onto further slices, whose capacity is part
    of the compiler's admission check).
    """

    index: int
    way: int
    #: Offsets of STEs within the partition, in slot order.
    ste_ids: List[str] = field(default_factory=list)

    def slot_of(self, ste_id: str) -> int:
        return self.ste_ids.index(ste_id)

    @property
    def occupancy(self) -> int:
        return len(self.ste_ids)

    def slice_index(self, ways_per_slice: int) -> int:
        return self.way // ways_per_slice

    def way_in_slice(self, ways_per_slice: int) -> int:
        return self.way % ways_per_slice


@dataclass
class Mapping:
    """A compiled placement of an automaton onto a Cache Automaton design."""

    design: DesignPoint
    automaton: HomogeneousAutomaton
    partitions: List[MappedPartition]
    #: ste id -> (partition index, slot within partition).
    location: Dict[str, Tuple[int, int]]

    # -- edge classification -------------------------------------------------

    def partition_of(self, ste_id: str) -> int:
        return self.location[ste_id][0]

    def edge_kind(self, source: str, target: str) -> str:
        """'local' (same partition), 'g1' (same way), or 'g4' (cross-way)."""
        source_partition = self.partition_of(source)
        target_partition = self.partition_of(target)
        if source_partition == target_partition:
            return "local"
        if (
            self.partitions[source_partition].way
            == self.partitions[target_partition].way
        ):
            return "g1"
        return "g4"

    def classify_edges(self) -> Dict[str, int]:
        counts = {"local": 0, "g1": 0, "g4": 0}
        for source, target in self.automaton.edges():
            counts[self.edge_kind(source, target)] += 1
        return counts

    # -- capacity metrics ------------------------------------------------------

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    @property
    def ways_used(self) -> int:
        return len({partition.way for partition in self.partitions})

    @property
    def slices_used(self) -> int:
        """LLC slices the mapping spans (NFA ways per slice from the design)."""
        per_slice = self.design.ways_used
        return len(
            {partition.slice_index(per_slice) for partition in self.partitions}
        )

    def cache_bytes(self) -> int:
        """Figure 8's utilisation metric: bytes of SRAM holding STE columns."""
        return self.design.geometry.cache_bytes_for_partitions(
            self.partition_count, full_subarrays=self.design.full_subarrays
        )

    def cache_megabytes(self) -> float:
        return self.cache_bytes() / (1024.0 * 1024.0)

    def occupancy_fraction(self) -> float:
        """Mapped STEs / STE slots claimed (packing efficiency)."""
        slots = self.partition_count * self.design.partition_size
        return len(self.automaton) / slots if slots else 0.0

    def __repr__(self) -> str:
        return (
            f"Mapping({self.automaton.automaton_id!r} -> {self.design.name},"
            f" partitions={self.partition_count}, ways={self.ways_used},"
            f" {self.cache_megabytes():.3f} MB)"
        )


class Compiler:
    """Maps homogeneous automata onto a Cache Automaton design point."""

    def __init__(
        self,
        design: DesignPoint,
        *,
        rng: Optional[random.Random] = None,
        max_slices: int = 16,
        jobs: Union[int, str, None] = None,
    ):
        design.validate()
        self.design = design
        self.rng = rng or random.Random(0xCA)
        self.max_slices = max_slices
        self.jobs = jobs
        #: Wall-clock seconds per compile phase, refreshed by :meth:`compile`.
        self.last_phase_timings: Dict[str, float] = {}

    # -- public API ------------------------------------------------------------

    def compile(self, automaton: HomogeneousAutomaton) -> Mapping:
        """Produce a validated mapping (raises on infeasible automata)."""
        timings: Dict[str, float] = {}
        clock = time.perf_counter
        started = clock()
        automaton.validate()
        timings["validate"] = clock() - started

        partition_size = self.design.partition_size
        started = clock()
        components = connected_components(automaton)
        timings["components"] = clock() - started

        small = [cc for cc in components if len(cc) <= partition_size]
        large = [cc for cc in components if len(cc) > partition_size]

        # Step 2: greedy smallest-first packing of whole CCs.  components()
        # returns size-ascending order already.  First-fit with a residual
        # capacity per group, so each placement is an int compare instead
        # of re-summing the group's CC sizes.
        started = clock()
        groups: List[List[List[str]]] = []  # groups of CCs per partition
        residuals: List[int] = []
        for component in small:
            size = len(component)
            for group_index, room in enumerate(residuals):
                if size <= room:
                    groups[group_index].append(component)
                    residuals[group_index] = room - size
                    break
            else:
                groups.append([component])
                residuals.append(partition_size - size)
        packed_partitions: List[List[str]] = [
            [ste for cc in group for ste in cc] for group in groups
        ]
        timings["pack"] = clock() - started

        # Step 3: k-way split of each oversized CC; record which partitions
        # belong to the same CC so placement can co-locate them.
        started = clock()
        cc_partition_groups = self._split_components(
            automaton, large, partition_size
        )
        timings["split"] = clock() - started

        started = clock()
        mapping = self._place(automaton, packed_partitions, cc_partition_groups)
        timings["place"] = clock() - started
        self.last_phase_timings = timings
        return mapping

    # -- splitting ----------------------------------------------------------------

    def _split_components(
        self,
        automaton: HomogeneousAutomaton,
        components: List[List[str]],
        partition_size: int,
    ) -> List[List[List[str]]]:
        """Split every oversized CC, fanning out to processes when it pays.

        Each CC gets a seed derived from its own member ids (plus one base
        draw from the compiler RNG), so results are identical whatever the
        worker count or completion order; the merge preserves submission
        order, keeping the partition numbering deterministic too.
        """
        if not components:
            return []
        base_seed = self.rng.getrandbits(32)
        payloads = [
            _component_split_payload(automaton, component)
            + (partition_size, _component_seed(base_seed, component))
            for component in components
        ]
        jobs = resolve_compile_jobs(self.jobs)
        total_states = sum(payload[0] for payload in payloads)
        if (
            jobs > 1
            and len(payloads) > 1
            and total_states >= PARALLEL_SPLIT_MIN_STATES
        ):
            workers = min(jobs, len(payloads))
            # Degrade to the serial path only when the *pool* is unusable
            # (no fork/spawn on this host, workers killed): those surface
            # as OSError from process creation or BrokenProcessPool from
            # the map.  A genuine exception raised *inside*
            # _split_payload_worker is a compiler bug or an infeasible
            # split and must propagate — retrying it serially would just
            # mask it (or fail identically, twice as slowly).
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    return list(pool.map(_split_payload_worker, payloads))
            except (OSError, BrokenProcessPool) as error:
                warnings.warn(
                    "parallel CC splitting unavailable "
                    f"({type(error).__name__}: {error}); "
                    "degrading to serial compilation",
                    DegradedModeWarning,
                    stacklevel=3,
                )
        return [_split_payload_worker(payload) for payload in payloads]

    def _split_component(
        self,
        automaton: HomogeneousAutomaton,
        component: List[str],
        partition_size: int,
    ) -> List[List[str]]:
        payload = _component_split_payload(automaton, component) + (
            partition_size,
            _component_seed(self.rng.getrandbits(32), component),
        )
        return _split_payload_worker(payload)

    # -- placement ----------------------------------------------------------------

    def _place(
        self,
        automaton: HomogeneousAutomaton,
        packed_partitions: List[List[str]],
        cc_partition_groups: List[List[List[str]]],
    ) -> Mapping:
        per_way = self.design.partitions_per_way
        max_partitions = per_way * self.design.ways_used * self.max_slices
        total_partitions = len(packed_partitions) + sum(
            len(group) for group in cc_partition_groups
        )
        if total_partitions > max_partitions:
            raise CapacityError(
                f"automaton needs {total_partitions} partitions but "
                f"{self.max_slices} slice(s) x {self.design.ways_used} ways "
                f"provide only {max_partitions}"
            )

        partitions: List[MappedPartition] = []
        location: Dict[str, Tuple[int, int]] = {}

        domain_ways = 4  # ways spanned by one G4 switch

        def pad_to(index: int):
            while len(partitions) < index:
                partitions.append(
                    MappedPartition(len(partitions), len(partitions) // per_way)
                )

        def allocate(ste_lists: List[List[str]], *, keep_together: bool):
            """Assign each STE list a partition; co-locate ways if asked.

            A split CC's partitions are placed contiguously from a way
            boundary so the group spans as few ways as possible; groups
            spanning several ways are additionally aligned to a 4-way
            G4-switch domain, since cross-way wires exist only inside one.
            """
            start_index = len(partitions)
            needed = len(ste_lists)
            if keep_together and needed > 1:
                span_ways = -(-needed // per_way)
                if self.design.g4_wires_per_partition == 0 and span_ways > 1:
                    raise CapacityError(
                        f"a connected component needs {needed} partitions "
                        f"({span_ways} ways) but {self.design.name} has no "
                        "cross-way wires; use the space-optimised design or "
                        "reduce the component"
                    )
                if span_ways > domain_ways:
                    raise CapacityError(
                        f"a connected component spans {span_ways} ways; one "
                        f"G4 switch domain covers only {domain_ways}"
                    )
                # Align to a way boundary; to a domain boundary if the
                # group would otherwise straddle two G4 domains.
                if start_index % per_way:
                    start_index += per_way - (start_index % per_way)
                start_way = start_index // per_way
                if span_ways > 1 and start_way % domain_ways + span_ways > domain_ways:
                    start_way += domain_ways - (start_way % domain_ways)
                    start_index = start_way * per_way
                pad_to(start_index)
            for ste_list in ste_lists:
                index = len(partitions)
                partition = MappedPartition(index, index // per_way)
                for slot, ste_id in enumerate(ste_list):
                    location[ste_id] = (index, slot)
                partition.ste_ids = list(ste_list)
                partitions.append(partition)

        # Place split CCs first (they need way alignment), then the packed
        # small-CC partitions, which have no inter-partition edges at all.
        for group in sorted(cc_partition_groups, key=len, reverse=True):
            allocate(group, keep_together=True)
        allocate(packed_partitions, keep_together=False)

        # Drop padding partitions that stayed empty, re-indexing.
        occupied = [p for p in partitions if p.ste_ids]
        if len(occupied) != len(partitions):
            reindex = {p.index: i for i, p in enumerate(occupied)}
            for partition in occupied:
                partition.index = reindex[partition.index]
            # NOTE: re-indexing must not change ways — recompute way from the
            # original dense layout is wrong after dropping pads, so ways were
            # fixed at allocation time and are kept as allocated.
            location = {
                ste_id: (reindex[pi], slot)
                for ste_id, (pi, slot) in location.items()
            }
        mapping = Mapping(self.design, automaton, occupied, location)
        return mapping
