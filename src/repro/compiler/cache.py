"""Content-addressed on-disk cache for compiled artefacts.

Compiling an automaton is deterministic in exactly two inputs: the
automaton's structure (states, labels, flags, edges) and the design
point.  This module hashes both into one cache key and persists the
expensive products of compilation — the placement, the packed simulator
tables, and the configuration bitstream — under a versioned directory
(``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), so repeated engine
construction over the same workload skips the compiler and the
simulator-table build entirely.

Key scheme / invalidation rules:

* the **automaton fingerprint** hashes the canonically ordered state
  list (ids sorted), each state's symbol mask / start kind / report
  flags, and the canonically ordered edge list — any structural change
  changes the key (the hash is memoised on the automaton's mutation
  counter, so unchanged automata fingerprint once per process);
* the **design fingerprint** hashes every field of the
  :class:`~repro.core.design.DesignPoint`, so any parameter change
  (partition size, wire budgets, geometry, clock) busts the key;
* the cache directory embeds :data:`CACHE_FORMAT_VERSION` (which also
  folds in the mapping serialisation format version), so artefact-layout
  changes simply start a fresh namespace — stale artefacts are never
  reinterpreted.

The payload layout itself is owned by
:class:`repro.backends.artifact.CompiledArtifact` — this module only
addresses, stores, and quarantines it.  Artefacts store the fingerprints
they were written under and are re-verified on load; mismatches and
unreadable files count as misses, never errors.  Corrupt artefacts are additionally *quarantined*
(deleted) so every subsequent warm start does not re-hit the same bad
file, and transient I/O errors are retried with bounded, jittered
exponential backoff before the cache degrades to a cold compile
(:class:`~repro.errors.DegradedModeWarning` is emitted when it does).
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import tempfile
import time
import warnings
import zipfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.automata.anml import HomogeneousAutomaton
from repro.compiler.mapping import Mapping
from repro.compiler.serialize import FORMAT_VERSION as MAPPING_FORMAT_VERSION
from repro.core.design import DesignPoint
from repro.errors import ArtifactError, DegradedModeWarning

#: Environment override for the cache directory root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump when the artefact layout changes; versions the cache namespace.
CACHE_FORMAT_VERSION = 1

#: Bounded-retry policy for transient cache I/O errors.
RETRY_ATTEMPTS = 3
RETRY_BACKOFF_SECONDS = 0.01

#: OSError subclasses that no amount of retrying will fix.
_PERMANENT_OS_ERRORS = (
    FileNotFoundError,
    PermissionError,
    IsADirectoryError,
    NotADirectoryError,
)


def default_cache_root() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def automaton_fingerprint(automaton: HomogeneousAutomaton) -> str:
    """Content hash of the automaton's structure (canonical order).

    Memoised per automaton object on its mutation counter, so hot paths
    (engine construction in a warm process) pay the hash once.
    """
    memo = getattr(automaton, "_fingerprint_memo", None)
    if memo is not None and memo[0] == automaton.mutation_version:
        return memo[1]
    digest = hashlib.sha256()
    arrays = automaton.edge_index_arrays()
    for ste_id in arrays.ids:
        ste = automaton.ste(ste_id)
        digest.update(ste_id.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(ste.symbols.mask.to_bytes(32, "little"))
        digest.update(ste.start.value.encode("ascii"))
        digest.update(b"R" if ste.reporting else b"-")
        digest.update((ste.report_code or "").encode("utf-8"))
        digest.update(b"\x00")
    order = arrays.argsort_edges()
    digest.update(arrays.sources[order].astype("<i4").tobytes())
    digest.update(arrays.targets[order].astype("<i4").tobytes())
    value = digest.hexdigest()
    automaton._fingerprint_memo = (automaton.mutation_version, value)
    return value


def design_fingerprint(design: DesignPoint, *, stride: int = 1) -> str:
    """Content hash of every design-point field.

    ``stride`` folds the k-stride execution transform into the hash, so
    strided and unstrided artefacts for the same design occupy distinct
    content addresses.  Stride 1 (unstrided) adds nothing, keeping every
    pre-stride fingerprint stable.
    """
    fields = asdict(design)
    if stride != 1:
        fields["__stride__"] = stride
    payload = json.dumps(fields, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cache_key(
    automaton: HomogeneousAutomaton,
    design: DesignPoint,
    *,
    stride: int = 1,
) -> str:
    """The content address of all artefacts for (automaton, design,
    stride)."""
    combined = (
        f"repro:{CACHE_FORMAT_VERSION}:{MAPPING_FORMAT_VERSION}:"
        f"{design_fingerprint(design, stride=stride)}:"
        f"{automaton_fingerprint(automaton)}"
    )
    return hashlib.sha256(combined.encode("ascii")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/bypass accounting for one cache instance.

    ``quarantines`` counts corrupt artefacts deleted on load;
    ``retries`` counts transient I/O errors that were retried.
    """

    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    stores: int = 0
    quarantines: int = 0
    retries: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "stores": self.stores,
            "quarantines": self.quarantines,
            "retries": self.retries,
        }


class CompileCache:
    """Content-addressed store of compiled mappings, simulator tables,
    and bitstreams.

    One instance fronts one on-disk directory; all lookups are keyed by
    :func:`cache_key`.  ``enabled=False`` turns every operation into an
    accounted bypass (useful for benchmarking the cold path with the same
    code shape).
    """

    def __init__(
        self,
        directory: Union[str, Path, None] = None,
        *,
        enabled: bool = True,
        retry_attempts: int = RETRY_ATTEMPTS,
        retry_backoff: float = RETRY_BACKOFF_SECONDS,
        retry_rng: Optional[random.Random] = None,
    ):
        root = Path(directory) if directory is not None else default_cache_root()
        self.directory = root / f"v{CACHE_FORMAT_VERSION}"
        self.enabled = enabled
        self.retry_attempts = max(1, retry_attempts)
        self.retry_backoff = retry_backoff
        self._retry_rng = retry_rng if retry_rng is not None else random.Random()
        self.stats = CacheStats()

    # -- resilience --------------------------------------------------------

    def _retry_delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based): equal jitter over
        an exponential — half the delay is deterministic, half uniform-
        random, so concurrent engine constructors hammering one cache
        directory decorrelate instead of retrying in lockstep."""
        ceiling = self.retry_backoff * (2 ** (attempt - 1))
        return ceiling * 0.5 + ceiling * 0.5 * self._retry_rng.random()

    def _with_retries(self, operation):
        """Run ``operation``, retrying transient ``OSError``\\ s with
        bounded, jittered exponential backoff; permanent errors raise
        immediately."""
        attempt = 0
        while True:
            try:
                return operation()
            except _PERMANENT_OS_ERRORS:
                raise
            except OSError:
                attempt += 1
                if attempt >= self.retry_attempts:
                    raise
                self.stats.retries += 1
                time.sleep(self._retry_delay(attempt))

    def _quarantine(self, path: Path, reason: str):
        """Delete a corrupt artefact so warm starts stop re-hitting it."""
        try:
            path.unlink()
        except OSError:
            pass
        self.stats.quarantines += 1
        warnings.warn(
            f"quarantined corrupt cache artefact {path.name}: {reason}",
            DegradedModeWarning,
            stacklevel=4,
        )

    def quarantine_mapping(
        self,
        automaton: HomogeneousAutomaton,
        design: DesignPoint,
        *,
        stride: int = 1,
    ):
        """Evict the mapping artefact for (automaton, design, stride).

        Called by the engine when an artefact loads cleanly but its
        simulator tables turn out to be unusable."""
        self._quarantine(
            self.mapping_path(automaton, design, stride=stride),
            "unusable simulator tables",
        )

    # -- paths -------------------------------------------------------------

    def _artifact_path(self, key: str, suffix: str) -> Path:
        return self.directory / key[:2] / f"{key}{suffix}"

    def mapping_path(
        self,
        automaton: HomogeneousAutomaton,
        design: DesignPoint,
        *,
        stride: int = 1,
    ) -> Path:
        return self._artifact_path(
            cache_key(automaton, design, stride=stride), ".npz"
        )

    def bitstream_path(
        self, automaton: HomogeneousAutomaton, design: DesignPoint
    ) -> Path:
        return self._artifact_path(cache_key(automaton, design), ".bitstream")

    @staticmethod
    def _write_atomic(path: Path, payload: bytes):
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            dir=path.parent, prefix=path.name, suffix=".tmp", delete=False
        )
        # Only Exception: KeyboardInterrupt/SystemExit must propagate
        # untouched (a stray .tmp file is harmless; intercepting the
        # interrupt to clean it up is not).
        try:
            handle.write(payload)
            handle.close()
            os.replace(handle.name, path)
        except Exception:
            handle.close()
            os.unlink(handle.name)
            raise

    # -- compiled artifacts ------------------------------------------------

    def store_artifact(self, artifact) -> Optional[Path]:
        """Persist a :class:`~repro.backends.artifact.CompiledArtifact`
        under its content address; returns the artefact path (``None``
        when the cache is disabled or the directory is unwritable)."""
        if not self.enabled:
            self.stats.bypasses += 1
            return None
        path = self.mapping_path(
            artifact.automaton,
            artifact.design,
            stride=getattr(artifact, "stride", 1),
        )
        try:
            self._with_retries(
                lambda: self._write_atomic(path, artifact.npz_bytes())
            )
        except OSError:
            return None  # unwritable cache dir: behave as uncached
        self.stats.stores += 1
        return path

    def load_artifact(
        self,
        automaton: HomogeneousAutomaton,
        design: DesignPoint,
        *,
        stride: int = 1,
    ):
        """The cached :class:`~repro.backends.artifact.CompiledArtifact`
        for (automaton, design, stride), or ``None`` on a miss.

        The artifact's per-state structures materialise lazily; the hit
        is trusted without re-running constraint checks, because
        artefacts are only ever written after a validated compile and
        the content address pins both compiler inputs.

        Failure handling: a missing file is a plain miss; transient read
        errors are retried with backoff, then degrade to a miss with a
        :class:`DegradedModeWarning`; a corrupt or mismatching artefact
        (the content address pins both fingerprints, so a mismatch means
        the file's bytes are wrong — surfaced by the deserialiser as
        :class:`~repro.errors.ArtifactError`) is quarantined and counts
        as a miss.
        """
        from repro.backends.artifact import CompiledArtifact

        if not self.enabled:
            self.stats.bypasses += 1
            return None
        path = self.mapping_path(automaton, design, stride=stride)
        try:
            data = self._with_retries(
                lambda: np.load(path, allow_pickle=False)
            )
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError as error:
            self.stats.misses += 1
            warnings.warn(
                f"cache read failed after {self.retry_attempts} attempt(s) "
                f"({error}); compiling cold",
                DegradedModeWarning,
                stacklevel=2,
            )
            return None
        except (ValueError, zipfile.BadZipFile) as error:
            self._quarantine(path, str(error))
            self.stats.misses += 1
            return None
        try:
            artifact = CompiledArtifact.from_payload(
                data, automaton, design, stride=stride
            )
        except ArtifactError as error:
            self._quarantine(path, str(error))
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return artifact

    # -- mapping + simulator tables (tuple-era shims) ----------------------

    def store_mapping(
        self,
        mapping: Mapping,
        kernel_arrays: Optional[Dict[str, np.ndarray]] = None,
    ) -> Optional[Path]:
        """Persist a compiled mapping (and optional packed simulator
        tables); shim over :meth:`store_artifact` for pre-artifact callers."""
        from repro.backends.artifact import CompiledArtifact

        return self.store_artifact(
            CompiledArtifact.from_mapping(mapping, kernel_arrays)
        )

    def load_mapping(
        self, automaton: HomogeneousAutomaton, design: DesignPoint
    ) -> Optional[Tuple[Mapping, Dict[str, np.ndarray]]]:
        """``(mapping, kernel_arrays)`` on a hit, else ``None``; shim over
        :meth:`load_artifact` for pre-artifact callers."""
        artifact = self.load_artifact(automaton, design)
        if artifact is None:
            return None
        return artifact.mapping, artifact.kernel_tables

    # -- bitstreams --------------------------------------------------------

    def store_bitstream(self, mapping: Mapping, payload: bytes) -> Optional[Path]:
        """Persist packed bitstream bytes under the mapping's address."""
        if not self.enabled:
            self.stats.bypasses += 1
            return None
        path = self.bitstream_path(mapping.automaton, mapping.design)
        try:
            self._with_retries(lambda: self._write_atomic(path, payload))
        except OSError:
            return None
        self.stats.stores += 1
        return path

    def load_bitstream(
        self, automaton: HomogeneousAutomaton, design: DesignPoint
    ) -> Optional[bytes]:
        """Cached packed bitstream bytes, or ``None`` on a miss."""
        if not self.enabled:
            self.stats.bypasses += 1
            return None
        path = self.bitstream_path(automaton, design)
        try:
            payload = self._with_retries(path.read_bytes)
        except OSError:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload


def bitstream_bytes(
    mapping: Mapping, cache: Optional[CompileCache] = None
) -> bytes:
    """Packed bitstream for ``mapping``, via the cache when provided.

    A hit returns the stored bytes verbatim (bit-identical to what
    :func:`repro.compiler.bitstream.generate` produces for this mapping);
    a miss generates, stores, and returns them.
    """
    from repro.compiler.bitstream import generate

    if cache is not None:
        cached = cache.load_bitstream(mapping.automaton, mapping.design)
        if cached is not None:
            return cached
    payload = generate(mapping).to_bytes()
    if cache is not None:
        cache.store_bitstream(mapping, payload)
    return payload
