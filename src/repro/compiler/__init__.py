"""The Cache Automaton compiler: mapping, constraints, bitstream."""

from repro.compiler.bitstream import Bitstream, generate
from repro.compiler.cache import (
    CacheStats,
    CompileCache,
    bitstream_bytes,
    cache_key,
)
from repro.compiler.constraints import ConstraintReport, analyse, check
from repro.compiler.mapping import Compiler, MappedPartition, Mapping
from repro.compiler.serialize import mapping_from_json, mapping_to_json
from repro.errors import CompileError


def compile_automaton(automaton, design, **kwargs) -> Mapping:
    """Compile ``automaton`` onto ``design`` and validate wire budgets."""
    mapping = Compiler(design, **kwargs).compile(automaton)
    check(mapping)
    return mapping


def compile_space_optimized(automaton, design, **kwargs) -> Mapping:
    """Compile the best *routable* space-optimised variant of ``automaton``.

    Redundancy removal trades connected-component count for connectivity:
    fully merged automata (prefix + suffix) are the smallest but can
    exceed the interconnect's wire budget — edit-distance lattices are
    the canonical offender (and indeed the paper's Levenshtein/Hamming/
    RandomForest rows show no space-optimisation benefit).  This helper
    compiles the variant ladder — full merge, prefix-merge only, baseline
    — and returns the smallest-footprint mapping that routes.  Merging can
    even *increase* the footprint when it fuses many well-packed small CCs
    into one fragmenting giant without removing many states (Levenshtein),
    so the best routable variant is picked, not merely the first; that
    mirrors how the paper's merge-hostile benchmarks end up with no CA_S
    benefit.
    """
    from repro.automata.optimize import merge_common_prefixes, space_optimize

    best = None
    last_error = None
    for transform in (space_optimize, merge_common_prefixes, lambda a: a):
        variant = transform(automaton)
        try:
            mapping = compile_automaton(variant, design, **kwargs)
        except CompileError as error:
            last_error = error
            continue
        if best is None or mapping.cache_bytes() < best.cache_bytes():
            best = mapping
    if best is None:
        raise last_error
    return best


__all__ = [
    "Bitstream",
    "CacheStats",
    "CompileCache",
    "Compiler",
    "ConstraintReport",
    "MappedPartition",
    "Mapping",
    "analyse",
    "bitstream_bytes",
    "cache_key",
    "check",
    "compile_automaton",
    "compile_space_optimized",
    "generate",
    "mapping_from_json",
    "mapping_to_json",
]
