"""Configuration bitstream generation (Section 2.10).

The compiler's final product is the configuration state that initialises
the cache for automaton mode:

* per partition, the **STE column image** — a 256x256 bit matrix whose
  column *j* is the one-hot label encoding of the STE in slot *j* (row
  *i* read out on input symbol *i* is the partition's match vector);
* per partition, the **L-switch enable matrix** (``(256+g1+g4) x 256``):
  cross-points for intra-partition edges plus the returning global wires;
* per way, the **G1-switch enable matrix**, and per way-group the
  **G4-switch enable matrix**, with an explicit wire assignment mapping
  each boundary-crossing source STE to its input/output wire indices.

The matrices drive :class:`repro.sim.crossbar.CrossbarLevelSimulator`,
which validates that the bit-level configuration reproduces the golden
semantics, and they serialise to the binary pages a real system would
load via CPU stores (:meth:`Bitstream.to_bytes`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.compiler.constraints import check
from repro.compiler.mapping import Mapping
from repro.errors import CompileError


@dataclass
class WireAssignment:
    """Global-wire bookkeeping for one partition.

    ``out_g1[ste_id]`` is the G1 output-wire index carrying that source
    STE's match signal; ``in_g1[source_ste_id]`` is the L-switch G1 input
    index on which the signal arrives (assigned per destination
    partition).  Likewise for G4.
    """

    out_g1: Dict[str, int] = field(default_factory=dict)
    in_g1: Dict[str, int] = field(default_factory=dict)
    out_g4: Dict[str, int] = field(default_factory=dict)
    in_g4: Dict[str, int] = field(default_factory=dict)


@dataclass
class Bitstream:
    """All configuration state for one compiled automaton."""

    mapping: Mapping
    #: (partitions, 256 rows, partition_size columns) uint8 one-hot images.
    ste_columns: np.ndarray
    #: (partitions, 256+g1+g4 inputs, partition_size outputs) bool enables.
    l_switch_enable: np.ndarray
    #: way -> (g1_ports, g1_ports) bool enable matrix.
    g1_enable: Dict[int, np.ndarray]
    #: way_group -> (g4_ports, g4_ports) bool enable matrix.
    g4_enable: Dict[int, np.ndarray]
    wires: List[WireAssignment]

    def to_bytes(self) -> bytes:
        """Serialise (packed bits) in array-load order — the binary pages
        of Section 2.10, huge-page aligned by the loader."""
        chunks = [np.packbits(self.ste_columns, axis=None).tobytes()]
        chunks.append(np.packbits(self.l_switch_enable, axis=None).tobytes())
        for way in sorted(self.g1_enable):
            chunks.append(np.packbits(self.g1_enable[way], axis=None).tobytes())
        for group in sorted(self.g4_enable):
            chunks.append(np.packbits(self.g4_enable[group], axis=None).tobytes())
        return b"".join(chunks)

    def configuration_bits(self) -> int:
        bits = self.ste_columns.size + self.l_switch_enable.size
        bits += sum(matrix.size for matrix in self.g1_enable.values())
        bits += sum(matrix.size for matrix in self.g4_enable.values())
        return bits


def generate(mapping: Mapping) -> Bitstream:
    """Build the full configuration bitstream for a checked mapping."""
    check(mapping)
    design = mapping.design
    partition_size = design.partition_size
    g1_wires = design.g1_wires_per_partition
    g4_wires = design.g4_wires_per_partition
    l_inputs = partition_size + g1_wires + g4_wires
    partition_count = mapping.partition_count
    per_way = design.partitions_per_way

    ste_columns = np.zeros((partition_count, 256, partition_size), dtype=np.uint8)
    l_enable = np.zeros((partition_count, l_inputs, partition_size), dtype=bool)
    wires = [WireAssignment() for _ in range(partition_count)]

    # STE column images.
    for partition in mapping.partitions:
        for slot, ste_id in enumerate(partition.ste_ids):
            ste = mapping.automaton.ste(ste_id)
            ste_columns[partition.index, :, slot] = ste.symbols.to_onehot()

    # Assign global wires: outputs per source STE, inputs per destination.
    def assign(table: Dict[str, int], budget: int, ste_id: str, kind: str) -> int:
        if ste_id not in table:
            if len(table) >= budget:
                raise CompileError(
                    f"{kind} wire budget {budget} exhausted (constraint "
                    "checker and bitstream generator disagree)"
                )
            table[ste_id] = len(table)
        return table[ste_id]

    g1_ports = g1_wires * per_way
    g4_ports = g4_wires * per_way * 4
    g1_enable: Dict[int, np.ndarray] = {}
    g4_enable: Dict[int, np.ndarray] = {}

    def way_of(partition_index: int) -> int:
        return mapping.partitions[partition_index].way

    for source, target in mapping.automaton.edges():
        kind = mapping.edge_kind(source, target)
        source_partition, source_slot = mapping.location[source]
        target_partition, target_slot = mapping.location[target]
        if kind == "local":
            l_enable[source_partition, source_slot, target_slot] = True
            continue
        if kind == "g1":
            out_wire = assign(
                wires[source_partition].out_g1, g1_wires, source, "G1 output"
            )
            in_wire = assign(
                wires[target_partition].in_g1, g1_wires, source, "G1 input"
            )
            way = way_of(source_partition)
            matrix = g1_enable.setdefault(
                way, np.zeros((g1_ports, g1_ports), dtype=bool)
            )
            in_port = (source_partition % per_way) * g1_wires + out_wire
            out_port = (target_partition % per_way) * g1_wires + in_wire
            matrix[in_port, out_port] = True
            # Returning global wire enters the L-switch after the STEs.
            l_enable[
                target_partition, partition_size + in_wire, target_slot
            ] = True
        else:
            out_wire = assign(
                wires[source_partition].out_g4, g4_wires, source, "G4 output"
            )
            in_wire = assign(
                wires[target_partition].in_g4, g4_wires, source, "G4 input"
            )
            group = way_of(source_partition) // 4
            if way_of(target_partition) // 4 != group:
                # The modelled G4 domain spans 4 ways; the placement keeps
                # split CCs within a domain, so this indicates a compiler bug.
                raise CompileError(
                    f"edge {source!r}->{target!r} crosses G4 domains "
                    f"({way_of(source_partition)} -> {way_of(target_partition)})"
                )
            matrix = g4_enable.setdefault(
                group, np.zeros((g4_ports, g4_ports), dtype=bool)
            )
            source_way_slot = way_of(source_partition) % 4
            target_way_slot = way_of(target_partition) % 4
            in_port = (
                source_way_slot * per_way + source_partition % per_way
            ) * g4_wires + out_wire
            out_port = (
                target_way_slot * per_way + target_partition % per_way
            ) * g4_wires + in_wire
            matrix[in_port, out_port] = True
            l_enable[
                target_partition,
                partition_size + g1_wires + in_wire,
                target_slot,
            ] = True

    return Bitstream(mapping, ste_columns, l_enable, g1_enable, g4_enable, wires)
