"""Interconnect wire-budget validation for compiled mappings.

The hierarchical interconnect gives every partition a fixed number of
global wires (Section 2.4): ``g1`` wires carry signals to/from other
partitions of the same way, ``g4`` wires to/from partitions of other
ways.  A *signal* is one source STE's match line — one wire fans out to
any number of destinations inside the G-switch, so the budget constrains
distinct boundary-crossing *source states* per partition, in each
direction (the L-switch also has only ``g1 + g4`` returning inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

import numpy as np

from repro.compiler.mapping import Mapping
from repro.errors import ConnectivityError


@dataclass
class PartitionWireUsage:
    """Distinct crossing signals at one partition's boundary."""

    out_g1: Set[str] = field(default_factory=set)
    out_g4: Set[str] = field(default_factory=set)
    in_g1: Set[str] = field(default_factory=set)
    in_g4: Set[str] = field(default_factory=set)


@dataclass
class ConstraintReport:
    """Wire usage across all partitions, against the design budget."""

    usage: List[PartitionWireUsage]
    g1_budget: int
    g4_budget: int

    @property
    def max_out_g1(self) -> int:
        return max((len(u.out_g1) for u in self.usage), default=0)

    @property
    def max_out_g4(self) -> int:
        return max((len(u.out_g4) for u in self.usage), default=0)

    @property
    def max_in_g1(self) -> int:
        return max((len(u.in_g1) for u in self.usage), default=0)

    @property
    def max_in_g4(self) -> int:
        return max((len(u.in_g4) for u in self.usage), default=0)

    def violations(self) -> List[str]:
        problems = []
        for index, usage in enumerate(self.usage):
            if len(usage.out_g1) > self.g1_budget:
                problems.append(
                    f"partition {index}: {len(usage.out_g1)} outgoing within-way "
                    f"signals exceed the {self.g1_budget}-wire G1 budget"
                )
            if len(usage.in_g1) > self.g1_budget:
                problems.append(
                    f"partition {index}: {len(usage.in_g1)} incoming within-way "
                    f"signals exceed the {self.g1_budget}-wire G1 budget"
                )
            if len(usage.out_g4) > self.g4_budget:
                problems.append(
                    f"partition {index}: {len(usage.out_g4)} outgoing cross-way "
                    f"signals exceed the {self.g4_budget}-wire G4 budget"
                )
            if len(usage.in_g4) > self.g4_budget:
                problems.append(
                    f"partition {index}: {len(usage.in_g4)} incoming cross-way "
                    f"signals exceed the {self.g4_budget}-wire G4 budget"
                )
        return problems

    @property
    def satisfied(self) -> bool:
        return not self.violations()


def analyse(mapping: Mapping) -> ConstraintReport:
    """Measure every partition's boundary wire usage.

    Partition-crossing edges are found with one vectorised comparison
    over the automaton's integer edge arrays; only those few edges (their
    count is bounded by the wire budgets when the mapping is any good)
    fall back to per-edge Python to collect distinct source signals.
    """
    usage = [PartitionWireUsage() for _ in mapping.partitions]
    arrays = mapping.automaton.edge_index_arrays()
    location = mapping.location
    node_partitions = np.fromiter(
        (location[ste_id][0] for ste_id in arrays.ids),
        dtype=np.int32,
        count=len(arrays.ids),
    )
    ways = np.asarray(
        [partition.way for partition in mapping.partitions], dtype=np.int32
    )
    source_partitions = node_partitions[arrays.sources]
    target_partitions = node_partitions[arrays.targets]
    crossing = np.flatnonzero(source_partitions != target_partitions)
    ids = arrays.ids
    edge_sources = arrays.sources
    for edge, source_partition, target_partition, same_way in zip(
        crossing.tolist(),
        source_partitions[crossing].tolist(),
        target_partitions[crossing].tolist(),
        (
            ways[source_partitions[crossing]]
            == ways[target_partitions[crossing]]
        ).tolist(),
    ):
        source = ids[edge_sources[edge]]
        if same_way:
            usage[source_partition].out_g1.add(source)
            usage[target_partition].in_g1.add(source)
        else:
            usage[source_partition].out_g4.add(source)
            usage[target_partition].in_g4.add(source)
    return ConstraintReport(
        usage,
        g1_budget=mapping.design.g1_wires_per_partition,
        g4_budget=mapping.design.g4_wires_per_partition,
    )


def check(mapping: Mapping) -> ConstraintReport:
    """Validate ``mapping``; raises :class:`ConnectivityError` on violation."""
    report = analyse(mapping)
    problems = report.violations()
    if problems:
        preview = "; ".join(problems[:4])
        raise ConnectivityError(
            f"{len(problems)} wire-budget violation(s) in mapping of "
            f"{mapping.automaton.automaton_id!r} onto {mapping.design.name}: "
            f"{preview}"
        )
    return report
