"""Compute-centric CPU baseline: a table-driven DFA engine.

This is the engine the paper's CPU comparisons assume (Section 6): the
rule set is determinised into a dense state-transition table and the CPU
walks one transition per input byte.  It serves two purposes here:

* a *functional* cross-check — its match offsets must agree with the
  golden interpreter and the mapped simulation;
* a *cost* illustration — per-symbol work is a dependent table load,
  which is why CPUs sit ~3840x below CA_P (the performance model itself
  is anchored to the published 256x AP-vs-CPU measurement; see
  :class:`repro.baselines.ap.CpuReferenceModel`).

Determinising a full multi-pattern NFA can blow up exponentially; the
engine caps the subset construction and reports the blow-up factor, which
is itself one of the motivations for spatial architectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.automata.anml import HomogeneousAutomaton
from repro.automata.dfa import Dfa, determinize
from repro.automata.transform import homogeneous_to_nfa
from repro.errors import AutomatonError


@dataclass
class CpuMatch:
    """One match found by the DFA engine (end offset, 0-based)."""

    offset: int


class DfaCpuEngine:
    """Table-driven scanning engine over a homogeneous automaton."""

    def __init__(
        self,
        automaton: HomogeneousAutomaton,
        *,
        minimize: bool = True,
        max_states: int = 200_000,
    ):
        nfa = homogeneous_to_nfa(automaton)
        self.nfa_state_count = len(automaton)
        # homogeneous_to_nfa already encodes scanning (all-input starts
        # re-arm via a wildcard floor state), so a plain determinisation
        # yields the scanning DFA — and '^'-anchored states stay anchored.
        dfa = determinize(nfa, max_states=max_states)
        if minimize:
            dfa = dfa.minimize()
        self.dfa: Dfa = dfa

    @property
    def dfa_state_count(self) -> int:
        return self.dfa.state_count

    @property
    def blowup_factor(self) -> float:
        """DFA states / NFA states — the determinisation cost."""
        if self.nfa_state_count == 0:
            raise AutomatonError("empty automaton")
        return self.dfa.state_count / self.nfa_state_count

    def table_bytes(self) -> int:
        """Memory footprint of the dense transition table (8-byte entries),
        the quantity that blows past cache capacity on real rule sets."""
        return self.dfa.table.size * self.dfa.table.itemsize

    def find_matches(self, data: bytes) -> List[CpuMatch]:
        """Match end offsets, aligned with golden-simulator conventions.

        The DFA reports on entering an accepting state *after* consuming
        the matching symbol, i.e. golden offset = DFA offset - 1.
        """
        return [
            CpuMatch(offset - 1)
            for offset in self.dfa.find_matches(data)
            if offset > 0
        ]

    def match_offsets(self, data: bytes) -> List[int]:
        return [match.offset for match in self.find_matches(data)]


def try_build_engine(
    automaton: HomogeneousAutomaton, *, max_states: int = 50_000
) -> Optional[DfaCpuEngine]:
    """Build the CPU engine unless determinisation blows past ``max_states``.

    Returns None on blow-up — which real CPU engines handle by falling
    back to slower NFA simulation, reinforcing the paper's motivation.
    """
    try:
        return DfaCpuEngine(automaton, max_states=max_states)
    except AutomatonError:
        return None
