"""Baseline models: Micron AP, x86 CPU, and ASIC comparison points."""

from repro.baselines.ap import ApModel, CpuReferenceModel
from repro.baselines.asic import (
    HARE,
    UAP,
    AsicReference,
    CaOperatingPoint,
    ca_operating_point,
    table5_rows,
)
from repro.baselines.cpu import CpuMatch, DfaCpuEngine, try_build_engine

__all__ = [
    "ApModel",
    "AsicReference",
    "CaOperatingPoint",
    "CpuMatch",
    "CpuReferenceModel",
    "DfaCpuEngine",
    "HARE",
    "UAP",
    "ca_operating_point",
    "table5_rows",
    "try_build_engine",
]
