"""Micron Automata Processor (AP) baseline model.

The AP is the paper's primary comparison point: a DRAM-based spatial
automata processor running at 133 MHz, one input symbol per cycle, with a
routing-matrix interconnect that costs ~30% of die area.  Like the Cache
Automaton its throughput is deterministic and input-independent, so the
model is analytic; its energy uses the paper's *Ideal AP* assumptions
(Section 5.3): zero interconnect energy, 1 pJ/bit DRAM row access.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.design import DesignPoint
from repro.core.energy import ActivityProfile
from repro.core.params import AP, CPU_SLOWDOWN_VS_AP, ApParameters
from repro.errors import HardwareModelError


@dataclass(frozen=True)
class ApModel:
    """Analytic throughput/energy model of one AP rank."""

    parameters: ApParameters = AP

    @property
    def frequency_ghz(self) -> float:
        return self.parameters.frequency_ghz

    @property
    def throughput_gbps(self) -> float:
        """1 symbol/cycle at 133 MHz = 1.064 Gb/s, for every benchmark."""
        return self.frequency_ghz * 8.0

    def runtime_ms(self, input_bytes: int, *, include_configuration: bool = False) -> float:
        milliseconds = input_bytes / (self.frequency_ghz * 1e9) * 1e3
        if include_configuration:
            milliseconds += self.parameters.configuration_ms
        return milliseconds

    def ideal_energy_per_symbol_nj(self, profile: ActivityProfile) -> float:
        """Ideal-AP energy for a given mapping activity (Figure 9's bars)."""
        if profile.symbols == 0:
            raise HardwareModelError("profile covers no symbols")
        row_pj = self.parameters.dram_access_pj_per_bit * self.parameters.row_bits
        return profile.partition_activations * row_pj / profile.symbols / 1000.0

    @property
    def reachability(self) -> float:
        return self.parameters.reachability

    @property
    def fan_in(self) -> int:
        return self.parameters.fan_in

    def area_mm2(self, states: int = 32 * 1024) -> float:
        """Routing-matrix area scaled to a ``states`` state space."""
        return self.parameters.area_mm2_32k * states / (32 * 1024)

    def speedup_of(self, design: DesignPoint) -> float:
        """How much faster ``design`` processes symbols than the AP."""
        return design.frequency_ghz / self.frequency_ghz


@dataclass(frozen=True)
class CpuReferenceModel:
    """x86 CPU throughput model, anchored to Wadden et al.'s measurement
    that the AP outperforms CPUs by 256x across these suites [39]."""

    ap: ApModel = ApModel()
    slowdown_vs_ap: float = CPU_SLOWDOWN_VS_AP

    @property
    def throughput_gbps(self) -> float:
        return self.ap.throughput_gbps / self.slowdown_vs_ap

    def speedup_of(self, design: DesignPoint) -> float:
        """CA_P at 2 GHz lands at 15x * 256 = 3840x (the headline claim)."""
        return self.ap.speedup_of(design) * self.slowdown_vs_ap
