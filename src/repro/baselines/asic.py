"""ASIC comparison models: HARE and the Unified Automata Processor.

Section 5.6 / Table 5 compares against two recent accelerators on the
Dotstar0.9 ruleset over a 10 MB stream.  Their published operating points
are encoded as reference models; the Cache Automaton side of the table is
*derived* from this library's design/energy models on the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.design import DesignPoint
from repro.core.energy import ActivityProfile, EnergyModel
from repro.core.params import CA_CONFIGURATION_MS

#: The Table 5 measurement stream: 10 MB.
TABLE5_INPUT_BYTES = 10 * 1024 * 1024


@dataclass(frozen=True)
class AsicReference:
    """Published operating point of a comparison accelerator."""

    name: str
    throughput_gbps: float
    power_watts: float
    energy_nj_per_byte: float
    area_mm2: float
    notes: str = ""

    def runtime_ms(self, input_bytes: int = TABLE5_INPUT_BYTES) -> float:
        return input_bytes * 8 / (self.throughput_gbps * 1e9) * 1e3


#: HARE with W=32 lanes: saturates DRAM bandwidth for <=16 regexes, but
#: pays heavily in area/power beyond that (Table 5 row 1).
HARE = AsicReference(
    name="HARE (W=32)",
    throughput_gbps=3.9,
    power_watts=125.0,
    energy_nj_per_byte=256.0,
    area_mm2=80.0,
    notes="high area/power beyond 16 patterns",
)

#: The Unified Automata Processor: efficient transition packing, but line
#: rate drops to 0.27-0.75 symbols/cycle with many concurrent activations.
UAP = AsicReference(
    name="UAP",
    throughput_gbps=5.3,
    power_watts=0.507,
    energy_nj_per_byte=0.802,
    area_mm2=5.67,
    notes="8-entry combining queue limits concurrent active states",
)


@dataclass(frozen=True)
class CaOperatingPoint:
    """A Cache Automaton row of Table 5, derived from the models."""

    name: str
    throughput_gbps: float
    runtime_ms: float
    power_watts: float
    energy_nj_per_byte: float
    area_mm2: float


def ca_operating_point(
    design: DesignPoint,
    profile: ActivityProfile,
    *,
    input_bytes: int = TABLE5_INPUT_BYTES,
) -> CaOperatingPoint:
    """Evaluate ``design`` on a measured activity profile, Table 5 style.

    Runtime includes the configuration time (Section 2.10's 0.2 ms for the
    largest benchmark), which is why the paper's 10 MB runtimes slightly
    exceed size/frequency.
    """
    energy_model = EnergyModel(design)
    energy_per_symbol = energy_model.energy_per_symbol_nj(profile)
    runtime = input_bytes / (design.frequency_ghz * 1e9) * 1e3
    runtime += CA_CONFIGURATION_MS
    return CaOperatingPoint(
        name=design.name,
        throughput_gbps=design.throughput_gbps,
        runtime_ms=runtime,
        power_watts=energy_model.average_power_watts(profile),
        energy_nj_per_byte=energy_per_symbol,
        area_mm2=design.area_overhead_mm2(32 * 1024),
    )


def table5_rows(
    ca_points: List[CaOperatingPoint],
    *,
    input_bytes: int = TABLE5_INPUT_BYTES,
) -> List[tuple]:
    """Assemble the Table 5 grid: (metric rows) x (HARE, UAP, CA...)."""
    references = [HARE, UAP]
    header = ["Metric"] + [r.name for r in references] + [p.name for p in ca_points]
    throughput = (
        ["Throughput (Gbps)"]
        + [r.throughput_gbps for r in references]
        + [p.throughput_gbps for p in ca_points]
    )
    runtime = (
        ["Runtime (ms)"]
        + [r.runtime_ms(input_bytes) for r in references]
        + [p.runtime_ms for p in ca_points]
    )
    power = (
        ["Power (W)"]
        + [r.power_watts for r in references]
        + [p.power_watts for p in ca_points]
    )
    energy = (
        ["Energy (nJ/byte)"]
        + [r.energy_nj_per_byte for r in references]
        + [p.energy_nj_per_byte for p in ca_points]
    )
    area = (
        ["Area (mm2)"]
        + [r.area_mm2 for r in references]
        + [p.area_mm2 for p in ca_points]
    )
    return [tuple(header), tuple(throughput), tuple(runtime), tuple(power),
            tuple(energy), tuple(area)]
