"""Process-pool scan execution plane for the serving layer.

PR 8's :class:`~repro.service.service.ScanService` runs every CPU-bound
scan as a coroutine on one event loop, so one core is the throughput
ceiling.  This module moves the chunk scans into a persistent pool of
worker *processes* while keeping every PR 8 semantic — deadlines at
chunk boundaries, checkpoint-resume bit-identity, breaker/fallback,
graceful drain — because the unit of dispatch is still one chunk +
checkpoint, and checkpoints are plain picklable values.  A request's
chunks may therefore migrate between processes mid-request: the
checkpoint carries the whole machine state.

Each worker process keeps a small per-tenant engine cache keyed by the
registration fingerprint.  Cold-starting a tenant in a worker takes one
of two paths:

* **Shared-tables fast path** (lazy-DFA tenants): the parent publishes
  the kernel's packed tables plus the warm DFA transition tables once
  per tenant through the existing :class:`~repro.sim.shard.SharedTables`
  shared-memory block; the worker attaches, copies the arrays out (the
  block may be unlinked on hot-reload while the worker lives on),
  rebuilds ``BitsetKernel.from_packed`` + a seeded
  :class:`~repro.sim.lazydfa.LazyDfaKernel`, and returns *raw* scan
  results that the parent materialises through the registered backend —
  so ``(offset, ste_id, report_code)`` identity is resolved exactly
  once, parent-side, and is bit-identical to the in-loop path.
* **Engine rebuild path** (every other backend, and any shared-memory
  failure): the worker rebuilds a full
  :class:`~repro.engine.CacheAutomatonEngine` from the registration
  shipped in the spec, warm-starting from the same content-addressed
  artifact cache directory the parent used, and returns finished
  ``Report``/``Checkpoint`` objects.

Supervision: a dead worker process breaks the whole
:class:`~concurrent.futures.ProcessPoolExecutor`, so the executor is
respawned (counted in :attr:`ProcPoolScanExecutor.respawns`) and the
in-flight chunk fails with a retryable
:class:`~repro.service.errors.WorkerCrashed` — exactly the PR 8
contract, now for real processes.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from multiprocessing import get_context
from typing import Dict, Optional, Tuple

import numpy as np

from repro.automata.stride import StrideAlphabet
from repro.core.design import DesignPoint
from repro.service.errors import WorkerCrashed
from repro.sim.golden import Checkpoint, Report
from repro.sim.kernel import BitsetKernel
from repro.sim.lazydfa import LazyDfaKernel
from repro.sim.shard import RawScanResult, attach_tables

#: Per-worker-process engine cache bound (fingerprint-keyed, LRU).
WORKER_ENGINE_CACHE_LIMIT = 8


def default_mp_method() -> str:
    """``fork`` where available (workers inherit the imported modules —
    no re-import tax per process), else ``spawn``."""
    try:
        get_context("fork")
        return "fork"
    except ValueError:  # pragma: no cover - non-POSIX
        return "spawn"


def worker_cache_spec(cache):
    """A picklable artifact-cache spec for worker processes.

    A live :class:`~repro.compiler.cache.CompileCache` cannot ship
    across the process boundary, so it collapses to its root directory
    (the parent of the versioned subdirectory it manages); every other
    spec form (``"auto"``, a path string, ``True``/``False``/``None``)
    is already picklable and means the same thing in the worker.
    """
    directory = getattr(cache, "directory", None)
    if directory is not None:
        return str(directory.parent)
    return cache


@dataclass(frozen=True)
class TenantWorkerSpec:
    """One tenant's registration, picklable for shipment to workers.

    ``shm_meta`` (when set) is the :class:`~repro.sim.shard.SharedTables`
    handle for the fast path; the full registration rides along so a
    worker can always fall back to an engine rebuild — e.g. when the
    block was unlinked by a hot-reload between dispatch and attach.
    """

    tenant: str
    fingerprint: str
    patterns: Tuple[str, ...]
    design: DesignPoint
    backend: Optional[str]
    stride: object
    backend_options: Tuple[Tuple[str, object], ...]
    compile_jobs: object
    cache: object
    dfa_max_states: Optional[int]
    shm_meta: object = None


class _TablesWorkerEngine:
    """Worker-side engine rebuilt from the shared-tables fast path."""

    def __init__(self, kernel: BitsetKernel, dfa: LazyDfaKernel):
        self.kernel = kernel
        self.dfa = dfa

    def scan_chunk(self, data, cursor, collect_reports):
        from repro.sim.shard import _scan_one

        raw = _scan_one(self.kernel, self.dfa, data, cursor, collect_reports)
        return ("raw", raw)


class _BackendWorkerEngine:
    """Worker-side engine rebuilt from the full registration."""

    def __init__(self, backend):
        self.backend = backend

    def scan_chunk(self, data, cursor, collect_reports):
        resume = None if cursor is None else Checkpoint(*cursor)
        result = self.backend.scan(
            data, collect_reports=collect_reports, resume=resume
        )
        return ("scan", tuple(result.reports), result.checkpoint)


#: fingerprint -> worker engine, per worker process (module global).
_WORKER_ENGINES: "OrderedDict[str, object]" = OrderedDict()


def _build_tables_engine(spec: TenantWorkerSpec) -> _TablesWorkerEngine:
    shm, views = attach_tables(spec.shm_meta)
    try:
        # Copy out of the mapping: the parent may unlink the block (hot
        # reload, drain) while this engine keeps serving from the cache.
        tables = {name: np.array(view, copy=True) for name, view in views.items()}
    finally:
        del views
        shm.close()
    dfa_rows = tables.pop("dfa_rows")
    dfa_next = tables.pop("dfa_next")
    dfa_reps = tables.pop("dfa_reps")
    alphabet = None
    if "stride_k" in tables:
        alphabet = StrideAlphabet.from_tables(
            {
                "stride_k": tables.pop("stride_k"),
                "stride_class_of": tables.pop("stride_class_of"),
                "stride_reps": tables.pop("stride_reps"),
            }
        )
    kernel = BitsetKernel.from_packed(tables)
    dfa = LazyDfaKernel(
        kernel, max_states=spec.dfa_max_states, alphabet=alphabet
    )
    dfa.seed(dfa_rows, dfa_next, dfa_reps)
    return _TablesWorkerEngine(kernel, dfa)


def _build_backend_engine(spec: TenantWorkerSpec) -> _BackendWorkerEngine:
    from repro.engine import CacheAutomatonEngine

    engine = CacheAutomatonEngine.from_patterns(
        list(spec.patterns),
        design=spec.design,
        cache=spec.cache,
        backend=spec.backend,
        stride=spec.stride,
        backend_options=dict(spec.backend_options) or None,
        compile_jobs=spec.compile_jobs,
    )
    return _BackendWorkerEngine(engine.backend)


def _worker_engine(spec: TenantWorkerSpec):
    engine = _WORKER_ENGINES.get(spec.fingerprint)
    if engine is None:
        if spec.shm_meta is not None:
            try:
                engine = _build_tables_engine(spec)
            except Exception:
                # The block can be gone (hot-reload unlinked it) or the
                # attach can fail; the registration in the spec always
                # suffices to rebuild the slow way.
                engine = _build_backend_engine(spec)
        else:
            engine = _build_backend_engine(spec)
        _WORKER_ENGINES[spec.fingerprint] = engine
        while len(_WORKER_ENGINES) > WORKER_ENGINE_CACHE_LIMIT:
            _WORKER_ENGINES.popitem(last=False)
    else:
        _WORKER_ENGINES.move_to_end(spec.fingerprint)
    return engine


def _worker_scan_chunk(spec, data, cursor, collect_reports):
    """Scan one chunk in a worker process (top-level so it pickles).

    ``cursor`` is the resume checkpoint flattened to ``(symbols, vector,
    sod)`` or ``None``; the return payload is either ``("raw",
    RawScanResult)`` (fast path — the parent materialises reports) or
    ``("scan", reports, checkpoint)`` (engine path — already global
    offsets because the backend scanned with the resume checkpoint).
    """
    return _worker_engine(spec).scan_chunk(data, cursor, collect_reports)


def _worker_pid() -> int:
    """Chaos-hook helper: the worker process's own pid."""
    return os.getpid()


class _ChunkResult:
    """Duck-typed slice of BackendResult the chunk loop consumes."""

    __slots__ = ("reports", "checkpoint")

    def __init__(self, reports, checkpoint):
        self.reports = reports
        self.checkpoint = checkpoint


class ProcPoolScanExecutor:
    """A supervised ``ProcessPoolExecutor`` dispatching scan chunks.

    ``scan_chunk`` is the only hot entry point: it ships ``(spec, chunk,
    checkpoint)`` to a worker via ``loop.run_in_executor`` and hands
    back a ``.reports``/``.checkpoint`` result, materialising fast-path
    raw payloads through the parent's registered backend.  A broken pool
    (worker process died) is respawned on the spot and the failed chunk
    surfaces as a retryable :class:`WorkerCrashed` — mirroring the
    coroutine-worker supervision contract.
    """

    def __init__(self, workers: int, *, mp_method: Optional[str] = None):
        if workers < 1:
            raise ValueError(f"need at least one scan worker, got {workers}")
        self.workers = workers
        self._mp_method = mp_method or default_mp_method()
        self._pool: Optional[ProcessPoolExecutor] = None
        self.respawns = 0
        self.dispatched = 0

    def start(self) -> None:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=get_context(self._mp_method),
            )

    def shutdown(self) -> None:
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.shutdown(wait=True, cancel_futures=True)

    def _respawn(self, broken: Optional[ProcessPoolExecutor]) -> None:
        if self._pool is not broken:
            return  # a concurrent failure already swapped the pool
        self._pool = None
        if broken is not None:
            broken.shutdown(wait=False, cancel_futures=True)
        self.respawns += 1
        self.start()

    def worker_pids(self) -> Tuple[int, ...]:
        """Pids of the live pool processes (chaos hooks / tests).

        The pool spawns processes lazily, so this dispatches a no-op
        job first to guarantee at least one process exists.
        """
        if self._pool is None:
            return ()
        self._pool.submit(_worker_pid).result()
        return tuple(self._pool._processes.keys())

    def crash_one(self) -> Optional[int]:
        """Chaos hook: SIGKILL one pool process; returns its pid.

        The next dispatched chunk observes the broken pool, fails with a
        retryable :class:`WorkerCrashed`, and triggers a respawn.
        """
        import signal

        pids = self.worker_pids()
        if not pids:
            return None
        os.kill(pids[0], signal.SIGKILL)
        return pids[0]

    async def scan_chunk(
        self,
        loop,
        spec: TenantWorkerSpec,
        backend,
        data: bytes,
        checkpoint: Optional[Checkpoint],
        collect_reports: bool = True,
    ) -> _ChunkResult:
        if self._pool is None:
            self.start()
        pool = self._pool
        cursor = None
        if checkpoint is not None:
            cursor = (
                checkpoint.symbols_processed,
                checkpoint.active_state_vector,
                checkpoint.start_of_data_pending,
            )
        job = partial(_worker_scan_chunk, spec, data, cursor, collect_reports)
        try:
            kind, *payload = await loop.run_in_executor(pool, job)
        except (BrokenProcessPool, OSError, RuntimeError) as error:
            # A dead process poisons the whole executor: respawn the
            # pool so the *next* chunk lands on fresh workers, and fail
            # this one with the typed retryable error.
            self._respawn(pool)
            raise WorkerCrashed(spec.tenant) from error
        self.dispatched += 1
        if kind == "raw":
            raw: RawScanResult = payload[0]
            base = 0 if checkpoint is None else checkpoint.symbols_processed
            result = backend.materialise_raw(raw, base, collect_reports)
            return _ChunkResult(result.reports, result.checkpoint)
        reports: Tuple[Report, ...] = payload[0]
        return _ChunkResult(reports, payload[1])
