"""Multi-tenant asyncio scan service over the Cache Automaton engine.

Public surface::

    from repro.service import ScanService, TenantLimits, RetryingClient

    service = ScanService(workers=2, max_queue=64)
    service.register("tenant-a", ["cat", "dog+"])
    async with service:
        outcome = await service.scan("tenant-a", data, deadline=0.5)

See :mod:`repro.service.service` for the admission / deadline /
circuit-breaker / drain semantics and :mod:`repro.service.errors` for
the typed failure modes.
"""

from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.client import RetryingClient
from repro.service.errors import (
    ConnectionLost,
    DeadlineExceeded,
    Overloaded,
    ProtocolError,
    ServiceClosed,
    ServiceError,
    StreamTooLarge,
    UnknownTenant,
    WorkerCrashed,
)
from repro.service.net import NetScanClient, ScanServer, connect_retrying
from repro.service.procpool import ProcPoolScanExecutor, TenantWorkerSpec
from repro.service.service import (
    DEFAULT_CHUNK_BYTES,
    DEFAULT_MAX_QUEUE,
    ScanOutcome,
    ScanService,
    ServiceMetrics,
    TenantLimits,
    tenant_fingerprint,
)

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "RetryingClient",
    "ConnectionLost",
    "DeadlineExceeded",
    "Overloaded",
    "ProtocolError",
    "ServiceClosed",
    "ServiceError",
    "StreamTooLarge",
    "UnknownTenant",
    "WorkerCrashed",
    "NetScanClient",
    "ScanServer",
    "connect_retrying",
    "ProcPoolScanExecutor",
    "TenantWorkerSpec",
    "DEFAULT_CHUNK_BYTES",
    "DEFAULT_MAX_QUEUE",
    "ScanOutcome",
    "ScanService",
    "ServiceMetrics",
    "TenantLimits",
    "tenant_fingerprint",
]
