"""Network front end for the scan service: asyncio TCP, framed protocol.

One :class:`ScanServer` wraps one running
:class:`~repro.service.service.ScanService` and speaks a length-prefixed
frame protocol; the matching :class:`NetScanClient` exposes the same
``scan(tenant, data, deadline=, resume=)`` coroutine surface as the
in-process service, so :class:`~repro.service.client.RetryingClient`
works over the wire unchanged — including typed, ``retryable``-flagged
errors reconstructed from error frames.

Wire format — every frame (both directions) is::

    >II big-endian prefix: (header_len, blob_len)
    header: UTF-8 JSON object
    blob:   raw bytes (the scan payload; empty for most frames)

The scan bytes ride in the binary blob, never inside JSON, so framing
cost is O(1) in the stream size.  Request headers carry ``id`` (echoed
verbatim in the response — responses may arrive out of submission
order; the client correlates by id) and ``op``:

``submit``
    One scan: ``tenant``, optional ``deadline`` (seconds of budget) and
    ``checkpoint``; blob = data.  Response: ``offset``, ``reports`` as
    ``[offset, ste_id, report_code]`` rows, ``checkpoint``,
    ``served_by``, ``fallback``, ``latency_s``.
``resume``
    ``submit`` with a *required* checkpoint — the explicit
    continue-after-``DeadlineExceeded`` verb.
``stream``
    Incremental scanning with a server-held cursor: frames sharing a
    ``stream`` id are scanned as one logical stream per connection
    (``final: true`` drops the cursor).  Checkpoints still return on
    every response, so a client can fail over a stream to a new
    connection via ``resume``.
``register`` / ``health`` / ``drain`` / ``ping``
    Tenant registration, a metrics snapshot, graceful shutdown of the
    service *and* server, liveness.

Checkpoints serialise as ``[symbols, hex(state_vector), sod]`` — the
active-state vector is an arbitrary-precision integer, which JSON
numbers cannot carry exactly.

Backpressure: the server reads at most ``max_inflight`` frames per
connection ahead of their responses; past that it simply stops reading
the socket, so TCP flow control pushes back to the sender, which is
tied to the service's own bounded admission queue (a shed request
returns a retryable ``Overloaded`` error frame).  ``idle_timeout``
closes connections with no inbound frame for that many seconds.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Dict, Optional, Tuple

from repro.service.client import RetryingClient
from repro.service.errors import (
    ConnectionLost,
    DeadlineExceeded,
    Overloaded,
    ProtocolError,
    ServiceClosed,
    ServiceError,
    StreamTooLarge,
    UnknownTenant,
    WorkerCrashed,
)
from repro.service.service import ScanOutcome, ScanService, TenantLimits
from repro.sim.golden import Checkpoint, Report

#: Sanity bounds on inbound frames (header is JSON metadata only).
MAX_HEADER_BYTES = 1 << 20
MAX_BLOB_BYTES = 1 << 28

#: Default per-connection in-flight request bound (backpressure).
DEFAULT_MAX_INFLIGHT = 32

_PREFIX = struct.Struct(">II")


# -- frame codec -------------------------------------------------------------


def encode_frame(header: Dict[str, object], blob: bytes = b"") -> bytes:
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return _PREFIX.pack(len(header_bytes), len(blob)) + header_bytes + blob


async def read_frame(reader) -> Tuple[Dict[str, object], bytes]:
    """One frame off the wire; raises ``IncompleteReadError`` at EOF."""
    header_len, blob_len = _PREFIX.unpack(await reader.readexactly(8))
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"frame header of {header_len} bytes (cap "
                            f"{MAX_HEADER_BYTES})")
    if blob_len > MAX_BLOB_BYTES:
        raise ProtocolError(f"frame blob of {blob_len} bytes (cap "
                            f"{MAX_BLOB_BYTES})")
    header_bytes = await reader.readexactly(header_len)
    blob = await reader.readexactly(blob_len) if blob_len else b""
    try:
        header = json.loads(header_bytes)
    except ValueError as error:
        raise ProtocolError(f"frame header is not JSON: {error}") from None
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    return header, blob


def encode_checkpoint(checkpoint: Optional[Checkpoint]):
    if checkpoint is None:
        return None
    return [
        checkpoint.symbols_processed,
        hex(checkpoint.active_state_vector),
        bool(checkpoint.start_of_data_pending),
    ]


def decode_checkpoint(row) -> Optional[Checkpoint]:
    if row is None:
        return None
    try:
        symbols, vector, sod = row
        return Checkpoint(
            symbols_processed=int(symbols),
            active_state_vector=int(vector, 16),
            start_of_data_pending=bool(sod),
        )
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"malformed checkpoint {row!r}: {error}") from None


def encode_reports(reports):
    return [[r.offset, r.ste_id, r.report_code] for r in reports]


def decode_reports(rows) -> Tuple[Report, ...]:
    try:
        return tuple(
            Report(int(offset), ste_id, report_code)
            for offset, ste_id, report_code in rows or ()
        )
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"malformed report rows: {error}") from None


def encode_error(error: Exception) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "type": type(error).__name__,
        "message": str(error),
        "retryable": bool(getattr(error, "retryable", False)),
    }
    tenant = getattr(error, "tenant", None)
    if tenant is not None:
        payload["tenant"] = tenant
    if isinstance(error, Overloaded):
        payload["reason"] = error.reason
    if isinstance(error, StreamTooLarge):
        payload["size"] = error.size
        payload["limit"] = error.limit
    if isinstance(error, DeadlineExceeded):
        payload["offset"] = error.offset
        payload["reports"] = encode_reports(error.reports)
        payload["checkpoint"] = encode_checkpoint(error.checkpoint)
    return payload


def decode_error(payload: Dict[str, object]) -> ServiceError:
    """Rebuild the typed exception a server error frame describes."""
    kind = payload.get("type")
    message = str(payload.get("message", "remote service error"))
    tenant = str(payload.get("tenant", "?"))
    if kind == "DeadlineExceeded":
        return DeadlineExceeded(
            tenant,
            offset=int(payload.get("offset", 0)),
            reports=list(decode_reports(payload.get("reports"))),
            checkpoint=decode_checkpoint(payload.get("checkpoint")),
        )
    if kind == "Overloaded":
        return Overloaded(tenant, str(payload.get("reason", message)))
    if kind == "StreamTooLarge":
        return StreamTooLarge(
            tenant, int(payload.get("size", 0)), int(payload.get("limit", 0))
        )
    if kind == "UnknownTenant":
        return UnknownTenant(tenant)
    if kind == "WorkerCrashed":
        return WorkerCrashed(tenant)
    if kind == "ServiceClosed":
        return ServiceClosed(message)
    if kind == "ProtocolError":
        return ProtocolError(message)
    if kind == "ConnectionLost":
        return ConnectionLost(message)
    error = ServiceError(message)
    error.retryable = bool(payload.get("retryable", False))
    return error


# -- server ------------------------------------------------------------------


class _Connection:
    """Per-connection server state: write lock, stream cursors, tasks."""

    def __init__(self, writer, max_inflight: int):
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.inflight = asyncio.Semaphore(max_inflight)
        self.cursors: Dict[str, Optional[Checkpoint]] = {}
        self.tasks: set = set()


class ScanServer:
    """Asyncio TCP server exposing one :class:`ScanService`.

    The service's lifecycle stays with its owner: ``start`` here only
    opens the listening socket (the service must already be started),
    and ``stop`` only closes connections — except for the ``drain``
    verb, which gracefully stops *both* (stop admitting → drain →
    join → close), which is what ``repro serve`` runs on SIGINT/SIGTERM.
    """

    def __init__(
        self,
        service: ScanService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_timeout: Optional[float] = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.idle_timeout = idle_timeout
        self.max_inflight = max(1, max_inflight)
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._draining = False

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for connection in list(self._connections):
            for task in list(connection.tasks):
                task.cancel()
            connection.writer.close()

    async def serve_until(self, event: asyncio.Event) -> None:
        """Run until ``event`` is set (signal handlers set it)."""
        await event.wait()

    # -- connection handling ---------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        connection = _Connection(writer, self.max_inflight)
        self._connections.add(connection)
        try:
            while True:
                # Backpressure: never read more than max_inflight frames
                # ahead of their responses — the socket buffer fills and
                # TCP pushes back to the client.
                await connection.inflight.acquire()
                try:
                    if self.idle_timeout is not None:
                        header, blob = await asyncio.wait_for(
                            read_frame(reader), self.idle_timeout
                        )
                    else:
                        header, blob = await read_frame(reader)
                except BaseException:
                    connection.inflight.release()
                    raise
                task = asyncio.get_running_loop().create_task(
                    self._handle(connection, header, blob)
                )
                connection.tasks.add(task)
                task.add_done_callback(connection.tasks.discard)
        except (
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ConnectionError,
            ProtocolError,
        ):
            pass
        except asyncio.CancelledError:  # pragma: no cover - server stop
            raise
        finally:
            self._connections.discard(connection)
            for task in list(connection.tasks):
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _handle(self, connection, header, blob) -> None:
        request_id = header.get("id")
        try:
            response, out_blob = await self._dispatch(connection, header, blob)
        except asyncio.CancelledError:
            raise
        except Exception as error:
            response, out_blob = {"error": encode_error(error)}, b""
        finally:
            connection.inflight.release()
        response["id"] = request_id
        frame = encode_frame(response, out_blob)
        async with connection.write_lock:
            try:
                connection.writer.write(frame)
                await connection.writer.drain()
            except (ConnectionError, RuntimeError):
                pass  # peer is gone; the read loop tears the rest down

    async def _dispatch(self, connection, header, blob):
        op = header.get("op")
        if op == "ping":
            return {"pong": True}, b""
        if op == "health":
            return {"metrics": self.service.metrics_snapshot()}, b""
        if op == "register":
            return self._op_register(header), b""
        if op in ("submit", "resume"):
            return await self._op_submit(header, blob, require_resume=(op == "resume"))
        if op == "stream":
            return await self._op_stream(connection, header, blob)
        if op == "drain":
            return self._op_drain(header), b""
        raise ProtocolError(f"unknown op {op!r}")

    def _op_register(self, header):
        tenant = header.get("tenant")
        patterns = header.get("patterns")
        if not tenant or not isinstance(patterns, list):
            raise ProtocolError("register needs tenant and patterns[]")
        limits = None
        if header.get("limits") is not None:
            limits = TenantLimits(**header["limits"])
        reloaded = self.service.register(
            tenant,
            patterns,
            limits=limits,
            backend=header.get("backend"),
            stride=header.get("stride"),
            backend_options=header.get("backend_options"),
        )
        return {"reloaded": reloaded}

    async def _op_submit(self, header, blob, *, require_resume: bool):
        tenant = header.get("tenant")
        if not tenant:
            raise ProtocolError("submit needs a tenant")
        resume = decode_checkpoint(header.get("checkpoint"))
        if require_resume and resume is None:
            raise ProtocolError("resume needs a checkpoint")
        outcome = await self.service.scan(
            tenant, blob, deadline=header.get("deadline"), resume=resume
        )
        return self._outcome_response(outcome), b""

    async def _op_stream(self, connection, header, blob):
        tenant = header.get("tenant")
        stream_id = header.get("stream")
        if not tenant or not isinstance(stream_id, str):
            raise ProtocolError("stream needs tenant and a stream id")
        cursor = connection.cursors.get(stream_id)
        outcome = await self.service.scan(
            tenant, blob, deadline=header.get("deadline"), resume=cursor
        )
        if header.get("final"):
            connection.cursors.pop(stream_id, None)
        else:
            connection.cursors[stream_id] = outcome.checkpoint
        return self._outcome_response(outcome), b""

    def _op_drain(self, header):
        if not self._draining:
            self._draining = True
            asyncio.get_running_loop().create_task(
                self._drain(header.get("drain_timeout"))
            )
        return {"draining": True}

    async def _drain(self, drain_timeout) -> None:
        await self.service.stop(drain_timeout=drain_timeout)
        await self.stop()

    @staticmethod
    def _outcome_response(outcome: ScanOutcome):
        return {
            "tenant": outcome.tenant,
            "offset": outcome.offset,
            "reports": encode_reports(outcome.reports),
            "checkpoint": encode_checkpoint(outcome.checkpoint),
            "served_by": outcome.served_by,
            "fallback": outcome.fallback,
            "latency_s": outcome.latency_s,
        }


# -- client ------------------------------------------------------------------


class NetScanClient:
    """Async client for :class:`ScanServer`.

    ``scan`` has the exact signature and typed-error behaviour of
    :meth:`ScanService.scan`, so it drops into
    :class:`~repro.service.client.RetryingClient` unchanged.  Requests
    are correlated by id, so any number of coroutines can share one
    connection; a dead connection fails every in-flight request with a
    retryable :class:`ConnectionLost`.
    """

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer
        self._write_lock = asyncio.Lock()
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def connect(
        cls, host: str, port: int, *, timeout: Optional[float] = None
    ) -> "NetScanClient":
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
        return cls(reader, writer)

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass
        self._fail_pending(ConnectionLost("client closed"))

    async def __aenter__(self) -> "NetScanClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- plumbing ---------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                header, _blob = await read_frame(self._reader)
                future = self._pending.pop(header.get("id"), None)
                if future is None or future.done():
                    continue
                if "error" in header:
                    future.set_exception(decode_error(header["error"]))
                else:
                    future.set_result(header)
        except asyncio.CancelledError:
            raise
        except Exception as error:
            if not self._closed:
                self._fail_pending(
                    ConnectionLost(f"connection lost: {error or 'EOF'}")
                )

    def _fail_pending(self, error: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def _request(
        self, op: str, header: Dict[str, object], blob: bytes = b""
    ) -> Dict[str, object]:
        if self._closed or self._reader_task.done():
            raise ConnectionLost("connection is closed")
        self._next_id += 1
        request_id = self._next_id
        header = {"id": request_id, "op": op, **header}
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._write_lock:
                self._writer.write(encode_frame(header, blob))
                await self._writer.drain()
        except (ConnectionError, RuntimeError) as error:
            self._pending.pop(request_id, None)
            raise ConnectionLost(f"send failed: {error}") from error
        return await future

    # -- verbs ------------------------------------------------------------

    async def ping(self) -> bool:
        return bool((await self._request("ping", {})).get("pong"))

    async def register(
        self,
        tenant: str,
        patterns,
        *,
        limits: Optional[TenantLimits] = None,
        backend: Optional[str] = None,
        stride=None,
        backend_options: Optional[Dict[str, object]] = None,
    ) -> bool:
        header: Dict[str, object] = {
            "tenant": tenant,
            "patterns": list(patterns),
            "backend": backend,
            "stride": stride,
            "backend_options": backend_options,
        }
        if limits is not None:
            header["limits"] = {
                "max_stream_bytes": limits.max_stream_bytes,
                "max_in_flight": limits.max_in_flight,
                "dfa_max_states": limits.dfa_max_states,
            }
        return bool((await self._request("register", header)).get("reloaded"))

    async def scan(
        self,
        tenant: str,
        data: bytes,
        *,
        deadline: Optional[float] = None,
        resume: Optional[Checkpoint] = None,
    ) -> ScanOutcome:
        op = "submit" if resume is None else "resume"
        header: Dict[str, object] = {"tenant": tenant, "deadline": deadline}
        if resume is not None:
            header["checkpoint"] = encode_checkpoint(resume)
        response = await self._request(op, header, bytes(data))
        return self._decode_outcome(response)

    async def stream_scan(
        self,
        tenant: str,
        stream_id: str,
        chunk: bytes,
        *,
        deadline: Optional[float] = None,
        final: bool = False,
    ) -> ScanOutcome:
        """One chunk of a server-side cursored stream (``stream`` verb)."""
        header: Dict[str, object] = {
            "tenant": tenant,
            "stream": stream_id,
            "deadline": deadline,
            "final": bool(final),
        }
        response = await self._request("stream", header, bytes(chunk))
        return self._decode_outcome(response)

    async def health(self) -> Dict[str, object]:
        return (await self._request("health", {})).get("metrics", {})

    async def drain(self, drain_timeout: Optional[float] = None) -> bool:
        response = await self._request(
            "drain", {"drain_timeout": drain_timeout}
        )
        return bool(response.get("draining"))

    @staticmethod
    def _decode_outcome(response: Dict[str, object]) -> ScanOutcome:
        return ScanOutcome(
            tenant=str(response.get("tenant", "?")),
            reports=decode_reports(response.get("reports")),
            offset=int(response.get("offset", 0)),
            checkpoint=decode_checkpoint(response.get("checkpoint")),
            served_by=str(response.get("served_by", "?")),
            fallback=bool(response.get("fallback")),
            latency_s=float(response.get("latency_s", 0.0)),
        )


async def connect_retrying(
    host: str,
    port: int,
    *,
    timeout: Optional[float] = None,
    **retry_options,
) -> Tuple[NetScanClient, RetryingClient]:
    """Convenience: a connected client wrapped in the backoff retrier."""
    client = await NetScanClient.connect(host, port, timeout=timeout)
    return client, RetryingClient(client, **retry_options)
