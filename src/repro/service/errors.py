"""Typed failure modes of the multi-tenant scan service.

Every rejection or interruption a client can observe is a distinct
exception class deriving from :class:`ServiceError` (itself a
:class:`~repro.errors.ReproError`, so ``repro.cli`` turns all of them
into one-line diagnostics).  Each carries a ``retryable`` flag the
retrying client consults: admission rejections under load
(:class:`Overloaded`) and requests orphaned by a crashed worker
(:class:`WorkerCrashed`) are transient and worth a backoff-retry;
contract violations (:class:`StreamTooLarge`, :class:`UnknownTenant`)
and lifecycle rejections (:class:`ServiceClosed`) are not.

:class:`DeadlineExceeded` is the mid-stream interruption contract: the
service scans in chunks through the checkpoint machinery, so when a
request's budget expires the exception carries the *partial progress* —
the global byte offset reached, the reports already emitted, and the
:class:`~repro.sim.golden.Checkpoint` to resume from.  Resuming from
that checkpoint over the remaining bytes yields reports bit-identical
to an uninterrupted scan.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ReproError
from repro.sim.golden import Checkpoint, Report


class ServiceError(ReproError):
    """Base class for scan-service failures.

    ``retryable`` tells clients whether backing off and resubmitting
    the same request can succeed (the condition is transient).
    """

    retryable = False


class UnknownTenant(ServiceError):
    """The request names a tenant that was never registered."""

    def __init__(self, tenant: str):
        self.tenant = tenant
        super().__init__(f"unknown tenant {tenant!r}; register it first")


class StreamTooLarge(ServiceError):
    """The stream exceeds the tenant's ``max_stream_bytes`` limit."""

    def __init__(self, tenant: str, size: int, limit: int):
        self.tenant = tenant
        self.size = size
        self.limit = limit
        super().__init__(
            f"tenant {tenant!r}: stream of {size} bytes exceeds the "
            f"per-request limit of {limit} bytes"
        )


class Overloaded(ServiceError):
    """Load shed: the admission queue (or the tenant's in-flight
    allowance) is full.  Retryable — back off and resubmit."""

    retryable = True

    def __init__(self, tenant: str, reason: str):
        self.tenant = tenant
        self.reason = reason
        super().__init__(f"tenant {tenant!r} rejected: {reason}")


class WorkerCrashed(ServiceError):
    """The worker executing this request died mid-flight.

    The supervisor restarts the worker; the request itself is failed
    with this retryable error so the client can resubmit."""

    retryable = True

    def __init__(self, tenant: str):
        self.tenant = tenant
        super().__init__(
            f"tenant {tenant!r}: worker crashed while serving the request"
        )


class ServiceClosed(ServiceError):
    """The service is draining or stopped; no new work is admitted."""

    def __init__(self, reason: str = "service is not accepting requests"):
        super().__init__(reason)


class ProtocolError(ServiceError):
    """A malformed or unsupported frame on the wire protocol.

    Contract violation, not transient: retrying the same bytes would
    fail identically (:mod:`repro.service.net`)."""


class ConnectionLost(ServiceError):
    """The transport died with requests in flight.

    Retryable — reconnect and resubmit; any scan the server completed
    after the disconnect was simply discarded with its connection."""

    retryable = True


class DeadlineExceeded(ServiceError):
    """The request's deadline expired; carries the partial progress.

    ``offset`` is the global byte offset the scan reached (``0`` when
    the deadline expired while the request was still queued);
    ``reports`` are the match records already emitted up to ``offset``;
    ``checkpoint`` resumes the stream — submit the remaining bytes with
    ``resume=checkpoint`` and the combined report stream is
    bit-identical to one uninterrupted scan.
    """

    def __init__(
        self,
        tenant: str,
        *,
        offset: int,
        reports: Optional[List[Report]] = None,
        checkpoint: Optional[Checkpoint] = None,
    ):
        self.tenant = tenant
        self.offset = offset
        self.reports: Tuple[Report, ...] = tuple(reports or ())
        self.checkpoint = checkpoint
        super().__init__(
            f"tenant {tenant!r}: deadline exceeded at byte offset {offset} "
            f"({len(self.reports)} report(s) emitted before interruption)"
        )
